// pipeline_sim — precedence-constrained analytics pipelines.
//
//   $ ./pipeline_sim --pipelines=8 --stages=3 --branches=4 --machines=16
//   $ ./pipeline_sim --policy=par-srpt
//
// Fork-join pipelines (parallel branch tasks joined by poorly
// parallelizable barrier tasks) scheduled under precedence constraints:
// a barrier is released only when all its branches complete in the
// observed schedule, so a policy that mismanages branches delays entire
// pipelines. Reports per-policy flow and makespan against the provable
// DAG bounds.
#include <iostream>

#include "sched/registry.hpp"
#include "simcore/precedence.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/dag.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  ForkJoinConfig cfg;
  cfg.machines = static_cast<int>(opt.get_int("machines", 16));
  cfg.pipelines = static_cast<int>(opt.get_int("pipelines", 8));
  cfg.stages = static_cast<int>(opt.get_int("stages", 3));
  cfg.branches = static_cast<int>(opt.get_int("branches", 4));
  cfg.branch_alpha = opt.get_double("branch-alpha", 0.9);
  cfg.barrier_alpha = opt.get_double("barrier-alpha", 0.1);
  cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const DagInstance dag = make_fork_join(cfg);

  std::cout << "Fork-join: " << cfg.pipelines << " pipelines x "
            << cfg.stages << " stages x " << cfg.branches
            << " branches on " << cfg.machines << " machines ("
            << dag.size() << " tasks)\n"
            << "flow lower bound " << dag.flow_lower_bound()
            << ", critical path " << dag.critical_path() << "\n\n";

  std::vector<std::string> policies;
  if (opt.has("policy")) {
    policies.push_back(opt.get("policy", "isrpt"));
  } else {
    policies = {"isrpt", "seq-srpt", "par-srpt", "equi", "mlf"};
  }
  Table t({"policy", "total_flow", "flow/LB", "makespan", "makespan/CP"},
          3);
  for (const auto& name : policies) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate_dag(dag, *sched);
    t.add_row({sched->name(), r.total_flow,
               r.total_flow / dag.flow_lower_bound(), r.makespan,
               r.makespan / dag.critical_path()});
  }
  std::cout << t;
  return 0;
}
