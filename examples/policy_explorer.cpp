// policy_explorer — which policy wins where?
//
//   $ ./policy_explorer --a=isrpt --b=equi
//   $ ./policy_explorer --a=par-srpt --b=seq-srpt --machines=32
//
// Sweeps a grid of (parallelizability alpha) x (offered load) and prints,
// for each cell, which of two chosen policies achieves lower total flow
// time and by what factor — a quick intuition tool for the trade-off the
// paper formalizes.
#include <iomanip>
#include <iostream>

#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const std::string name_a = opt.get("a", "isrpt");
  const std::string name_b = opt.get("b", "equi");
  const int m = static_cast<int>(opt.get_int("machines", 16));
  const int seeds = static_cast<int>(opt.get_int("seeds", 3));
  const auto alphas = opt.get_doubles("alpha", {0.1, 0.3, 0.5, 0.7, 0.9});
  const auto loads = opt.get_doubles("load", {0.5, 0.8, 1.1, 1.4});

  auto a = make_scheduler(name_a);
  auto b = make_scheduler(name_b);
  std::cout << "Cells show flow(" << a->name() << ") / flow(" << b->name()
            << "): < 1 means " << a->name() << " wins.\n\n";
  std::cout << std::setw(8) << "alpha\\load";
  for (double load : loads) std::cout << std::setw(10) << load;
  std::cout << "\n";
  for (double alpha : alphas) {
    std::cout << std::setw(8) << alpha << "  ";
    for (double load : loads) {
      RunningStats ratio;
      for (int s = 0; s < seeds; ++s) {
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = 300;
        cfg.P = 64.0;
        cfg.alpha_lo = cfg.alpha_hi = alpha;
        cfg.load = load;
        cfg.seed = static_cast<std::uint64_t>(s) * 57 + 2;
        const Instance inst = make_random_instance(cfg);
        const double fa = simulate(inst, *a).total_flow;
        const double fb = simulate(inst, *b).total_flow;
        ratio.add(fa / fb);
      }
      std::cout << std::setw(10) << std::fixed << std::setprecision(3)
                << ratio.mean();
    }
    std::cout << "\n";
  }
  return 0;
}
