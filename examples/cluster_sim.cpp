// cluster_sim — the paper's motivating scenario: a many-core chip / small
// cluster where jobs have heterogeneous, intermediate parallelizability.
//
//   $ ./cluster_sim --machines=64 --jobs=2000 --load=0.9 --seed=7
//   $ ./cluster_sim --policy=equi --size-law=pareto
//
// Simulates a Poisson job stream with a chosen size law and mixed speedup
// curves, runs one or all policies, and reports mean / p95 / max flow time
// plus the provable OPT lower bound.
#include <iostream>

#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  RandomWorkloadConfig cfg;
  cfg.machines = static_cast<int>(opt.get_int("machines", 64));
  cfg.jobs = static_cast<std::size_t>(opt.get_int("jobs", 2000));
  cfg.P = opt.get_double("P", 256.0);
  cfg.load = opt.get_double("load", 0.9);
  cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const std::string law = opt.get("size-law", "pareto");
  cfg.size_law = law == "uniform"      ? SizeLaw::kUniform
                 : law == "log-uniform" ? SizeLaw::kLogUniform
                 : law == "bimodal"     ? SizeLaw::kBimodal
                                        : SizeLaw::kBoundedPareto;
  cfg.alpha_law = AlphaLaw::kMixed;
  cfg.alpha_lo = opt.get_double("alpha-lo", 0.2);
  cfg.alpha_hi = opt.get_double("alpha-hi", 0.9);

  const Instance inst = make_random_instance(cfg);
  std::cout << "Cluster: m=" << inst.machines() << ", n=" << inst.size()
            << " jobs, P=" << inst.P() << ", load=" << cfg.load
            << ", sizes=" << to_string(cfg.size_law) << "\n";
  const double lb = opt_lower_bound(inst);

  std::vector<std::string> policies;
  if (opt.has("policy")) {
    policies.push_back(opt.get("policy", "isrpt"));
  } else {
    policies = standard_policy_names();
  }

  Table t({"policy", "mean_flow", "p95_flow", "max_flow", "vs_OPT_LB"}, 2);
  for (const auto& name : policies) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate(inst, *sched);
    std::vector<double> flows;
    flows.reserve(r.records.size());
    for (const auto& rec : r.records) flows.push_back(rec.flow());
    t.add_row({sched->name(), r.avg_flow(), percentile(flows, 95.0),
               r.max_flow(), r.total_flow / lb});
  }
  std::cout << t;
  std::cout << "(vs_OPT_LB = total flow over the provable lower bound; "
               "the true competitive ratio is at most this)\n";
  const auto unused = opt.unused_keys();
  for (const auto& k : unused) {
    std::cerr << "warning: unknown option --" << k << "\n";
  }
  return 0;
}
