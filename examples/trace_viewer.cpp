// trace_viewer — see what a policy actually does, two ways.
//
//   $ ./trace_viewer --policy=isrpt --machines=4 --jobs=12
//   $ ./trace_viewer --policy=greedy --csv=trace.csv
//   $ ./trace_viewer --policy=isrpt --chrome=run.trace.json
//
// Runs a small random instance, renders the allocation timeline per job
// as an ASCII Gantt chart (glyphs: '.' fractional share, ':' one
// processor, '#' more than one), and reports machine utilization.
// Optionally dumps the raw segments as CSV and — the real-viewer path —
// exports the same schedule as a Chrome trace-event file for Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
#include <iostream>

#include "analysis/trace.hpp"
#include "obs/trace_export.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  RandomWorkloadConfig cfg;
  cfg.machines = static_cast<int>(opt.get_int("machines", 4));
  cfg.jobs = static_cast<std::size_t>(opt.get_int("jobs", 12));
  cfg.P = opt.get_double("P", 16.0);
  cfg.load = opt.get_double("load", 1.0);
  cfg.alpha_lo = cfg.alpha_hi = opt.get_double("alpha", 0.5);
  cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const Instance inst = make_random_instance(cfg);

  auto sched = make_scheduler(opt.get("policy", "isrpt"));
  AllocationTrace trace;
  obs::TraceExporter exporter;
  const SimResult r = simulate(inst, *sched, {}, {&trace, &exporter});

  std::cout << sched->name() << " on " << inst.size() << " jobs / "
            << inst.machines() << " machines (alpha=" << cfg.alpha_lo
            << ", load=" << cfg.load << ")\n\n";
  trace.render_gantt(std::cout, static_cast<int>(opt.get_int("width", 72)));
  std::cout << "\ntotal flow " << r.total_flow << ", avg "
            << r.avg_flow() << ", makespan " << r.makespan
            << ", avg utilization "
            << trace.average_utilization(0.0, r.makespan) << " of "
            << inst.machines() << " machines\n";
  if (opt.has("csv")) {
    const std::string path = opt.get("csv", "trace.csv");
    trace.write_csv(path);
    std::cout << "raw segments written to " << path << "\n";
  }
  if (opt.has("chrome")) {
    const std::string path = opt.get("chrome", "run.trace.json");
    exporter.write_chrome_trace(path);
    std::cout << "Chrome trace written to " << path
              << " (open in https://ui.perfetto.dev)\n";
  }
  return 0;
}
