// Quickstart: the 60-second tour of the parsched API.
//
//   $ ./quickstart
//
// Builds a tiny instance of intermediate-parallelizability jobs, runs the
// paper's Intermediate-SRPT scheduler on it, and compares against the two
// classical extremes and the provable OPT lower bound.
#include <iostream>

#include "sched/intermediate_srpt.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/parallel_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"

using namespace parsched;

int main() {
  // 4 machines; jobs with speedup curve Γ(x) = x for x <= 1, x^0.5 above.
  const SpeedupCurve curve = SpeedupCurve::power_law(0.5);
  std::vector<Job> jobs;
  const double releases[] = {0.0, 0.0, 1.0, 2.0, 2.5, 6.0};
  const double sizes[] = {8.0, 2.0, 1.0, 4.0, 1.0, 2.0};
  for (std::size_t i = 0; i < 6; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = releases[i];
    j.size = sizes[i];
    j.curve = curve;
    jobs.push_back(j);
  }
  const Instance instance(/*machines=*/4, jobs);

  std::cout << "Instance: " << instance.size() << " jobs on "
            << instance.machines() << " machines, P = " << instance.P()
            << ", every job has curve " << curve.to_string() << "\n\n";

  // Run the paper's algorithm and print the per-job outcome.
  IntermediateSrpt isrpt;
  const SimResult result = simulate(instance, isrpt);
  Table t({"job", "release", "size", "completion", "flow"}, 3);
  for (const auto& rec : result.records) {
    t.add_row({static_cast<std::int64_t>(rec.job.id), rec.job.release,
               rec.job.size, rec.completion, rec.flow()});
  }
  std::cout << "Intermediate-SRPT schedule (jobs in completion order):\n"
            << t;

  // Compare against the two classical extremes it interpolates between.
  SequentialSrpt seq;
  ParallelSrpt par;
  std::cout << "\nTotal flow time:\n"
            << "  Intermediate-SRPT : " << result.total_flow << "\n"
            << "  Sequential-SRPT   : " << simulate(instance, seq).total_flow
            << "\n"
            << "  Parallel-SRPT     : " << simulate(instance, par).total_flow
            << "\n"
            << "  provable OPT LB   : " << opt_lower_bound(instance) << "\n";
  return 0;
}
