// adversary_demo — watch the Theorem-2 adversary defeat a policy of your
// choice, phase by phase.
//
//   $ ./adversary_demo --policy=isrpt --P=256 --alpha=0.25
//   $ ./adversary_demo --policy=equi
//
// Narrates the adaptive construction (phase lengths, midpoint decisions,
// when part 2 fires) and reports the resulting competitive-ratio estimate
// against the paper's standard schedule.
#include <iomanip>
#include <iostream>

#include "sched/opt/plan.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "workload/adversary.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  AdversaryConfig cfg;
  cfg.machines = static_cast<int>(opt.get_int("machines", 8));
  cfg.P = opt.get_double("P", 256.0);
  cfg.alpha = opt.get_double("alpha", 0.0);
  cfg.stream_time = opt.get_double("stream", 4096.0);
  const std::string policy = opt.get("policy", "isrpt");

  const AdversaryParams params = adversary_params(cfg);
  std::cout << "Adversary (Section 4): alpha=" << cfg.alpha
            << "  eps=" << params.epsilon << "  r=" << params.r
            << "  kappa=" << params.kappa << "\n"
            << "  up to " << params.num_phases
            << " phase(s); midpoint trigger threshold = " << params.threshold
            << " units of unfinished short work\n"
            << "  proof side-condition log^2 P < kappa sqrt(P)/4: "
            << (params.proof_condition ? "satisfied" : "NOT satisfied (the "
               "construction still runs; the counting argument may be loose)")
            << "\n\n";

  AdversarySource source(cfg);
  auto sched = make_scheduler(policy);
  Engine engine(cfg.machines);
  const SimResult alg = engine.run(*sched, source);
  const AdversaryOutcome& out = source.outcome();

  std::cout << "Against " << sched->name() << ":\n";
  for (std::size_t i = 0; i < out.phase_start.size(); ++i) {
    std::cout << "  phase " << i << ": start=" << std::setw(10)
              << out.phase_start[i] << "  length=" << out.phase_length[i]
              << "  (m/2 long jobs of that length + m unit jobs per "
                 "integer step of the first half)\n";
  }
  std::cout << (out.case1
                    ? "  -> case 1: the policy hoarded unit jobs; part 2 "
                      "fired at the midpoint of phase "
                    : "  -> case 2: the policy kept up with unit jobs "
                      "through every phase; part 2 fired after phase ")
            << out.decision_phase << " (T = " << out.T << ")\n\n";

  const Instance realized(cfg.machines, alg.realized_jobs());
  const Plan plan = adversary_standard_plan(realized, cfg, out);
  const double plan_flow = execute_plan(realized, plan).total_flow;
  const double lb = opt_lower_bound(realized);
  std::cout << "Jobs released: " << alg.jobs() << "\n"
            << "Policy total flow:            " << alg.total_flow << "\n"
            << "Standard schedule total flow: " << plan_flow << "\n"
            << "Provable OPT lower bound:     " << lb << "\n"
            << "=> competitive ratio between "
            << alg.total_flow / std::min(plan_flow, alg.total_flow)
            << " and " << alg.total_flow / lb << " on this instance\n"
            << "(run with larger --stream to approach the paper's X = P^2 "
               "asymptotics)\n";
  return 0;
}
