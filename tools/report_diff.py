#!/usr/bin/env python3
"""Compare BENCH_*.json reports with timing-dependent fields masked.

The sweep determinism contract says: same base seed => same artifact
bytes at any job count. Wall-clock measurements are the one legitimate
exception — two runs of the same bench can never agree on seconds. This
tool normalizes a parsched-bench-report by masking exactly the fields
that are allowed to differ, then diffs the rest byte-for-byte:

  * any key named wall_seconds / decide_seconds / solver_seconds /
    observer_seconds, wherever it appears (runs, stats, nested);
  * metrics entries of kind "timer" (their seconds are wall time), and
    any metric named under "exec.pool." (pool instrumentation scales
    with the worker count by design);
  * the timing columns of a "parallel_speedup" table (wall_seconds,
    speedup_vs_j1, merge_seconds, idle_fraction, steals) — but NOT its
    jobs/tasks/total_flow columns, so a cross-job-count flow divergence
    still fails the diff.

Everything else — flow totals, decision counts, table rows, histogram
buckets, metadata — must match exactly.

Usage:
  report_diff.py A.json B.json        compare two report files
  report_diff.py DIR_A DIR_B          compare every BENCH_*.json pair

Exit status: 0 identical after masking, 1 divergent, 2 usage/IO error.
"""

from __future__ import annotations

import difflib
import json
import sys
from pathlib import Path

MASKED = "<masked:timing>"

TIMING_KEYS = {
    "wall_seconds",
    "decide_seconds",
    "solver_seconds",
    "observer_seconds",
}

TIMING_TABLE_COLUMNS = {
    "wall_seconds",
    "speedup_vs_j1",
    "merge_seconds",
    "idle_fraction",
    "steals",
}


def mask_table(table: dict) -> dict:
    if table.get("name") != "parallel_speedup":
        return table
    columns = table.get("columns", [])
    timing_idx = {
        i for i, c in enumerate(columns) if c in TIMING_TABLE_COLUMNS
    }
    out = dict(table)
    out["rows"] = [
        [MASKED if i in timing_idx else cell for i, cell in enumerate(row)]
        for row in table.get("rows", [])
    ]
    return out


def mask_metric(metric: dict) -> dict | None:
    name = metric.get("name", "")
    if name.startswith("exec.pool."):
        return None  # pool instrumentation varies with the worker count
    if metric.get("kind") != "timer":
        return metric
    return {
        k: (v if isinstance(v, str) else MASKED) for k, v in metric.items()
    }


def mask(node):
    """Recursively replace timing-dependent values with a fixed token."""
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if key in TIMING_KEYS:
                out[key] = MASKED
            elif key == "tables" and isinstance(value, list):
                out[key] = [
                    mask_table(t) if isinstance(t, dict) else mask(t)
                    for t in value
                ]
            elif key == "metrics" and isinstance(value, list):
                kept = []
                for m in value:
                    masked = mask_metric(m) if isinstance(m, dict) else m
                    if masked is not None:
                        kept.append(masked)
                out[key] = kept
            else:
                out[key] = mask(value)
        return out
    if isinstance(node, list):
        return [mask(v) for v in node]
    return node


def normalize(path: Path) -> str:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"report_diff: cannot read {path}: {exc}")
    return json.dumps(mask(data), indent=2, sort_keys=True) + "\n"


def diff_pair(a: Path, b: Path) -> bool:
    na, nb = normalize(a), normalize(b)
    if na == nb:
        return True
    sys.stdout.writelines(
        difflib.unified_diff(
            na.splitlines(keepends=True),
            nb.splitlines(keepends=True),
            fromfile=str(a),
            tofile=str(b),
        )
    )
    return False


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a, b = Path(argv[1]), Path(argv[2])
    if a.is_dir() != b.is_dir():
        print("report_diff: arguments must both be files or both dirs",
              file=sys.stderr)
        return 2

    pairs: list[tuple[Path, Path]] = []
    if a.is_dir():
        names = sorted(
            {p.name for p in a.glob("BENCH_*.json")}
            | {p.name for p in b.glob("BENCH_*.json")}
        )
        if not names:
            print(f"report_diff: no BENCH_*.json under {a} or {b}",
                  file=sys.stderr)
            return 2
        for name in names:
            pa, pb = a / name, b / name
            if not pa.is_file() or not pb.is_file():
                print(f"report_diff: {name} missing on one side",
                      file=sys.stderr)
                return 1
            pairs.append((pa, pb))
    else:
        pairs.append((a, b))

    clean = True
    for pa, pb in pairs:
        if diff_pair(pa, pb):
            print(f"report_diff: OK {pa.name}")
        else:
            clean = False
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
