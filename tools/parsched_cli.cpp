// parsched — the command-line front end.
//
//   parsched gen --kind=random --jobs=200 --machines=16 --out=inst.txt
//   parsched run --instance=inst.txt --policy=isrpt --gantt
//   parsched compare --instance=inst.txt
//   parsched bound --instance=inst.txt
//
// Commands:
//   gen      generate an instance file (kinds: random, batch, phased,
//            greedy-killer; see --help output per kind below)
//   run      simulate one policy on an instance file; optional --speed,
//            --trace=out.csv (allocation segments), --gantt (terminal
//            timeline)
//   trace    simulate one policy and export run telemetry: a Chrome
//            trace-event file (open in Perfetto / chrome://tracing) and
//            optionally a JSONL event log, plus the engine's per-phase
//            timing buckets
//   compare  run every registry policy plus the OPT sandwich
//   bound    print the provable lower bounds only
//   sweep    run a (policy x P x alpha x seed) grid of random-instance
//            simulations, sharded across a work-stealing pool
//            (--jobs=N, else PARSCHED_JOBS, else all hardware threads).
//            Table/CSV/report bytes are identical at any job count:
//            per-task seeds derive from exec::task_seed(base, index)
//            and results merge in task-index order. Job count and wall
//            time go to stderr only, never into artifacts.
#include <algorithm>
#include <atomic>
#include <ctime>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>  // lint: thread-ok (stats-interval emitter)

#include "analysis/trace.hpp"
#include "exec/sweep.hpp"
#include "obs/expose.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "sched/opt/search.hpp"
#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "sched/weighted.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "simcore/engine.hpp"
#include "simcore/io.hpp"
#include "util/fsio.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/greedy_killer.hpp"
#include "workload/phased.hpp"
#include "workload/random.hpp"

using namespace parsched;

namespace {

int usage() {
  std::cerr <<
      "usage: parsched <command> [--key=value ...]\n"
      "  gen     --kind=random|batch|phased|greedy-killer --out=FILE\n"
      "          [--machines=M --jobs=N --P=.. --load=.. --alpha=..\n"
      "           --seed=..]\n"
      "  run     --instance=FILE [--policy=isrpt] [--speed=1.0]\n"
      "          [--trace=FILE.csv] [--gantt] [--width=72]\n"
      "  trace   --instance=FILE [--policy=isrpt] [--out=trace.json]\n"
      "          [--jsonl=FILE.jsonl] [--speed=1.0] [--no-decisions]\n"
      "  compare --instance=FILE [--policies=a,b,c] [--search]\n"
      "  bound   --instance=FILE\n"
      "  sweep   [--policies=isrpt,equi] [--P=32,64] [--alpha=0.25,0.5]\n"
      "          [--seeds=3] [--seed=1] [--machines=8] [--n=200]\n"
      "          [--jobs=N] [--csv=FILE.csv]\n"
      "  serve   --stdio | --socket=PATH [--shards=1] [--threads=N]\n"
      "          [--max-sessions=64] [--max-queue=128]\n"
      "          [--stats-interval=SECS [--stats-out=FILE.jsonl]]\n"
      "          [--flight-capacity=4096] [--flight-dump=FILE.jsonl]\n"
      "  loadgen --socket=PATH [--sessions=8] [--admissions=200]\n"
      "          [--rate=64] [--advance-every=16] [--policy=equi]\n"
      "          [--machines=4] [--seed=1] [--stats-every=0]\n"
      "          [--shape=uniform|zipf|burst|diurnal] [--zipf-theta=1]\n"
      "          [--burst-per=32] [--diurnal-peak=4] [--workers=0]\n"
      "          [--binary] [--report-name=serve_loadgen] [--shutdown]\n"
      "  ctl     --socket=PATH [--timeout=10] '<json request>' ...\n";
  return 2;
}

// The sharded sweep: every (policy, P, alpha) cell is measured over
// `seeds` repetitions, one sweep task per repetition, each with its own
// derived seed and private metrics registry. Rows aggregate in cell
// order after the index-order merge, so the emitted bytes cannot depend
// on the worker count.
int cmd_sweep(const Options& opt) {
  std::vector<std::string> policies{"isrpt", "equi"};
  if (opt.has("policies")) {
    policies.clear();
    std::stringstream ss(opt.get("policies", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) policies.push_back(tok);
    }
  }
  const auto Ps = opt.get_doubles("P", {32.0, 64.0});
  const auto alphas = opt.get_doubles("alpha", {0.25, 0.5});
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const std::size_t n = static_cast<std::size_t>(opt.get_int("n", 200));
  const int reps = static_cast<int>(opt.get_int("seeds", 3));
  if (policies.empty() || Ps.empty() || alphas.empty() || reps <= 0) {
    std::cerr << "sweep: need at least one policy, P, alpha, and seed\n";
    return 2;
  }

  exec::SweepRunner::Config rc;
  rc.jobs =
      exec::resolve_jobs(static_cast<int>(opt.get_int("jobs", 0)));
  rc.base_seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  rc.merge_metrics = &obs::MetricsRegistry::global();
  exec::SweepRunner runner(rc);

  const std::size_t per_policy = Ps.size() * alphas.size();
  const std::size_t cells = policies.size() * per_policy;
  const std::size_t reps_sz = static_cast<std::size_t>(reps);
  const auto ratios = runner.map<double>(
      cells * reps_sz, [&](const exec::TaskContext& ctx) {
        const std::size_t cell = ctx.index / reps_sz;
        const std::size_t in_policy = cell % per_policy;
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = n;
        cfg.P = Ps[in_policy / alphas.size()];
        cfg.alpha_lo = cfg.alpha_hi = alphas[in_policy % alphas.size()];
        cfg.load = 1.0;
        cfg.seed = ctx.seed;  // exec::task_seed(base, index)
        const Instance inst = make_random_instance(cfg);
        auto sched = make_scheduler(policies[cell / per_policy]);
        EngineConfig ec;
        ec.metrics = ctx.metrics;
        return simulate(inst, *sched, ec).total_flow /
               opt_lower_bound(inst);
      });

  Table t({"policy", "P", "alpha", "ratio_mean", "ratio_max"});
  for (std::size_t cell = 0; cell < cells; ++cell) {
    RunningStats stats;
    for (std::size_t r = 0; r < reps_sz; ++r) {
      stats.add(ratios[cell * reps_sz + r]);
    }
    const std::size_t in_policy = cell % per_policy;
    t.add_row({policies[cell / per_policy], Ps[in_policy / alphas.size()],
               alphas[in_policy % alphas.size()], stats.mean(),
               stats.max()});
  }
  std::cout << t;

  // Runtime facts stay out of the artifacts: stderr only.
  const exec::SweepStats& st = runner.last_stats();
  std::cerr << "sweep: " << st.tasks << " tasks on " << st.jobs
            << " worker(s), wall " << st.wall_seconds << "s (merge "
            << st.merge_seconds << "s, idle fraction "
            << st.idle_fraction() << ", steals " << st.steals << ")\n";

  if (opt.has("csv")) {
    const std::string csv = opt.get("csv", "sweep.csv");
    t.write_csv(csv);
    std::cout << "sweep table written to " << csv << "\n";
  }
  if (obs::report_enabled()) {
    obs::BenchReport report("sweep");
    report.add_table("sweep", t);
    report.set_meta("seed", static_cast<double>(rc.base_seed));
    report.set_meta("seeds_per_cell", static_cast<double>(reps));
    report.set_metrics(obs::MetricsRegistry::global().snapshot());
    report.write(obs::report_path("sweep"));
    std::cout << "sweep report written to " << obs::report_path("sweep")
              << "\n";
  }
  return 0;
}

int cmd_gen(const Options& opt) {
  const std::string kind = opt.get("kind", "random");
  const std::string out = opt.get("out", "");
  if (out.empty()) {
    std::cerr << "gen: --out=FILE is required\n";
    return 2;
  }
  if (kind == "random" || kind == "batch") {
    RandomWorkloadConfig cfg;
    cfg.machines = static_cast<int>(opt.get_int("machines", 16));
    cfg.jobs = static_cast<std::size_t>(opt.get_int("jobs", 200));
    cfg.P = opt.get_double("P", 64.0);
    cfg.load = opt.get_double("load", 0.9);
    cfg.alpha_lo = cfg.alpha_hi = opt.get_double("alpha", 0.5);
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    if (kind == "batch") {
      BatchWorkloadConfig b;
      b.machines = cfg.machines;
      b.jobs = cfg.jobs;
      b.P = cfg.P;
      b.seed = cfg.seed;
      write_instance_file(out, make_batch_instance(b));
    } else {
      write_instance_file(out, make_random_instance(cfg));
    }
  } else if (kind == "phased") {
    PhasedWorkloadConfig cfg;
    cfg.machines = static_cast<int>(opt.get_int("machines", 16));
    cfg.jobs = static_cast<std::size_t>(opt.get_int("jobs", 200));
    cfg.P = opt.get_double("P", 64.0);
    cfg.load = opt.get_double("load", 0.9);
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    write_instance_file(out, make_phased_instance(cfg));
  } else if (kind == "greedy-killer") {
    GreedyKillerConfig cfg;
    cfg.machines = static_cast<int>(opt.get_int("machines", 16));
    cfg.alpha = opt.get_double("alpha", 0.5);
    cfg.stream_time = opt.get_double("stream", -1.0);
    write_instance_file(out, make_greedy_killer(cfg).instance);
  } else {
    std::cerr << "gen: unknown kind " << kind << "\n";
    return 2;
  }
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_run(const Options& opt) {
  const std::string path = opt.get("instance", "");
  if (path.empty()) {
    std::cerr << "run: --instance=FILE is required\n";
    return 2;
  }
  const Instance inst = read_instance_file(path);
  auto sched = make_scheduler(opt.get("policy", "isrpt"));
  EngineConfig ec;
  ec.speed = opt.get_double("speed", 1.0);
  AllocationTrace trace;
  std::vector<Observer*> observers;
  const bool want_trace = opt.has("trace") || opt.get_bool("gantt", false);
  if (want_trace) observers.push_back(&trace);
  const SimResult r = simulate(inst, *sched, ec, observers);

  std::cout << sched->name() << " on " << inst.size() << " jobs / "
            << inst.machines() << " machines (P=" << inst.P()
            << ", speed=" << ec.speed << ")\n"
            << "  total flow    " << r.total_flow << "\n"
            << "  weighted flow " << r.weighted_flow << "\n"
            << "  avg / max     " << r.avg_flow() << " / " << r.max_flow()
            << "\n"
            << "  makespan      " << r.makespan << "\n"
            << "  OPT lower bnd " << opt_lower_bound(inst) << "\n";
  if (opt.get_bool("gantt", false)) {
    std::cout << "\n";
    trace.render_gantt(std::cout,
                       static_cast<int>(opt.get_int("width", 72)));
  }
  if (opt.has("trace")) {
    const std::string tpath = opt.get("trace", "trace.csv");
    trace.write_csv(tpath);
    std::cout << "allocation segments written to " << tpath << "\n";
  }
  return 0;
}

int cmd_trace(const Options& opt) {
  const std::string path = opt.get("instance", "");
  if (path.empty()) {
    std::cerr << "trace: --instance=FILE is required\n";
    return 2;
  }
  const Instance inst = read_instance_file(path);
  auto sched = make_scheduler(opt.get("policy", "isrpt"));

  EngineConfig ec;
  ec.speed = opt.get_double("speed", 1.0);
  ec.collect_stats = true;  // the trace view wants the phase breakdown

  obs::TraceExporter::Config tc;
  tc.decision_instants = !opt.get_bool("no-decisions", false);
  obs::TraceExporter exporter(tc);
  const SimResult r = simulate(inst, *sched, ec, {&exporter});

  const std::string out = opt.get("out", "trace.json");
  exporter.write_chrome_trace(out);
  std::cout << sched->name() << " on " << inst.size() << " jobs / "
            << inst.machines() << " machines\n"
            << "Chrome trace written to " << out
            << " (open in https://ui.perfetto.dev or chrome://tracing)\n";
  if (opt.has("jsonl")) {
    const std::string jsonl = opt.get("jsonl", "trace.jsonl");
    exporter.write_jsonl(jsonl);
    std::cout << "JSONL event log written to " << jsonl << "\n";
  }
  if (exporter.dropped() > 0) {
    std::cout << "warning: " << exporter.dropped()
              << " events dropped past the exporter cap\n";
  }
  if (r.stats.has_value()) {
    const obs::RunStats& s = *r.stats;
    std::cout << "engine profile: wall " << s.wall_seconds << "s = decide "
              << s.decide_seconds << "s + solver " << s.solver_seconds
              << "s + observers " << s.observer_seconds << "s ("
              << s.decisions << " decisions, mean alive "
              << s.alive_count.mean() << ")\n";
  }
  return 0;
}

int cmd_compare(const Options& opt) {
  const std::string path = opt.get("instance", "");
  if (path.empty()) {
    std::cerr << "compare: --instance=FILE is required\n";
    return 2;
  }
  const Instance inst = read_instance_file(path);
  std::vector<std::string> policies = standard_policy_names();
  if (opt.has("policies")) {
    policies.clear();
    std::stringstream ss(opt.get("policies", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) policies.push_back(tok);
    }
  }
  const double lb = opt_lower_bound(inst);
  Table t({"policy", "total_flow", "avg_flow", "max_flow", "vs_LB"}, 3);
  double best = 0.0;
  std::string best_name;
  for (const auto& name : policies) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate(inst, *sched);
    if (best_name.empty() || r.total_flow < best) {
      best = r.total_flow;
      best_name = sched->name();
    }
    t.add_row({sched->name(), r.total_flow, r.avg_flow(), r.max_flow(),
               r.total_flow / lb});
  }
  std::cout << t;
  std::cout << "best feasible: " << best_name << " (" << best
            << "); provable OPT lower bound: " << lb << "\n"
            << "=> OPT lies in [" << lb << ", " << best << "]\n";
  if (opt.get_bool("search", false)) {
    std::cout << "running priority-list local search...\n";
    const SearchResult sr = local_search_opt(inst, 2000, 1);
    std::cout << "local search best: " << sr.best_flow << " ("
              << sr.evaluations << " evaluations)\n";
  }
  return 0;
}

int cmd_bound(const Options& opt) {
  const std::string path = opt.get("instance", "");
  if (path.empty()) {
    std::cerr << "bound: --instance=FILE is required\n";
    return 2;
  }
  const Instance inst = read_instance_file(path);
  std::cout << "speed-m SRPT relaxation: " << srpt_speed_m_lower_bound(inst)
            << "\n"
            << "per-job span bound:      " << span_lower_bound(inst) << "\n"
            << "weighted span bound:     " << weighted_span_lower_bound(inst)
            << "\n"
            << "combined (flow):         " << opt_lower_bound(inst) << "\n";
  return 0;
}

// The periodic metrics emitter behind `serve --stats-interval`: a
// background thread appending schema-versioned snapshot lines (see
// obs::metrics_snapshot_header for the JSONL shape) until told to stop.
// Sleeps in short hops so shutdown latency stays well under a second
// regardless of the interval, and always writes one final snapshot so
// even a run shorter than the interval records something.
class StatsEmitter {
 public:
  StatsEmitter(std::string path, double interval)
      : path_(std::move(path)), interval_(interval) {
    thread_ = std::thread([this] { run(); });  // lint: thread-ok
  }

  ~StatsEmitter() {
    stop_.store(true, std::memory_order_release);
    thread_.join();  // lint: thread-ok
  }

  StatsEmitter(const StatsEmitter&) = delete;
  StatsEmitter& operator=(const StatsEmitter&) = delete;

 private:
  void run() {
    auto out = open_output(path_, "metrics snapshots");
    out << obs::metrics_snapshot_header(interval_) << '\n';
    std::uint64_t seq = 0;
    double next = obs::monotonic_seconds() + interval_;
    while (!stop_.load(std::memory_order_acquire)) {
      timespec hop{0, 50 * 1000 * 1000};  // 50ms
      nanosleep(&hop, nullptr);
      const double now = obs::monotonic_seconds();
      if (now < next) continue;
      next = now + interval_;
      out << obs::metrics_snapshot_line(
                 obs::MetricsRegistry::global().snapshot(), seq++, now)
          << '\n';
      out.flush();  // scrape-able while the server is still up
    }
    out << obs::metrics_snapshot_line(
               obs::MetricsRegistry::global().snapshot(), seq++,
               obs::monotonic_seconds())
        << '\n';
    finish_output(out, path_);
  }

  std::string path_;
  double interval_;
  std::atomic<bool> stop_{false};
  std::thread thread_;  // lint: thread-ok
};

// The online service: NDJSON requests over stdin/stdout or a Unix
// socket, sessions multiplexed over the exec pool. Blocks until a
// client sends {"op":"shutdown"} (or stdin reaches EOF). A flight
// recorder is always attached (so the `dump` verb answers); its
// capacity and crash-dump path are tunable.
int cmd_serve(const Options& opt) {
  const bool stdio = opt.get_bool("stdio", false);
  const std::string socket_path = opt.get("socket", "");
  if (stdio == !socket_path.empty()) {
    std::cerr << "serve: exactly one of --stdio or --socket=PATH is "
                 "required\n";
    return usage();
  }
  serve::Cluster::Config cfg;
  cfg.shards = static_cast<int>(opt.get_int("shards", 1));
  cfg.threads_per_shard = static_cast<int>(opt.get_int("threads", 0));
  cfg.max_sessions =
      static_cast<std::size_t>(opt.get_int("max-sessions", 64));
  cfg.max_queue = static_cast<std::size_t>(opt.get_int("max-queue", 128));
  cfg.metrics = &obs::MetricsRegistry::global();

  obs::FlightRecorder recorder(
      static_cast<std::size_t>(opt.get_int("flight-capacity", 4096)));
  if (opt.has("flight-dump")) {
    recorder.set_dump_path(opt.get("flight-dump", "flight.jsonl"));
  }
  cfg.recorder = &recorder;

  std::optional<StatsEmitter> emitter;
  const double stats_interval = opt.get_double("stats-interval", 0.0);
  if (stats_interval > 0.0) {
    emitter.emplace(opt.get("stats-out", "serve_stats.jsonl"),
                    stats_interval);
  }

  serve::ProtocolHandler handler(cfg);
  if (stdio) {
    serve_stdio(handler);
  } else {
    std::cerr << "serve: listening on " << socket_path << " ("
              << cfg.shards << " shard" << (cfg.shards == 1 ? "" : "s")
              << ")\n";
    serve_unix_socket(handler, socket_path);
  }
  return 0;
}

// The soak client: N concurrent sessions replaying seeded arrival
// streams against a running server. Exit is nonzero when any session
// hit a protocol error — rejections (backpressure) are retried and do
// not fail the run.
int cmd_loadgen(const Options& opt) {
  serve::LoadgenConfig cfg;
  cfg.socket_path = opt.get("socket", "");
  if (cfg.socket_path.empty()) {
    std::cerr << "loadgen: --socket=PATH is required\n";
    return usage();
  }
  cfg.sessions = static_cast<int>(opt.get_int("sessions", 8));
  cfg.admissions = static_cast<int>(opt.get_int("admissions", 200));
  cfg.rate = opt.get_double("rate", 64.0);
  cfg.advance_every = static_cast<int>(opt.get_int("advance-every", 16));
  cfg.policy = opt.get("policy", "equi");
  cfg.machines = static_cast<int>(opt.get_int("machines", 4));
  cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  cfg.stats_every = static_cast<int>(opt.get_int("stats-every", 0));
  cfg.shutdown_after = opt.get_bool("shutdown", false);
  cfg.shape = serve::parse_load_shape(opt.get("shape", "uniform"));
  cfg.zipf_theta = opt.get_double("zipf-theta", 1.0);
  cfg.burst_per = static_cast<int>(opt.get_int("burst-per", 32));
  cfg.diurnal_peak = opt.get_double("diurnal-peak", 4.0);
  cfg.workers = static_cast<int>(opt.get_int("workers", 0));
  cfg.binary = opt.get_bool("binary", false);
  cfg.metrics = &obs::MetricsRegistry::global();
  const std::string report_name =
      opt.get("report-name", "serve_loadgen");

  const serve::LoadgenResult r = serve::run_loadgen(cfg);

  std::cout << "loadgen: " << r.sessions.size() << "/" << cfg.sessions
            << " sessions finished, " << r.requests << " requests ("
            << r.rejects << " rejected+retried, " << r.errors
            << " errors) in " << r.wall_seconds << "s\n"
            << "  shape " << serve::load_shape_name(cfg.shape) << ", "
            << r.shards << " shard(s), "
            << (cfg.binary ? "PBIN" : "NDJSON") << " wire\n"
            << "  jobs completed " << r.jobs_completed() << "\n"
            << "  total flow     " << r.total_flow() << "\n";

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::MetricSample* lat = snap.find("serve.client.latency_ms");
  if (lat != nullptr && lat->histogram.total > 0) {
    const obs::HistogramData& h = lat->histogram;
    std::cout << "  latency ms     p50 " << h.quantile(0.5) << " / p95 "
              << h.quantile(0.95) << " / p99 " << h.quantile(0.99)
              << " / mean " << h.mean() << " (" << h.total
              << " samples)\n";
  }
  if (r.stats_scrapes > 0) {
    std::cout << "  stats scrapes  " << r.stats_scrapes << "\n";
  }

  if (obs::report_enabled()) {
    obs::BenchReport report(report_name);
    const bool cluster_report = report_name == "serve_cluster";
    if (cluster_report) {
      // One fleet-aggregate run: sums and maxes over the sessions, so
      // the report stays small at 10^3+ sessions and the determinism
      // gate (totals independent of workers and wire protocol) has a
      // single row to pin.
      obs::RunReport run;
      run.policy = cfg.policy;
      run.machines = cfg.machines;
      run.jobs = r.jobs_completed();
      run.total_flow = r.total_flow();
      for (const serve::SessionOutcome& s : r.sessions) {
        run.weighted_flow += s.weighted_flow;
        run.fractional_flow += s.fractional_flow;
        run.makespan = std::max(run.makespan, s.makespan);
        run.decisions += s.decisions;
        run.events += s.events;
      }
      run.wall_seconds = r.wall_seconds;
      report.add_run(std::move(run));
    } else {
      for (const serve::SessionOutcome& s : r.sessions) {
        obs::RunReport run;
        run.policy = cfg.policy;
        run.jobs = s.jobs;
        run.machines = cfg.machines;
        run.total_flow = s.total_flow;
        run.weighted_flow = s.weighted_flow;
        run.fractional_flow = s.fractional_flow;
        run.makespan = s.makespan;
        run.decisions = s.decisions;
        run.events = s.events;
        run.wall_seconds = s.wall_seconds;
        report.add_run(std::move(run));
      }
    }
    report.set_meta("sessions", static_cast<double>(cfg.sessions));
    report.set_meta("admissions", static_cast<double>(cfg.admissions));
    report.set_meta("rate", cfg.rate);
    report.set_meta("seed", static_cast<double>(cfg.seed));
    report.set_meta("requests", static_cast<double>(r.requests));
    report.set_meta("rejects", static_cast<double>(r.rejects));
    report.set_meta("errors", static_cast<double>(r.errors));
    report.set_meta("stats_scrapes", static_cast<double>(r.stats_scrapes));
    report.set_meta("shape", serve::load_shape_name(cfg.shape));
    report.set_meta("shards", static_cast<double>(r.shards));
    report.set_meta("workers", static_cast<double>(cfg.workers));
    report.set_meta("wire", cfg.binary ? "pbin" : "ndjson");
    if (lat != nullptr && lat->histogram.total > 0) {
      const obs::HistogramData& h = lat->histogram;
      Table lt({"metric", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"},
               4);
      lt.add_row({"client_latency", static_cast<double>(h.total), h.mean(),
                  h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)});
      report.add_table("client_latency", lt);
    }
    if (cluster_report) {
      // Exact (nearest-rank) quantiles from the raw samples — the
      // histogram above is bucketed, too coarse for a p99 gate.
      Table cl({"metric", "count", "p50_ms", "p95_ms", "p99_ms"}, 4);
      cl.add_row({"latency",
                  static_cast<double>(r.latencies_ms.size()),
                  r.latency_quantile_ms(0.5), r.latency_quantile_ms(0.95),
                  r.latency_quantile_ms(0.99)});
      report.add_table("cluster_latency", cl);

      const double wall = r.wall_seconds > 0.0 ? r.wall_seconds : 1.0;
      Table tp({"metric", "sessions", "shards", "requests",
                "requests_per_sec", "jobs_per_sec"},
               4);
      tp.add_row({"throughput", static_cast<double>(cfg.sessions),
                  static_cast<double>(r.shards),
                  static_cast<double>(r.requests),
                  static_cast<double>(r.requests) / wall,
                  static_cast<double>(r.jobs_completed()) / wall});
      report.add_table("cluster_throughput", tp);
    }
    report.set_metrics(snap);
    report.write(obs::report_path(report_name));
    std::cout << "loadgen report written to "
              << obs::report_path(report_name) << "\n";
  }
  return r.errors == 0 ? 0 : 1;
}

// Administrative one-shots against a live server: each positional
// argument is sent as one NDJSON request line over the socket and the
// response is echoed to stdout. Exit is nonzero when any response is
// not ok — so CI can `parsched ctl --socket=S '{"op":"evacuate",...}'`
// and fail the leg if the migration did not happen.
int cmd_ctl(const Options& opt) {
  const std::string socket_path = opt.get("socket", "");
  if (socket_path.empty() || opt.positional().empty()) {
    std::cerr << "ctl: --socket=PATH and at least one JSON request are "
                 "required\n";
    return usage();
  }
  serve::Client client(socket_path, opt.get_double("timeout", 10.0));
  bool all_ok = true;
  for (const std::string& line : opt.positional()) {
    const std::string resp = client.request(line);
    std::cout << resp << "\n";
    obs::JsonValue v;
    std::string err;
    all_ok = all_ok && obs::json_parse(resp, v, &err) &&
             v.bool_or("ok", false);
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Options opt(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(opt);
    if (command == "run") return cmd_run(opt);
    if (command == "trace") return cmd_trace(opt);
    if (command == "compare") return cmd_compare(opt);
    if (command == "bound") return cmd_bound(opt);
    if (command == "sweep") return cmd_sweep(opt);
    if (command == "serve") return cmd_serve(opt);
    if (command == "loadgen") return cmd_loadgen(opt);
    if (command == "ctl") return cmd_ctl(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "parsched: unknown command '" << command << "'\n";
  return usage();
}
