#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json reports.

report_diff.py answers "are these two artifacts the same run?" by
masking every timing field; this tool answers the opposite question:
"did the timing get worse?". It compares a freshly generated candidate
report against a committed baseline in two bands:

  * deterministic fields (jobs, machines, flow totals, decision and
    event counts, table key columns) must agree to ~1e-9 relative —
    they are seed-determined, so any drift means the candidate measured
    a different workload and the timing comparison is meaningless;
  * timing-derived gates (decision rates, latency quantiles) are
    tolerance-banded and DIRECTIONAL: a candidate may be faster than
    the baseline by any margin, but slower by more than --tolerance
    fails the gate.

Gates extracted from a report:

  * every `decisions_per_sec` column of a `dense_alive` table row
    (higher is better), keyed by the row's n;
  * the `decisions_per_sec_incremental` column of an
    `incremental_orders` table row (higher is better), keyed by n — the
    incremental-heaps arm must not lose ground against the clock;
  * the `mean_ms` / `p50_ms` / `p95_ms` / `p99_ms` columns of a
    `client_latency` table (lower is better);
  * the `p50_ms` / `p95_ms` / `p99_ms` columns of a `cluster_latency`
    table and the `requests_per_sec` / `jobs_per_sec` columns of a
    `cluster_throughput` table — the sharded-soak gates (latency lower,
    throughput higher is better);
  * the p50/p99 bucket quantiles of any histogram metric whose name
    ends in `latency_ms` (lower is better);
  * the `overhead_pct` column of a `flight_recorder_overhead` table is
    an ABSOLUTE cap (<= 3.0), not a relative band — the recorder budget
    holds against the candidate alone, whatever the baseline measured;
  * the `decide_speedup` column of an `incremental_orders` table is an
    ABSOLUTE floor (>= 5.0), not a relative band: the paired
    same-machine ratio is machine-independent (it would skew the
    --auto-scale calibration as a relative gate), and the acceptance
    bar holds against the candidate alone.

Baselines are committed from one reference machine and candidates run
on whatever CI hands out, so absolute rates are incomparable across the
pair. --auto-scale fixes that: the median candidate/baseline ratio
across all relative gates is taken as the machine-speed calibration,
and each gate is judged against that median rather than against 1.0.
A uniformly slower machine passes; a single gate regressing while its
siblings hold (the signature of an actual perf bug) fails. This only
discriminates when there are >= 3 relative gates; below that the tool
refuses --auto-scale rather than calibrating on the gate under test.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json
      [--tolerance=0.15] [--auto-scale]

Exit status: 0 within tolerance, 1 regression or determinism mismatch,
2 usage/IO error.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

# Relative slack for fields that are seed-deterministic in principle but
# cross a libm boundary between machines (pow in the speedup curves).
EXACT_RTOL = 1e-9

# Deterministic per-run fields; wall_seconds and stats are timing.
RUN_EXACT_FIELDS = (
    "policy",
    "jobs",
    "machines",
    "total_flow",
    "weighted_flow",
    "fractional_flow",
    "makespan",
    "decisions",
    "events",
)

# table name -> (key column, [(gate column, direction)])
# direction: "higher" = higher is better, "lower" = lower is better.
TABLE_GATES = {
    "dense_alive": ("n", [("decisions_per_sec", "higher")]),
    # decide_speedup deliberately absent here: a same-machine paired
    # ratio is machine-independent and would skew --auto-scale; it is
    # gated by the absolute floor below instead.
    "incremental_orders": (
        "n",
        [("decisions_per_sec_incremental", "higher")],
    ),
    "client_latency": (
        "metric",
        [
            ("mean_ms", "lower"),
            ("p50_ms", "lower"),
            ("p95_ms", "lower"),
            ("p99_ms", "lower"),
        ],
    ),
    # Sharded serving plane (parsched loadgen --report-name=serve_cluster):
    # exact client-side round-trip quantiles over the whole fleet...
    "cluster_latency": (
        "metric",
        [
            ("p50_ms", "lower"),
            ("p95_ms", "lower"),
            ("p99_ms", "lower"),
        ],
    ),
    # ...and the soak's delivered rates (requests retired per wall
    # second across every shard, and simulated jobs per wall second).
    "cluster_throughput": (
        "metric",
        [
            ("requests_per_sec", "higher"),
            ("jobs_per_sec", "higher"),
        ],
    ),
    # Rate-kernel microbenchmark (scalar vs batch vs fast arms over the
    # SoA flat arrays). The speedup columns are paired same-machine
    # ratios — gated by the absolute floor below, not here, for the same
    # reason as decide_speedup.
    "rate_kernel": (
        "case",
        [
            ("scalar_melems_per_sec", "higher"),
            ("batch_melems_per_sec", "higher"),
            ("fast_melems_per_sec", "higher"),
        ],
    ),
}

# table name -> (cap column, cap value): candidate-only absolute bound.
TABLE_CAPS = {
    "flight_recorder_overhead": ("overhead_pct", 3.0),
}

# table name -> (floor column, floor value, row filter): candidate-only
# absolute lower bound, for paired same-machine ratios that carry an
# acceptance bar of their own (no baseline needed to judge them). The
# filter is None (every row) or a (column, value) pair selecting the
# rows the floor applies to — the fast-kernel 2x bar holds only where
# the shared-(x, α) memo can fire, not on mixed populations.
TABLE_FLOORS = {
    "incremental_orders": ("decide_speedup", 5.0, None),
    "rate_kernel": ("fast_speedup", 2.0, ("population", "shared")),
}

HISTOGRAM_QUANTILE_GATES = ("p50", "p99")


def load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    if data.get("kind") != "parsched-bench-report":
        raise SystemExit(f"bench_compare: {path} is not a bench report")
    return data


def close(a, b) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    fa, fb = float(a), float(b)
    return abs(fa - fb) <= EXACT_RTOL * max(abs(fa), abs(fb), 1.0)


def table_by_name(report: dict, name: str) -> dict | None:
    for t in report.get("tables", []):
        if t.get("name") == name:
            return t
    return None


def table_rows(table: dict, key_col: str) -> dict:
    cols = table.get("columns", [])
    key_idx = cols.index(key_col)
    return {
        row[key_idx]: dict(zip(cols, row)) for row in table.get("rows", [])
    }


def check_runs(base: dict, cand: dict, problems: list) -> None:
    """Deterministic-field agreement between the two reports' runs."""
    bruns, cruns = base.get("runs", []), cand.get("runs", [])
    if len(bruns) != len(cruns):
        problems.append(
            f"run count differs: baseline {len(bruns)}, "
            f"candidate {len(cruns)}"
        )
        return
    key = lambda r: (r.get("policy", ""), r.get("jobs", 0),
                     r.get("total_flow", 0.0))
    for b, c in zip(sorted(bruns, key=key), sorted(cruns, key=key)):
        for field in RUN_EXACT_FIELDS:
            if field in b and field in c and not close(b[field], c[field]):
                problems.append(
                    f"run [{b.get('policy')}] {field}: baseline "
                    f"{b[field]} vs candidate {c[field]} (deterministic "
                    f"field — not a timing difference)"
                )


def collect_gates(base: dict, cand: dict, problems: list) -> list:
    """[(label, direction, base value, candidate value)] for the bands."""
    gates = []
    for name, (key_col, columns) in TABLE_GATES.items():
        bt, ct = table_by_name(base, name), table_by_name(cand, name)
        if bt is None and ct is None:
            continue
        if bt is None or ct is None:
            problems.append(f"table '{name}' missing on one side")
            continue
        brows, crows = table_rows(bt, key_col), table_rows(ct, key_col)
        if set(brows) != set(crows):
            problems.append(
                f"table '{name}' keys differ: baseline {sorted(brows)} "
                f"vs candidate {sorted(crows)}"
            )
            continue
        for row_key in sorted(brows):
            for col, direction in columns:
                if col not in brows[row_key] or col not in crows[row_key]:
                    continue
                gates.append((
                    f"{name}[{row_key}].{col}",
                    direction,
                    float(brows[row_key][col]),
                    float(crows[row_key][col]),
                ))
    bmetrics = {m.get("name"): m for m in base.get("metrics", [])}
    cmetrics = {m.get("name"): m for m in cand.get("metrics", [])}
    for name in sorted(set(bmetrics) & set(cmetrics)):
        bm, cm = bmetrics[name], cmetrics[name]
        if bm.get("kind") != "histogram" or not name.endswith("latency_ms"):
            continue
        bh, ch = bm.get("histogram", {}), cm.get("histogram", {})
        for q in HISTOGRAM_QUANTILE_GATES:
            if q in bh and q in ch:
                gates.append(
                    (f"{name}.{q}", "lower", float(bh[q]), float(ch[q]))
                )
    return gates


def check_caps(cand: dict, problems: list) -> None:
    for name, (col, cap) in TABLE_CAPS.items():
        ct = table_by_name(cand, name)
        if ct is None:
            continue
        cols = ct.get("columns", [])
        if col not in cols:
            continue
        idx = cols.index(col)
        for row in ct.get("rows", []):
            if float(row[idx]) > cap:
                problems.append(
                    f"{name}[{row[0]}].{col} = {row[idx]} exceeds the "
                    f"absolute cap {cap}"
                )
    for name, (col, floor, row_filter) in TABLE_FLOORS.items():
        ct = table_by_name(cand, name)
        if ct is None:
            continue
        cols = ct.get("columns", [])
        if col not in cols:
            continue
        idx = cols.index(col)
        filter_idx = None
        if row_filter is not None:
            if row_filter[0] not in cols:
                continue
            filter_idx = cols.index(row_filter[0])
        for row in ct.get("rows", []):
            if filter_idx is not None and row[filter_idx] != row_filter[1]:
                continue
            if float(row[idx]) < floor:
                problems.append(
                    f"{name}[{row[0]}].{col} = {row[idx]} below the "
                    f"absolute floor {floor}"
                )


def gate_ratio(direction: str, base: float, cand: float) -> float:
    """> 1 means the candidate improved, < 1 means it regressed."""
    if base <= 0.0 or cand <= 0.0:
        return 1.0  # degenerate measurement; leave it to the exact band
    return cand / base if direction == "higher" else base / cand


def main(argv: list[str]) -> int:
    tolerance = 0.15
    auto_scale = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--auto-scale":
            auto_scale = True
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(Path(arg))
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base, cand = load(paths[0]), load(paths[1])
    problems: list[str] = []
    check_runs(base, cand, problems)
    check_caps(cand, problems)
    gates = collect_gates(base, cand, problems)

    scale = 1.0
    if auto_scale:
        if len(gates) < 3:
            print(
                "bench_compare: --auto-scale needs >= 3 relative gates "
                f"to calibrate, got {len(gates)}",
                file=sys.stderr,
            )
            return 2
        scale = statistics.median(
            gate_ratio(d, b, c) for _, d, b, c in gates
        )

    for label, direction, b, c in gates:
        ratio = gate_ratio(direction, b, c) / scale
        status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(
            f"  {status:9s} {label}: baseline {b:.6g} -> candidate "
            f"{c:.6g}  (normalized ratio {ratio:.3f})"
        )
        if ratio < 1.0 - tolerance:
            problems.append(
                f"{label} regressed: normalized ratio {ratio:.3f} < "
                f"{1.0 - tolerance:.3f}"
            )

    if auto_scale:
        print(f"  machine-speed calibration: median ratio {scale:.3f}")
    if problems:
        print(f"bench_compare: FAIL ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        f"bench_compare: OK — {len(gates)} gate(s) within "
        f"{tolerance:.0%} of {paths[0].name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
