#!/usr/bin/env python3
"""parsched_analyze — architecture-DAG enforcement + hot-path allocation
scan for the parsched codebase.

Two checks, both driven from checked-in ground truth:

  layer-dag    Every project `#include` under src/ is an edge in the
               subsystem dependency graph. Each file belongs to a *unit*
               (its subsystem directory by default; tools/layers.toml may
               override single files, e.g. check/contract.hpp into the
               dependency-free `check_core`). The spec declares each
               unit's direct dependencies; an include edge is sanctioned
               iff its target unit is reachable through the declared DAG
               (a layer may use everything below it). Back-edges, cycles
               in the spec itself, and files or includes outside the
               spec's units all fail the run.

  hot-alloc    Function definitions annotated PARSCHED_HOT (see
               check/contract.hpp) run inside the engine's steady-state
               decision loop and must not allocate. Their bodies are
               scanned for spelled allocation constructs: `new`,
               std::make_unique / make_shared, std::function<...>,
               container construction (std::vector<...> v, temporaries),
               and string building (std::string(...), std::to_string,
               std::ostringstream / stringstream). A justified cold-path
               allocation — e.g. building the message for an error
               throw — is suppressed with `// lint: alloc-ok` on the
               same or preceding line; the runtime twin of this check is
               check/alloc_guard.hpp under PARSCHED_AUDIT=1.

The analyzer also emits the architecture report CI archives:

  --dot FILE    Graphviz digraph of the observed unit graph (violating
                edges red and bold).
  --json FILE   machine-readable report (schema below, self-validated
                before writing).

Exit status: 0 clean, 1 any violation, 2 spec/usage error. Findings are
printed as `file:line: [rule] message` so editors and CI annotate them.

Usage:
  tools/parsched_analyze.py [--root DIR] [--spec FILE]
                            [--dot FILE] [--json FILE]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tomllib
from pathlib import Path

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

RE_PROJECT_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')

SUPPRESS_ALLOC = "lint: alloc-ok"

# Spelled allocation constructs banned inside PARSCHED_HOT bodies. Each
# entry: (name, regex, needs_angle_check). With needs_angle_check the
# match is only a finding when the template argument list is followed by
# something other than `&`, `*` or `::` — i.e. a declaration or
# temporary, not a reference/pointer binding or a nested-type spelling.
BANNED = [
    ("operator new", re.compile(r"(?<![\w:])new\b(?!\s*\()"), False),
    ("std::make_unique/make_shared",
     re.compile(r"\bstd\s*::\s*make_(?:unique|shared)\b"), False),
    ("std::function", re.compile(r"\bstd\s*::\s*function\s*<"), True),
    ("string building",
     re.compile(r"\bstd\s*::\s*(?:ostringstream|stringstream|to_string)\b"),
     False),
    ("std::string construction",
     re.compile(r"\bstd\s*::\s*string\s*[({]"), False),
    ("container construction",
     re.compile(
         r"\bstd\s*::\s*(?:vector|deque|list|forward_list|map|multimap|"
         r"set|multiset|unordered_map|unordered_multimap|unordered_set|"
         r"unordered_multiset)\s*<"
     ),
     True),
]


def fatal(msg: str) -> None:
    print(f"parsched_analyze: error: {msg}", file=sys.stderr)
    sys.exit(2)


# ---------------------------------------------------------------------------
# Spec


class Spec:
    """The sanctioned unit DAG from tools/layers.toml."""

    def __init__(self, deps: dict[str, list[str]],
                 overrides: dict[str, str]) -> None:
        self.deps = deps
        self.overrides = overrides
        self.reachable = self._close()

    @staticmethod
    def load(path: Path) -> "Spec":
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError) as exc:
            fatal(f"cannot read spec {path}: {exc}")
        units = data.get("units")
        if not isinstance(units, dict) or not units:
            fatal(f"{path}: no [units.*] tables")
        deps: dict[str, list[str]] = {}
        for name, table in units.items():
            d = table.get("deps")
            if not isinstance(d, list) or not all(
                isinstance(x, str) for x in d
            ):
                fatal(f"{path}: units.{name}.deps must be a string list")
            deps[name] = d
        for name, d in deps.items():
            for dep in d:
                if dep not in deps:
                    fatal(f"{path}: units.{name} depends on unknown "
                          f"unit '{dep}'")
        overrides = data.get("overrides", {})
        if not isinstance(overrides, dict):
            fatal(f"{path}: [overrides] must be a table")
        for rel, unit in overrides.items():
            if unit not in deps:
                fatal(f"{path}: override '{rel}' names unknown unit "
                      f"'{unit}'")
        return Spec(deps, dict(overrides))

    def _close(self) -> dict[str, set[str]]:
        """Transitive closure of the declared deps; fatal on a cycle."""
        color: dict[str, int] = {}  # 0 visiting, 1 done
        reach: dict[str, set[str]] = {}

        def visit(u: str, stack: list[str]) -> None:
            if color.get(u) == 1:
                return
            if color.get(u) == 0:
                cycle = stack[stack.index(u):] + [u]
                fatal("dependency cycle in spec: " + " -> ".join(cycle))
            color[u] = 0
            acc: set[str] = set()
            for v in self.deps[u]:
                visit(v, stack + [u])
                acc.add(v)
                acc |= reach[v]
            reach[u] = acc
            color[u] = 1

        for u in self.deps:
            visit(u, [])
        return reach

    def unit_of(self, rel: str) -> str | None:
        """Unit of a src/-relative path, or None if outside the spec."""
        if rel in self.overrides:
            return self.overrides[rel]
        head = rel.split("/", 1)[0]
        return head if head in self.deps else None


# ---------------------------------------------------------------------------
# Layer-DAG check


def check_layers(root: Path, spec: Spec, findings: list[dict]) -> tuple[
        list[Path], dict[str, list[str]], dict[tuple[str, str], int]]:
    """Scan src/ includes; returns (files, unit->files, edge->count)."""
    src = root / "src"
    if not src.is_dir():
        fatal(f"no src/ directory under {root}")
    files = [f for f in sorted(src.rglob("*"))
             if f.suffix in SOURCE_SUFFIXES]
    unit_files: dict[str, list[str]] = {u: [] for u in spec.deps}
    edges: dict[tuple[str, str], int] = {}

    for f in files:
        rel = f.relative_to(src).as_posix()
        unit = spec.unit_of(rel)
        if unit is None:
            findings.append({
                "file": f"src/{rel}", "line": 1, "rule": "layer-dag",
                "message": f"file belongs to no unit in the spec "
                           f"(directory '{rel.split('/', 1)[0]}' not "
                           "declared in tools/layers.toml)",
            })
            continue
        unit_files[unit].append(rel)
        for lineno, line in enumerate(
            f.read_text(encoding="utf-8").splitlines(), start=1
        ):
            m = RE_PROJECT_INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1)
            tunit = spec.unit_of(target)
            if tunit is None:
                findings.append({
                    "file": f"src/{rel}", "line": lineno,
                    "rule": "layer-dag",
                    "message": f'include "{target}" resolves to no unit '
                               "in the spec",
                })
                continue
            if tunit != unit:
                edges[(unit, tunit)] = edges.get((unit, tunit), 0) + 1
            if tunit != unit and tunit not in spec.reachable[unit]:
                findings.append({
                    "file": f"src/{rel}", "line": lineno,
                    "rule": "layer-dag",
                    "message": f'include "{target}" is a back-edge: unit '
                               f"'{unit}' may not depend on '{tunit}' "
                               f"(declared deps: "
                               f"{sorted(spec.deps[unit]) or ['<none>']})",
                })
    return files, unit_files, edges


# ---------------------------------------------------------------------------
# PARSCHED_HOT allocation scan


def strip_code(text: str) -> str:
    """Blank comments and string literals, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append(
                "".join("\n" if ch == "\n" else " " for ch in text[i:end])
            )
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_angles(code: str, start: int) -> int:
    """Index just past the '>' closing the '<' at `start`; -1 if none."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def body_span(code: str, start: int) -> tuple[int, int] | None:
    """(open, close) offsets of the function body following `start`.

    Skips one balanced parameter list, then takes the first top-level
    '{'; gives up at a ';' seen at depth 0 (declaration, not
    definition).
    """
    depth = 0
    i = start
    while i < len(code):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            open_ = i
            b = 0
            for j in range(open_, len(code)):
                if code[j] == "{":
                    b += 1
                elif code[j] == "}":
                    b -= 1
                    if b == 0:
                        return open_, j
            return None
        elif c == ";" and depth == 0:
            return None
        i += 1
    return None


def line_of(offsets: list[int], pos: int) -> int:
    """1-based line number of character offset `pos`."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def suppressed(raw_lines: list[str], lineno: int) -> bool:
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and SUPPRESS_ALLOC in raw_lines[ln - 1]:
            return True
    return False


def scan_hot(files: list[Path], root: Path, findings: list[dict],
             hot_functions: list[dict],
             suppressions_used: list[dict]) -> None:
    for f in files:
        rel = f.relative_to(root).as_posix()
        if rel.endswith("check/contract.hpp"):
            continue  # the macro's own definition
        text = f.read_text(encoding="utf-8")
        if "PARSCHED_HOT" not in text:
            continue
        raw_lines = text.splitlines()
        code = strip_code(text)
        offsets = [0]
        for idx, ch in enumerate(code):
            if ch == "\n":
                offsets.append(idx + 1)
        for m in re.finditer(r"\bPARSCHED_HOT\b", code):
            lineno = line_of(offsets, m.start())
            span = body_span(code, m.end())
            if span is None:
                findings.append({
                    "file": rel, "line": lineno, "rule": "hot-alloc",
                    "message": "PARSCHED_HOT must annotate a function "
                               "*definition* (no body found)",
                })
                continue
            open_, close = span
            sig = " ".join(code[m.end():open_].split())
            hot_functions.append(
                {"file": rel, "line": lineno, "signature": sig[:120]}
            )
            body = code[open_:close]
            for name, rx, angle in BANNED:
                for hit in rx.finditer(body):
                    pos = open_ + hit.start()
                    if angle:
                        past = match_angles(code, open_ + hit.end() - 1)
                        if past < 0:
                            continue
                        tail = code[past:past + 2].lstrip()
                        if tail[:1] in ("&", "*") or tail[:2] == "::":
                            continue  # reference/pointer/nested type
                    hline = line_of(offsets, pos)
                    if suppressed(raw_lines, hline):
                        suppressions_used.append(
                            {"file": rel, "line": hline, "construct": name}
                        )
                        continue
                    findings.append({
                        "file": rel, "line": hline, "rule": "hot-alloc",
                        "message": f"{name} inside a PARSCHED_HOT body; "
                                   "hoist to warm-up / member scratch or "
                                   f"annotate '// {SUPPRESS_ALLOC}'",
                    })


# ---------------------------------------------------------------------------
# Report


def build_report(root: Path, spec: Spec, files: list[Path],
                 unit_files: dict[str, list[str]],
                 edges: dict[tuple[str, str], int],
                 findings: list[dict], hot_functions: list[dict],
                 suppressions_used: list[dict]) -> dict:
    return {
        "schema_version": 1,
        "tool": "parsched_analyze",
        "root": root.name,
        "files_scanned": len(files),
        "units": {
            u: {
                "deps": sorted(spec.deps[u]),
                "reachable": sorted(spec.reachable[u]),
                "files": len(unit_files.get(u, [])),
            }
            for u in sorted(spec.deps)
        },
        "edges": [
            {
                "from": u, "to": v, "includes": c,
                "sanctioned": v in spec.reachable[u],
            }
            for (u, v), c in sorted(edges.items())
        ],
        "violations": findings,
        "hot_functions": hot_functions,
        "suppressions": suppressions_used,
    }


def validate_report(report: dict) -> list[str]:
    """Schema self-check; returns a list of problems (empty = valid)."""
    errs: list[str] = []

    def need(obj: dict, key: str, typ: type, where: str) -> object:
        if key not in obj:
            errs.append(f"{where}: missing key '{key}'")
            return None
        if not isinstance(obj[key], typ):
            errs.append(f"{where}.{key}: expected {typ.__name__}, got "
                        f"{type(obj[key]).__name__}")
            return None
        return obj[key]

    if need(report, "schema_version", int, "report") != 1:
        errs.append("report.schema_version: expected 1")
    need(report, "tool", str, "report")
    need(report, "root", str, "report")
    need(report, "files_scanned", int, "report")
    units = need(report, "units", dict, "report")
    if isinstance(units, dict):
        for name, u in units.items():
            if not isinstance(u, dict):
                errs.append(f"units.{name}: expected object")
                continue
            need(u, "deps", list, f"units.{name}")
            need(u, "reachable", list, f"units.{name}")
            need(u, "files", int, f"units.{name}")
    for key, fields in (
        ("edges", {"from": str, "to": str, "includes": int,
                   "sanctioned": bool}),
        ("violations", {"file": str, "line": int, "rule": str,
                        "message": str}),
        ("hot_functions", {"file": str, "line": int, "signature": str}),
        ("suppressions", {"file": str, "line": int, "construct": str}),
    ):
        rows = need(report, key, list, "report")
        if not isinstance(rows, list):
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                errs.append(f"{key}[{i}]: expected object")
                continue
            for fkey, ftyp in fields.items():
                need(row, fkey, ftyp, f"{key}[{i}]")
    return errs


def write_dot(path: Path, spec: Spec,
              edges: dict[tuple[str, str], int]) -> None:
    lines = [
        "// Generated by tools/parsched_analyze.py — observed include",
        "// graph over the units of tools/layers.toml.",
        "digraph parsched_layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for u in sorted(spec.deps):
        lines.append(f'  "{u}";')
    for (u, v), c in sorted(edges.items()):
        ok = v in spec.reachable[u]
        attrs = f'label="{c}"'
        if not ok:
            attrs += ", color=red, penwidth=2"
        lines.append(f'  "{u}" -> "{v}" [{attrs}];')
    lines.append("}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = Path(__file__).resolve().parent.parent
    ap.add_argument("--root", default=str(default_root),
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--spec", default=None,
                    help="layer spec (default: <root>/tools/layers.toml)")
    ap.add_argument("--dot", default=None, metavar="FILE",
                    help="write a Graphviz digraph of the unit graph")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="write the machine-readable architecture report")
    args = ap.parse_args()

    root = Path(args.root).resolve()
    spec_path = (Path(args.spec) if args.spec
                 else root / "tools" / "layers.toml")
    spec = Spec.load(spec_path)

    findings: list[dict] = []
    hot_functions: list[dict] = []
    suppressions_used: list[dict] = []
    files, unit_files, edges = check_layers(root, spec, findings)
    scan_hot(files, root, findings, hot_functions, suppressions_used)
    findings.sort(key=lambda v: (v["file"], v["line"]))

    report = build_report(root, spec, files, unit_files, edges, findings,
                          hot_functions, suppressions_used)
    schema_errs = validate_report(report)
    if schema_errs:
        for e in schema_errs:
            print(f"parsched_analyze: internal schema error: {e}",
                  file=sys.stderr)
        return 2
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.dot:
        write_dot(Path(args.dot), spec, edges)

    for v in findings:
        print(f'{v["file"]}:{v["line"]}: [{v["rule"]}] {v["message"]}')
    print(
        f"parsched_analyze: {len(files)} files, "
        f"{sum(edges.values())} cross-unit includes, "
        f"{len(hot_functions)} hot function(s), "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
