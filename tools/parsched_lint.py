#!/usr/bin/env python3
"""parsched_lint — project-specific lint rules for the parsched codebase.

Rules (scoped to src/, tools/parsched_cli.cpp and tests/ by default;
tests are exempt from raw-assert — a test may legitimately exercise
assert-level machinery — and every rule below says "src/" to mean the
linted scope):

  raw-assert        `assert(...)` and `#include <cassert>` / `<assert.h>`
                    are banned in src/: raw asserts vanish under NDEBUG,
                    i.e. in the RelWithDebInfo builds every measurement
                    runs in. Use PARSCHED_CHECK / PARSCHED_DCHECK from
                    check/contract.hpp instead. (static_assert is fine;
                    check/contract.hpp itself is exempt.)

  float-eq          bare float-literal == / != comparisons are banned
                    outside util/mathx.hpp (use approx_eq / leq_tol, or
                    annotate a provably-exact comparison with a trailing
                    `// lint: float-eq-ok`). Comparisons against kInf
                    carry no float literal and are allowed.

  pragma-once       every header must contain `#pragma once`.

  include-style     project includes must be spelled relative to src/
                    with their subsystem prefix (`#include
                    "simcore/engine.hpp"`), never bare (`#include
                    "engine.hpp"`).

  raw-chrono        raw timing (`std::chrono`, `clock()`, steady_clock,
                    `gettimeofday`, ...) is banned in src/ outside
                    src/obs/: all timing must flow through
                    obs/metrics.hpp (monotonic_seconds, ScopedTimer,
                    TimerStat) so instrumentation can be disabled and
                    audited uniformly.

  raw-ofstream      spelling `std::ofstream` is banned in src/ outside
                    util/fsio.hpp: writers must use open_output() /
                    finish_output(), which check the stream state before
                    returning — a bare ofstream silently truncates on
                    disk-full or short writes.

  raw-thread        spelling `std::thread` / `std::jthread` /
                    `std::async` (or including <thread>) is banned in
                    src/ outside exec/thread_pool.{hpp,cpp}: all
                    concurrency must run through the work-stealing
                    ThreadPool so parallelism is instrumented, TSan-
                    covered, and honors --jobs / PARSCHED_JOBS
                    uniformly. (<future>, mutexes and atomics are fine
                    anywhere — only thread *creation* is fenced.) A
                    test that deliberately attacks the pool/server from
                    a raw thread annotates it with a trailing
                    `// lint: thread-ok`.

  raw-getenv        calling `std::getenv` is banned in src/ outside
                    util/env.hpp: env access must flow through
                    parsched::env (get_flag / get_int / get_string) so
                    parsing is uniform and malformed values are warned
                    about instead of silently ignored.

Exit status 0 when clean, 1 when any rule fires; findings are printed as
`file:line: [rule] message` so editors and CI annotate them directly.

`--suppression-audit` instead lists every `// lint: ...` escape hatch in
the scoped files (file:line: [suppression-audit] <marker> — <code>) and
exits 0: the hatches are sanctioned, but CI archives the listing so
their population is reviewed, not silently grown.

Usage:
  tools/parsched_lint.py [--root DIR] [--suppression-audit] [paths...]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}
HEADER_SUFFIXES = {".hpp", ".h"}

# Subsystem directories under src/ that project includes must spell out.
KNOWN_PREFIXES = (
    "analysis/",
    "check/",
    "exec/",
    "obs/",
    "sched/",
    "serve/",
    "simcore/",
    "speedup/",
    "util/",
    "workload/",
)

SUPPRESS_FLOAT_EQ = "lint: float-eq-ok"
SUPPRESS_THREAD = "lint: thread-ok"

RE_SUPPRESSION = re.compile(r"//\s*(lint:\s*[\w-]+)")

RE_RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
RE_CASSERT_INCLUDE = re.compile(r'#\s*include\s*<(cassert|assert\.h)>')
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')
# A float literal: digits with a decimal point or an exponent (1.0, .5, 1e-9).
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+"
RE_FLOAT_EQ = re.compile(
    r"(?:(?:{f})\s*[=!]=)|(?:[=!]=\s*(?:{f}))".format(f=FLOAT_LIT)
)
RE_PROJECT_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')
RE_RAW_CHRONO = re.compile(
    r"std\s*::\s*chrono|#\s*include\s*<chrono>"
    r"|\b(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|(?<![\w.:])(?:clock|clock_gettime|gettimeofday)\s*\("
)
RE_RAW_OFSTREAM = re.compile(r"std\s*::\s*ofstream\b")
RE_RAW_THREAD = re.compile(
    r"std\s*::\s*(?:jthread|thread|async)\b|#\s*include\s*<thread>"
)
RE_RAW_GETENV = re.compile(r"(?<![\w.:])(?:std\s*::\s*)?getenv\s*\(")


def strip_code_noise(line: str) -> str:
    """Drop string/char literals and // comments so rules see only code."""
    line = RE_STRING.sub('""', line)
    return RE_LINE_COMMENT.sub("", line)


def lint_file(path: Path, rel: str, findings: list[str]) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        findings.append(f"{rel}:1: [io] unreadable: {exc}")
        return

    is_header = path.suffix in HEADER_SUFFIXES
    rel_posix = rel.replace("\\", "/")
    is_contract = rel_posix.endswith("check/contract.hpp")
    is_mathx = rel_posix.endswith("util/mathx.hpp")
    is_fsio = rel_posix.endswith("util/fsio.hpp")
    is_env = rel_posix.endswith("util/env.hpp")
    is_thread_pool = rel_posix.endswith(
        ("exec/thread_pool.hpp", "exec/thread_pool.cpp")
    )
    in_obs = "/obs/" in f"/{rel_posix}"
    in_tests = "/tests/" in f"/{rel_posix}" or rel_posix.startswith("tests/")
    in_tools = "/tools/" in f"/{rel_posix}" or rel_posix.startswith("tools/")
    # Everything collected is in scope; `in_src` keeps the original name
    # because the rule messages and docs speak of the src/ discipline.
    in_src = (
        "/src/" in f"/{rel}" or rel.startswith("src/")
        or in_tests or in_tools
    )

    if is_header and "#pragma once" not in text:
        findings.append(f"{rel}:1: [pragma-once] header lacks '#pragma once'")

    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        # Cheap block-comment tracking: good enough for this codebase's
        # style (no code after '*/' on the same line).
        line = raw
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1]
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]

        code = strip_code_noise(line)

        if in_src and not is_contract and not in_tests:
            if RE_CASSERT_INCLUDE.search(code):
                findings.append(
                    f"{rel}:{lineno}: [raw-assert] <cassert> include; use "
                    'check/contract.hpp'
                )
            stripped = RE_RAW_ASSERT.sub(
                "", code.replace("static_assert", "")
            )
            if stripped != code.replace("static_assert", ""):
                findings.append(
                    f"{rel}:{lineno}: [raw-assert] raw assert(); use "
                    "PARSCHED_CHECK / PARSCHED_DCHECK"
                )

        if in_src and not in_obs and RE_RAW_CHRONO.search(code):
            findings.append(
                f"{rel}:{lineno}: [raw-chrono] raw timing outside src/obs/; "
                "use monotonic_seconds / ScopedTimer from obs/metrics.hpp "
                "so timing can be disabled uniformly"
            )

        if in_src and not is_fsio and RE_RAW_OFSTREAM.search(code):
            findings.append(
                f"{rel}:{lineno}: [raw-ofstream] bare std::ofstream; use "
                "open_output/finish_output from util/fsio.hpp so the "
                "stream state is checked before returning"
            )

        if (
            in_src
            and not is_thread_pool
            and SUPPRESS_THREAD not in raw
            and RE_RAW_THREAD.search(code)
        ):
            findings.append(
                f"{rel}:{lineno}: [raw-thread] raw thread creation outside "
                "exec/thread_pool; submit work to exec::ThreadPool / "
                "exec::SweepRunner so concurrency is instrumented and "
                "honors --jobs / PARSCHED_JOBS (tests attacking the pool "
                f"from outside annotate '// {SUPPRESS_THREAD}')"
            )

        if in_src and not is_env and RE_RAW_GETENV.search(code):
            findings.append(
                f"{rel}:{lineno}: [raw-getenv] raw std::getenv outside "
                "util/env.hpp; use parsched::env::get_flag / get_int / "
                "get_string so malformed values are diagnosed uniformly"
            )

        if (
            in_src
            and not is_mathx
            and SUPPRESS_FLOAT_EQ not in raw
            and RE_FLOAT_EQ.search(code)
        ):
            findings.append(
                f"{rel}:{lineno}: [float-eq] bare float-literal ==/!= "
                "comparison; use approx_eq/leq_tol from util/mathx.hpp or "
                f"annotate with '// {SUPPRESS_FLOAT_EQ}'"
            )

        # Match against the comment-stripped raw line: strip_code_noise
        # blanks string literals, which would erase the include path.
        m = RE_PROJECT_INCLUDE.search(RE_LINE_COMMENT.sub("", line))
        if m and in_src:
            target = m.group(1)
            if not target.startswith(KNOWN_PREFIXES):
                findings.append(
                    f"{rel}:{lineno}: [include-style] project include "
                    f'"{target}" must be spelled src/-relative with its '
                    "subsystem prefix (e.g. \"simcore/engine.hpp\")"
                )


def collect(root: Path, args_paths: list[str]) -> list[Path]:
    if args_paths:
        out: list[Path] = []
        for a in args_paths:
            p = Path(a)
            if p.is_dir():
                out.extend(
                    f
                    for f in sorted(p.rglob("*"))
                    if f.suffix in SOURCE_SUFFIXES
                )
            else:
                out.append(p)
        return out
    out = [
        f
        for f in sorted((root / "src").rglob("*"))
        if f.suffix in SOURCE_SUFFIXES
    ]
    cli = root / "tools" / "parsched_cli.cpp"
    if cli.is_file():
        out.append(cli)
    tests = root / "tests"
    if tests.is_dir():
        out.extend(
            f for f in sorted(tests.rglob("*"))
            if f.suffix in SOURCE_SUFFIXES
        )
    return out


def audit_suppressions(files: list[Path], root: Path) -> list[str]:
    """Every `// lint: ...` escape hatch in scope, one line per hatch."""
    listing: list[str] = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        try:
            text = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        for lineno, raw in enumerate(text.splitlines(), start=1):
            m = RE_SUPPRESSION.search(raw)
            if m:
                code = RE_LINE_COMMENT.sub("", raw).strip()
                listing.append(
                    f"{rel}:{lineno}: [suppression-audit] {m.group(1)}"
                    + (f" — {code}" if code else "")
                )
    return listing


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: parent of tools/)",
    )
    ap.add_argument(
        "--suppression-audit",
        action="store_true",
        help="list every '// lint:' escape hatch in scope and exit 0",
    )
    ap.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
             "(default: <root>/{src,tools/parsched_cli.cpp,tests})",
    )
    args = ap.parse_args()
    root = Path(args.root).resolve()

    files = collect(root, args.paths)
    if args.suppression_audit:
        listing = audit_suppressions(files, root)
        for line in listing:
            print(line)
        print(
            f"parsched_lint: {len(files)} files, "
            f"{len(listing)} suppression(s)",
            file=sys.stderr,
        )
        return 0

    findings: list[str] = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        lint_file(f, rel, findings)

    for finding in findings:
        print(finding)
    print(
        f"parsched_lint: {len(files)} files, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
