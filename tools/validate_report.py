#!/usr/bin/env python3
"""validate_report — schema check for parsched telemetry files (stdlib only).

Validates the machine-readable formats the obs/ subsystem emits:

  BENCH_*.json       bench reports  (kind: parsched-bench-report, schema 2)
  *.trace.json       Chrome trace-event files from TraceExporter (schema 1)
  *.jsonl            JSONL logs, dispatched on the header's kind:
                       parsched-trace             TraceExporter event logs
                       parsched-metrics-snapshot  serve --stats-interval
                       parsched-flight-record     FlightRecorder dumps

Schema history: bench reports moved 1 -> 2 when histograms grew the
p50/p90/p99 interpolated quantile keys; the trace formats stayed at 1.

Used by CI after the report smoke run; also handy locally:

  tools/validate_report.py BENCH_e11_engine_perf.json run.trace.json

Exit status 0 when every file validates, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_SCHEMA = 2
TRACE_SCHEMA = 1
SNAPSHOT_SCHEMA = 1
FLIGHT_SCHEMA = 1

FLIGHT_EVENTS = {
    "decision",
    "admit",
    "complete",
    "guard_trip",
    "stall",
    "submit",
    "dispatch",
    "note",
    "migrate",
    "reroute",
}

# Named report kinds with a table contract of their own: report name ->
# {table name: required columns}. A report claiming one of these names
# must carry every listed table with at least the listed columns — the
# perf gate (bench_compare.py) keys its directional bands on them, so a
# soak that silently dropped a table must fail validation, not pass the
# gate vacuously.
REPORT_REQUIRED_TABLES = {
    "serve_cluster": {
        "cluster_latency": ["metric", "count", "p50_ms", "p95_ms",
                            "p99_ms"],
        "cluster_throughput": ["metric", "sessions", "shards", "requests",
                               "requests_per_sec", "jobs_per_sec"],
    },
    "e11_engine_perf": {
        "dense_alive": ["n", "decisions_per_sec"],
        "incremental_orders": ["n", "decisions_per_sec_incremental",
                               "decide_speedup"],
        "flight_recorder_overhead": ["n", "overhead_pct"],
        "rate_kernel": ["case", "population", "scalar_melems_per_sec",
                        "batch_melems_per_sec", "fast_melems_per_sec",
                        "fast_speedup"],
    },
}

RUN_REQUIRED = {
    "policy": str,
    "jobs": int,
    "machines": int,
    "total_flow": (int, float),
    "weighted_flow": (int, float),
    "fractional_flow": (int, float),
    "makespan": (int, float),
    "decisions": int,
    "events": int,
    "wall_seconds": (int, float),
}

STATS_REQUIRED = {
    "wall_seconds": (int, float),
    "decide_seconds": (int, float),
    "solver_seconds": (int, float),
    "observer_seconds": (int, float),
    "decisions": int,
    "arrivals": int,
    "completions": int,
}


class Invalid(Exception):
    pass


def need(obj: dict, key: str, types, where: str):
    if key not in obj:
        raise Invalid(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        raise Invalid(
            f"{where}: '{key}' has type {type(obj[key]).__name__}, "
            f"expected {types}"
        )
    return obj[key]


def check_histogram(h: dict, where: str) -> None:
    bounds = need(h, "bounds", list, where)
    counts = need(h, "counts", list, where)
    need(h, "total", int, where)
    need(h, "sum", (int, float), where)
    if len(counts) != len(bounds) + 1:
        raise Invalid(
            f"{where}: {len(bounds)} bounds need {len(bounds) + 1} buckets, "
            f"got {len(counts)}"
        )
    if sum(counts) != h["total"]:
        raise Invalid(f"{where}: bucket counts sum to {sum(counts)}, "
                      f"total says {h['total']}")
    if bounds != sorted(bounds):
        raise Invalid(f"{where}: bounds are not sorted")
    # The schema-2 quantile keys. Optional (snapshot lines from older
    # writers omit them) but, when present, numeric and monotone.
    quantiles = [q for q in ("p50", "p90", "p99") if q in h]
    for q in quantiles:
        need(h, q, (int, float), where)
    values = [h[q] for q in quantiles]
    if values != sorted(values):
        raise Invalid(f"{where}: quantiles are not monotone: {values}")


def check_stats(stats, where: str) -> None:
    if stats is None:  # uninstrumented run: explicitly null
        return
    for key, types in STATS_REQUIRED.items():
        need(stats, key, types, where)
    for key in ("decision_interval", "alive_count"):
        check_histogram(need(stats, key, dict, where), f"{where}.{key}")


def check_metric(metric: dict, where: str) -> None:
    need(metric, "name", str, where)
    kind = need(metric, "kind", str, where)
    if kind not in ("counter", "gauge", "timer", "histogram"):
        raise Invalid(f"{where}: unknown metric kind {kind!r}")
    if kind == "histogram":
        check_histogram(need(metric, "histogram", dict, where), where)


def check_bench_report(doc: dict, where: str) -> None:
    if need(doc, "schema", int, where) != BENCH_SCHEMA:
        raise Invalid(
            f"{where}: schema {doc['schema']}, expected {BENCH_SCHEMA}"
        )
    if need(doc, "kind", str, where) != "parsched-bench-report":
        raise Invalid(f"{where}: kind {doc['kind']!r}")
    need(doc, "name", str, where)
    need(doc, "meta", dict, where)
    runs = need(doc, "runs", list, where)
    for i, run in enumerate(runs):
        rw = f"{where}.runs[{i}]"
        for key, types in RUN_REQUIRED.items():
            need(run, key, types, rw)
        if "stats" in run:
            check_stats(run["stats"], f"{rw}.stats")
    for i, table in enumerate(need(doc, "tables", list, where)):
        tw = f"{where}.tables[{i}]"
        need(table, "name", str, tw)
        columns = need(table, "columns", list, tw)
        for j, row in enumerate(need(table, "rows", list, tw)):
            if len(row) != len(columns):
                raise Invalid(f"{tw}.rows[{j}]: {len(row)} cells for "
                              f"{len(columns)} columns")
    for i, metric in enumerate(need(doc, "metrics", list, where)):
        check_metric(metric, f"{where}.metrics[{i}]")
    required = REPORT_REQUIRED_TABLES.get(doc["name"], {})
    by_name = {t.get("name"): t for t in doc["tables"]}
    for tname, tcols in required.items():
        if tname not in by_name:
            raise Invalid(f"{where}: '{doc['name']}' report requires a "
                          f"'{tname}' table")
        missing = [c for c in tcols if c not in by_name[tname]["columns"]]
        if missing:
            raise Invalid(f"{where}: table '{tname}' missing required "
                          f"columns {missing}")
        if not by_name[tname]["rows"]:
            raise Invalid(f"{where}: table '{tname}' has no rows")


def check_chrome_trace(doc: dict, where: str) -> None:
    events = need(doc, "traceEvents", list, where)
    phases = {}
    for i, ev in enumerate(events):
        ew = f"{where}.traceEvents[{i}]"
        ph = need(ev, "ph", str, ew)
        need(ev, "pid", int, ew)
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "X":
            need(ev, "ts", (int, float), ew)
            need(ev, "dur", (int, float), ew)
            if ev["dur"] < 0:
                raise Invalid(f"{ew}: negative duration")
        elif ph == "C":
            need(ev, "args", dict, ew)
    if phases.get("M", 0) == 0:
        raise Invalid(f"{where}: no metadata events (track names missing)")
    if phases.get("X", 0) == 0:
        raise Invalid(f"{where}: no allocation segments")
    if phases.get("C", 0) == 0:
        raise Invalid(f"{where}: no counter samples (alive/utilization)")
    other = need(doc, "otherData", dict, where)
    if need(other, "schema", int, f"{where}.otherData") != TRACE_SCHEMA:
        raise Invalid(f"{where}: otherData.schema != {TRACE_SCHEMA}")


def check_trace_line(ev: dict, where: str, state: dict) -> None:
    pass  # trace events carry free-form keys; the header is the contract


def check_snapshot_line(ev: dict, where: str, state: dict) -> None:
    seq = need(ev, "seq", int, where)
    if seq != state["lines"] - 2:  # header is line 1, seq starts at 0
        raise Invalid(f"{where}: seq {seq} out of order")
    need(ev, "t", (int, float), where)
    metrics = need(ev, "metrics", list, where)
    for i, metric in enumerate(metrics):
        check_metric(metric, f"{where}.metrics[{i}]")


def check_flight_line(ev: dict, where: str, state: dict) -> None:
    if ev["ev"] not in FLIGHT_EVENTS:
        raise Invalid(f"{where}: unknown flight event {ev['ev']!r}")
    seq = need(ev, "seq", int, where)
    if state["last_seq"] is not None and seq <= state["last_seq"]:
        raise Invalid(f"{where}: seq {seq} not increasing")
    state["last_seq"] = seq
    need(ev, "id", int, where)
    for key in ("t", "v", "a"):
        need(ev, key, (int, float), where)


JSONL_KINDS = {
    # header kind -> (schema, per-line check, snapshot-line ev name)
    "parsched-trace": (TRACE_SCHEMA, check_trace_line, None),
    "parsched-metrics-snapshot": (
        SNAPSHOT_SCHEMA, check_snapshot_line, "snapshot"),
    "parsched-flight-record": (FLIGHT_SCHEMA, check_flight_line, None),
}


def check_jsonl(path: Path) -> str:
    kinds = {}
    state = {"lines": 0, "last_seq": None}
    line_check = None
    only_ev = None
    header_kind = ""
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            where = f"{path.name}:{lineno}"
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                raise Invalid(f"{where}: bad JSON: {exc}") from exc
            kind = need(ev, "ev", str, where)
            kinds[kind] = kinds.get(kind, 0) + 1
            state["lines"] = lineno
            if lineno == 1:
                if kind != "header":
                    raise Invalid(f"{where}: first line must be the header")
                header_kind = need(ev, "kind", str, where)
                if header_kind not in JSONL_KINDS:
                    raise Invalid(f"{where}: kind {header_kind!r}")
                schema, line_check, only_ev = JSONL_KINDS[header_kind]
                if need(ev, "schema", int, where) != schema:
                    raise Invalid(f"{where}: schema != {schema}")
                if header_kind == "parsched-flight-record":
                    for key in ("capacity", "recorded", "dropped", "events"):
                        need(ev, key, int, where)
                    need(ev, "reason", str, where)
                if header_kind == "parsched-metrics-snapshot":
                    need(ev, "interval_seconds", (int, float), where)
                continue
            if only_ev is not None and kind != only_ev:
                raise Invalid(f"{where}: ev {kind!r}, expected {only_ev!r}")
            line_check(ev, where, state)
    if kinds.get("header", 0) != 1:
        raise Invalid(f"{path.name}: expected exactly one header line")
    if header_kind == "parsched-flight-record":
        body = sum(kinds.values()) - 1
        # The header promised a count; a truncated dump must not validate.
        # (Re-read the header rather than carrying it in state.)
        with path.open(encoding="utf-8") as fh:
            promised = json.loads(fh.readline())["events"]
        if body != promised:
            raise Invalid(f"{path.name}: header promises {promised} "
                          f"events, file has {body}")
    return f"{sum(kinds.values())} lines, kinds {kinds}"


def validate(path: Path) -> str:
    if path.suffix == ".jsonl":
        return check_jsonl(path)
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise Invalid(f"{path.name}: top level is not an object")
    if doc.get("kind") == "parsched-bench-report":
        check_bench_report(doc, path.name)
        return (f"bench report '{doc['name']}', {len(doc['runs'])} runs, "
                f"{len(doc['tables'])} tables, {len(doc['metrics'])} metrics")
    if "traceEvents" in doc:
        check_chrome_trace(doc, path.name)
        return f"chrome trace, {len(doc['traceEvents'])} events"
    raise Invalid(f"{path.name}: not a recognized parsched telemetry file")


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for arg in argv:
        path = Path(arg)
        try:
            summary = validate(path)
            print(f"OK   {path}: {summary}")
        except (Invalid, OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
