#!/usr/bin/env python3
"""validate_report — schema check for parsched telemetry files (stdlib only).

Validates the three machine-readable formats the obs/ subsystem emits:

  BENCH_*.json       bench reports  (kind: parsched-bench-report, schema 1)
  *.trace.json       Chrome trace-event files from TraceExporter
  *.jsonl            JSONL event logs from TraceExporter

Used by CI after the report smoke run; also handy locally:

  tools/validate_report.py BENCH_e11_engine_perf.json run.trace.json

Exit status 0 when every file validates, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA = 1

RUN_REQUIRED = {
    "policy": str,
    "jobs": int,
    "machines": int,
    "total_flow": (int, float),
    "weighted_flow": (int, float),
    "fractional_flow": (int, float),
    "makespan": (int, float),
    "decisions": int,
    "events": int,
    "wall_seconds": (int, float),
}

STATS_REQUIRED = {
    "wall_seconds": (int, float),
    "decide_seconds": (int, float),
    "solver_seconds": (int, float),
    "observer_seconds": (int, float),
    "decisions": int,
    "arrivals": int,
    "completions": int,
}


class Invalid(Exception):
    pass


def need(obj: dict, key: str, types, where: str):
    if key not in obj:
        raise Invalid(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        raise Invalid(
            f"{where}: '{key}' has type {type(obj[key]).__name__}, "
            f"expected {types}"
        )
    return obj[key]


def check_histogram(h: dict, where: str) -> None:
    bounds = need(h, "bounds", list, where)
    counts = need(h, "counts", list, where)
    need(h, "total", int, where)
    need(h, "sum", (int, float), where)
    if len(counts) != len(bounds) + 1:
        raise Invalid(
            f"{where}: {len(bounds)} bounds need {len(bounds) + 1} buckets, "
            f"got {len(counts)}"
        )
    if sum(counts) != h["total"]:
        raise Invalid(f"{where}: bucket counts sum to {sum(counts)}, "
                      f"total says {h['total']}")
    if bounds != sorted(bounds):
        raise Invalid(f"{where}: bounds are not sorted")


def check_stats(stats, where: str) -> None:
    if stats is None:  # uninstrumented run: explicitly null
        return
    for key, types in STATS_REQUIRED.items():
        need(stats, key, types, where)
    for key in ("decision_interval", "alive_count"):
        check_histogram(need(stats, key, dict, where), f"{where}.{key}")


def check_bench_report(doc: dict, where: str) -> None:
    if need(doc, "schema", int, where) != SCHEMA:
        raise Invalid(f"{where}: schema {doc['schema']}, expected {SCHEMA}")
    if need(doc, "kind", str, where) != "parsched-bench-report":
        raise Invalid(f"{where}: kind {doc['kind']!r}")
    need(doc, "name", str, where)
    need(doc, "meta", dict, where)
    runs = need(doc, "runs", list, where)
    for i, run in enumerate(runs):
        rw = f"{where}.runs[{i}]"
        for key, types in RUN_REQUIRED.items():
            need(run, key, types, rw)
        if "stats" in run:
            check_stats(run["stats"], f"{rw}.stats")
    for i, table in enumerate(need(doc, "tables", list, where)):
        tw = f"{where}.tables[{i}]"
        need(table, "name", str, tw)
        columns = need(table, "columns", list, tw)
        for j, row in enumerate(need(table, "rows", list, tw)):
            if len(row) != len(columns):
                raise Invalid(f"{tw}.rows[{j}]: {len(row)} cells for "
                              f"{len(columns)} columns")
    for i, metric in enumerate(need(doc, "metrics", list, where)):
        mw = f"{where}.metrics[{i}]"
        need(metric, "name", str, mw)
        kind = need(metric, "kind", str, mw)
        if kind not in ("counter", "gauge", "timer", "histogram"):
            raise Invalid(f"{mw}: unknown metric kind {kind!r}")
        if kind == "histogram":
            check_histogram(need(metric, "histogram", dict, mw), mw)


def check_chrome_trace(doc: dict, where: str) -> None:
    events = need(doc, "traceEvents", list, where)
    phases = {}
    for i, ev in enumerate(events):
        ew = f"{where}.traceEvents[{i}]"
        ph = need(ev, "ph", str, ew)
        need(ev, "pid", int, ew)
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "X":
            need(ev, "ts", (int, float), ew)
            need(ev, "dur", (int, float), ew)
            if ev["dur"] < 0:
                raise Invalid(f"{ew}: negative duration")
        elif ph == "C":
            need(ev, "args", dict, ew)
    if phases.get("M", 0) == 0:
        raise Invalid(f"{where}: no metadata events (track names missing)")
    if phases.get("X", 0) == 0:
        raise Invalid(f"{where}: no allocation segments")
    if phases.get("C", 0) == 0:
        raise Invalid(f"{where}: no counter samples (alive/utilization)")
    other = need(doc, "otherData", dict, where)
    if need(other, "schema", int, f"{where}.otherData") != SCHEMA:
        raise Invalid(f"{where}: otherData.schema != {SCHEMA}")


def check_jsonl(path: Path) -> str:
    kinds = {}
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            where = f"{path.name}:{lineno}"
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                raise Invalid(f"{where}: bad JSON: {exc}") from exc
            kind = need(ev, "ev", str, where)
            kinds[kind] = kinds.get(kind, 0) + 1
            if lineno == 1:
                if kind != "header":
                    raise Invalid(f"{where}: first line must be the header")
                if need(ev, "schema", int, where) != SCHEMA:
                    raise Invalid(f"{where}: schema != {SCHEMA}")
                if need(ev, "kind", str, where) != "parsched-trace":
                    raise Invalid(f"{where}: kind {ev['kind']!r}")
    if kinds.get("header", 0) != 1:
        raise Invalid(f"{path.name}: expected exactly one header line")
    return f"{sum(kinds.values())} lines, kinds {kinds}"


def validate(path: Path) -> str:
    if path.suffix == ".jsonl":
        return check_jsonl(path)
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise Invalid(f"{path.name}: top level is not an object")
    if doc.get("kind") == "parsched-bench-report":
        check_bench_report(doc, path.name)
        return (f"bench report '{doc['name']}', {len(doc['runs'])} runs, "
                f"{len(doc['tables'])} tables, {len(doc['metrics'])} metrics")
    if "traceEvents" in doc:
        check_chrome_trace(doc, path.name)
        return f"chrome trace, {len(doc['traceEvents'])} events"
    raise Invalid(f"{path.name}: not a recognized parsched telemetry file")


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for arg in argv:
        path = Path(arg)
        try:
            summary = validate(path)
            print(f"OK   {path}: {summary}")
        except (Invalid, OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
