// E18 — Theorem 1's general statement: per-job parallelizability.
//
// The theorem allows every job its own alpha_j with the bound driven by
// alpha = max_j alpha_j ("In particular, this holds for the special case
// that each alpha_j = alpha"). We check that heterogeneity does not help
// the adversary nor hurt ISRPT beyond the max-alpha envelope: the
// measured ratio with alpha_j ~ U[lo, hi] tracks the fixed-alpha = hi
// case, not some worse blow-up.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/mathx.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const int seeds = static_cast<int>(opt.get_int("seeds", 5));
  const double P = opt.get_double("P", 64.0);
  struct Range {
    double lo, hi;
  };
  const Range ranges[] = {{0.5, 0.5}, {0.2, 0.5}, {0.0, 0.5},
                          {0.8, 0.8}, {0.2, 0.8}, {0.0, 0.8}};

  Table t({"alpha_lo", "alpha_hi", "isrpt_ratio_mean", "isrpt_ratio_max",
           "envelope_at_max_alpha"});
  for (const Range& r : ranges) {
    RunningStats stats;
    for (int s = 0; s < seeds; ++s) {
      RandomWorkloadConfig cfg;
      cfg.machines = m;
      cfg.jobs = 400;
      cfg.P = P;
      cfg.load = 1.0;
      cfg.alpha_law = r.lo == r.hi ? AlphaLaw::kFixed : AlphaLaw::kUniform;
      cfg.alpha_lo = r.lo;
      cfg.alpha_hi = r.hi;
      cfg.seed = static_cast<std::uint64_t>(s) * 601 + 23;
      const Instance inst = make_random_instance(cfg);
      auto sched = make_scheduler("isrpt");
      stats.add(simulate(inst, *sched).total_flow /
                opt_lower_bound(inst));
    }
    t.add_row({r.lo, r.hi, stats.mean(), stats.max(),
               theorem1_envelope(std::max(r.hi, 0.01), P)});
  }
  emit_experiment(
      "E18: heterogeneous per-job alpha_j (Theorem 1's general case)",
      "Mixing lower alphas under the same max tracks the fixed-max-alpha "
      "ratio (within seed noise); the bound is governed by max_j alpha_j.",
      t);
  return 0;
}
