// E13 (extension) — multi-phase jobs with arbitrary speedup curves.
//
// The related-work model ([Edmonds], [Edmonds–Pruhs]): jobs alternate
// highly parallel phases with poorly parallelizable bottleneck phases,
// invisible to the scheduler. The paper's Intermediate-SRPT only assumes
// remaining-work clairvoyance, so it runs unchanged here; this experiment
// checks that its advantage over the extremes survives phase structure
// (the reason the literature cares about EQUI-style robustness).
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/phased.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 16));
  const int seeds = static_cast<int>(opt.get_int("seeds", 4));
  const auto fractions =
      opt.get_doubles("bottleneck", {0.1, 0.25, 0.5, 0.75});
  const std::vector<std::string> policies{"isrpt", "seq-srpt", "par-srpt",
                                          "equi", "laps:0.5"};

  std::vector<std::string> headers{"bottleneck_frac"};
  for (const auto& p : policies) headers.push_back(p);
  Table t(headers, 3);
  for (double frac : fractions) {
    std::vector<Cell> row;
    row.emplace_back(frac);
    for (const auto& policy : policies) {
      RunningStats stats;
      for (int s = 0; s < seeds; ++s) {
        PhasedWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = 300;
        cfg.bottleneck_fraction = frac;
        cfg.load = 0.9;
        cfg.seed = static_cast<std::uint64_t>(s) * 131 + 29;
        const Instance inst = make_phased_instance(cfg);
        auto sched = make_scheduler(policy);
        stats.add(simulate(inst, *sched).total_flow /
                  opt_lower_bound(inst));
      }
      row.emplace_back(stats.mean());
    }
    t.add_row(std::move(row));
  }
  emit_experiment(
      "E13: multi-phase jobs (parallel map + sequential bottleneck)",
      "Ratios vs the provable LB as the bottleneck share grows. "
      "Parallel-SRPT collapses once bottleneck phases appear; ISRPT "
      "degrades gracefully.",
      t);
  return 0;
}
