// E3 — Theorem 2: EVERY online algorithm is Omega(log P)-competitive.
//
// The adaptive adversary adapts to whichever policy it faces: policies
// that drain unit jobs promptly (ISRPT, Seq-SRPT) are walked through all
// phases and stuck with long-job backlog ("case 2"); policies that let
// unit jobs linger (EQUI, LAPS) are punished at the first midpoint
// ("case 1"). Either way the ratio grows with log P.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const double alpha = opt.get_double("alpha", 0.0);
  const int max_phases = static_cast<int>(opt.get_int("phases", 4));
  const std::vector<std::string> policies{"isrpt", "seq-srpt", "equi",
                                          "laps:0.5", "greedy"};
  std::vector<double> Ps = opt.get_doubles("P", {});
  if (Ps.empty()) {
    for (int L = 1; L <= max_phases; ++L) {
      Ps.push_back(bench::P_for_phases(alpha, L));
    }
  }

  Table t({"policy", "P", "phases", "case1", "backlog", "ratio_at_X0",
           "ratio_at_P^2", "best_feasible"});
  for (const auto& policy : policies) {
    for (double P : Ps) {
      AdversaryConfig cfg;
      cfg.machines = m;
      cfg.P = P;
      cfg.alpha = alpha;
      const auto pt = bench::run_adversary_point(policy, cfg);
      t.add_row({policy, P, static_cast<std::int64_t>(pt.phases),
                 std::string(pt.case1 ? "yes" : "no"), pt.alive_tail,
                 pt.ratio_lb(), pt.ratio_extrapolated(), pt.best_name});
    }
  }
  emit_experiment(
      "E3: general lower bound (every policy vs the adaptive adversary)",
      "Theorem 2: for every policy the ratio against the best feasible "
      "schedule grows with log P (alpha = " +
          std::to_string(alpha) + ").",
      t);
  std::cout << "\nPer-policy growth fits (extrapolated ratio vs log2 P):\n";
  for (const auto& policy : policies) {
    Table sub({"P", "ratio_at_P^2"});
    const auto names = t.numeric_column("P");
    const auto ratios = t.numeric_column("ratio_at_P^2");
    // Rows are grouped: policies.size() blocks of Ps.size() rows each.
    const std::size_t block = Ps.size();
    const std::size_t offset =
        block * (std::find(policies.begin(), policies.end(), policy) -
                 policies.begin());
    for (std::size_t i = 0; i < block; ++i) {
      sub.add_row({names[offset + i], ratios[offset + i]});
    }
    std::cout << policy << ": ";
    fit_against_log2(sub, "P", "ratio_at_P^2");
  }
  return 0;
}
