// E5 — the jump at alpha = 1.
//
// "The optimal competitive ratio jumps from 1 to Theta(log P) the instant
//  alpha < 1." At alpha = 1 Parallel-SRPT is exactly optimal (it matches
// the speed-m SRPT relaxation, which is tight there). For alpha < 1 it
// degrades badly — it over-allocates processors — while Intermediate-SRPT
// degrades only logarithmically.
// The (alpha, policy) grid runs sharded on bench::sweep_runner(); cells
// merge in index order so output bytes are identical at any
// PARSCHED_JOBS value.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "sched/registry.hpp"
#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const double P = opt.get_double("P", 64.0);
  const auto alphas =
      opt.get_doubles("alpha", {1.0, 0.99, 0.95, 0.9, 0.75, 0.5, 0.25});
  const int seeds = static_cast<int>(opt.get_int("seeds", 3));
  const std::vector<std::string> policies{"par-srpt", "isrpt", "equi"};

  // One sweep task per (alpha, policy) cell, flattened row-major so the
  // merged results reassemble into rows in the original order.
  const auto mean_ratios = bench::sweep_runner().map<double>(
      alphas.size() * policies.size(), [&](const exec::TaskContext& ctx) {
        const double alpha = alphas[ctx.index / policies.size()];
        const std::string& policy = policies[ctx.index % policies.size()];
        RunningStats stats;
        for (int s = 0; s < seeds; ++s) {
          RandomWorkloadConfig cfg;
          cfg.machines = m;
          cfg.jobs = 300;
          cfg.P = P;
          cfg.alpha_lo = cfg.alpha_hi = alpha;
          cfg.load = 1.0;
          cfg.size_law = SizeLaw::kBimodal;  // short/long mix stresses
                                             // over-allocation the most
          cfg.seed = static_cast<std::uint64_t>(s) * 977 + 3;
          const Instance inst = make_random_instance(cfg);
          auto sched = make_scheduler(policy);
          stats.add(simulate(inst, *sched).total_flow /
                    opt_lower_bound(inst));
        }
        return stats.mean();
      });
  Table t({"alpha", "par-srpt", "isrpt", "equi"});
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    const std::size_t base = a * policies.size();
    t.add_row({alphas[a], mean_ratios[base], mean_ratios[base + 1],
               mean_ratios[base + 2]});
  }
  emit_experiment(
      "E5: ratio vs alpha across the alpha = 1 boundary (vs provable LB)",
      "Parallel-SRPT: exactly 1.0 at alpha = 1 (provably optimal), "
      "degrades sharply below; Intermediate-SRPT stays moderate.",
      t);
  return 0;
}
