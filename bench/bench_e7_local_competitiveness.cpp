// E7 — Lemmas 1 and 4: local competitiveness at overloaded times.
//
// For Intermediate-SRPT against a reference schedule (the standard plan on
// adversary instances, Sequential-SRPT's trace on random overload):
//   Lemma 4: DeltaV_{<=k}(t) <= m 2^{k+1} for every class k,
//   Lemma 1: |A(t)| <= m(3 + log P) + 2|OPT(t)|.
// Reported as worst observed ratios (<= 1 means the lemma held pointwise).
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/local_comp.hpp"
#include "analysis/trajectories.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"
#include "workload/random.hpp"

using namespace parsched;

namespace {

ScheduleTrajectories record_policy(const Instance& inst, Scheduler& s) {
  TrajectoryRecorder rec;
  (void)simulate(inst, s, {}, {&rec});
  return ScheduleTrajectories::from_recorder(rec);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  Table t({"workload", "P", "overloaded_samples", "lemma1_worst",
           "lemma4_worst", "lemma5_worst"});

  // Adversary instances: ISRPT vs the paper's standard schedule.
  for (double P : opt.get_doubles("P", {16, 64, 256})) {
    AdversaryConfig cfg;
    cfg.machines = m;
    cfg.P = P;
    cfg.alpha = 0.25;
    cfg.stream_time = std::min(P * P, 2048.0);
    AdversarySource source(cfg);
    IntermediateSrpt isrpt;
    Engine engine(cfg.machines);
    TrajectoryRecorder rec;
    engine.add_observer(&rec);
    const SimResult alg = engine.run(isrpt, source);
    const Instance realized(cfg.machines, alg.realized_jobs());
    const Plan plan =
        adversary_standard_plan(realized, cfg, source.outcome());
    const auto at = ScheduleTrajectories::from_recorder(rec);
    const auto rt = ScheduleTrajectories::from_plan(realized, plan);
    const LocalCompReport rep =
        check_local_competitiveness(at, rt, m, P);
    t.add_row({std::string("adversary"), P,
               static_cast<std::int64_t>(rep.overloaded_samples),
               rep.lemma1_worst, rep.lemma4_worst, rep.lemma5_worst});
  }

  // Random overload: ISRPT vs Sequential-SRPT's trace.
  for (double P : opt.get_doubles("P", {16, 64, 256})) {
    RandomWorkloadConfig cfg;
    cfg.machines = m;
    cfg.jobs = 400;
    cfg.P = P;
    cfg.load = 2.0;  // heavy overload to exercise the lemmas
    cfg.alpha_lo = cfg.alpha_hi = 0.5;
    cfg.seed = 23;
    const Instance inst = make_random_instance(cfg);
    IntermediateSrpt isrpt;
    SequentialSrpt seq;
    const auto at = record_policy(inst, isrpt);
    const auto rt = record_policy(inst, seq);
    const LocalCompReport rep =
        check_local_competitiveness(at, rt, m, inst.P());
    t.add_row({std::string("random-overload"), P,
               static_cast<std::int64_t>(rep.overloaded_samples),
               rep.lemma1_worst, rep.lemma4_worst, rep.lemma5_worst});
  }

  emit_experiment(
      "E7: local competitiveness at overloaded times (Lemmas 1, 4 and 5)",
      "Worst observed LHS/RHS; <= 1 means the lemma held pointwise.", t);
  return 0;
}
