// E4 — Lemma 10: the natural Greedy hybrid is Omega(max{P, n^{1/3}}).
//
// On the Section-3 instance (P = m) Greedy devotes all machines to the
// unit-job stream and starves the long jobs for X = m^2 time units; the
// paper's alternative schedule finishes everything promptly. Greedy's
// ratio therefore grows polynomially in m while Intermediate-SRPT's stays
// logarithmic on the very same instance.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/greedy_hybrid.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/opt/plan.hpp"
#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/greedy_killer.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  // (m, alpha) pairs with m^{1-eps} = m^alpha integral.
  struct Point {
    int m;
    double alpha;
  };
  std::vector<Point> points{{16, 0.5},  {25, 0.5}, {36, 0.5}, {49, 0.5},
                            {64, 0.5},  {100, 0.5}, {16, 0.75}, {81, 0.75},
                            {27, 1.0 / 3.0}, {64, 1.0 / 3.0}};
  const double xcap = opt.get_double("stream-cap", 20000.0);

  Table t({"alpha", "m(=P)", "k", "n_jobs", "greedy_ratio", "isrpt_ratio",
           "greedy/isrpt"});
  for (const Point& pt : points) {
    GreedyKillerConfig cfg;
    cfg.machines = pt.m;
    cfg.alpha = pt.alpha;
    const double X = static_cast<double>(pt.m) * pt.m;
    cfg.stream_time = std::min(X, xcap);
    const GreedyKillerInstance gk = make_greedy_killer(cfg);

    const double opt_ub = std::min(
        execute_plan(gk.instance, greedy_killer_alternative_plan(gk))
            .total_flow,
        [&] {
          IntermediateSrpt isrpt;
          return simulate(gk.instance, isrpt).total_flow;
        }());

    GreedyHybrid greedy;
    IntermediateSrpt isrpt;
    const double greedy_ratio =
        simulate(gk.instance, greedy).total_flow / opt_ub;
    const double isrpt_ratio =
        simulate(gk.instance, isrpt).total_flow / opt_ub;
    t.add_row({pt.alpha, static_cast<std::int64_t>(pt.m),
               static_cast<std::int64_t>(gk.k),
               static_cast<std::int64_t>(gk.instance.size()), greedy_ratio,
               isrpt_ratio, greedy_ratio / isrpt_ratio});
  }
  emit_experiment(
      "E4: Greedy hybrid lower bound (Section 3 instance, X = m^2)",
      "Lemma 10: Greedy's ratio grows ~linearly in m = P; "
      "Intermediate-SRPT stays flat/logarithmic on the same instance.",
      t);
  return 0;
}
