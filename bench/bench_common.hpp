// parsched — shared plumbing for the experiment binaries (E1..E10).
// The adversary-measurement methodology lives in the library (tested):
// analysis/adversary_eval.hpp. This header keeps the benches' historical
// `bench::` spelling.
//
// Setting PARSCHED_AUDIT=1 in the environment attaches an
// InvariantAuditor to every ALG run and aborts the bench (via
// AuditFailure) on the first violated simulation invariant. CI smoke
// runs set it; leave it unset for timed measurements — the auditor adds
// per-decision bookkeeping that would pollute perf numbers.
// Setting PARSCHED_REPORT=1 makes every experiment additionally emit a
// machine-readable BENCH_<slug>.json (obs/report.hpp schema) next to its
// CSV: emit_experiment() mirrors tables automatically, and benches that
// want per-run wall time + profiling buckets use timed_run() /
// write_bench_report() below. PARSCHED_REPORT_DIR redirects the output
// (the directory is created on first use if missing).
//
// Sweep-ported benches (E1, E2, E5, E11) run their parameter grids
// through sweep_runner() — an exec::SweepRunner honoring PARSCHED_JOBS
// (default: all hardware threads; 1 = the exact legacy serial path).
// Results merge in task-index order, so the emitted CSV/JSON bytes are
// identical at any job count.
#pragma once

#include <string>
#include <vector>

#include "analysis/adversary_eval.hpp"
#include "check/invariant_auditor.hpp"
#include "exec/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/env.hpp"

namespace parsched::bench {

using parsched::AdversaryPoint;
using parsched::P_for_phases;

inline bool audit_enabled() { return env::get_flag("PARSCHED_AUDIT"); }

/// Drop-in for parsched::run_adversary_point that honors PARSCHED_AUDIT:
/// when enabled, the ALG run is audited and any invariant violation
/// raises AuditFailure with the full report.
inline AdversaryPoint run_adversary_point(const std::string& policy,
                                          const AdversaryConfig& cfg,
                                          double stream_cap = 4096.0) {
  if (!audit_enabled()) {
    return parsched::run_adversary_point(policy, cfg, stream_cap);
  }
  AuditConfig audit;
  audit.policy_name = make_scheduler(policy)->name();
  audit.policy = policy_lint_for(audit.policy_name);
  InvariantAuditor auditor(cfg.machines, audit);
  const AdversaryPoint pt =
      parsched::run_adversary_point(policy, cfg, stream_cap, {&auditor});
  auditor.require_clean();
  return pt;
}

inline std::vector<std::string> fast_portfolio() {
  return adversary_portfolio();
}

/// The sweep runner every ported bench shares: parallelism from
/// PARSCHED_JOBS (or all hardware threads), per-task engine metrics
/// merged into the global registry in task-index order. Pass jobs > 0
/// to pin the parallelism explicitly (E11's speedup measurement).
inline exec::SweepRunner sweep_runner(std::uint64_t base_seed = 0,
                                      int jobs = 0) {
  exec::SweepRunner::Config cfg;
  cfg.jobs = exec::resolve_jobs(jobs);
  cfg.base_seed = base_seed;
  cfg.merge_metrics = &obs::MetricsRegistry::global();
  return exec::SweepRunner(cfg);
}

/// Simulate `policy` on `inst` with wall-time measurement and (when
/// reporting is enabled) per-phase engine profiling, returning the
/// RunReport for a BenchReport. The SimResult is discarded; timed runs
/// exist for the report.
inline obs::RunReport timed_run(const std::string& policy,
                                const Instance& inst,
                                EngineConfig config = {}) {
  auto sched = make_scheduler(policy);
  if (obs::report_enabled()) config.collect_stats = true;
  const double t0 = obs::monotonic_seconds();
  const SimResult r = simulate(inst, *sched, config);
  const double wall = obs::monotonic_seconds() - t0;
  return obs::RunReport::from_result(sched->name(), inst.machines(), r,
                                     wall);
}

/// Write `runs` as BENCH_<slug>.json when PARSCHED_REPORT=1 (no-op
/// otherwise); attaches the global metrics registry snapshot.
inline void write_bench_report(const std::string& slug,
                               std::vector<obs::RunReport> runs) {
  if (!obs::report_enabled()) return;
  obs::BenchReport report(slug);
  for (obs::RunReport& r : runs) report.add_run(std::move(r));
  report.set_metrics(obs::MetricsRegistry::global().snapshot());
  report.write(obs::report_path(slug));
}

}  // namespace parsched::bench
