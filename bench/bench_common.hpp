// parsched — shared plumbing for the experiment binaries (E1..E10).
// The adversary-measurement methodology lives in the library (tested):
// analysis/adversary_eval.hpp. This header keeps the benches' historical
// `bench::` spelling.
#pragma once

#include "analysis/adversary_eval.hpp"
#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"

namespace parsched::bench {

using parsched::AdversaryPoint;
using parsched::P_for_phases;
using parsched::run_adversary_point;

inline std::vector<std::string> fast_portfolio() {
  return adversary_portfolio();
}

}  // namespace parsched::bench
