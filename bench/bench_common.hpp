// parsched — shared plumbing for the experiment binaries (E1..E10).
// The adversary-measurement methodology lives in the library (tested):
// analysis/adversary_eval.hpp. This header keeps the benches' historical
// `bench::` spelling.
//
// Setting PARSCHED_AUDIT=1 in the environment attaches an
// InvariantAuditor to every ALG run and aborts the bench (via
// AuditFailure) on the first violated simulation invariant. CI smoke
// runs set it; leave it unset for timed measurements — the auditor adds
// per-decision bookkeeping that would pollute perf numbers.
#pragma once

#include <cstdlib>

#include "analysis/adversary_eval.hpp"
#include "check/invariant_auditor.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"

namespace parsched::bench {

using parsched::AdversaryPoint;
using parsched::P_for_phases;

inline bool audit_enabled() {
  const char* v = std::getenv("PARSCHED_AUDIT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Drop-in for parsched::run_adversary_point that honors PARSCHED_AUDIT:
/// when enabled, the ALG run is audited and any invariant violation
/// raises AuditFailure with the full report.
inline AdversaryPoint run_adversary_point(const std::string& policy,
                                          const AdversaryConfig& cfg,
                                          double stream_cap = 4096.0) {
  if (!audit_enabled()) {
    return parsched::run_adversary_point(policy, cfg, stream_cap);
  }
  AuditConfig audit;
  audit.policy_name = make_scheduler(policy)->name();
  audit.policy = policy_lint_for(audit.policy_name);
  InvariantAuditor auditor(cfg.machines, audit);
  const AdversaryPoint pt =
      parsched::run_adversary_point(policy, cfg, stream_cap, {&auditor});
  auditor.require_clean();
  return pt;
}

inline std::vector<std::string> fast_portfolio() {
  return adversary_portfolio();
}

}  // namespace parsched::bench
