// E6 — the [5] baseline: EQUI is 2-competitive for batch release with
// arbitrary speedup curves.
//
// All jobs released at t = 0 with a mixed bag of curves (sequential,
// power-law, fully parallel). EQUI's flow divided by the best feasible
// schedule found must stay below 2 (the measured value is an upper bound
// on EQUI's true ratio only up to the portfolio's own optimality gap).
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const auto ns = opt.get_ints("jobs", {8, 16, 32, 64, 128, 256, 512});
  const int seeds = static_cast<int>(opt.get_int("seeds", 3));

  Table t({"n", "ratio_vs_best_mean", "ratio_vs_best_max",
           "ratio_vs_lb_mean"});
  for (std::int64_t n : ns) {
    double best_sum = 0.0, best_max = 0.0, lb_sum = 0.0;
    for (int s = 0; s < seeds; ++s) {
      BatchWorkloadConfig cfg;
      cfg.machines = m;
      cfg.jobs = static_cast<std::size_t>(n);
      cfg.alpha_law = AlphaLaw::kMixed;
      cfg.seed = static_cast<std::uint64_t>(s) * 53 + 19;
      const Instance inst = make_batch_instance(cfg);
      auto equi = make_scheduler("equi");
      const double flow = simulate(inst, *equi).total_flow;
      const PortfolioResult pf = run_portfolio(inst);
      const double vs_best = flow / pf.best_flow;
      best_sum += vs_best;
      best_max = std::max(best_max, vs_best);
      lb_sum += flow / opt_lower_bound(inst);
    }
    t.add_row({n, best_sum / seeds, best_max, lb_sum / seeds});
  }
  emit_experiment(
      "E6: EQUI on batch instances (arbitrary speedup curves)",
      "[Edmonds et al.] EQUI is 2-competitive for common release: "
      "ratio_vs_best must stay below 2.",
      t);
  return 0;
}
