// E8 — Lemmas 2 and 3: the potential function Phi(t).
//
// Phi(t) = 16 sum_{i in A(t)} z_i(t) / Gamma_i(m / rank(i,t)).
// Conditions verified numerically on the merged breakpoint grid:
//  * Boundary: Phi = 0 at both ends;
//  * Discontinuous changes: Phi never jumps up at events;
//  * Continuous changes: |A| + dPhi/dt <= c |OPT| with
//      c = O(4^{1/(1-alpha)} log P); we report the empirical c and the
//      Lemma-2/Lemma-3 normalized constants (O(1) if the lemmas are tight).
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/potential.hpp"
#include "analysis/trajectories.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/mathx.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  Table t({"workload", "alpha", "P", "phi_start", "phi_end", "max_jump",
           "c_continuous", "c_lemma2", "c_lemma3", "c_lemma7", "c_lemma8",
           "lemma9_min", "residual"});

  for (double alpha : opt.get_doubles("alpha", {0.0, 0.25, 0.5})) {
    for (double P : opt.get_doubles("P", {16, 64})) {
      AdversaryConfig cfg;
      cfg.machines = m;
      cfg.P = P;
      cfg.alpha = alpha;
      cfg.stream_time = std::min(P * P, 512.0);
      AdversarySource source(cfg);
      IntermediateSrpt isrpt;
      Engine engine(cfg.machines);
      TrajectoryRecorder rec;
      engine.add_observer(&rec);
      const SimResult alg = engine.run(isrpt, source);
      const Instance realized(cfg.machines, alg.realized_jobs());
      const Plan plan =
          adversary_standard_plan(realized, cfg, source.outcome());
      const auto at = ScheduleTrajectories::from_recorder(rec);
      const auto rt = ScheduleTrajectories::from_plan(realized, plan);
      const PotentialReport rep = analyze_potential(at, rt, m, P, alpha);
      t.add_row({std::string("adversary"), alpha, P, rep.phi_start,
                 rep.phi_end, rep.max_jump_increase, rep.c_continuous,
                 rep.c_lemma2, rep.c_lemma3, rep.c_lemma7, rep.c_lemma8,
                 rep.lemma9_min_ratio, rep.decomposition_residual});
    }
  }

  for (double alpha : opt.get_doubles("alpha", {0.0, 0.25, 0.5})) {
    RandomWorkloadConfig cfg;
    cfg.machines = m;
    cfg.jobs = 200;
    cfg.P = 64.0;
    cfg.load = 1.3;
    cfg.alpha_lo = cfg.alpha_hi = std::max(alpha, 0.01);
    cfg.seed = 31;
    const Instance inst = make_random_instance(cfg);
    IntermediateSrpt isrpt;
    SequentialSrpt seq;
    TrajectoryRecorder ra, rr;
    (void)simulate(inst, isrpt, {}, {&ra});
    (void)simulate(inst, seq, {}, {&rr});
    const auto at = ScheduleTrajectories::from_recorder(ra);
    const auto rt = ScheduleTrajectories::from_recorder(rr);
    const PotentialReport rep =
        analyze_potential(at, rt, m, inst.P(), alpha);
    t.add_row({std::string("random"), alpha, 64.0, rep.phi_start,
               rep.phi_end, rep.max_jump_increase, rep.c_continuous,
               rep.c_lemma2, rep.c_lemma3, rep.c_lemma7, rep.c_lemma8,
               rep.lemma9_min_ratio, rep.decomposition_residual});
  }

  emit_experiment(
      "E8: potential-function conditions (Section 2.3, Lemmas 2-3 and 7-9)",
      "Boundary (phi_start = phi_end = 0), no upward jumps, and O(1) "
      "normalized continuous-change constants.",
      t);
  return 0;
}
