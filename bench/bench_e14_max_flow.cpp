// E14 (extension) — the MAXIMUM flow-time objective.
//
// [Pruhs–Robert–Schabanel] and [Robert–Schabanel] (cited in Section 1.2)
// study max flow time for arbitrary speedup curves, where the right
// instinct is the opposite of SRPT: always serve the *oldest* work.
// This experiment contrasts the objectives: SRPT-style policies win on
// average flow but can starve old jobs (huge max flow); Oldest-EQUI
// bounds staleness at a modest average-flow cost.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const int seeds = static_cast<int>(opt.get_int("seeds", 4));
  const std::vector<std::string> policies{"isrpt", "seq-srpt", "equi",
                                          "laps:0.5", "oldest-equi:0.5"};

  Table t({"policy", "avg_flow", "max_flow", "p99_flow"}, 2);
  for (const auto& policy : policies) {
    RunningStats avg, mx, p99;
    for (int s = 0; s < seeds; ++s) {
      RandomWorkloadConfig cfg;
      cfg.machines = m;
      cfg.jobs = 500;
      cfg.P = 128.0;
      cfg.load = 1.05;  // slightly past critical: starvation shows up
      cfg.size_law = SizeLaw::kBimodal;
      cfg.alpha_lo = cfg.alpha_hi = 0.5;
      cfg.seed = static_cast<std::uint64_t>(s) * 499 + 7;
      const Instance inst = make_random_instance(cfg);
      auto sched = make_scheduler(policy);
      const SimResult r = simulate(inst, *sched);
      std::vector<double> flows;
      flows.reserve(r.records.size());
      for (const auto& rec : r.records) flows.push_back(rec.flow());
      avg.add(r.avg_flow());
      mx.add(r.max_flow());
      p99.add(percentile(flows, 99.0));
    }
    t.add_row({policy, avg.mean(), mx.mean(), p99.mean()});
  }
  emit_experiment(
      "E14: average vs maximum flow time (objective trade-off)",
      "SRPT-style policies optimize the average but starve the oldest "
      "jobs past critical load; Oldest-EQUI bounds staleness.",
      t);
  return 0;
}
