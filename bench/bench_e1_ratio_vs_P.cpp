// E1 — Theorem 1: Intermediate-SRPT's competitive ratio grows O(log P).
//
// Two tables:
//  (a) worst case — the Section-4 adaptive adversary, the instance family
//      behind the matching Omega(log P) lower bound; the measured ratio
//      must grow ~ linearly in log2(P) and stay under the Theorem-1
//      envelope O(4^{1/(1-alpha)} log P);
//  (b) average case — random Poisson instances at critical load, where the
//      measured ratio should be far below the envelope (the adversary is
//      what makes the bound tight).
//
// Both grids run sharded on bench::sweep_runner() (PARSCHED_JOBS-many
// workers); output bytes are identical at any job count.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "sched/intermediate_srpt.hpp"
#include "util/mathx.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const auto Ps = opt.get_doubles("P", {});  // empty = derive from phases
  const auto alphas = opt.get_doubles("alpha", {0.0, 0.25});
  const int max_phases = static_cast<int>(opt.get_int("phases", 0));
  const int seeds = static_cast<int>(opt.get_int("seeds", 3));

  // The construction realizes L = floor(log_{1/r}(P)/2) phases, so P must
  // grow like (1/r)^{2L} to add a phase; we sweep by realized phase count
  // (the paper's lower bound is Omega(m * log_{1/r} P) backlog = Omega(L)).
  // The grid is flattened into independent tasks for the sweep runner;
  // rows merge in task-index order, so the table bytes are identical at
  // any PARSCHED_JOBS value.
  std::vector<std::pair<double, double>> adv_points;  // (alpha, P)
  for (double alpha : alphas) {
    std::vector<double> P_list = Ps;
    if (P_list.empty()) {
      const int lmax = max_phases > 0 ? max_phases : (alpha <= 0.1 ? 4 : 3);
      for (int L = 1; L <= lmax; ++L) {
        P_list.push_back(bench::P_for_phases(alpha, L));
      }
    }
    for (double P : P_list) adv_points.emplace_back(alpha, P);
  }
  auto runner = bench::sweep_runner();
  const auto adv_rows = runner.map<std::vector<Cell>>(
      adv_points.size(), [&](const exec::TaskContext& ctx) {
        const auto [alpha, P] = adv_points[ctx.index];
        AdversaryConfig cfg;
        cfg.machines = m;
        cfg.P = P;
        cfg.alpha = alpha;
        const auto pt = bench::run_adversary_point("isrpt", cfg);
        return std::vector<Cell>{
            alpha, P, static_cast<std::int64_t>(pt.phases),
            std::string(pt.case1 ? "yes" : "no"),
            static_cast<std::int64_t>(pt.jobs), pt.alive_tail,
            pt.ratio_lb(), pt.ratio_extrapolated(),
            theorem1_envelope(std::max(alpha, 0.01), P)};
      });
  Table adv({"alpha", "P", "phases", "case1", "jobs", "backlog",
             "ratio_at_X0", "ratio_at_P^2", "theorem1_envelope"});
  for (const auto& row : adv_rows) adv.add_row(row);
  emit_experiment(
      "E1a: ISRPT ratio vs P (adversarial)",
      "Theorem 1 + Theorem 2 family: the backlog carried through the "
      "stream grows with the number of phases ~ log P, so the ratio at "
      "the full stream X = P^2 grows like log P while staying below the "
      "Theorem-1 envelope.",
      adv);
  fit_against_log2(adv, "P", "ratio_at_P^2");

  const auto random_Ps =
      opt.get_doubles("P-random", {8, 16, 32, 64, 128, 256});
  std::vector<std::pair<double, double>> rnd_points;  // (alpha, P)
  for (double alpha : {0.25, 0.5}) {
    for (double P : random_Ps) rnd_points.emplace_back(alpha, P);
  }
  const auto rnd_rows = runner.map<std::vector<Cell>>(
      rnd_points.size(), [&](const exec::TaskContext& ctx) {
        const auto [alpha, P] = rnd_points[ctx.index];
        RunningStats stats;
        for (int s = 0; s < seeds; ++s) {
          RandomWorkloadConfig cfg;
          cfg.machines = m;
          cfg.jobs = 400;
          cfg.P = P;
          cfg.alpha_lo = cfg.alpha_hi = alpha;
          cfg.load = 1.0;
          cfg.seed = static_cast<std::uint64_t>(s) * 101 + 7;
          const Instance inst = make_random_instance(cfg);
          IntermediateSrpt sched;
          const double flow = simulate(inst, sched).total_flow;
          stats.add(flow / opt_lower_bound(inst));
        }
        return std::vector<Cell>{alpha, P, stats.mean(), stats.max(),
                                 theorem1_envelope(alpha, P)};
      });
  Table rnd({"alpha", "P", "ratio_ub_mean", "ratio_ub_max",
             "theorem1_envelope"});
  for (const auto& row : rnd_rows) rnd.add_row(row);
  emit_experiment("E1b: ISRPT ratio vs P (random, critical load)",
                  "Average case: far below the worst-case envelope.", rnd);
  return 0;
}
