// E15 (extension) — the price of non-clairvoyance.
//
// Intermediate-SRPT reads remaining work; the non-clairvoyant policies of
// the related literature (EQUI, LAPS, SETF, MLF) only observe what they
// have already processed. [Motwani–Phillips–Torng] shows non-clairvoyance
// costs Omega(n^{1/3}) on one machine without augmentation; with many
// machines and speedup curves EQUI/LAPS-style sharing is the known remedy.
// We measure the gap on random workloads across alpha.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const int seeds = static_cast<int>(opt.get_int("seeds", 4));
  const auto alphas = opt.get_doubles("alpha", {0.25, 0.5, 0.75});
  const std::vector<std::string> policies{"isrpt", "setf:0.1", "mlf",
                                          "equi", "laps:0.5"};

  std::vector<std::string> headers{"alpha"};
  for (const auto& p : policies) headers.push_back(p);
  Table t(headers, 3);
  for (double alpha : alphas) {
    std::vector<Cell> row;
    row.emplace_back(alpha);
    for (const auto& policy : policies) {
      RunningStats stats;
      for (int s = 0; s < seeds; ++s) {
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = 300;
        cfg.P = 64.0;
        cfg.load = 1.0;
        cfg.alpha_lo = cfg.alpha_hi = alpha;
        cfg.seed = static_cast<std::uint64_t>(s) * 83 + 13;
        const Instance inst = make_random_instance(cfg);
        auto sched = make_scheduler(policy);
        stats.add(simulate(inst, *sched).total_flow /
                  opt_lower_bound(inst));
      }
      row.emplace_back(stats.mean());
    }
    t.add_row(std::move(row));
  }
  emit_experiment(
      "E15: clairvoyant vs non-clairvoyant policies (ratio vs provable LB)",
      "ISRPT exploits remaining-work knowledge; SETF/MLF/EQUI/LAPS pay "
      "the non-clairvoyance premium.",
      t);
  return 0;
}
