// E17 (extension) — weighted flow time.
//
// Production schedulers weight jobs (interactive > batch). The natural
// generalization of Intermediate-SRPT serves the m jobs with least
// remaining-work-per-unit-weight. We compare the weight-blind original
// against Weighted-ISRPT on workloads where small jobs carry high weight
// (the interactive/batch mix) and where weights are uniform noise.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "sched/weighted.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const int seeds = static_cast<int>(opt.get_int("seeds", 5));
  const std::vector<std::string> policies{"wisrpt", "isrpt", "equi",
                                          "laps:0.5"};
  struct Scenario {
    const char* name;
    WeightLaw law;
  };
  const Scenario scenarios[] = {
      {"unit-weights", WeightLaw::kUnit},
      {"uniform-weights", WeightLaw::kUniform},
      {"inverse-size", WeightLaw::kInverseSize},
  };

  std::vector<std::string> headers{"weights"};
  for (const auto& p : policies) headers.push_back(p);
  Table t(headers, 3);
  for (const Scenario& sc : scenarios) {
    std::vector<Cell> row;
    row.emplace_back(std::string(sc.name));
    for (const auto& policy : policies) {
      RunningStats stats;
      for (int s = 0; s < seeds; ++s) {
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = 400;
        cfg.P = 64.0;
        cfg.load = 1.0;
        cfg.alpha_lo = cfg.alpha_hi = 0.5;
        cfg.size_law = SizeLaw::kBoundedPareto;
        cfg.weight_law = sc.law;
        cfg.seed = static_cast<std::uint64_t>(s) * 401 + 9;
        const Instance inst = make_random_instance(cfg);
        auto sched = make_scheduler(policy);
        const SimResult r = simulate(inst, *sched);
        stats.add(r.weighted_flow / weighted_span_lower_bound(inst));
      }
      row.emplace_back(stats.mean());
    }
    t.add_row(std::move(row));
  }
  emit_experiment(
      "E17: weighted flow time (ratio vs the weighted span LB)",
      "Weighted-ISRPT == ISRPT under unit weights; with skewed weights "
      "the weight-aware rule wins.",
      t);
  return 0;
}
