// E11 — simulator throughput (google-benchmark microbenchmarks).
//
// Not a paper experiment: establishes that the substrate scales to the
// instance sizes the reproduction sweeps use (hundreds of thousands of
// jobs) on a laptop, as the repro band promises.
//
// With PARSCHED_REPORT=1 this binary is also the canonical timed
// baseline of the perf trajectory: after the microbenchmarks it runs one
// instrumented pass per engine policy (EngineConfig::collect_stats) and
// writes BENCH_e11_engine_perf.json — wall time, decision counts, and
// the decide/solver/observer per-phase buckets — plus a
// "parallel_speedup" table measuring the exec::SweepRunner substrate:
// the same sharded sweep workload at jobs = 1/2/4/8 with wall time,
// merge overhead, pool idle fraction, steal counts, and a bit-exact
// total-flow equality check across job counts (the determinism
// contract, enforced inline). Pass --benchmark_filter=NONE to emit the
// report without the (slow) microbenchmark sweep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "speedup/kernel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "sched/registry.hpp"
#include "sched/opt/plan.hpp"
#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"
#include "workload/greedy_killer.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

RandomWorkloadConfig perf_config(std::int64_t jobs) {
  RandomWorkloadConfig cfg;
  cfg.machines = 16;
  cfg.jobs = static_cast<std::size_t>(jobs);
  cfg.P = 64.0;
  cfg.load = 1.0;
  cfg.alpha_lo = cfg.alpha_hi = 0.5;
  cfg.seed = 4242;
  return cfg;
}

void BM_EnginePolicy(benchmark::State& state, const std::string& policy) {
  const Instance inst = make_random_instance(perf_config(state.range(0)));
  auto sched = make_scheduler(policy);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const SimResult r = simulate(inst, *sched);
    events += r.events;
    benchmark::DoNotOptimize(r.total_flow);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(inst.size());
}

void BM_Isrpt(benchmark::State& state) { BM_EnginePolicy(state, "isrpt"); }
void BM_Equi(benchmark::State& state) { BM_EnginePolicy(state, "equi"); }
void BM_Greedy(benchmark::State& state) { BM_EnginePolicy(state, "greedy"); }

BENCHMARK(BM_Isrpt)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Equi)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Greedy)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Dense-alive decision-rate workload: n jobs all released at t = 0, so
// essentially the whole instance stays alive until the end and every
// decision step pays the full O(n) cost — the worst case the engine
// hot-path work (reusable scratch buffers, memoized context orderings,
// bounded-heap top-k selection, the FlowQ fast advance arm, and the
// sparse completion sweep) was aimed at. ISRPT serves min(n, m) jobs per
// decision, leaving the rest rate-0: exactly the dense mostly-idle
// regime. Sizes are deterministic (no RNG dependency) and distinct, so
// SRPT orders have no ties and every completion is a separate event.
Instance dense_alive_instance(std::size_t n) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.0;
    j.size = 1.0 + static_cast<double>((i * 7919u) % 99991u) / 99991.0;
    j.curve = SpeedupCurve::power_law(0.5);
    jobs.push_back(j);
  }
  return Instance(16, jobs);
}

void BM_DenseAlive(benchmark::State& state) {
  const Instance inst = dense_alive_instance(
      static_cast<std::size_t>(state.range(0)));
  auto sched = make_scheduler("isrpt");
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    const SimResult r = simulate(inst, *sched);
    decisions += r.decisions;
    benchmark::DoNotOptimize(r.total_flow);
  }
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DenseAlive)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SrptRelaxation(benchmark::State& state) {
  const Instance inst = make_random_instance(perf_config(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(srpt_speed_m_lower_bound(inst));
  }
}
BENCHMARK(BM_SrptRelaxation)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PlanExecution(benchmark::State& state) {
  GreedyKillerConfig cfg;
  cfg.machines = 64;
  cfg.alpha = 0.5;
  cfg.stream_time = static_cast<double>(state.range(0));
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  const Plan plan = greedy_killer_alternative_plan(gk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(execute_plan(gk.instance, plan).total_flow);
  }
  state.counters["jobs"] = static_cast<double>(gk.instance.size());
}
BENCHMARK(BM_PlanExecution)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// The ported sweep workload behind the parallel-speedup measurement:
// kSweepTasks independent ISRPT simulations on random instances, each
// seeded from the sweep's splitmix derivation. Flow totals are summed in
// task-index order, so the sum is bit-identical at every job count.
constexpr std::size_t kSweepTasks = 24;
constexpr std::uint64_t kSweepSeed = 4242;

double sweep_task_flow(const exec::TaskContext& ctx) {
  RandomWorkloadConfig cfg = perf_config(4000);
  cfg.seed = ctx.seed;
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler("isrpt");
  EngineConfig ec;
  ec.metrics = ctx.metrics;  // task-private registry, merged in order
  return simulate(inst, *sched, ec).total_flow;
}

// Run the sweep at jobs = 1/2/4/8 and tabulate wall time, speedup vs the
// serial run, merge overhead, pool idle fraction, and steals. The exact
// total-flow equality across job counts is checked inline — a reseeding
// or merge-order bug aborts the bench rather than shipping wrong rows.
Table measure_parallel_speedup() {
  Table sp({"jobs", "tasks", "wall_seconds", "speedup_vs_j1",
            "merge_seconds", "idle_fraction", "steals", "total_flow"},
           6);
  double wall_j1 = 0.0;
  double flow_j1 = 0.0;
  for (const int j : {1, 2, 4, 8}) {
    auto runner = bench::sweep_runner(kSweepSeed, j);
    const std::vector<double> flows =
        runner.map<double>(kSweepTasks, sweep_task_flow);
    double total = 0.0;
    for (const double f : flows) total += f;
    const exec::SweepStats& st = runner.last_stats();
    if (j == 1) {
      wall_j1 = st.wall_seconds;
      flow_j1 = total;
    }
    PARSCHED_CHECK(total == flow_j1,
                   "sweep flow totals diverged across job counts — "
                   "determinism contract violated");
    // Coarse clocks can report 0 wall time on a fast machine; report a
    // speedup of 0 rather than emitting inf into the table/JSON.
    const double speedup =
        st.wall_seconds > 0.0 ? wall_j1 / st.wall_seconds : 0.0;
    sp.add_row({static_cast<std::int64_t>(j),
                static_cast<std::int64_t>(kSweepTasks), st.wall_seconds,
                speedup, st.merge_seconds, st.idle_fraction(),
                static_cast<std::int64_t>(st.steals), total});
  }
  return sp;
}

// Pre-PR-5 dense-alive throughput (decisions/sec), measured on the
// commit immediately before the engine hot-path overhaul with the same
// harness as measure_dense_alive() below (RelWithDebInfo, otherwise-idle
// machine). Recorded so BENCH_e11_engine_perf.json always carries both
// sides of the before/after comparison; the speedup column is the live
// measurement against these. Absolute numbers are machine-specific — on
// slower/busier hardware expect the speedup_vs_baseline column, not the
// raw rate, to be comparable (the paired-run ratio at n = 10000 was
// 2.3x–2.6x across load conditions on the reference machine).
struct DenseBaseline {
  std::size_t n;
  double decisions_per_sec;
};
constexpr DenseBaseline kDenseBaselines[] = {
    {100, 447582.0},
    {1000, 69852.0},
    {10000, 10440.0},
};

// Timed dense-alive sweep for the perf report: repeat full simulations
// until >= 0.5 s of wall time (and >= 2 reps) per size, after one
// warm-up run, and tabulate live decisions/sec against the recorded
// pre-overhaul baseline.
Table measure_dense_alive() {
  Table da({"n", "reps", "decisions", "wall_seconds", "decisions_per_sec",
            "baseline_decisions_per_sec", "speedup_vs_baseline"},
           4);
  for (const DenseBaseline& base : kDenseBaselines) {
    const Instance inst = dense_alive_instance(base.n);
    auto sched = make_scheduler("isrpt");
    (void)simulate(inst, *sched);  // warm-up
    std::uint64_t decisions = 0;
    double wall = 0.0;
    std::int64_t reps = 0;
    while (wall < 0.5 || reps < 2) {
      const double t0 = obs::monotonic_seconds();
      const SimResult r = simulate(inst, *sched);
      wall += obs::monotonic_seconds() - t0;
      decisions += r.decisions;
      ++reps;
    }
    const double dps = static_cast<double>(decisions) / wall;
    da.add_row({static_cast<std::int64_t>(base.n), reps,
                static_cast<std::int64_t>(decisions), wall, dps,
                base.decisions_per_sec, dps / base.decisions_per_sec});
  }
  return da;
}

// ---- Incremental-orders dense-alive rows (PR 8) -------------------------
//
// The tentpole comparison: the persistent IncrementalOrders heaps
// (use_incremental_orders, O(log n) maintenance per event) against the
// per-decision ordering rebuild (cache on, incremental off: gather +
// selection over all n keys every decision). Full runs to completion are
// infeasible at n >= 1e5 — ~n decisions, each with an O(n) advance sweep
// — so a bounded-decision streaming harness admits the dense instance
// once and advances in small exact steps until `target` decisions have
// executed. Both arms are driven over the same advance schedule, so they
// execute bit-identical decision sequences (checked below: equal
// decision counts AND bit-equal fractional flow), and the paired rates
// are directly comparable.
//
// Two rates per arm:
//   * decisions_per_sec_* — full decision steps (allocate + rates +
//     advance sweep). The advance sweep's serial fractional-flow
//     accumulation is an O(n) bit-semantic floor shared by every arm, so
//     this improves but cannot scale freely with the ordering speedup.
//   * decide_* — the Scheduler::allocate() bucket alone
//     (RunStats::decide_seconds), where the ordering queries live. This
//     is the phase the heaps accelerate; the >= 5x floor is asserted
//     here, in-bench, and gated absolutely by tools/bench_compare.py.
struct DenseDriveSample {
  std::uint64_t decisions = 0;
  double wall_seconds = 0.0;
  double decide_seconds = 0.0;
  double fractional_flow = 0.0;
};

DenseDriveSample drive_dense_bounded(const Instance& inst,
                                     bool use_incremental,
                                     std::uint64_t target, double dt) {
  auto sched = make_scheduler("isrpt");
  EngineConfig cfg;
  cfg.collect_stats = true;
  cfg.use_incremental_orders = use_incremental;
  Engine eng(inst.machines(), cfg);
  eng.begin(*sched);
  for (const Job& j : inst.jobs()) eng.admit(j);
  // Sizes are >= 1, so no completion exists before t = 1; fast-forward
  // near the completion front, then creep across it in dt steps. Each
  // step past the front executes the decisions of every completion
  // cluster inside it, and both arms see the exact same schedule.
  double t = 0.875;
  const double t0 = obs::monotonic_seconds();
  eng.advance_to(t);
  while (eng.partial().decisions < target && !eng.drained()) {
    t += dt;
    eng.advance_to(t);
  }
  DenseDriveSample s;
  s.wall_seconds = obs::monotonic_seconds() - t0;
  s.decisions = eng.partial().decisions;
  s.decide_seconds = eng.partial().stats->decide_seconds;
  s.fractional_flow = eng.partial().fractional_flow;
  return s;  // the unfinished run is abandoned with the engine
}

Table measure_incremental_orders() {
  Table io({"n", "decisions", "wall_rebuild_seconds",
            "wall_incremental_seconds", "decisions_per_sec_rebuild",
            "decisions_per_sec_incremental", "full_step_speedup",
            "decide_rebuild_seconds", "decide_incremental_seconds",
            "decide_speedup"},
           4);
  struct RowSpec {
    std::size_t n;
    std::uint64_t target;  ///< decision budget (small at 1e6 by design)
    double dt;             ///< creep step across the completion front
  };
  constexpr RowSpec kRowSpecs[] = {
      {100'000, 320, 1e-3},
      {1'000'000, 48, 1e-4},
  };
  for (const RowSpec& spec : kRowSpecs) {
    const Instance inst = dense_alive_instance(spec.n);
    auto measure = [&](double& decide_speedup, double& full_speedup,
                       DenseDriveSample& rebuild, DenseDriveSample& inc) {
      rebuild = drive_dense_bounded(inst, false, spec.target, spec.dt);
      inc = drive_dense_bounded(inst, true, spec.target, spec.dt);
      PARSCHED_CHECK(rebuild.decisions == inc.decisions &&
                         rebuild.fractional_flow == inc.fractional_flow,
                     "incremental arm diverged from the rebuild arm on "
                     "the dense-alive drive");
      decide_speedup = rebuild.decide_seconds / inc.decide_seconds;
      full_speedup = rebuild.wall_seconds / inc.wall_seconds;
    };
    double decide_speedup = 0.0;
    double full_speedup = 0.0;
    DenseDriveSample rebuild;
    DenseDriveSample inc;
    measure(decide_speedup, full_speedup, rebuild, inc);
    if (decide_speedup < 5.0) {
      // One preempted pass reads as a regression; a real one reproduces.
      // Re-measure once and keep the better verdict before failing.
      double retry_decide = 0.0;
      double retry_full = 0.0;
      DenseDriveSample retry_rebuild;
      DenseDriveSample retry_inc;
      measure(retry_decide, retry_full, retry_rebuild, retry_inc);
      if (retry_decide > decide_speedup) {
        decide_speedup = retry_decide;
        full_speedup = retry_full;
        rebuild = retry_rebuild;
        inc = retry_inc;
      }
    }
    PARSCHED_CHECK(decide_speedup >= 5.0,
                   "incremental orders decide-phase speedup fell below "
                   "the 5x floor on the dense-alive drive");
    io.add_row({static_cast<std::int64_t>(spec.n),
                static_cast<std::int64_t>(inc.decisions),
                rebuild.wall_seconds, inc.wall_seconds,
                static_cast<double>(rebuild.decisions) / rebuild.wall_seconds,
                static_cast<double>(inc.decisions) / inc.wall_seconds,
                full_speedup, rebuild.decide_seconds, inc.decide_seconds,
                decide_speedup});
  }
  return io;
}

// ---- Rate-kernel microbenchmark (PR 10) ---------------------------------
//
// The three ways the engine can evaluate speed * Γ_i(x_i) over the alive
// set, timed over the SoA flat arrays the engine actually feeds them:
//   * scalar — the historic per-job loop: one SpeedupCurve::rate() call
//     (one std::pow for power-law jobs) per element;
//   * batch  — speedup::rate_batch, the default arm (same arithmetic,
//     flat-array layout; bit-equality with scalar is asserted inline);
//   * fast   — speedup::rate_batch_fast, the opt-in exp(α·log x) arm
//     with the last-value memo (ULP-banded vs scalar, asserted inline).
// Two populations bracket the memo: "shared" is the EQUI dense-allocation
// shape (every element the same (x, α) — one transcendental per pass),
// "mixed" draws distinct (x, α) per element so the memo never hits. The
// >= 2x shared-population fast-vs-scalar floor is asserted here (with
// the retry-once pattern for noisy neighbors) and gated absolutely by
// tools/bench_compare.py; the per-arm element rates are relative gates.
struct KernelPopulation {
  std::string case_name;   ///< table key: population + n
  std::string population;  ///< "shared" | "mixed"
  std::size_t n = 0;
  std::vector<SpeedupCurve> curves;
  std::vector<std::uint8_t> kinds;
  std::vector<double> alphas;
  std::vector<double> xs;
};

KernelPopulation make_kernel_population(const std::string& population,
                                        std::size_t n) {
  KernelPopulation p;
  p.case_name = population + "_n" + std::to_string(n);
  p.population = population;
  p.n = n;
  p.curves.reserve(n);
  p.kinds.reserve(n);
  p.alphas.reserve(n);
  p.xs.reserve(n);
  Rng rng(0x5EED + n);
  for (std::size_t i = 0; i < n; ++i) {
    double a = 0.5, x = 4.0;  // the shared EQUI-style shape
    if (population == "mixed") {
      a = rng.uniform(0.05, 0.95);
      x = rng.uniform(1.0 + 1e-6, 16.0);  // keep every element power-law
    }
    p.curves.push_back(SpeedupCurve::power_law(a));
    p.kinds.push_back(static_cast<std::uint8_t>(p.curves.back().kind()));
    p.alphas.push_back(p.curves.back().alpha());
    p.xs.push_back(x);
  }
  return p;
}

/// Repeat `pass` until >= 0.2 s of wall (and >= 3 reps) after one
/// warm-up, returning million elements per second.
template <typename F>
double time_kernel_arm(std::size_t n, F&& pass) {
  pass();  // warm-up
  double wall = 0.0;
  std::int64_t reps = 0;
  while (wall < 0.2 || reps < 3) {
    const double t0 = obs::monotonic_seconds();
    pass();
    wall += obs::monotonic_seconds() - t0;
    ++reps;
  }
  return static_cast<double>(n) * static_cast<double>(reps) / wall / 1e6;
}

std::uint64_t kernel_ulp_diff(double a, double b) {
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

Table measure_rate_kernel() {
  Table rk({"case", "population", "n", "scalar_melems_per_sec",
            "batch_melems_per_sec", "fast_melems_per_sec", "batch_speedup",
            "fast_speedup"},
           4);
  constexpr double kSpeed = 1.0;
  for (const char* population : {"shared", "mixed"}) {
    for (const std::size_t n : {10'000u, 100'000u, 1'000'000u}) {
      const KernelPopulation p = make_kernel_population(population, n);
      std::vector<double> scalar_out(n), batch_out(n), fast_out(n);
      const auto scalar_pass = [&] {
        for (std::size_t i = 0; i < p.n; ++i) {
          scalar_out[i] = kSpeed * p.curves[i].rate(p.xs[i]);
        }
        benchmark::DoNotOptimize(scalar_out.data());
      };
      const auto batch_pass = [&] {
        speedup::rate_batch(p.kinds, p.alphas, p.xs, kSpeed, batch_out);
        benchmark::DoNotOptimize(batch_out.data());
      };
      const auto fast_pass = [&] {
        speedup::rate_batch_fast(p.kinds, p.alphas, p.xs, kSpeed, fast_out);
        benchmark::DoNotOptimize(fast_out.data());
      };
      // Correctness before timing: the default arm is bit-identical to
      // the scalar loop, the fast arm stays inside the ULP envelope.
      scalar_pass();
      batch_pass();
      fast_pass();
      for (std::size_t i = 0; i < n; ++i) {
        PARSCHED_CHECK(batch_out[i] == scalar_out[i],
                       "rate_batch diverged from the scalar loop");
        PARSCHED_CHECK(kernel_ulp_diff(fast_out[i], scalar_out[i]) <= 64,
                       "rate_batch_fast drifted beyond the ULP envelope");
      }
      double scalar_rate = time_kernel_arm(n, scalar_pass);
      const double batch_rate = time_kernel_arm(n, batch_pass);
      double fast_rate = time_kernel_arm(n, fast_pass);
      double fast_speedup = fast_rate / scalar_rate;
      if (p.population == "shared" && fast_speedup < 2.0) {
        // One preempted pass reads as a regression; a real one
        // reproduces. Re-measure the pair once, keep the better verdict.
        const double retry_scalar = time_kernel_arm(n, scalar_pass);
        const double retry_fast = time_kernel_arm(n, fast_pass);
        if (retry_fast / retry_scalar > fast_speedup) {
          scalar_rate = retry_scalar;
          fast_rate = retry_fast;
          fast_speedup = retry_fast / retry_scalar;
        }
      }
      if (p.population == "shared") {
        PARSCHED_CHECK(fast_speedup >= 2.0,
                       "shared-population fast-kernel speedup fell below "
                       "the 2x floor");
      }
      rk.add_row({p.case_name, p.population, static_cast<std::int64_t>(n),
                  scalar_rate, batch_rate, fast_rate,
                  batch_rate / scalar_rate, fast_speedup});
    }
  }
  return rk;
}

// Flight-recorder overhead on the dense-alive workload: the recorder
// sits on the engine's per-decision hot path (one relaxed ring write per
// decision/admission/completion), so this is the worst case for its
// cost. Paired runs — recorder off, then a 4096-slot ring attached —
// with the same repeat-until-0.5s harness as measure_dense_alive().
// Interleaving (off/on per rep) would be fairer against frequency
// drift, but paired blocks keep the two rates comparable to the
// dense_alive table above. The <= 3% budget is asserted here (with
// slack for timer noise at small n) rather than only eyeballed in the
// report.
struct OverheadSample {
  double wall_off = 0.0;   ///< median per-rep seconds, recorder off
  double wall_on = 0.0;    ///< median per-rep seconds, recorder on
  std::int64_t reps = 0;
  std::uint64_t decisions = 0;  ///< per rep (identical both arms)
};

OverheadSample measure_overhead_once(const Instance& inst,
                                     std::int64_t reps) {
  auto sched = make_scheduler("isrpt");
  obs::FlightRecorder recorder(4096);
  EngineConfig off;
  EngineConfig on;
  on.recorder = &recorder;
  (void)simulate(inst, *sched, off);  // warm-up
  (void)simulate(inst, *sched, on);
  std::vector<double> walls_off;
  std::vector<double> walls_on;
  OverheadSample s;
  s.reps = reps;
  for (std::int64_t r = 0; r < reps; ++r) {
    double t0 = obs::monotonic_seconds();
    const SimResult a = simulate(inst, *sched, off);
    walls_off.push_back(obs::monotonic_seconds() - t0);
    t0 = obs::monotonic_seconds();
    const SimResult b = simulate(inst, *sched, on);
    walls_on.push_back(obs::monotonic_seconds() - t0);
    PARSCHED_CHECK(a.decisions == b.decisions,
                   "recorder changed the decision sequence");
    s.decisions = a.decisions;
  }
  // Median per-rep wall: one preempted rep (CI neighbors, frequency
  // dips) must not decide the overhead verdict the way a sum would.
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  s.wall_off = median(walls_off);
  s.wall_on = median(walls_on);
  return s;
}

Table measure_recorder_overhead() {
  Table ro({"n", "reps", "wall_off_seconds", "wall_on_seconds",
            "decisions_per_sec_off", "decisions_per_sec_on",
            "overhead_pct"},
           4);
  for (const std::size_t n : {1000u, 10000u}) {
    const Instance inst = dense_alive_instance(n);
    const std::int64_t reps = n <= 1000 ? 41 : 7;
    OverheadSample s = measure_overhead_once(inst, reps);
    double overhead_pct = (s.wall_on / s.wall_off - 1.0) * 100.0;
    if (overhead_pct > 3.0) {
      // One noisy pass is indistinguishable from a real regression;
      // a real regression reproduces, noise does not. Re-measure once
      // and keep the better verdict before failing the budget.
      const OverheadSample retry = measure_overhead_once(inst, reps);
      const double retry_pct =
          (retry.wall_on / retry.wall_off - 1.0) * 100.0;
      if (retry_pct < overhead_pct) {
        s = retry;
        overhead_pct = retry_pct;
      }
    }
    PARSCHED_CHECK(overhead_pct <= 3.0,
                   "flight recorder overhead exceeds the 3% budget on "
                   "the dense-alive hot path");
    const double dps_off = static_cast<double>(s.decisions) / s.wall_off;
    const double dps_on = static_cast<double>(s.decisions) / s.wall_on;
    ro.add_row({static_cast<std::int64_t>(n), s.reps, s.wall_off,
                s.wall_on, dps_off, dps_on, overhead_pct});
  }
  return ro;
}

// One instrumented, timed pass per policy on the 10k-job perf instance
// plus the parallel-speedup table; written as the machine-readable perf
// baseline when PARSCHED_REPORT=1.
void emit_perf_report() {
  if (!obs::report_enabled()) return;
  const Instance inst = make_random_instance(perf_config(10000));
  obs::BenchReport report("e11_engine_perf");
  for (const char* policy : {"isrpt", "equi", "greedy", "seq-srpt"}) {
    report.add_run(bench::timed_run(policy, inst));
  }
  const Table da = measure_dense_alive();
  std::cout << "\n=== E11: dense-alive decision rate (isrpt, m=16, "
               "batch release) ===\n";
  da.print(std::cout);
  report.add_table("dense_alive", da);
  const Table io = measure_incremental_orders();
  std::cout << "\n=== E11: incremental orders vs per-decision rebuild "
               "(isrpt, dense-alive, bounded-decision drive) ===\n";
  io.print(std::cout);
  report.add_table("incremental_orders", io);
  const Table ro = measure_recorder_overhead();
  std::cout << "\n=== E11: flight-recorder overhead (isrpt, dense-alive, "
               "4096-slot ring) ===\n";
  ro.print(std::cout);
  report.add_table("flight_recorder_overhead", ro);
  const Table rk = measure_rate_kernel();
  std::cout << "\n=== E11: rate-kernel throughput (scalar vs batch vs "
               "fast, shared/mixed populations) ===\n";
  rk.print(std::cout);
  report.add_table("rate_kernel", rk);
  const Table sp = measure_parallel_speedup();
  std::cout << "\n=== E11: parallel sweep speedup (" << kSweepTasks
            << " tasks, hardware_concurrency="
            << exec::ThreadPool::hardware_threads() << ") ===\n";
  sp.print(std::cout);
  report.add_table("parallel_speedup", sp);
  report.set_meta(
      "hardware_concurrency",
      static_cast<double>(exec::ThreadPool::hardware_threads()));
  report.set_meta("sweep_tasks", static_cast<double>(kSweepTasks));
  report.set_metrics(obs::MetricsRegistry::global().snapshot());
  report.write(obs::report_path("e11_engine_perf"));
  std::cout << "perf baseline written to "
            << obs::report_path("e11_engine_perf") << "\n";
}

}  // namespace
}  // namespace parsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  parsched::emit_perf_report();
  return 0;
}
