// E11 — simulator throughput (google-benchmark microbenchmarks).
//
// Not a paper experiment: establishes that the substrate scales to the
// instance sizes the reproduction sweeps use (hundreds of thousands of
// jobs) on a laptop, as the repro band promises.
//
// With PARSCHED_REPORT=1 this binary is also the canonical timed
// baseline of the perf trajectory: after the microbenchmarks it runs one
// instrumented pass per engine policy (EngineConfig::collect_stats) and
// writes BENCH_e11_engine_perf.json — wall time, decision counts, and
// the decide/solver/observer per-phase buckets. Pass
// --benchmark_filter=NONE to emit the report without the (slow)
// microbenchmark sweep.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "sched/registry.hpp"
#include "sched/opt/plan.hpp"
#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"
#include "workload/greedy_killer.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

RandomWorkloadConfig perf_config(std::int64_t jobs) {
  RandomWorkloadConfig cfg;
  cfg.machines = 16;
  cfg.jobs = static_cast<std::size_t>(jobs);
  cfg.P = 64.0;
  cfg.load = 1.0;
  cfg.alpha_lo = cfg.alpha_hi = 0.5;
  cfg.seed = 4242;
  return cfg;
}

void BM_EnginePolicy(benchmark::State& state, const std::string& policy) {
  const Instance inst = make_random_instance(perf_config(state.range(0)));
  auto sched = make_scheduler(policy);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const SimResult r = simulate(inst, *sched);
    events += r.events;
    benchmark::DoNotOptimize(r.total_flow);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(inst.size());
}

void BM_Isrpt(benchmark::State& state) { BM_EnginePolicy(state, "isrpt"); }
void BM_Equi(benchmark::State& state) { BM_EnginePolicy(state, "equi"); }
void BM_Greedy(benchmark::State& state) { BM_EnginePolicy(state, "greedy"); }

BENCHMARK(BM_Isrpt)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Equi)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Greedy)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SrptRelaxation(benchmark::State& state) {
  const Instance inst = make_random_instance(perf_config(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(srpt_speed_m_lower_bound(inst));
  }
}
BENCHMARK(BM_SrptRelaxation)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PlanExecution(benchmark::State& state) {
  GreedyKillerConfig cfg;
  cfg.machines = 64;
  cfg.alpha = 0.5;
  cfg.stream_time = static_cast<double>(state.range(0));
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  const Plan plan = greedy_killer_alternative_plan(gk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(execute_plan(gk.instance, plan).total_flow);
  }
  state.counters["jobs"] = static_cast<double>(gk.instance.size());
}
BENCHMARK(BM_PlanExecution)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// One instrumented, timed pass per policy on the 10k-job perf instance;
// written as the machine-readable perf baseline when PARSCHED_REPORT=1.
void emit_perf_report() {
  if (!obs::report_enabled()) return;
  const Instance inst = make_random_instance(perf_config(10000));
  std::vector<obs::RunReport> runs;
  for (const char* policy : {"isrpt", "equi", "greedy", "seq-srpt"}) {
    runs.push_back(bench::timed_run(policy, inst));
  }
  bench::write_bench_report("e11_engine_perf", std::move(runs));
  std::cout << "perf baseline written to "
            << obs::report_path("e11_engine_perf") << "\n";
}

}  // namespace
}  // namespace parsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  parsched::emit_perf_report();
  return 0;
}
