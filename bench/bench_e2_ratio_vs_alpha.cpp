// E2 — Theorem 1's dependence on alpha: the 4^{1/(1-alpha)} envelope.
//
// Fixed P, sweep alpha toward 1. The adversarial construction's phase
// structure degenerates as alpha -> 1 (the reduction factor r -> 0, so
// fewer phases fit below P), which is exactly the paper's story: the
// lower-bound family needs ever larger P as alpha -> 1, while the upper
// bound's constant 4^{1/(1-alpha)} blows up. We report both the measured
// ratios and the envelope so the gap is visible.
//
// Both alpha sweeps run sharded on bench::sweep_runner(); output bytes
// are identical at any PARSCHED_JOBS value.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "sched/intermediate_srpt.hpp"
#include "util/mathx.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const double P = opt.get_double("P", 256.0);
  const auto alphas =
      opt.get_doubles("alpha", {0.0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.75});

  const int seeds = static_cast<int>(opt.get_int("seeds", 3));

  // One sweep task per alpha; rows merge in index order so the emitted
  // bytes are identical at any PARSCHED_JOBS value.
  auto runner = bench::sweep_runner();
  const auto adv_rows = runner.map<std::vector<Cell>>(
      alphas.size(), [&](const exec::TaskContext& ctx) {
        const double alpha = alphas[ctx.index];
        AdversaryConfig cfg;
        cfg.machines = m;
        cfg.P = P;
        cfg.alpha = alpha;
        const AdversaryParams params = adversary_params(cfg);
        const auto pt = bench::run_adversary_point("isrpt", cfg);
        return std::vector<Cell>{
            alpha, params.r, static_cast<std::int64_t>(pt.phases),
            std::string(pt.case1 ? "yes" : "no"), pt.ratio_lb(),
            pt.ratio_extrapolated(),
            theorem1_envelope(std::max(alpha, 0.01), P)};
      });
  Table adv({"alpha", "r", "phases", "case1", "ratio_at_X0", "ratio_at_P^2",
             "theorem1_envelope"});
  for (const auto& row : adv_rows) adv.add_row(row);
  emit_experiment(
      "E2a: ISRPT ratio vs alpha (adversarial, fixed P)",
      "The envelope 4^{1/(1-alpha)} log P grows steeply with alpha; the "
      "realized adversary weakens (fewer phases) as alpha -> 1.",
      adv);

  const auto rnd_rows = runner.map<std::vector<Cell>>(
      alphas.size(), [&](const exec::TaskContext& ctx) {
        const double alpha = alphas[ctx.index];
        RunningStats stats;
        for (int s = 0; s < seeds; ++s) {
          RandomWorkloadConfig cfg;
          cfg.machines = m;
          cfg.jobs = 400;
          cfg.P = P;
          cfg.alpha_lo = cfg.alpha_hi = alpha;
          cfg.load = 1.0;
          cfg.seed = static_cast<std::uint64_t>(s) * 311 + 17;
          const Instance inst = make_random_instance(cfg);
          IntermediateSrpt sched;
          stats.add(simulate(inst, sched).total_flow /
                    opt_lower_bound(inst));
        }
        return std::vector<Cell>{alpha, stats.mean(), stats.max(),
                                 theorem1_envelope(alpha, P)};
      });
  Table rnd({"alpha", "ratio_ub_mean", "ratio_ub_max", "theorem1_envelope"});
  for (const auto& row : rnd_rows) rnd.add_row(row);
  emit_experiment("E2b: ISRPT ratio vs alpha (random, critical load)",
                  "Average case across alpha at fixed P.", rnd);
  return 0;
}
