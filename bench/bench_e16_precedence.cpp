// E16 (extension) — precedence constraints ([17] Robert–Schabanel).
//
// Fork-join pipelines (parallel branches, sequential barriers) and layered
// random DAGs. Successors are released only when their predecessors
// complete in the *observed* schedule, so a policy that mishandles the
// barrier tasks delays entire pipelines. We report total flow over the
// provable DAG lower bound (earliest-completion relaxation) and makespan
// over the critical path.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "simcore/precedence.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "workload/dag.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 16));
  const std::vector<std::string> policies{"isrpt", "seq-srpt", "par-srpt",
                                          "equi", "laps:0.5", "mlf"};

  Table t({"workload", "policy", "flow/LB", "makespan/CP"}, 3);

  ForkJoinConfig fj;
  fj.machines = m;
  fj.pipelines = 8;
  fj.stages = 3;
  fj.branches = 4;
  fj.seed = 5;
  const DagInstance fork_join = make_fork_join(fj);
  for (const auto& policy : policies) {
    auto sched = make_scheduler(policy);
    const SimResult r = simulate_dag(fork_join, *sched);
    t.add_row({std::string("fork-join"), policy,
               r.total_flow / fork_join.flow_lower_bound(),
               r.makespan / fork_join.critical_path()});
  }

  LayeredDagConfig ld;
  ld.machines = m;
  ld.layers = 5;
  ld.width = 10;
  ld.seed = 9;
  const DagInstance layered = make_layered_dag(ld);
  for (const auto& policy : policies) {
    auto sched = make_scheduler(policy);
    const SimResult r = simulate_dag(layered, *sched);
    t.add_row({std::string("layered"), policy,
               r.total_flow / layered.flow_lower_bound(),
               r.makespan / layered.critical_path()});
  }

  emit_experiment(
      "E16: precedence-constrained workloads (fork-join and layered DAGs)",
      "flow/LB vs the earliest-completion relaxation; makespan/CP vs the "
      "critical path. Barrier mishandling delays whole pipelines.",
      t);
  return 0;
}
