// E10 — ablation of Intermediate-SRPT's design choices.
//
// The paper's algorithm makes two decisions: (1) switch to equipartition
// exactly at |A| = m (not earlier, not later), and (2) split *evenly* when
// underloaded rather than boosting the shortest job. We compare:
//   isrpt            — the paper's algorithm (theta = 1, even split)
//   isrpt-thresh:2,4 — equipartition already below 2m / 4m alive jobs
//   isrpt-boost      — leftovers hoarded by the shortest job (the error
//                      the paper attributes to Greedy)
//   quantized-equi   — whole-processor round-robin (model-robustness check)
// on both the adversarial family and random critical-load workloads.
#include <iostream>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const std::vector<std::string> variants{
      "isrpt", "isrpt-thresh:2", "isrpt-thresh:4", "isrpt-boost",
      "quantized-equi:0.25"};

  Table adv({"variant", "P", "ratio_at_X0", "ratio_at_P^2"});
  for (const auto& variant : variants) {
    for (double P : opt.get_doubles("P", {32, 128})) {
      AdversaryConfig cfg;
      cfg.machines = m;
      cfg.P = P;
      cfg.alpha = 0.25;
      const auto pt = bench::run_adversary_point(variant, cfg);
      adv.add_row({variant, P, pt.ratio_lb(), pt.ratio_extrapolated()});
    }
  }
  emit_experiment("E10a: ISRPT ablations on the adversarial family",
                  "The paper's exact policy should be no worse than any "
                  "variant; boosting the shortest job should hurt.",
                  adv);

  Table rnd({"variant", "ratio_ub_mean", "ratio_ub_max"});
  for (const auto& variant : variants) {
    RunningStats stats;
    for (int s = 0; s < 5; ++s) {
      RandomWorkloadConfig cfg;
      cfg.machines = m;
      cfg.jobs = 400;
      cfg.P = 64.0;
      cfg.load = 1.0;
      cfg.alpha_lo = cfg.alpha_hi = 0.5;
      cfg.seed = static_cast<std::uint64_t>(s) * 271 + 5;
      const Instance inst = make_random_instance(cfg);
      auto sched = make_scheduler(variant);
      stats.add(simulate(inst, *sched).total_flow /
                opt_lower_bound(inst));
    }
    rnd.add_row({variant, stats.mean(), stats.max()});
  }
  emit_experiment("E10b: ISRPT ablations on random critical load",
                  "Same comparison on stochastic input.", rnd);
  return 0;
}
