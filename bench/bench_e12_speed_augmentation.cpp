// E12 (extension) — resource augmentation, the Section-1.2 related-work
// landscape the paper positions itself against.
//
// An algorithm is s-speed c-competitive when, given processors of speed s,
// its flow is at most c times OPT's flow on speed-1 processors. Known:
//   * EQUI is (2+eps)-speed O(1)-competitive [Edmonds, Scheduling in the
//     dark]; at speed < 2 it can be badly non-competitive;
//   * LAPS(beta) is scalable: (1+eps)-speed O(1)-competitive [Edmonds &
//     Pruhs];
//   * Intermediate-SRPT needs NO augmentation — O(log P)-competitive at
//     speed 1 (the paper's point).
// We sweep the speed and report flow(policy at speed s) / LB(OPT at speed
// 1) on overloaded random instances.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 8));
  const auto speeds = opt.get_doubles("speed", {1.0, 1.2, 1.5, 2.0, 2.5});
  const int seeds = static_cast<int>(opt.get_int("seeds", 4));
  const std::vector<std::string> policies{"equi", "laps:0.5", "isrpt"};

  std::vector<std::string> headers{"speed"};
  for (const auto& p : policies) headers.push_back(p);
  Table t(headers, 3);
  for (double speed : speeds) {
    std::vector<Cell> row;
    row.emplace_back(speed);
    for (const auto& policy : policies) {
      RunningStats stats;
      for (int s = 0; s < seeds; ++s) {
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = 400;
        cfg.P = 64.0;
        cfg.load = 1.1;  // past critical at speed 1
        cfg.alpha_lo = cfg.alpha_hi = 0.5;
        cfg.seed = static_cast<std::uint64_t>(s) * 709 + 11;
        const Instance inst = make_random_instance(cfg);
        auto sched = make_scheduler(policy);
        EngineConfig ec;
        ec.speed = speed;
        const double flow = simulate(inst, *sched, ec).total_flow;
        stats.add(flow / opt_lower_bound(inst));
      }
      row.emplace_back(stats.mean());
    }
    t.add_row(std::move(row));
  }
  emit_experiment(
      "E12: resource augmentation (s-speed competitiveness)",
      "EQUI needs speed ~2 to become competitive, LAPS only (1+eps); "
      "Intermediate-SRPT is already competitive at speed 1 (the paper's "
      "point). Ratios vs the speed-1 OPT lower bound.",
      t);
  return 0;
}
