// E9 — the introduction's motivation: how do the policies compare on
// "realistic" many-core workloads?
//
// Poisson arrivals, bounded-Pareto sizes, mixed parallelizability, load
// swept from light to past-critical. Reports mean flow time per policy
// (the objective the paper optimizes) averaged over seeds.
#include <iostream>

#include "analysis/experiment.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

using namespace parsched;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const int m = static_cast<int>(opt.get_int("machines", 16));
  const auto loads = opt.get_doubles("load", {0.5, 0.7, 0.9, 1.1});
  const int seeds = static_cast<int>(opt.get_int("seeds", 5));
  const std::size_t jobs =
      static_cast<std::size_t>(opt.get_int("jobs", 600));
  const std::vector<std::string> policies{"isrpt",    "seq-srpt", "par-srpt",
                                          "greedy",   "equi",     "laps:0.5"};

  std::vector<std::string> headers{"load"};
  for (const auto& p : policies) headers.push_back(p);
  Table t(headers, 2);
  for (double load : loads) {
    std::vector<Cell> row;
    row.emplace_back(load);
    for (const auto& policy : policies) {
      RunningStats stats;
      for (int s = 0; s < seeds; ++s) {
        RandomWorkloadConfig cfg;
        cfg.machines = m;
        cfg.jobs = jobs;
        cfg.P = 128.0;
        cfg.size_law = SizeLaw::kBoundedPareto;
        cfg.alpha_law = AlphaLaw::kMixed;
        cfg.alpha_lo = 0.2;
        cfg.alpha_hi = 0.9;
        cfg.load = load;
        cfg.seed = static_cast<std::uint64_t>(s) * 1009 + 41;
        const Instance inst = make_random_instance(cfg);
        auto sched = make_scheduler(policy);
        stats.add(simulate(inst, *sched).avg_flow());
      }
      row.push_back(stats.mean());
    }
    t.add_row(std::move(row));
  }
  emit_experiment(
      "E9: mean flow time per policy under realistic mixed workloads",
      "Poisson arrivals, bounded-Pareto sizes, mixed parallelizability; "
      "lower is better. ISRPT should win or tie across the load range.",
      t);
  return 0;
}
