// Extension features: speed augmentation, multi-phase jobs, Oldest-EQUI,
// and the phased workload generator.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/equi.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/opt/plan.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/parallel_srpt.hpp"
#include "sched/registry.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "workload/phased.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// ----------------------------------------------------- speed augmentation

TEST(SpeedAugmentation, DoublesProcessingRate) {
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.5)});
  IntermediateSrpt sched;
  EngineConfig cfg;
  cfg.speed = 2.0;
  const SimResult r = simulate(inst, sched, cfg);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
}

TEST(SpeedAugmentation, FractionalSpeedSlowsDown) {
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.5)});
  IntermediateSrpt sched;
  EngineConfig cfg;
  cfg.speed = 0.5;
  const SimResult r = simulate(inst, sched, cfg);
  EXPECT_NEAR(r.records[0].completion, 8.0, 1e-9);
}

TEST(SpeedAugmentation, RejectsNonPositiveSpeed) {
  EngineConfig cfg;
  cfg.speed = 0.0;
  EXPECT_THROW(Engine(2, cfg), std::invalid_argument);
}

TEST(SpeedAugmentation, FlowDecreasesMonotonicallyInSpeed) {
  std::vector<Job> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i * 0.4,
                            1.0 + (i % 7), 0.5));
  }
  Instance inst(4, jobs);
  Equi sched;
  double prev = 1e18;
  for (double s : {1.0, 1.25, 1.5, 2.0}) {
    EngineConfig cfg;
    cfg.speed = s;
    const double flow = simulate(inst, sched, cfg).total_flow;
    EXPECT_LT(flow, prev);
    prev = flow;
  }
}

// ---------------------------------------------------------- phased jobs

TEST(PhasedJobs, TwoPhaseHandComputed) {
  // Phase 1: 4 units fully parallel; phase 2: 2 units sequential. On
  // m = 4 with Parallel-SRPT: phase 1 at rate 4 (1 time unit), phase 2 at
  // rate 1 (2 time units) -> completion at 3.
  Job j = make_phased_job(0, 0.0,
                          {{4.0, SpeedupCurve::fully_parallel()},
                           {2.0, SpeedupCurve::sequential()}});
  EXPECT_DOUBLE_EQ(j.size, 6.0);
  Instance inst(4, {j});
  ParallelSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 3.0, 1e-9);
}

TEST(PhasedJobs, ThreePhasesWithPowerLaws) {
  // m = 16: power_law(0.5) phase at rate 4, sequential at 1, parallel 16.
  Job j = make_phased_job(0, 0.0,
                          {{8.0, SpeedupCurve::power_law(0.5)},
                           {3.0, SpeedupCurve::sequential()},
                           {16.0, SpeedupCurve::fully_parallel()}});
  Instance inst(16, {j});
  ParallelSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 8.0 / 4.0 + 3.0 + 1.0, 1e-9);
}

TEST(PhasedJobs, PhaseBoundaryIsAnExactEvent) {
  // Trajectory knots include the phase boundary, with correct slope change.
  Job j = make_phased_job(0, 0.0,
                          {{4.0, SpeedupCurve::fully_parallel()},
                           {4.0, SpeedupCurve::sequential()}});
  Instance inst(2, {j});
  ParallelSrpt sched;
  TrajectoryRecorder rec;
  (void)simulate(inst, sched, {}, {&rec});
  // Phase 1 at rate 2 on [0, 2); phase 2 at rate 1 on [2, 6).
  EXPECT_NEAR(rec.remaining_at(0, 1.0), 6.0, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 2.0), 4.0, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 4.0), 2.0, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 6.0), 0.0, 1e-9);
}

TEST(PhasedJobs, SrptOrderingUsesTotalRemainingWork) {
  // Job A: 2 units left in total; job B: 3 units. Sequential-SRPT on one
  // machine must prefer A regardless of phase structure.
  Job a = make_phased_job(0, 0.0,
                          {{1.0, SpeedupCurve::sequential()},
                           {1.0, SpeedupCurve::sequential()}});
  Job b = make_job(1, 0.0, 3.0, 0.0);
  Instance inst(1, {a, b});
  SequentialSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_EQ(r.records[0].job.id, 0u);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 5.0, 1e-9);
}

TEST(PhasedJobs, SpanLowerBoundSumsPhases) {
  // m = 4, alpha 0.5 phase: Γ(4) = 2; sequential phase: Γ(4) = 1.
  Job j = make_phased_job(0, 0.0,
                          {{4.0, SpeedupCurve::power_law(0.5)},
                           {3.0, SpeedupCurve::sequential()}});
  Instance inst(4, {j});
  EXPECT_NEAR(span_lower_bound(inst), 4.0 / 2.0 + 3.0, 1e-9);
}

TEST(PhasedJobs, NormalizeRejectsBadPhases) {
  Job j;
  j.phases = {{0.0, SpeedupCurve::sequential()}};
  EXPECT_THROW(j.normalize_phases(), std::invalid_argument);
}

TEST(PhasedJobs, PlansRejectMultiPhaseJobs) {
  Job j = make_phased_job(0, 0.0,
                          {{1.0, SpeedupCurve::sequential()},
                           {1.0, SpeedupCurve::sequential()}});
  Instance inst(1, {j});
  Plan plan;
  plan.add(0, 0.0, 2.0, 1.0);
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(PhasedJobs, RealizedJobsRoundTripThroughResimulation) {
  PhasedWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 40;
  cfg.seed = 3;
  const Instance inst = make_phased_instance(cfg);
  IntermediateSrpt sched;
  const SimResult first = simulate(inst, sched);
  const Instance again(4, first.realized_jobs());
  const SimResult second = simulate(inst, sched);
  EXPECT_NEAR(first.total_flow, second.total_flow, 1e-9 * first.total_flow);
  // The records carry the full phase structure back out.
  bool any_phased = false;
  for (const auto& rec : first.records) {
    if (!rec.job.phases.empty()) any_phased = true;
  }
  EXPECT_TRUE(any_phased);
}

// ------------------------------------------------------ phased workload

TEST(PhasedWorkload, GeneratesAlternatingPhases) {
  PhasedWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 50;
  cfg.max_rounds = 2;
  cfg.seed = 11;
  const Instance inst = make_phased_instance(cfg);
  EXPECT_EQ(inst.size(), 50u);
  for (const Job& j : inst.jobs()) {
    ASSERT_FALSE(j.phases.empty());
    EXPECT_EQ(j.phases.size() % 2, 0u);  // (parallel, bottleneck) pairs
    double total = 0.0;
    for (const auto& p : j.phases) total += p.work;
    EXPECT_NEAR(total, j.size, 1e-9 * j.size);
    EXPECT_LE(j.size, cfg.P + 1e-9);
  }
}

TEST(PhasedWorkload, AllPoliciesCompleteIt) {
  PhasedWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.seed = 17;
  const Instance inst = make_phased_instance(cfg);
  const double lb = opt_lower_bound(inst);
  for (const auto& name : standard_policy_names()) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate(inst, *sched);
    EXPECT_EQ(r.jobs(), inst.size()) << name;
    EXPECT_GE(r.total_flow, lb - 1e-6 * lb) << name;
  }
}

TEST(PhasedWorkload, RejectsBadConfig) {
  PhasedWorkloadConfig cfg;
  cfg.max_rounds = 0;
  EXPECT_THROW((void)make_phased_instance(cfg), std::invalid_argument);
  cfg.max_rounds = 2;
  cfg.bottleneck_fraction = 1.5;
  EXPECT_THROW((void)make_phased_instance(cfg), std::invalid_argument);
}

// ---------------------------------------------------------- Oldest-EQUI

TEST(OldestEqui, ServesOldestJobsFirst) {
  // beta = 0.5, 2 jobs: only the OLDEST gets processors.
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.1, 2.0, 0.5)});
  OldestEqui sched(0.5);
  const SimResult r = simulate(inst, sched);
  // job0 monopolizes: rate 2^0.5 from 0; done at 2/sqrt(2) = sqrt(2).
  ASSERT_EQ(r.records[0].job.id, 0u);
  EXPECT_NEAR(r.records[0].completion, std::sqrt(2.0), 1e-9);
}

TEST(OldestEqui, BetaOneIsEqui) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i * 0.3, 2.0, 0.5));
  }
  Instance inst(4, jobs);
  OldestEqui oldest(1.0);
  Equi equi;
  EXPECT_NEAR(simulate(inst, oldest).total_flow,
              simulate(inst, equi).total_flow, 1e-6);
}

TEST(OldestEqui, BoundsMaxFlowBetterThanLaps) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 200;
  cfg.load = 1.2;
  cfg.seed = 29;
  const Instance inst = make_random_instance(cfg);
  auto oldest = make_scheduler("oldest-equi:0.5");
  auto laps = make_scheduler("laps:0.5");
  EXPECT_LT(simulate(inst, *oldest).max_flow(),
            simulate(inst, *laps).max_flow());
}

TEST(OldestEqui, RejectsBadBeta) {
  EXPECT_THROW(OldestEqui(0.0), std::invalid_argument);
  EXPECT_THROW(OldestEqui(1.0001), std::invalid_argument);
}

TEST(OldestEqui, RegistryBuildsIt) {
  EXPECT_EQ(make_scheduler("oldest-equi:0.25")->name(), "Oldest-EQUI(0.25)");
}

}  // namespace
}  // namespace parsched
