// Instance text (de)serialization: round trips, format details, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "sched/intermediate_srpt.hpp"
#include "simcore/engine.hpp"
#include "simcore/io.hpp"
#include "workload/adversary.hpp"
#include "workload/phased.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Instance round_trip(const Instance& inst) {
  std::stringstream ss;
  write_instance(ss, inst);
  return read_instance(ss);
}

void expect_same(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.machines(), b.machines());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Job& ja = a.jobs()[i];
    const Job& jb = b.jobs()[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_DOUBLE_EQ(ja.release, jb.release);
    EXPECT_DOUBLE_EQ(ja.size, jb.size);
    EXPECT_DOUBLE_EQ(ja.weight, jb.weight);
    EXPECT_TRUE(ja.curve == jb.curve) << i;
    EXPECT_EQ(ja.tag, jb.tag);
    ASSERT_EQ(ja.phases.size(), jb.phases.size());
    for (std::size_t p = 0; p < ja.phases.size(); ++p) {
      EXPECT_DOUBLE_EQ(ja.phases[p].work, jb.phases[p].work);
      EXPECT_TRUE(ja.phases[p].curve == jb.phases[p].curve);
    }
  }
}

TEST(InstanceIo, RoundTripsRandomInstance) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 50;
  cfg.alpha_law = AlphaLaw::kMixed;
  cfg.seed = 13;
  const Instance inst = make_random_instance(cfg);
  expect_same(inst, round_trip(inst));
}

TEST(InstanceIo, RoundTripsPhasedInstance) {
  PhasedWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 20;
  cfg.seed = 7;
  const Instance inst = make_phased_instance(cfg);
  expect_same(inst, round_trip(inst));
}

TEST(InstanceIo, RoundTripsAdversaryRealizedInstanceWithTags) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 8.0;
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  const SimResult r = engine.run(sched, source);
  const Instance realized(cfg.machines, r.realized_jobs());
  expect_same(realized, round_trip(realized));
}

TEST(InstanceIo, RoundTripPreservesSimulationResults) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 40;
  cfg.seed = 3;
  const Instance inst = make_random_instance(cfg);
  const Instance copy = round_trip(inst);
  IntermediateSrpt sched;
  EXPECT_DOUBLE_EQ(simulate(inst, sched).total_flow,
                   simulate(copy, sched).total_flow);
}

TEST(InstanceIo, ParsesHandWrittenFormat) {
  std::stringstream ss(R"(# a comment
parsched-instance 1
machines 4
job 0 0.0 size 8 pow 0.5
job 1 1.5 size 2 seq tag 3 short 7
job 2 2.0 phases 2 4 par 2 seq
)");
  const Instance inst = read_instance(ss);
  EXPECT_EQ(inst.machines(), 4);
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.jobs()[0].size, 8.0);
  EXPECT_EQ(inst.jobs()[1].tag.cls, JobTag::Class::kShort);
  EXPECT_EQ(inst.jobs()[1].tag.phase, 3);
  EXPECT_EQ(inst.jobs()[1].tag.index, 7);
  EXPECT_EQ(inst.jobs()[2].phases.size(), 2u);
  EXPECT_DOUBLE_EQ(inst.jobs()[2].size, 6.0);
}

TEST(InstanceIo, RejectsMalformedInput) {
  auto expect_parse_error = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW((void)read_instance(ss), std::runtime_error) << text;
  };
  expect_parse_error("not-a-header\n");
  expect_parse_error("parsched-instance 1\nmachines 4\n");  // no jobs
  expect_parse_error(
      "parsched-instance 1\nmachines 4\njob 0 0.0 size 8 pow\n");
  expect_parse_error(
      "parsched-instance 1\nmachines 4\njob 0 0.0 size 8 wavy\n");
  expect_parse_error(
      "parsched-instance 1\nmachines 4\njob 0 0.0 size 8 seq banana\n");
  expect_parse_error(
      "parsched-instance 1\nmachines 4\njob 0 0.0 size 8 seq tag 0 huge 0\n");
}

TEST(InstanceIo, PwlCurvesRoundTrip) {
  std::stringstream ss(R"(parsched-instance 1
machines 2
job 0 0 size 4 pwl 2 2 1.5 8 3
)");
  const Instance inst = read_instance(ss);
  EXPECT_DOUBLE_EQ(inst.jobs()[0].curve.rate(2.0), 1.5);
  EXPECT_DOUBLE_EQ(inst.jobs()[0].curve.rate(8.0), 3.0);
  // And back out: write -> read preserves the curve.
  const Instance again = round_trip(inst);
  EXPECT_TRUE(inst.jobs()[0].curve == again.jobs()[0].curve);
}

TEST(InstanceIo, FileRoundTrip) {
  RandomWorkloadConfig cfg;
  cfg.jobs = 10;
  cfg.seed = 5;
  const Instance inst = make_random_instance(cfg);
  const std::string path = "test_io_instance.txt";
  write_instance_file(path, inst);
  const Instance back = read_instance_file(path);
  expect_same(inst, back);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_instance_file("definitely-missing.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace parsched
