// Unit + property tests for speedup curves.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "speedup/curve.hpp"
#include "util/rng.hpp"

namespace parsched {
namespace {

TEST(Curve, FullyParallelIsIdentity) {
  const auto c = SpeedupCurve::fully_parallel();
  EXPECT_DOUBLE_EQ(c.rate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.rate(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.rate(7.0), 7.0);
  EXPECT_DOUBLE_EQ(c.alpha(), 1.0);
}

TEST(Curve, SequentialSaturatesAtOne) {
  const auto c = SpeedupCurve::sequential();
  EXPECT_DOUBLE_EQ(c.rate(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.rate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.rate(64.0), 1.0);
  EXPECT_DOUBLE_EQ(c.alpha(), 0.0);
}

TEST(Curve, PowerLawMatchesPaperModel) {
  const auto c = SpeedupCurve::power_law(0.5);
  EXPECT_DOUBLE_EQ(c.rate(0.25), 0.25);  // Γ(x) = x for x <= 1
  EXPECT_DOUBLE_EQ(c.rate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.rate(4.0), 2.0);  // 4^{0.5}
  EXPECT_DOUBLE_EQ(c.rate(16.0), 4.0);
  EXPECT_DOUBLE_EQ(c.alpha(), 0.5);
}

TEST(Curve, PowerLawBoundariesDegrade) {
  EXPECT_EQ(SpeedupCurve::power_law(0.0).kind(),
            SpeedupCurve::Kind::kSequential);
  EXPECT_EQ(SpeedupCurve::power_law(1.0).kind(),
            SpeedupCurve::Kind::kFullyParallel);
  EXPECT_THROW((void)SpeedupCurve::power_law(1.5), std::invalid_argument);
  EXPECT_THROW((void)SpeedupCurve::power_law(-0.1), std::invalid_argument);
}

TEST(Curve, MarginalIsDecreasing) {
  const auto c = SpeedupCurve::power_law(0.6);
  double prev = c.marginal(0.0);
  for (int k = 1; k < 32; ++k) {
    const double cur = c.marginal(static_cast<double>(k));
    EXPECT_LE(cur, prev + 1e-12) << "marginal not decreasing at k=" << k;
    prev = cur;
  }
}

TEST(Curve, InverseRoundTrips) {
  const auto c = SpeedupCurve::power_law(0.7);
  for (double x : {0.3, 1.0, 2.0, 10.0, 100.0}) {
    EXPECT_NEAR(c.inverse(c.rate(x)), x, 1e-9 * x);
  }
  EXPECT_THROW((void)SpeedupCurve::sequential().inverse(2.0),
               std::domain_error);
}

TEST(Curve, PiecewiseLinearInterpolatesKnots) {
  const auto c = SpeedupCurve::piecewise_linear({{2.0, 1.8}, {4.0, 2.4}});
  EXPECT_DOUBLE_EQ(c.rate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(c.rate(2.0), 1.8);
  EXPECT_DOUBLE_EQ(c.rate(3.0), 2.1);
  EXPECT_DOUBLE_EQ(c.rate(4.0), 2.4);
  // Beyond last knot: extrapolate with last slope 0.3.
  EXPECT_NEAR(c.rate(6.0), 2.4 + 0.3 * 2.0, 1e-12);
}

TEST(Curve, PiecewiseLinearRejectsNonConcave) {
  EXPECT_THROW(
      (void)SpeedupCurve::piecewise_linear({{2.0, 1.2}, {3.0, 3.0}}),
      std::invalid_argument);
  EXPECT_THROW((void)SpeedupCurve::piecewise_linear({{2.0, 0.5}}),
               std::invalid_argument);  // decreasing
}

TEST(Curve, ValidityChecker) {
  EXPECT_TRUE(is_valid_speedup_curve(SpeedupCurve::fully_parallel()));
  EXPECT_TRUE(is_valid_speedup_curve(SpeedupCurve::sequential()));
  EXPECT_TRUE(is_valid_speedup_curve(SpeedupCurve::power_law(0.3)));
  EXPECT_TRUE(is_valid_speedup_curve(SpeedupCurve::power_law(0.9)));
  EXPECT_TRUE(is_valid_speedup_curve(
      SpeedupCurve::piecewise_linear({{2.0, 1.5}, {8.0, 3.0}})));
}

TEST(Curve, ValidityCheckerRejectsNonFiniteRates) {
  // A NaN knot sneaks through piecewise_linear's construction checks
  // (NaN fails every comparison, so "y1 < y0" and "slope > prev" are
  // both false) and then poisons every interpolated rate() above x = 1.
  // The validator must reject such a curve explicitly rather than let
  // NaN sail through its monotonicity/concavity comparisons too.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const SpeedupCurve c = SpeedupCurve::piecewise_linear({{2.0, nan}});
  ASSERT_TRUE(std::isnan(c.rate(1.5)));  // the hazard is real
  EXPECT_FALSE(is_valid_speedup_curve(c));
}

TEST(Curve, EqualityAndToString) {
  EXPECT_EQ(SpeedupCurve::power_law(0.5), SpeedupCurve::power_law(0.5));
  EXPECT_FALSE(SpeedupCurve::power_law(0.5) == SpeedupCurve::power_law(0.6));
  EXPECT_EQ(SpeedupCurve::sequential().to_string(), "sequential");
  EXPECT_NE(SpeedupCurve::power_law(0.5).to_string().find("pow"),
            std::string::npos);
}

// Property sweep: Proposition 1 (Γ(B)/Γ(C) <= B/C for B >= C) across the
// whole curve family and random arguments.
class Proposition1Test : public ::testing::TestWithParam<double> {};

TEST_P(Proposition1Test, HoldsForRandomArguments) {
  const double alpha = GetParam();
  const auto c = SpeedupCurve::power_law(alpha);
  Rng rng(static_cast<std::uint64_t>(alpha * 1000) + 5);
  for (int i = 0; i < 2000; ++i) {
    const double C = rng.uniform(1e-3, 64.0);
    const double B = C + rng.uniform(0.0, 64.0);
    EXPECT_TRUE(proposition1_holds(c, B, C))
        << "alpha=" << alpha << " B=" << B << " C=" << C;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, Proposition1Test,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

// Property sweep: concavity + monotonicity of the power-law family at
// random sample points.
class CurveShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(CurveShapeTest, MonotoneAndConcave) {
  const auto c = SpeedupCurve::power_law(GetParam());
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 128.0);
    const double y = x + rng.uniform(0.0, 16.0);
    EXPECT_LE(c.rate(x), c.rate(y) + 1e-12);
    // Midpoint concavity.
    const double mid = 0.5 * (x + y);
    EXPECT_GE(c.rate(mid) + 1e-9,
              0.5 * (c.rate(x) + c.rate(y)));
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CurveShapeTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace parsched
