#!/usr/bin/env python3
"""Self-test for tools/parsched_lint.py.

Builds a throwaway tree under a temp dir, plants one violation per rule
(and one exempted use per fenced rule), runs the linter against it, and
asserts exactly the expected findings fire. Run via ctest:

  lint_selftest.py <path-to-parsched_lint.py>
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path


def write(root: Path, rel: str, text: str) -> None:
    p = root / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text, encoding="utf-8")


def run_lint(lint: Path, root: Path) -> list[str]:
    proc = subprocess.run(
        [sys.executable, str(lint), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )
    return [line for line in proc.stdout.splitlines() if line.strip()]


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: lint_selftest.py <parsched_lint.py>", file=sys.stderr)
        return 2
    lint = Path(sys.argv[1]).resolve()
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="parsched-lint-") as tmp:
        root = Path(tmp)
        # One violation per rule, each in its own file so findings map
        # 1:1 to rules.
        write(root, "src/a/getenv_bad.cpp",
              '#include "util/env.hpp"\n'
              'const char* v = std::getenv("HOME");\n')
        write(root, "src/a/assert_bad.cpp", "void f() { assert(1 > 0); }\n")
        write(root, "src/a/thread_bad.cpp",
              "#include <thread>\nstd::thread t;\n")
        write(root, "src/a/ofstream_bad.cpp", 'std::ofstream out("x");\n')
        write(root, "src/a/chrono_bad.cpp", "#include <chrono>\n")
        write(root, "src/a/floateq_bad.cpp", "bool b = (x == 1.0);\n")
        write(root, "src/a/header_bad.hpp", "int x;\n")  # no pragma once
        write(root, "src/a/include_bad.cpp", '#include "engine.hpp"\n')
        # Exempted homes: must stay silent.
        write(root, "src/util/env.hpp",
              "#pragma once\n"
              "inline const char* raw(const char* n) {\n"
              "  return std::getenv(n);\n"
              "}\n")
        write(root, "src/exec/thread_pool.cpp", "#include <thread>\n")
        write(root, "src/util/fsio.hpp",
              "#pragma once\nstd::ofstream f;\n")
        write(root, "src/obs/metrics.cpp", "#include <chrono>\n")
        # Clean file: no findings expected.
        write(root, "src/a/clean.cpp",
              '#pragma GCC poison nothing\n'
              '#include "util/env.hpp"\n'
              "int add(int a, int b) { return a + b; }\n")
        # Extended scope: tools/parsched_cli.cpp and tests/ are linted.
        write(root, "tools/parsched_cli.cpp",
              'std::ofstream out("cli.csv");\n')
        write(root, "tests/test_scope.cpp",
              "void f() { assert(true); }\n"       # raw-assert: test-exempt
              "std::thread t1;\n"                   # raw-thread: fires
              "std::thread t2;  // lint: thread-ok\n")  # suppressed

        findings = run_lint(lint, root)

        expected = {
            "getenv_bad.cpp": "[raw-getenv]",
            "assert_bad.cpp": "[raw-assert]",
            "thread_bad.cpp": "[raw-thread]",
            "ofstream_bad.cpp": "[raw-ofstream]",
            "chrono_bad.cpp": "[raw-chrono]",
            "floateq_bad.cpp": "[float-eq]",
            "header_bad.hpp": "[pragma-once]",
            "include_bad.cpp": "[include-style]",
            "parsched_cli.cpp": "[raw-ofstream]",
            "test_scope.cpp": "[raw-thread]",
        }
        for fname, rule in expected.items():
            hits = [f for f in findings if fname in f and rule in f]
            if not hits:
                failures.append(f"expected {rule} finding in {fname}")
        exempt = ("util/env.hpp", "exec/thread_pool.cpp", "util/fsio.hpp",
                  "obs/metrics.cpp", "clean.cpp")
        for fname in exempt:
            hits = [f for f in findings
                    if f.split(":", 1)[0].endswith(fname)]
            if hits:
                failures.append(f"unexpected finding(s) in {fname}: {hits}")
        # test_scope.cpp: the raw assert and the suppressed thread must
        # both stay silent — exactly one finding (the bare std::thread).
        scope_hits = [f for f in findings if "test_scope.cpp" in f]
        if len(scope_hits) != 1:
            failures.append(
                f"test_scope.cpp: expected exactly 1 finding, got "
                f"{scope_hits}"
            )
        # thread_bad.cpp appears twice (include + spelling); overall count
        # must not balloon beyond the planted violations.
        if len(findings) > 14:
            failures.append(f"too many findings ({len(findings)}): {findings}")

        # Suppression audit: lists the planted hatch, exits 0.
        proc = subprocess.run(
            [sys.executable, str(lint), "--root", str(root),
             "--suppression-audit"],
            capture_output=True, text=True, check=False,
        )
        audit = [l for l in proc.stdout.splitlines() if l.strip()]
        if proc.returncode != 0:
            failures.append(
                f"suppression-audit: exit={proc.returncode}"
            )
        if not any("test_scope.cpp:3" in l and "thread-ok" in l
                   for l in audit):
            failures.append(
                f"suppression-audit: planted hatch not listed: {audit}"
            )

    for msg in failures:
        print(f"FAIL: {msg}")
    print(f"lint_selftest: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
