// Precedence-constrained scheduling: DagInstance validation, the
// PrecedenceSource release rule, lower bounds, and the DAG generators.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/equi.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/registry.hpp"
#include "simcore/precedence.hpp"
#include "workload/dag.hpp"

namespace parsched {
namespace {

DagNode node(JobId id, double size, double alpha,
             std::vector<JobId> deps = {}, double release = 0.0) {
  DagNode n;
  n.job.id = id;
  n.job.release = release;
  n.job.size = size;
  n.job.curve = SpeedupCurve::power_law(alpha);
  n.deps = std::move(deps);
  return n;
}

// ------------------------------------------------------------ instance

TEST(Dag, ValidatesAndTopoSorts) {
  // Given out of order; constructor must topologically sort.
  DagInstance dag(2, {node(2, 1.0, 0.5, {1}), node(1, 1.0, 0.5, {0}),
                      node(0, 1.0, 0.5)});
  ASSERT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.nodes()[0].job.id, 0u);
  EXPECT_EQ(dag.nodes()[2].job.id, 2u);
}

TEST(Dag, RejectsCycles) {
  EXPECT_THROW(DagInstance(2, {node(0, 1.0, 0.5, {1}),
                               node(1, 1.0, 0.5, {0})}),
               std::invalid_argument);
}

TEST(Dag, RejectsSelfAndUnknownDeps) {
  EXPECT_THROW(DagInstance(2, {node(0, 1.0, 0.5, {0})}),
               std::invalid_argument);
  EXPECT_THROW(DagInstance(2, {node(0, 1.0, 0.5, {7})}),
               std::invalid_argument);
  EXPECT_THROW(DagInstance(2, {node(0, 1.0, 0.5), node(0, 1.0, 0.5)}),
               std::invalid_argument);
}

TEST(Dag, EarliestCompletionsChain) {
  // Chain 0 -> 1 -> 2, sizes 4 each, alpha 0.5, m = 4 (rate 2 saturated).
  DagInstance dag(4, {node(0, 4.0, 0.5), node(1, 4.0, 0.5, {0}),
                      node(2, 4.0, 0.5, {1})});
  const auto ec = dag.earliest_completions();
  EXPECT_NEAR(ec.at(0), 2.0, 1e-12);
  EXPECT_NEAR(ec.at(1), 4.0, 1e-12);
  EXPECT_NEAR(ec.at(2), 6.0, 1e-12);
  EXPECT_NEAR(dag.critical_path(), 6.0, 1e-12);
  EXPECT_NEAR(dag.flow_lower_bound(), 2.0 + 4.0 + 6.0, 1e-12);
}

// --------------------------------------------------------------- source

TEST(Dag, ChainRunsSequentially) {
  DagInstance dag(4, {node(0, 4.0, 0.5), node(1, 4.0, 0.5, {0}),
                      node(2, 4.0, 0.5, {1})});
  IntermediateSrpt sched;
  const SimResult r = simulate_dag(dag, sched);
  ASSERT_EQ(r.jobs(), 3u);
  // Each task runs alone on 4 machines: exactly the earliest completions.
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 4.0, 1e-9);
  EXPECT_NEAR(r.records[2].completion, 6.0, 1e-9);
  EXPECT_NEAR(r.total_flow, dag.flow_lower_bound(), 1e-6);
}

TEST(Dag, ForkJoinReleasesBarrierAfterAllBranches) {
  // Two branches (sizes 2 and 6) feed a barrier.
  DagInstance dag(2, {node(0, 2.0, 0.0), node(1, 6.0, 0.0),
                      node(2, 1.0, 0.0, {0, 1})});
  Equi sched;
  const SimResult r = simulate_dag(dag, sched);
  // Branches run in parallel (1 machine each, sequential curve): done at
  // 2 and 6; barrier starts at 6 with both machines (rate 1): done at 7.
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 6.0, 1e-9);
  EXPECT_NEAR(r.records[2].completion, 7.0, 1e-9);
}

TEST(Dag, ReleaseTimeAndDepsBothGate) {
  // Task 1 depends on 0 (done at 1) but has nominal release 5 -> starts 5.
  DagInstance dag(1, {node(0, 1.0, 0.0),
                      node(1, 1.0, 0.0, {0}, /*release=*/5.0)});
  IntermediateSrpt sched;
  const SimResult r = simulate_dag(dag, sched);
  EXPECT_NEAR(r.records[1].completion, 6.0, 1e-9);
  // Flow measured from nominal release: 6 - 5 = 1.
  EXPECT_NEAR(r.records[1].flow(), 1.0, 1e-9);
}

TEST(Dag, SlowPolicyDelaysSuccessors) {
  // Under a policy that is slow on the branches, the barrier arrives
  // later — the release rule follows the OBSERVED schedule.
  DagInstance dag(2, {node(0, 4.0, 0.0), node(1, 4.0, 0.0),
                      node(2, 1.0, 0.0, {0, 1})});
  auto fast = make_scheduler("equi");      // both branches in parallel
  auto slow = make_scheduler("par-srpt");  // one at a time (sequential!)
  const SimResult rf = simulate_dag(dag, *fast);
  const SimResult rs = simulate_dag(dag, *slow);
  EXPECT_LT(rf.records[2].completion, rs.records[2].completion);
}

TEST(Dag, FlowNeverBeatsLowerBound) {
  LayeredDagConfig cfg;
  cfg.machines = 4;
  cfg.layers = 4;
  cfg.width = 6;
  cfg.seed = 3;
  const DagInstance dag = make_layered_dag(cfg);
  for (const auto& name : standard_policy_names()) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate_dag(dag, *sched);
    EXPECT_EQ(r.jobs(), dag.size()) << name;
    EXPECT_GE(r.total_flow, dag.flow_lower_bound() - 1e-6) << name;
    EXPECT_GE(r.makespan, dag.critical_path() - 1e-6) << name;
  }
}

// ------------------------------------------------------------ generators

TEST(DagGenerators, ForkJoinShape) {
  ForkJoinConfig cfg;
  cfg.pipelines = 2;
  cfg.stages = 3;
  cfg.branches = 4;
  cfg.seed = 1;
  const DagInstance dag = make_fork_join(cfg);
  // Per pipeline: stages * (branches + 1 barrier).
  EXPECT_EQ(dag.size(), 2u * 3u * 5u);
  // Every barrier depends on exactly `branches` tasks.
  std::size_t barriers = 0;
  for (const DagNode& n : dag.nodes()) {
    if (n.job.tag.cls == JobTag::Class::kLong) {
      ++barriers;
      EXPECT_EQ(n.deps.size(), 4u);
    }
  }
  EXPECT_EQ(barriers, 6u);
}

TEST(DagGenerators, LayeredDagConnectivity) {
  LayeredDagConfig cfg;
  cfg.layers = 3;
  cfg.width = 5;
  cfg.edge_prob = 0.3;
  cfg.seed = 7;
  const DagInstance dag = make_layered_dag(cfg);
  EXPECT_EQ(dag.size(), 15u);
  // Every non-root-layer task has at least one dependency.
  for (const DagNode& n : dag.nodes()) {
    if (n.job.tag.phase > 0) {
      EXPECT_FALSE(n.deps.empty());
    }
  }
}

TEST(DagGenerators, RejectBadConfigs) {
  ForkJoinConfig fj;
  fj.pipelines = 0;
  EXPECT_THROW((void)make_fork_join(fj), std::invalid_argument);
  LayeredDagConfig ld;
  ld.edge_prob = 2.0;
  EXPECT_THROW((void)make_layered_dag(ld), std::invalid_argument);
}

}  // namespace
}  // namespace parsched
