// Engine guard rails and EngineView queries.
#include <gtest/gtest.h>

#include <vector>

#include "check/contract.hpp"
#include "check/invariant_auditor.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "util/mathx.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// A policy that spins: re-decides constantly without progress risk —
// exercises the max_decisions guard.
class SpinScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Spin"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    if (!out.shares.empty()) out.shares[0] = 1e-9;  // glacial progress
    out.reconsider_at = ctx.time() + 1e-9;
  }
};

// A policy that overcommits: hands every alive job a whole machine even
// when that exceeds m in total (Σ shares > m).
class InfeasibleScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Infeasible"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    for (double& s : out.shares) s = 1.0;
  }
};

// A policy that emits a negative share.
class NegativeShareScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "NegativeShare"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    for (double& s : out.shares) s = 0.5;
    out.shares[0] = -0.5;
  }
};

// A policy that allocates nothing and never asks to be re-invoked.
class StallingScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Stalling"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
  }
};

TEST(EngineGuards, EngineRejectsInfeasibleAllocation) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5)});
  InfeasibleScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

TEST(EngineGuards, AuditorCatchesInfeasibleAllocation) {
  // With the engine's own validation off, the auditor is the safety net.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5)});
  InfeasibleScheduler sched;
  EngineConfig cfg;
  cfg.validate_allocations = false;
  InvariantAuditor auditor(inst.machines());
  (void)simulate(inst, sched, cfg, {&auditor});
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("overcommitted"), std::string::npos);
  EXPECT_THROW(auditor.require_clean(), AuditFailure);
}

TEST(EngineGuards, EngineRejectsNegativeShare) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  NegativeShareScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

TEST(EngineGuards, AuditorCatchesNegativeShare) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  NegativeShareScheduler sched;
  EngineConfig cfg;
  cfg.validate_allocations = false;
  InvariantAuditor auditor(inst.machines());
  // In Debug builds SpeedupCurve::rate's PARSCHED_DCHECK sees the negative
  // share before the auditor does; log it instead of throwing so the run
  // reaches the state this test is about.
  ScopedContractPolicy log_contracts(ContractPolicy::kLog);
  // Once the positive-share job completes, the negative-share job makes no
  // progress and the run stalls — but the auditor has flagged the bad
  // allocation by then.
  EXPECT_THROW((void)simulate(inst, sched, cfg, {&auditor}), SimulationStall);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("negative share"), std::string::npos);
}

TEST(EngineGuards, StallingSchedulerRaisesSimulationStall) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  StallingScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), SimulationStall);
}

TEST(EngineGuards, ZeroDtLivelockIsDetectedPromptly) {
  // FP-drift livelock: phase works 0.1 + 0.2 sum to 0.30000000000000004,
  // so after both phases drain at rate 1 the job's `remaining` sits a few
  // ulps above zero while its last phase_remaining is exactly 0. With a
  // completion tolerance too tight to absorb the drift, every subsequent
  // decision has dt_complete == 0 and changes nothing. The engine must
  // raise SimulationStall naming the stuck job after a short streak —
  // not grind through the max_decisions budget.
  const SpeedupCurve curve = SpeedupCurve::power_law(0.5);
  Instance inst(1, {make_phased_job(0, 0.0, {{0.1, curve}, {0.2, curve}})});
  IntermediateSrpt sched;
  EngineConfig cfg;
  cfg.completion_tol = 1e-18;
  cfg.max_decisions = 10'000;  // promptness: the streak guard fires long
                               // before this would
  try {
    (void)simulate(inst, sched, cfg);
    FAIL() << "expected SimulationStall";
  } catch (const SimulationStall& e) {
    EXPECT_NE(std::string(e.what()).find("stuck job id=0"),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineGuards, FlowIsClampedAtZero) {
  // Direct unit check: a completion recorded before the nominal release
  // (possible because admission treats releases within time_tol of `now`
  // as due) reads as zero flow, never negative.
  JobRecord rec;
  rec.job.release = 2.0;
  rec.completion = 1.0;
  EXPECT_EQ(rec.flow(), 0.0);
}

TEST(EngineGuards, EarlyCompletionClampMatchesBatchAndStreaming) {
  // Job 1's release (1e-10) is inside the time_tol admission window at
  // t = 0, and it is so small that SRPT finishes it at t = 1e-12 — before
  // its own release. Its flow must clamp to exactly 0 in the record, and
  // the batch and streaming paths must agree double for double.
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5),
                    make_job(1, 1e-10, 1e-12, 0.5)});
  auto sched = make_scheduler("seq-srpt");
  const SimResult batch = simulate(inst, *sched);
  ASSERT_EQ(batch.records.size(), 2u);
  const JobRecord* early = nullptr;
  for (const JobRecord& r : batch.records) {
    if (r.job.id == 1) early = &r;
  }
  ASSERT_NE(early, nullptr);
  EXPECT_LT(early->completion, early->job.release);
  EXPECT_EQ(early->flow(), 0.0);

  Engine eng(inst.machines());
  eng.begin(*sched);
  for (const Job& j : inst.jobs()) eng.admit(j);
  const SimResult streamed = eng.finish();
  EXPECT_EQ(streamed.total_flow, batch.total_flow);
  EXPECT_EQ(streamed.weighted_flow, batch.weighted_flow);
  EXPECT_EQ(streamed.fractional_flow, batch.fractional_flow);
}

TEST(EngineGuards, CompletionObserversFireInIdOrder) {
  // Three identical jobs complete in one step. The engine's swap-remove
  // completion sweep appends their records in sweep order ([0, 2, 1] for
  // a three-job prefix), but the observer contract is id order within a
  // step — assert both, so the test fails if either order drifts.
  class CompletionRecorder final : public Observer {
   public:
    void on_completion(double, const Job& job) override {
      ids.push_back(job.id);
    }
    std::vector<JobId> ids;
  };
  Instance inst(4, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5)});
  auto sched = make_scheduler("equi");
  CompletionRecorder rec;
  const SimResult r = simulate(inst, *sched, {}, {&rec});
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].job.id, 0u);  // sweep order: swap-remove
  EXPECT_EQ(r.records[1].job.id, 2u);
  EXPECT_EQ(r.records[2].job.id, 1u);
  ASSERT_EQ(rec.ids.size(), 3u);
  EXPECT_EQ(rec.ids[0], 0u);  // observer order: ascending id
  EXPECT_EQ(rec.ids[1], 1u);
  EXPECT_EQ(rec.ids[2], 2u);
}

TEST(EngineGuards, MaxDecisionsAborts) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  SpinScheduler sched;
  EngineConfig cfg;
  cfg.max_decisions = 1000;
  EXPECT_THROW((void)simulate(inst, sched, cfg), std::runtime_error);
}

// A probing source that asserts EngineView invariants mid-run.
class ProbeSource final : public ArrivalSource {
 public:
  double next_time(const EngineView& view) override {
    if (released_ >= 2) {
      // After both arrivals: probe the tag queries once jobs are alive.
      if (view.alive_count() == 2) {
        probed_ = true;
        probe_remaining_ = view.remaining_tagged(JobTag::Class::kShort, 0);
        probe_count_ = view.alive_tagged(JobTag::Class::kLong, -1);
        completed_before_ = view.is_completed(0);
      }
      return kInf;
    }
    return static_cast<double>(released_);
  }

  std::vector<Job> take(double t, const EngineView& view) override {
    (void)view;
    Job j = make_job(static_cast<JobId>(released_), t, 2.0, 0.5);
    j.tag = released_ == 0 ? JobTag{0, JobTag::Class::kShort, 0}
                           : JobTag{1, JobTag::Class::kLong, 0};
    ++released_;
    return {j};
  }

  void reset() override { released_ = 0; }

  bool probed_ = false;
  double probe_remaining_ = -1.0;
  std::size_t probe_count_ = 99;
  bool completed_before_ = true;
  int released_ = 0;
};

TEST(EngineGuards, EngineViewQueriesAreConsistent) {
  ProbeSource source;
  IntermediateSrpt sched;
  Engine engine(2);
  const SimResult r = engine.run(sched, source);
  EXPECT_EQ(r.jobs(), 2u);
  ASSERT_TRUE(source.probed_);
  // Both jobs alive when probed: the short-tagged one has <= 2.0 left.
  EXPECT_GT(source.probe_remaining_, 0.0);
  EXPECT_LE(source.probe_remaining_, 2.0);
  EXPECT_EQ(source.probe_count_, 1u);      // one long-tagged job, any phase
  EXPECT_FALSE(source.completed_before_);  // job 0 not done at probe time
}

TEST(EngineGuards, IsCompletedFlipsAfterCompletion) {
  // Source releases job 1 only after observing job 0 completed.
  class GateSource final : public ArrivalSource {
   public:
    double next_time(const EngineView& view) override {
      if (stage_ == 0) return 0.0;
      if (stage_ == 1) return view.is_completed(0) ? view.time() : kInf;
      return kInf;
    }
    std::vector<Job> take(double t, const EngineView& view) override {
      (void)view;
      ++stage_;
      return {make_job(static_cast<JobId>(stage_ - 1), t, 1.0, 0.5)};
    }
    void reset() override { stage_ = 0; }
    int stage_ = 0;
  };
  GateSource source;
  IntermediateSrpt sched;
  Engine engine(1);
  const SimResult r = engine.run(sched, source);
  ASSERT_EQ(r.jobs(), 2u);
  EXPECT_NEAR(r.records[0].completion, 1.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 2.0, 1e-9);
}

}  // namespace
}  // namespace parsched
