// Engine guard rails and EngineView queries.
#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "sched/intermediate_srpt.hpp"
#include "simcore/engine.hpp"
#include "util/mathx.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// A policy that spins: re-decides constantly without progress risk —
// exercises the max_decisions guard.
class SpinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Spin"; }
  Allocation allocate(const SchedulerContext& ctx) override {
    Allocation a;
    a.shares.assign(ctx.alive().size(), 0.0);
    if (!a.shares.empty()) a.shares[0] = 1e-9;  // glacial progress
    a.reconsider_at = ctx.time() + 1e-9;
    return a;
  }
};

// A policy that overcommits: hands every alive job a whole machine even
// when that exceeds m in total (Σ shares > m).
class InfeasibleScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Infeasible"; }
  Allocation allocate(const SchedulerContext& ctx) override {
    Allocation a;
    a.shares.assign(ctx.alive().size(), 1.0);
    return a;
  }
};

// A policy that emits a negative share.
class NegativeShareScheduler final : public Scheduler {
 public:
  std::string name() const override { return "NegativeShare"; }
  Allocation allocate(const SchedulerContext& ctx) override {
    Allocation a;
    a.shares.assign(ctx.alive().size(), 0.5);
    a.shares[0] = -0.5;
    return a;
  }
};

// A policy that allocates nothing and never asks to be re-invoked.
class StallingScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Stalling"; }
  Allocation allocate(const SchedulerContext& ctx) override {
    Allocation a;
    a.shares.assign(ctx.alive().size(), 0.0);
    return a;
  }
};

TEST(EngineGuards, EngineRejectsInfeasibleAllocation) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5)});
  InfeasibleScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

TEST(EngineGuards, AuditorCatchesInfeasibleAllocation) {
  // With the engine's own validation off, the auditor is the safety net.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5)});
  InfeasibleScheduler sched;
  EngineConfig cfg;
  cfg.validate_allocations = false;
  InvariantAuditor auditor(inst.machines());
  (void)simulate(inst, sched, cfg, {&auditor});
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("overcommitted"), std::string::npos);
  EXPECT_THROW(auditor.require_clean(), AuditFailure);
}

TEST(EngineGuards, EngineRejectsNegativeShare) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  NegativeShareScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

TEST(EngineGuards, AuditorCatchesNegativeShare) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  NegativeShareScheduler sched;
  EngineConfig cfg;
  cfg.validate_allocations = false;
  InvariantAuditor auditor(inst.machines());
  // Once the positive-share job completes, the negative-share job makes no
  // progress and the run stalls — but the auditor has flagged the bad
  // allocation by then.
  EXPECT_THROW((void)simulate(inst, sched, cfg, {&auditor}), SimulationStall);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("negative share"), std::string::npos);
}

TEST(EngineGuards, StallingSchedulerRaisesSimulationStall) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  StallingScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), SimulationStall);
}

TEST(EngineGuards, MaxDecisionsAborts) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  SpinScheduler sched;
  EngineConfig cfg;
  cfg.max_decisions = 1000;
  EXPECT_THROW((void)simulate(inst, sched, cfg), std::runtime_error);
}

// A probing source that asserts EngineView invariants mid-run.
class ProbeSource final : public ArrivalSource {
 public:
  double next_time(const EngineView& view) override {
    if (released_ >= 2) {
      // After both arrivals: probe the tag queries once jobs are alive.
      if (view.alive_count() == 2) {
        probed_ = true;
        probe_remaining_ = view.remaining_tagged(JobTag::Class::kShort, 0);
        probe_count_ = view.alive_tagged(JobTag::Class::kLong, -1);
        completed_before_ = view.is_completed(0);
      }
      return kInf;
    }
    return static_cast<double>(released_);
  }

  std::vector<Job> take(double t, const EngineView& view) override {
    (void)view;
    Job j = make_job(static_cast<JobId>(released_), t, 2.0, 0.5);
    j.tag = released_ == 0 ? JobTag{0, JobTag::Class::kShort, 0}
                           : JobTag{1, JobTag::Class::kLong, 0};
    ++released_;
    return {j};
  }

  void reset() override { released_ = 0; }

  bool probed_ = false;
  double probe_remaining_ = -1.0;
  std::size_t probe_count_ = 99;
  bool completed_before_ = true;
  int released_ = 0;
};

TEST(EngineGuards, EngineViewQueriesAreConsistent) {
  ProbeSource source;
  IntermediateSrpt sched;
  Engine engine(2);
  const SimResult r = engine.run(sched, source);
  EXPECT_EQ(r.jobs(), 2u);
  ASSERT_TRUE(source.probed_);
  // Both jobs alive when probed: the short-tagged one has <= 2.0 left.
  EXPECT_GT(source.probe_remaining_, 0.0);
  EXPECT_LE(source.probe_remaining_, 2.0);
  EXPECT_EQ(source.probe_count_, 1u);      // one long-tagged job, any phase
  EXPECT_FALSE(source.completed_before_);  // job 0 not done at probe time
}

TEST(EngineGuards, IsCompletedFlipsAfterCompletion) {
  // Source releases job 1 only after observing job 0 completed.
  class GateSource final : public ArrivalSource {
   public:
    double next_time(const EngineView& view) override {
      if (stage_ == 0) return 0.0;
      if (stage_ == 1) return view.is_completed(0) ? view.time() : kInf;
      return kInf;
    }
    std::vector<Job> take(double t, const EngineView& view) override {
      (void)view;
      ++stage_;
      return {make_job(static_cast<JobId>(stage_ - 1), t, 1.0, 0.5)};
    }
    void reset() override { stage_ = 0; }
    int stage_ = 0;
  };
  GateSource source;
  IntermediateSrpt sched;
  Engine engine(1);
  const SimResult r = engine.run(sched, source);
  ASSERT_EQ(r.jobs(), 2u);
  EXPECT_NEAR(r.records[0].completion, 1.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 2.0, 1e-9);
}

}  // namespace
}  // namespace parsched
