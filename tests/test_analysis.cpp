// Analysis layer: trajectories, competitive sandwich, potential function,
// local competitiveness.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/competitive.hpp"
#include "analysis/local_comp.hpp"
#include "analysis/potential.hpp"
#include "analysis/trajectories.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

ScheduleTrajectories record(const Instance& inst, Scheduler& sched) {
  TrajectoryRecorder rec;
  (void)simulate(inst, sched, {}, {&rec});
  return ScheduleTrajectories::from_recorder(rec);
}

// --------------------------------------------------------- trajectories

TEST(Trajectories, FromPlanMatchesHandComputation) {
  Instance inst(2, {make_job(0, 1.0, 4.0, 0.5)});
  Plan plan;
  plan.add(0, 1.0, 5.0, 1.0);
  const auto st = ScheduleTrajectories::from_plan(inst, plan);
  EXPECT_DOUBLE_EQ(st.remaining_at(0, 0.5), 4.0);  // before release
  EXPECT_NEAR(st.remaining_at(0, 3.0), 2.0, 1e-9);
  EXPECT_NEAR(st.remaining_at(0, 5.0), 0.0, 1e-9);
  EXPECT_TRUE(st.alive_at(0, 2.0));
  EXPECT_FALSE(st.alive_at(0, 0.5));
  EXPECT_FALSE(st.alive_at(0, 5.0));
  EXPECT_EQ(st.alive_count_at(2.0), 1u);
  EXPECT_NEAR(st.horizon(), 5.0, 1e-9);
}

TEST(Trajectories, FromRecorderTracksAliveCounts) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 0.5, 2.0, 0.0)});
  SequentialSrpt sched;
  const auto st = record(inst, sched);
  EXPECT_EQ(st.alive_count_at(0.25), 1u);
  EXPECT_EQ(st.alive_count_at(1.0), 2u);
  EXPECT_EQ(st.alive_count_at(4.5), 0u);
  const auto bp = st.breakpoints();
  EXPECT_FALSE(bp.empty());
  EXPECT_TRUE(std::is_sorted(bp.begin(), bp.end()));
}

TEST(Trajectories, PlanRequiresAllJobs) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 1.0, 1.0);
  EXPECT_THROW((void)ScheduleTrajectories::from_plan(inst, plan),
               std::invalid_argument);
}

// ---------------------------------------------------------- competitive

TEST(Competitive, SandwichOrdering) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 40;
  cfg.seed = 21;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  const CompetitiveReport rep = compare_to_opt(inst, sched);
  EXPECT_GT(rep.alg_flow, 0.0);
  EXPECT_GT(rep.opt_lower, 0.0);
  EXPECT_GE(rep.opt_upper, rep.opt_lower - 1e-9);
  EXPECT_GE(rep.ratio_ub(), rep.ratio_lb() - 1e-9);
  // ISRPT is itself in the portfolio, so ratio_lb <= 1 ... == 1 only if it
  // is the best; in general alg_flow >= best portfolio flow.
  EXPECT_GE(rep.ratio_lb(), 1.0 - 1e-9);
  EXPECT_EQ(rep.jobs, 40u);
}

// ------------------------------------------------------------ potential

TEST(Potential, ZeroWhenAlgMatchesReference) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 3.0, 0.5)});
  IntermediateSrpt sched;
  const auto st = record(inst, sched);
  // z_i = max(p^A - p^A, 0) = 0 everywhere.
  EXPECT_DOUBLE_EQ(potential_at(st, st, 2, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(potential_at(st, st, 2, 2.0), 0.0);
}

TEST(Potential, PositiveWhenAlgBehind) {
  // ALG = Sequential-SRPT (1 machine max per job), REF uses both machines.
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5)});
  SequentialSrpt seq;
  const auto alg = record(inst, seq);
  Plan plan;
  plan.add(0, 0.0, 4.0, 2.0);  // rate 2^0.5
  const auto ref = ScheduleTrajectories::from_plan(inst, plan);
  // At t=2: ALG remaining 2, REF remaining 4 - 2*2^0.5 ~ 1.17 -> z ~ 0.83.
  const double z = 2.0 - (4.0 - 2.0 * std::sqrt(2.0));
  // rank 1, m/rank = 2, Γ(2) = 2^0.5.
  EXPECT_NEAR(potential_at(alg, ref, 2, 2.0),
              16.0 * z / std::sqrt(2.0), 1e-9);
}

TEST(Potential, RankCapsAtM) {
  // Three alive jobs on m = 2: the third job's rank is capped at 2.
  Instance inst(2, {make_job(0, 0.0, 8.0, 0.5), make_job(1, 0.0, 8.0, 0.5),
                    make_job(2, 0.0, 8.0, 0.5)});
  SequentialSrpt seq;
  const auto alg = record(inst, seq);
  // Reference that finishes instantly-ish: all jobs behind -> all z > 0.
  Plan plan;
  plan.add(0, 0.0, 8.0, 1.0);
  plan.add(1, 0.0, 8.0, 1.0);
  plan.add(2, 8.0, 16.0, 1.0);
  const auto ref = ScheduleTrajectories::from_plan(inst, plan);
  // At t tiny: z_i ~ 0; at t = 12: ALG has job2 remaining (it waited),
  // REF has it half done. Just assert positivity and finiteness.
  const double phi = potential_at(alg, ref, 2, 12.0);
  EXPECT_GE(phi, 0.0);
  EXPECT_TRUE(std::isfinite(phi));
}

TEST(Potential, AnalyzeReportsConditionsOnBenignInstance) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.seed = 33;
  cfg.alpha_lo = cfg.alpha_hi = 0.5;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt isrpt;
  const auto alg = record(inst, isrpt);
  // Reference: the best single policy trace — use Sequential-SRPT.
  SequentialSrpt seq;
  const auto ref = record(inst, seq);
  const PotentialReport rep =
      analyze_potential(alg, ref, 4, inst.P(), 0.5);
  EXPECT_GT(rep.intervals, 0u);
  // Boundary: Phi starts and ends at 0.
  EXPECT_NEAR(rep.phi_start, 0.0, 1e-6);
  EXPECT_NEAR(rep.phi_end, 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(rep.c_continuous));
}

// ------------------------------------------------------- potential flux

TEST(PotentialFluxTest, HandComputedDecomposition) {
  // ALG: job runs alone on 1 of 2 machines, rate 1; REF finished it
  // instantly-ish (2 machines from 0). At t where z > 0:
  //   opt_side = 0 (REF done), alg_side = -16 * 1 / Γ(2/1).
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5)});
  Plan alg_plan;
  alg_plan.add(0, 0.0, 4.0, 1.0);
  Plan ref_plan;
  ref_plan.add(0, 0.0, 4.0, 2.0);  // rate 2^0.5, done at 4/sqrt(2)
  const auto at = ScheduleTrajectories::from_plan(inst, alg_plan);
  const auto rt = ScheduleTrajectories::from_plan(inst, ref_plan);
  const double t = 3.5;  // REF done (2.83), ALG still running, z > 0
  const PotentialFlux flux = potential_flux_at(at, rt, 2, t);
  EXPECT_NEAR(flux.opt_side, 0.0, 1e-12);
  EXPECT_NEAR(flux.alg_side, -16.0 / std::sqrt(2.0), 1e-9);
  // While REF is still running (t = 1), z = rate difference accumulated:
  // opt_side = 16 * sqrt(2) / Γ(2), alg_side = -16 * 1 / Γ(2).
  const PotentialFlux early = potential_flux_at(at, rt, 2, 1.0);
  EXPECT_NEAR(early.opt_side, 16.0 * std::sqrt(2.0) / std::sqrt(2.0),
              1e-9);
  EXPECT_NEAR(early.alg_side, -16.0 / std::sqrt(2.0), 1e-9);
}

TEST(PotentialFluxTest, Lemma9WindowSatisfied) {
  // Force the Lemma-9 preconditions: 8 sequential jobs; REF finishes all
  // by t = 8; a deliberately lazy ALG plan only starts at t = 20, then
  // processes m = 4 jobs at unit rate. In (20, 24): |A| = 8 >= m,
  // |OPT| = 0 <= m/16, and the ALG-side decrease is 16 * 4 = 64 <= -4m.
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(make_job(i, 0.0, 4.0, 0.0));
  Instance inst(4, jobs);
  Plan ref_plan, alg_plan;
  for (int i = 0; i < 8; ++i) {
    ref_plan.add(i, i < 4 ? 0.0 : 4.0, i < 4 ? 4.0 : 8.0, 1.0);
    alg_plan.add(i, i < 4 ? 20.0 : 24.0, i < 4 ? 24.0 : 28.0, 1.0);
  }
  const auto at = ScheduleTrajectories::from_plan(inst, alg_plan);
  const auto rt = ScheduleTrajectories::from_plan(inst, ref_plan);
  const PotentialFlux flux = potential_flux_at(at, rt, 4, 22.0);
  EXPECT_NEAR(flux.opt_side, 0.0, 1e-12);
  EXPECT_NEAR(flux.alg_side, -64.0, 1e-9);  // 4 jobs, Γ(4/rank) = 1
  const PotentialReport rep = analyze_potential(at, rt, 4, 4.0, 0.0);
  EXPECT_GT(rep.lemma9_intervals, 0u);
  EXPECT_GE(rep.lemma9_min_ratio, 1.0);  // Lemma 9: decrease <= -4m
  EXPECT_LE(rep.decomposition_residual, 1e-6);
}

// ------------------------------------------------------------ local comp

TEST(LocalComp, VolumeByClassHandComputed) {
  Instance inst(2, {make_job(0, 0.0, 0.5, 0.5), make_job(1, 0.0, 3.0, 0.5),
                    make_job(2, 0.0, 8.0, 0.5)});
  // Build trajectories from a plan frozen at t=0+ (nothing processed yet
  // in [0, small]): use a plan that idles first.
  Plan plan;
  plan.add(0, 1.0, 2.0, 1.0);
  plan.add(1, 1.0, 4.0, 1.0);
  plan.add(2, 4.0, 12.0, 1.0);
  const auto st = ScheduleTrajectories::from_plan(inst, plan);
  // At t = 0.5: remaining = {0.5, 3, 8}: classes {-1, 1, 3}.
  EXPECT_NEAR(volume_classes_at_most(st, 0.5, -1), 0.5, 1e-9);
  EXPECT_NEAR(volume_classes_at_most(st, 0.5, 0), 0.5, 1e-9);
  EXPECT_NEAR(volume_classes_at_most(st, 0.5, 1), 3.5, 1e-9);
  EXPECT_NEAR(volume_classes_at_most(st, 0.5, 3), 11.5, 1e-9);
}

TEST(LocalComp, Lemma1HoldsForIsrptOnOverloadedInstance) {
  // Heavily overloaded: many jobs, few machines.
  RandomWorkloadConfig cfg;
  cfg.machines = 2;
  cfg.jobs = 60;
  cfg.load = 3.0;  // overload
  cfg.seed = 17;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt isrpt;
  const auto alg = record(inst, isrpt);
  SequentialSrpt seq;
  const auto ref = record(inst, seq);
  const LocalCompReport rep =
      check_local_competitiveness(alg, ref, 2, inst.P());
  EXPECT_GT(rep.samples, 0u);
  EXPECT_GT(rep.overloaded_samples, 0u);
  // Lemmas 1, 4 and 5 hold pointwise (ratio <= 1) for ISRPT.
  EXPECT_LE(rep.lemma1_worst, 1.0 + 1e-9);
  EXPECT_LE(rep.lemma4_worst, 1.0 + 1e-9);
  EXPECT_LE(rep.lemma5_worst, 1.0 + 1e-9);
  EXPECT_GT(rep.lemma5_worst, 0.0);
}

TEST(LocalComp, CountClassesBetweenHandComputed) {
  Instance inst(2, {make_job(0, 0.0, 0.5, 0.5), make_job(1, 0.0, 3.0, 0.5),
                    make_job(2, 0.0, 8.0, 0.5)});
  Plan plan;
  plan.add(0, 1.0, 2.0, 1.0);
  plan.add(1, 1.0, 4.0, 1.0);
  plan.add(2, 4.0, 12.0, 1.0);
  const auto st = ScheduleTrajectories::from_plan(inst, plan);
  // At t = 0.5: remaining {0.5, 3, 8}: classes {-1, 1, 3}.
  EXPECT_EQ(count_classes_between(st, 0.5, 0, 10), 2u);
  EXPECT_EQ(count_classes_between(st, 0.5, -1, 10), 3u);
  EXPECT_EQ(count_classes_between(st, 0.5, 2, 3), 1u);
  EXPECT_EQ(count_classes_between(st, 0.5, 4, 9), 0u);
}

}  // namespace
}  // namespace parsched
