// End-to-end integration tests: small-scale versions of the paper's
// headline claims, wired through the same code paths the benches use.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/competitive.hpp"
#include "analysis/local_comp.hpp"
#include "analysis/potential.hpp"
#include "analysis/trajectories.hpp"
#include "sched/greedy_hybrid.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "workload/adversary.hpp"
#include "workload/greedy_killer.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

/// Run a policy against the adaptive adversary; return (alg flow, best
/// feasible flow including the standard plan and the policy portfolio).
struct AdversaryRun {
  double alg_flow = 0.0;
  double opt_upper = 0.0;
  double opt_lower = 0.0;
  bool case1 = false;
};

AdversaryRun run_adversary(const std::string& policy,
                           const AdversaryConfig& cfg) {
  AdversarySource source(cfg);
  auto sched = make_scheduler(policy);
  Engine engine(cfg.machines);
  const SimResult alg = engine.run(*sched, source);
  const Instance realized(cfg.machines, alg.realized_jobs());
  const Plan plan =
      adversary_standard_plan(realized, cfg, source.outcome());
  const OptEstimate est = estimate_opt(realized, {{"standard", plan}});
  AdversaryRun out;
  out.alg_flow = alg.total_flow;
  out.opt_upper = est.upper;
  out.opt_lower = est.lower;
  out.case1 = source.outcome().case1;
  return out;
}

// Theorem 2 mechanics (small scale): with the full-length stream the
// online algorithm carries its long-job backlog through the entire part 2
// and its flow measurably exceeds the best feasible schedule.
TEST(Integration, AdversaryOpensGapAgainstIsrptWithFullStream) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = cfg.P * cfg.P;  // the paper's X = P^2
  const AdversaryRun run = run_adversary("isrpt", cfg);
  EXPECT_GT(run.alg_flow, 1.15 * run.opt_upper)
      << "adversary failed to separate ISRPT from the feasible schedule";
  EXPECT_GE(run.opt_upper, run.opt_lower - 1e-9);
}

// The adversary hurts every policy (Theorem 2 is algorithm-independent).
// OPT is upper-bounded cheaply by min(standard plan, ISRPT's own flow) —
// both feasible schedules — to keep the test fast at the full stream
// length X = P^2, which is what opens the gap.
TEST(Integration, AdversaryHurtsEveryPolicy) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = cfg.P * cfg.P;
  for (const std::string policy : {"isrpt", "seq-srpt", "equi"}) {
    AdversarySource source(cfg);
    auto sched = make_scheduler(policy);
    Engine engine(cfg.machines);
    const SimResult alg = engine.run(*sched, source);
    const Instance realized(cfg.machines, alg.realized_jobs());
    const Plan plan =
        adversary_standard_plan(realized, cfg, source.outcome());
    double opt_upper = execute_plan(realized, plan).total_flow;
    IntermediateSrpt isrpt;
    opt_upper = std::min(opt_upper, simulate(realized, isrpt).total_flow);
    EXPECT_GT(alg.total_flow, opt_upper * 1.05) << policy;
  }
}

// Lemma 10 at small scale: Greedy's ratio on the killer instance exceeds
// Intermediate-SRPT's by a growing margin.
TEST(Integration, GreedyKillerSeparatesGreedyFromIsrpt) {
  GreedyKillerConfig cfg;
  cfg.machines = 25;  // k = 5
  cfg.alpha = 0.5;
  cfg.stream_time = 625.0;  // m^2
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  const Plan alt = greedy_killer_alternative_plan(gk);
  const double opt_ub = std::min(
      execute_plan(gk.instance, alt).total_flow,
      run_portfolio(gk.instance).best_flow);

  GreedyHybrid greedy;
  IntermediateSrpt isrpt;
  const double greedy_ratio =
      simulate(gk.instance, greedy).total_flow / opt_ub;
  const double isrpt_ratio =
      simulate(gk.instance, isrpt).total_flow / opt_ub;
  EXPECT_GT(greedy_ratio, 2.0 * isrpt_ratio)
      << "greedy=" << greedy_ratio << " isrpt=" << isrpt_ratio;
}

// Theorem 1 sanity: ISRPT's measured ratio (vs the provable lower bound,
// an over-estimate of the truth) stays within the theorem's envelope on
// random instances.
TEST(Integration, IsrptWithinTheoremEnvelopeOnRandomInstances) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    RandomWorkloadConfig cfg;
    cfg.machines = 6;
    cfg.jobs = 120;
    cfg.P = 64.0;
    cfg.alpha_lo = cfg.alpha_hi = 0.5;
    cfg.load = 1.1;
    cfg.seed = seed;
    const Instance inst = make_random_instance(cfg);
    IntermediateSrpt sched;
    const CompetitiveReport rep = compare_to_opt(inst, sched);
    EXPECT_LE(rep.ratio_ub(), theorem1_envelope(0.5, inst.P()))
        << "seed " << seed;
  }
}

// Potential function end-to-end: on an adversary run, the Boundary and
// Discontinuous-Change conditions hold with ISRPT vs the standard plan.
TEST(Integration, PotentialConditionsOnAdversaryInstance) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 64.0;
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  TrajectoryRecorder rec;
  engine.add_observer(&rec);
  const SimResult alg = engine.run(sched, source);
  const Instance realized(cfg.machines, alg.realized_jobs());
  const Plan plan =
      adversary_standard_plan(realized, cfg, source.outcome());
  const auto at = ScheduleTrajectories::from_recorder(rec);
  const auto rt = ScheduleTrajectories::from_plan(realized, plan);
  const PotentialReport rep =
      analyze_potential(at, rt, cfg.machines, cfg.P, cfg.alpha);
  EXPECT_NEAR(rep.phi_start, 0.0, 1e-6);
  EXPECT_NEAR(rep.phi_end, 0.0, 1e-6);
  EXPECT_GT(rep.intervals, 100u);
  EXPECT_TRUE(std::isfinite(rep.c_continuous));
}

// Local competitiveness end-to-end on the same pairing.
TEST(Integration, LocalCompetitivenessOnAdversaryInstance) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 64.0;
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  TrajectoryRecorder rec;
  engine.add_observer(&rec);
  const SimResult alg = engine.run(sched, source);
  const Instance realized(cfg.machines, alg.realized_jobs());
  const Plan plan =
      adversary_standard_plan(realized, cfg, source.outcome());
  const auto at = ScheduleTrajectories::from_recorder(rec);
  const auto rt = ScheduleTrajectories::from_plan(realized, plan);
  const LocalCompReport rep =
      check_local_competitiveness(at, rt, cfg.machines, cfg.P);
  EXPECT_GT(rep.overloaded_samples, 0u);
  EXPECT_LE(rep.lemma1_worst, 1.0 + 1e-9);
  EXPECT_LE(rep.lemma4_worst, 1.0 + 1e-9);
  EXPECT_LE(rep.lemma5_worst, 1.0 + 1e-9);
}

// The alpha = 1 edge: Parallel-SRPT is exactly optimal, and the portfolio
// agrees (its best flow equals the relaxation lower bound).
TEST(Integration, AlphaOneCollapsesTheSandwich) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 80;
  cfg.alpha_lo = cfg.alpha_hi = 1.0;
  cfg.seed = 5;
  const Instance inst = make_random_instance(cfg);
  const OptEstimate est = estimate_opt(inst);
  EXPECT_NEAR(est.upper, est.lower, 1e-6 * est.lower)
      << "at alpha=1 Parallel-SRPT must close the sandwich";
}

}  // namespace
}  // namespace parsched
