// Workload generators: random/batch fuzzers, the Section-3 greedy-killer,
// and the Section-4 adaptive adversary.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/equi.hpp"
#include "sched/greedy_hybrid.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/opt/plan.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "workload/adversary.hpp"
#include "util/rng.hpp"
#include "workload/greedy_killer.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

// --------------------------------------------------------------- random

TEST(RandomWorkload, RespectsConfig) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 100;
  cfg.P = 32.0;
  cfg.seed = 42;
  const Instance inst = make_random_instance(cfg);
  EXPECT_EQ(inst.size(), 100u);
  EXPECT_EQ(inst.machines(), 8);
  for (const Job& j : inst.jobs()) {
    EXPECT_GE(j.size, 1.0);
    EXPECT_LE(j.size, 32.0);
    EXPECT_GE(j.release, 0.0);
  }
}

TEST(RandomWorkload, BoundedParetoEmpiricalMeanMatchesAnalytic) {
  // E[X] for bounded Pareto(lo=1, hi=P, a):
  //   a/(a−1) · (1 − P^(1−a)) / (1 − P^(−a))
  // — the closed form make_random_instance uses to hit its target load.
  // 10⁵ draws pin the sampler against it (and regression-cover the
  // stable-form rewrite of Rng::bounded_pareto: a NaN-poisoned sampler
  // could not land within half a percent of the analytic mean).
  const double P = 1000.0;
  const double a = 1.1;
  const double analytic = a / (a - 1.0) * (1.0 - std::pow(P, 1.0 - a)) /
                          (1.0 - std::pow(1.0 / P, a));
  Rng rng(4242);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.bounded_pareto(1.0, P, a);
  const double empirical = sum / n;
  // Heavy-tailed (a = 1.1), so the sample mean converges slowly: 5%
  // relative tolerance is tight enough to catch a broken inversion
  // (which shifts the mean by orders of magnitude) without flaking.
  EXPECT_NEAR(empirical, analytic, 0.05 * analytic);
}

TEST(RandomWorkload, DeterministicBySeed) {
  RandomWorkloadConfig cfg;
  cfg.seed = 7;
  const Instance a = make_random_instance(cfg);
  const Instance b = make_random_instance(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].release, b.jobs()[i].release);
    EXPECT_DOUBLE_EQ(a.jobs()[i].size, b.jobs()[i].size);
  }
}

TEST(RandomWorkload, SeedChangesInstance) {
  RandomWorkloadConfig cfg;
  cfg.seed = 1;
  const Instance a = make_random_instance(cfg);
  cfg.seed = 2;
  const Instance b = make_random_instance(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a.jobs()[i].size != b.jobs()[i].size) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomWorkload, AllSizeLawsInRange) {
  for (SizeLaw law : {SizeLaw::kUniform, SizeLaw::kLogUniform,
                      SizeLaw::kBoundedPareto, SizeLaw::kBimodal}) {
    RandomWorkloadConfig cfg;
    cfg.size_law = law;
    cfg.P = 16.0;
    cfg.jobs = 200;
    cfg.seed = 5;
    const Instance inst = make_random_instance(cfg);
    for (const Job& j : inst.jobs()) {
      EXPECT_GE(j.size, 1.0 - 1e-9) << to_string(law);
      EXPECT_LE(j.size, 16.0 + 1e-9) << to_string(law);
    }
  }
}

TEST(RandomWorkload, MixedAlphaLawProducesVariety) {
  RandomWorkloadConfig cfg;
  cfg.alpha_law = AlphaLaw::kMixed;
  cfg.jobs = 300;
  cfg.seed = 9;
  const Instance inst = make_random_instance(cfg);
  int seq = 0, par = 0, pow_ = 0;
  for (const Job& j : inst.jobs()) {
    switch (j.curve.kind()) {
      case SpeedupCurve::Kind::kSequential:
        ++seq;
        break;
      case SpeedupCurve::Kind::kFullyParallel:
        ++par;
        break;
      case SpeedupCurve::Kind::kPowerLaw:
        ++pow_;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(seq, 50);
  EXPECT_GT(par, 50);
  EXPECT_GT(pow_, 50);
}

TEST(BatchWorkload, AllReleasedAtZero) {
  BatchWorkloadConfig cfg;
  cfg.jobs = 50;
  cfg.seed = 3;
  const Instance inst = make_batch_instance(cfg);
  EXPECT_EQ(inst.size(), 50u);
  for (const Job& j : inst.jobs()) EXPECT_DOUBLE_EQ(j.release, 0.0);
}

// --------------------------------------------------------- greedy-killer

TEST(GreedyKiller, StructureMatchesPaper) {
  GreedyKillerConfig cfg;
  cfg.machines = 16;
  cfg.alpha = 0.5;
  cfg.stream_time = 32.0;
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  // k = round(16^{0.5}) = 4.
  EXPECT_EQ(gk.k, 4);
  const auto& jobs = gk.instance.jobs();
  std::size_t n_long = 0, n_short = 0, n_stream = 0;
  for (const Job& j : jobs) {
    switch (j.tag.cls) {
      case JobTag::Class::kLong:
        ++n_long;
        EXPECT_DOUBLE_EQ(j.size, 16.0);
        EXPECT_DOUBLE_EQ(j.release, 0.0);
        break;
      case JobTag::Class::kShort:
        ++n_short;
        EXPECT_DOUBLE_EQ(j.size, 1.0);
        break;
      case JobTag::Class::kStream:
        ++n_stream;
        EXPECT_GE(j.release, 17.0);
        break;
      default:
        FAIL();
    }
  }
  EXPECT_EQ(n_long, 12u);                       // m - k
  EXPECT_EQ(n_short, 64u);                      // m * k
  EXPECT_EQ(n_stream, 32u * 4u);                // X * k
  EXPECT_DOUBLE_EQ(gk.instance.P(), 16.0);      // P = m
}

TEST(GreedyKiller, AlternativePlanIsFeasible) {
  GreedyKillerConfig cfg;
  cfg.machines = 16;
  cfg.alpha = 0.5;
  cfg.stream_time = 32.0;
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  const Plan plan = greedy_killer_alternative_plan(gk);
  const SimResult r = execute_plan(gk.instance, plan);
  // Long jobs finish exactly at m; phase-1 unit jobs one unit after
  // arrival; stream jobs get all m machines and finish in 1/k.
  for (const auto& rec : r.records) {
    switch (rec.job.tag.cls) {
      case JobTag::Class::kLong:
        EXPECT_NEAR(rec.completion, 16.0, 1e-9);
        break;
      case JobTag::Class::kShort:
        EXPECT_NEAR(rec.flow(), 1.0, 1e-9);
        break;
      default:
        EXPECT_NEAR(rec.flow(), 0.25, 1e-9);  // 1/k with k = 4
        break;
    }
  }
}

TEST(GreedyKiller, GreedyStarvesLongJobs) {
  GreedyKillerConfig cfg;
  cfg.machines = 16;
  cfg.alpha = 0.5;
  cfg.stream_time = 16.0;
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  GreedyHybrid greedy;
  TrajectoryRecorder rec;
  const SimResult r = simulate(gk.instance, greedy, {}, {&rec});
  (void)r;
  // Midway through phase 1 the long jobs are untouched: all m machines
  // chase the unit-job stream (the paper's starvation argument).
  for (const Job& j : gk.instance.jobs()) {
    if (j.tag.cls == JobTag::Class::kLong) {
      EXPECT_NEAR(rec.remaining_at(j.id, 8.0), 16.0, 1e-6);
    }
  }
}

TEST(GreedyKiller, GreedyMuchWorseThanAlternative) {
  GreedyKillerConfig cfg;
  cfg.machines = 16;
  cfg.alpha = 0.5;
  cfg.stream_time = 256.0;  // = m^2, the paper's X
  const GreedyKillerInstance gk = make_greedy_killer(cfg);
  GreedyHybrid greedy;
  const double greedy_flow = simulate(gk.instance, greedy).total_flow;
  const double alt_flow =
      execute_plan(gk.instance, greedy_killer_alternative_plan(gk))
          .total_flow;
  // At m = 16 the asymptotic gap (m - m^{1-eps})/m^{1-eps} ~ 3 is only
  // partially realized; the full sweep lives in bench E4.
  EXPECT_GT(greedy_flow, 2.0 * alt_flow);
}

TEST(GreedyKiller, RejectsDegenerateParams) {
  GreedyKillerConfig cfg;
  cfg.machines = 2;
  EXPECT_THROW((void)make_greedy_killer(cfg), std::invalid_argument);
  cfg.machines = 16;
  cfg.alpha = 1.0;
  EXPECT_THROW((void)make_greedy_killer(cfg), std::invalid_argument);
}

// ------------------------------------------------------------ adversary

TEST(Adversary, ParamsMatchClosedForms) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.0;  // eps = 1, r = 1/4
  const AdversaryParams p = adversary_params(cfg);
  EXPECT_NEAR(p.r, 0.25, 1e-12);
  // log_4(64) = 3 -> L = floor(3/2) = 1.
  EXPECT_EQ(p.num_phases, 1);
  EXPECT_NEAR(p.threshold, 8.0 * 3.0, 1e-9);
  EXPECT_NEAR(p.X, 64.0 * 64.0, 1e-9);
}

TEST(Adversary, RejectsBadConfig) {
  AdversaryConfig cfg;
  cfg.machines = 7;  // odd
  EXPECT_THROW((void)adversary_params(cfg), std::invalid_argument);
  cfg.machines = 8;
  cfg.alpha = 1.0;
  EXPECT_THROW((void)adversary_params(cfg), std::invalid_argument);
  cfg.alpha = 0.5;
  cfg.P = 2.0;
  EXPECT_THROW((void)adversary_params(cfg), std::invalid_argument);
}

TEST(Adversary, RunsAgainstIsrptAndStandardPlanIsFeasible) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 64.0;  // shortened stream for test speed
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  const SimResult alg = engine.run(sched, source);
  ASSERT_GT(alg.jobs(), 0u);
  const AdversaryOutcome& out = source.outcome();
  EXPECT_GT(out.T, 0.0);
  ASSERT_FALSE(out.phase_start.empty());

  // The realized instance admits the paper's standard schedule. (Whether
  // it beats the online algorithm depends on the stream length — that is
  // bench E3's business; here we verify feasibility and accounting.)
  const Instance realized(cfg.machines, alg.realized_jobs());
  const Plan plan = adversary_standard_plan(realized, cfg, out);
  const SimResult opt = execute_plan(realized, plan);
  EXPECT_EQ(opt.jobs(), alg.jobs());
  EXPECT_GT(opt.total_flow, 0.0);
}

TEST(Adversary, EquiTriggersCase1) {
  // EQUI spreads processors thin, so unit jobs linger past the midpoint
  // and the adversary punishes immediately with the stream.
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 32.0;
  AdversarySource source(cfg);
  Equi sched;
  Engine engine(cfg.machines);
  (void)engine.run(sched, source);
  EXPECT_TRUE(source.outcome().case1);
}

TEST(Adversary, PhaseLengthsFollowGeometricDecay) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 4096.0;
  cfg.alpha = 0.0;  // r = 1/4 -> L = floor(6/2) = 3 phases
  cfg.stream_time = 16.0;
  const AdversaryParams p = adversary_params(cfg);
  ASSERT_EQ(p.num_phases, 3);
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  (void)engine.run(sched, source);
  const AdversaryOutcome& out = source.outcome();
  for (std::size_t i = 0; i < out.phase_length.size(); ++i) {
    EXPECT_NEAR(out.phase_length[i], 4096.0 * std::pow(0.25, i), 1e-6);
    if (i > 0) {
      EXPECT_NEAR(out.phase_start[i],
                  out.phase_start[i - 1] + out.phase_length[i - 1], 1e-6);
    }
  }
}

TEST(Adversary, DeterministicReplayAfterReset) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  cfg.stream_time = 16.0;
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine e1(cfg.machines);
  const double f1 = e1.run(sched, source).total_flow;
  Engine e2(cfg.machines);
  const double f2 = e2.run(sched, source).total_flow;  // reset() inside run
  EXPECT_NEAR(f1, f2, 1e-9 * f1);
}

TEST(Adversary, SizesStayWithinP) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 256.0;
  cfg.alpha = 0.5;
  cfg.stream_time = 8.0;
  AdversarySource source(cfg);
  IntermediateSrpt sched;
  Engine engine(cfg.machines);
  const SimResult r = engine.run(sched, source);
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.job.size, 1.0 - 1e-9);
    EXPECT_LE(rec.job.size, 256.0 + 1e-9);
  }
}

}  // namespace
}  // namespace parsched
