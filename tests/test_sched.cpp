// Behavioral tests for every scheduling policy.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/equi.hpp"
#include "sched/greedy_hybrid.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/parallel_srpt.hpp"
#include "sched/registry.hpp"
#include "sched/sequential_srpt.hpp"
#include "sched/variants.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/rng.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

std::vector<double> completions(const SimResult& r) {
  std::vector<double> out(r.records.size());
  for (const auto& rec : r.records) {
    out[rec.job.id] = rec.completion;
  }
  return out;
}

// ---------------------------------------------------- Intermediate-SRPT

TEST(IntermediateSrpt, AgreesWithSequentialSrptWhenAlwaysOverloaded) {
  // m = 2 machines, 8 jobs all present from time 0: |A(t)| >= m until the
  // very end, and in the final stretch (< m jobs) the remaining jobs hold
  // whole machines either way only if n = 1 uses both... restrict to the
  // overloaded prefix by comparing per-job completions of the first 6 jobs.
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), 0.0, 1.0 + i, 0.5));
  }
  Instance inst(2, jobs);
  IntermediateSrpt isrpt;
  SequentialSrpt seq;
  const auto ci = completions(simulate(inst, isrpt));
  const auto cs = completions(simulate(inst, seq));
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(ci[i], cs[i], 1e-9) << "job " << i;
  }
}

TEST(IntermediateSrpt, AgreesWithEquiWhenAlwaysUnderloaded) {
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), 0.0, 4.0, 0.5));
  }
  Instance inst(8, jobs);  // 3 < 8 always
  IntermediateSrpt isrpt;
  Equi equi;
  const auto ci = completions(simulate(inst, isrpt));
  const auto ce = completions(simulate(inst, equi));
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ci[i], ce[i], 1e-9);
}

TEST(IntermediateSrpt, SwitchesModesAcrossTheBoundary) {
  // m = 2; three unit jobs then the survivors equipartition.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 2.0, 0.5),
                    make_job(2, 0.0, 4.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  const auto c = completions(r);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
  // job2 idle till 1, share-1 until 2 (remaining 3), then both machines:
  // 2 + 3/2^{0.5}.
  EXPECT_NEAR(c[2], 2.0 + 3.0 / std::sqrt(2.0), 1e-9);
}

// ------------------------------------------------------ Sequential-SRPT

TEST(SequentialSrpt, NeverGivesMoreThanOneMachine) {
  Instance inst(8, {make_job(0, 0.0, 4.0, 1.0)});
  SequentialSrpt sched;
  const SimResult r = simulate(inst, sched);
  // Even fully parallel job gets one machine: completes at 4.
  EXPECT_NEAR(r.records[0].completion, 4.0, 1e-9);
}

TEST(SequentialSrpt, PrefersShortRemaining) {
  Instance inst(1, {make_job(0, 0.0, 3.0, 0.0), make_job(1, 1.0, 1.0, 0.0)});
  SequentialSrpt sched;
  const auto c = completions(simulate(inst, sched));
  EXPECT_NEAR(c[1], 2.0, 1e-9);  // preempts the long job
  EXPECT_NEAR(c[0], 4.0, 1e-9);
}

// -------------------------------------------------------- Parallel-SRPT

TEST(ParallelSrpt, OptimalForFullyParallelJobs) {
  // SRPT on one speed-m machine: hand-checkable.
  Instance inst(4, {make_job(0, 0.0, 8.0, 1.0), make_job(1, 0.5, 2.0, 1.0)});
  ParallelSrpt sched;
  const auto c = completions(simulate(inst, sched));
  // t in [0, .5): job0 at rate 4 -> rem 6. Then job1 (2 < 6) runs: done at 1.
  EXPECT_NEAR(c[1], 1.0, 1e-9);
  EXPECT_NEAR(c[0], 1.0 + 6.0 / 4.0, 1e-9);
}

// --------------------------------------------------------------- Greedy

TEST(GreedyHybrid, OverAllocatesToShortJob) {
  // m=2, alpha=0.5: A(rem 1) vs B(rem 10). marg(0)/p: A 1 vs B 0.1 -> A;
  // then A marg(1) = sqrt(2)-1 ~ .414 vs B .1 -> A again. A hoards both.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 10.0, 0.5)});
  GreedyHybrid sched;
  const auto c = completions(simulate(inst, sched));
  EXPECT_NEAR(c[0], 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(c[1], 1.0 / std::sqrt(2.0) + 10.0 / std::sqrt(2.0), 1e-9);
}

TEST(GreedyHybrid, SpreadsWhenMarginalsSaturate) {
  // Two equal jobs, m = 2: after one processor each, the marginal of a
  // second processor (2^a - 1)/p loses to the other job's first (1/p).
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5), make_job(1, 0.0, 4.0, 0.5)});
  GreedyHybrid sched;
  const auto c = completions(simulate(inst, sched));
  EXPECT_NEAR(c[0], 4.0, 1e-9);
  EXPECT_NEAR(c[1], 4.0, 1e-9);
}

TEST(GreedyHybrid, QuantumVariantMatchesExact) {
  std::vector<Job> jobs;
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), rng.uniform(0.0, 4.0),
                            rng.uniform(1.0, 8.0), 0.5));
  }
  Instance inst(3, jobs);
  GreedyHybrid exact;
  GreedyHybrid quantized(0.05);
  const double fe = simulate(inst, exact).total_flow;
  const double fq = simulate(inst, quantized).total_flow;
  // Greedy is time-inconsistent, so extra re-decision points can shift
  // individual allocations; the flows must still agree closely.
  EXPECT_NEAR(fe, fq, 0.05 * fe);
}

// ------------------------------------------------------------ EQUI/LAPS

TEST(Equi, SharesEquallyEvenWhenOverloaded) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5),
                    make_job(2, 0.0, 1.0, 0.5), make_job(3, 0.0, 1.0, 0.5)});
  Equi sched;
  const auto c = completions(simulate(inst, sched));
  // Each gets 0.5 machines: rate 0.5 -> all complete at 2.
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(c[i], 2.0, 1e-9);
}

TEST(Laps, ServesOnlyLatestArrivals) {
  // beta = 0.5, m = 2, 2 jobs: only the latest gets everything.
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.1, 2.0, 0.5)});
  Laps sched(0.5);
  const SimResult r = simulate(inst, sched);
  const auto c = completions(r);
  // job1 monopolizes both machines from 0.1: rate 2^{0.5}.
  EXPECT_NEAR(c[1], 0.1 + 2.0 / std::sqrt(2.0), 1e-6);
  EXPECT_GT(c[0], c[1]);  // starved until job1 leaves
}

TEST(Laps, RejectsBadBeta) {
  EXPECT_THROW(Laps(-0.1), std::invalid_argument);
  EXPECT_THROW(Laps(0.0), std::invalid_argument);
  EXPECT_THROW(Laps(1.5), std::invalid_argument);
}

TEST(Laps, BetaOneIsEqui) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.seed = 3;
  const Instance inst = make_random_instance(cfg);
  Laps laps(1.0);
  Equi equi;
  EXPECT_NEAR(simulate(inst, laps).total_flow,
              simulate(inst, equi).total_flow, 1e-6);
}

// ------------------------------------------------------------- variants

TEST(Variants, ThresholdOneMatchesIsrpt) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 40;
  cfg.seed = 7;
  const Instance inst = make_random_instance(cfg);
  IsrptThreshold variant(1.0);
  IntermediateSrpt isrpt;
  EXPECT_NEAR(simulate(inst, variant).total_flow,
              simulate(inst, isrpt).total_flow, 1e-6);
}

TEST(Variants, BoostShortestDiffersUnderload) {
  Instance inst(4, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 8.0, 0.5)});
  IsrptBoostShortest boost;
  const auto c = completions(simulate(inst, boost));
  // Shortest holds 3 machines (rate 3^0.5), other 1 (rate 1).
  EXPECT_NEAR(c[0], 2.0 / std::pow(3.0, 0.5), 1e-9);
  EXPECT_LT(c[0], 2.0 / std::sqrt(2.0));  // faster than equipartition
}

TEST(Variants, QuantizedEquiApproachesEqui) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 0.0, 2.0, 0.0),
                    make_job(2, 0.0, 2.0, 0.0), make_job(3, 0.0, 2.0, 0.0)});
  QuantizedEqui q(0.01);
  Equi equi;
  const double fq = simulate(inst, q).total_flow;
  const double fe = simulate(inst, equi).total_flow;
  EXPECT_NEAR(fq, fe, 0.1 * fe);
}

TEST(Variants, RejectBadParams) {
  EXPECT_THROW(IsrptThreshold(0.5), std::invalid_argument);
  EXPECT_THROW(QuantizedEqui(0.0), std::invalid_argument);
}

// ------------------------------------------------------------- registry

TEST(Registry, BuildsEveryStandardPolicy) {
  for (const auto& name : standard_policy_names()) {
    auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_FALSE(sched->name().empty());
  }
}

TEST(Registry, ParameterizedSpecs) {
  EXPECT_EQ(make_scheduler("laps:0.25")->name(), "LAPS(0.25)");
  EXPECT_NE(make_scheduler("isrpt-thresh:3")->name().find("3"),
            std::string::npos);
  EXPECT_NE(make_scheduler("quantized-equi:0.5")->name().find("0.5"),
            std::string::npos);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_scheduler("definitely-not-a-policy"),
               std::invalid_argument);
}

}  // namespace
}  // namespace parsched
