#!/usr/bin/env python3
"""Self-test for tools/parsched_analyze.py.

Plants throwaway trees under a temp dir: a layer back-edge, a
PARSCHED_HOT body constructing a std::vector, a suppressed allocation,
and a cyclic spec — asserting each fails (or stays silent) as
documented. Then runs the analyzer over the real repository tree, which
must be clean, and schema-checks the JSON / DOT artifacts it emits. Run
via ctest:

  analyze_selftest.py <path-to-parsched_analyze.py> <repo-root>
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SPEC_TWO_LAYERS = """\
schema = 1
[units.util]
deps = []
[units.simcore]
deps = ["util"]
"""

SPEC_CYCLE = """\
schema = 1
[units.util]
deps = ["simcore"]
[units.simcore]
deps = ["util"]
"""


def write(root: Path, rel: str, text: str) -> None:
    p = root / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text, encoding="utf-8")


def run(analyze: Path, root: Path, *extra: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(analyze), "--root", str(root), *extra],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout


def main() -> int:
    if len(sys.argv) != 3:
        print("usage: analyze_selftest.py <parsched_analyze.py> <repo-root>",
              file=sys.stderr)
        return 2
    analyze = Path(sys.argv[1]).resolve()
    repo = Path(sys.argv[2]).resolve()
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="parsched-analyze-") as tmp:
        tdir = Path(tmp)

        # 1. A back-edge: util (bottom layer) includes simcore (above it).
        fx = tdir / "backedge"
        write(fx, "tools/layers.toml", SPEC_TWO_LAYERS)
        write(fx, "src/util/mathx.hpp",
              '#pragma once\n#include "simcore/engine.hpp"\n')
        write(fx, "src/simcore/engine.hpp",
              '#pragma once\n#include "util/mathx.hpp"\n')
        code, out = run(analyze, fx)
        if code != 1 or "[layer-dag]" not in out or "back-edge" not in out:
            failures.append(f"back-edge fixture: exit={code}, out={out!r}")

        # 2. A hot function constructing a std::vector in its body.
        fx = tdir / "hotalloc"
        write(fx, "tools/layers.toml", SPEC_TWO_LAYERS)
        write(fx, "src/simcore/engine.cpp",
              "PARSCHED_HOT void step() {\n"
              "  std::vector<double> rates(n);\n"
              "  use(rates);\n"
              "}\n")
        code, out = run(analyze, fx)
        if code != 1 or "[hot-alloc]" not in out:
            failures.append(f"hot-alloc fixture: exit={code}, out={out!r}")

        # 3. Hot-body constructs that must NOT flag: references into
        #    member scratch, and a suppressed cold-path allocation.
        fx = tdir / "hotclean"
        write(fx, "tools/layers.toml", SPEC_TWO_LAYERS)
        write(fx, "src/simcore/engine.cpp",
              "PARSCHED_HOT void step() {\n"
              "  const std::vector<double>& r = scratch_;\n"
              "  std::vector<double>* p = &scratch_;\n"
              "  if (broken) {\n"
              "    std::ostringstream os;  // lint: alloc-ok (error path)\n"
              "    throw std::runtime_error(os.str());\n"
              "  }\n"
              "}\n")
        code, out = run(analyze, fx)
        if code != 0:
            failures.append(f"suppression fixture: exit={code}, out={out!r}")

        # 4. A cyclic spec is a hard configuration error (exit 2).
        fx = tdir / "cycle"
        write(fx, "tools/layers.toml", SPEC_CYCLE)
        write(fx, "src/util/a.hpp", "#pragma once\n")
        code, out = run(analyze, fx)
        if code != 2:
            failures.append(f"cyclic-spec fixture: exit={code}, out={out!r}")

        # 5. The real tree must be clean, and the artifacts well-formed.
        dot = tdir / "architecture.dot"
        js = tdir / "architecture.json"
        code, out = run(analyze, repo, "--dot", str(dot), "--json", str(js))
        if code != 0:
            failures.append(f"real tree not clean: exit={code}, out={out!r}")
        if not dot.is_file() or "digraph" not in dot.read_text():
            failures.append("DOT artifact missing or malformed")
        if not js.is_file():
            failures.append("JSON artifact missing")
        else:
            report = json.loads(js.read_text(encoding="utf-8"))
            if report.get("schema_version") != 1:
                failures.append("JSON artifact: bad schema_version")
            for key in ("units", "edges", "violations", "hot_functions",
                        "suppressions"):
                if key not in report:
                    failures.append(f"JSON artifact: missing '{key}'")
            if report.get("violations"):
                failures.append(
                    f"JSON artifact lists violations: {report['violations']}"
                )
            if len(report.get("hot_functions", [])) < 15:
                failures.append(
                    "JSON artifact: expected >= 15 hot functions "
                    f"(engine + policies), got "
                    f"{len(report.get('hot_functions', []))}"
                )

    for msg in failures:
        print(f"FAIL: {msg}")
    print(f"analyze_selftest: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
