// Local-search OPT improver, priority-list schedules, non-clairvoyant
// policies (SETF/MLF), and the trace -> plan round-trip cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/trace.hpp"
#include "sched/nonclairvoyant.hpp"
#include "sched/opt/plan.hpp"
#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/opt/search.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// ------------------------------------------------------- priority lists

TEST(PriorityList, FollowsTheGivenOrder) {
  // Order: job1 before job0. One machine: job1 runs first despite being
  // longer.
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 3.0, 0.5)});
  PriorityListScheduler sched({1, 0});
  const SimResult r = simulate(inst, sched);
  ASSERT_EQ(r.records[0].job.id, 1u);
  EXPECT_NEAR(r.records[0].completion, 3.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 4.0, 1e-9);
}

TEST(PriorityList, SplitsLeftoversWhenUnderloaded) {
  // 1 job, 4 machines: gets all 4 -> rate 2 at alpha 0.5.
  Instance inst(4, {make_job(0, 0.0, 4.0, 0.5)});
  PriorityListScheduler sched({0});
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
}

TEST(PriorityList, RejectsDuplicateIds) {
  EXPECT_THROW(PriorityListScheduler({0, 0}), std::invalid_argument);
}

// --------------------------------------------------------- local search

TEST(LocalSearch, FindsSrptOrderOnBatchSingleMachine) {
  // On one machine with sequential jobs, SPT order is optimal; the search
  // must find (or match) it.
  Instance inst(1, {make_job(0, 0.0, 3.0, 0.0), make_job(1, 0.0, 1.0, 0.0),
                    make_job(2, 0.0, 2.0, 0.0)});
  const SearchResult res = local_search_opt(inst, 500, 1);
  // SPT: 1 + 3 + 6 = 10.
  EXPECT_NEAR(res.best_flow, 10.0, 1e-9);
  ASSERT_EQ(res.best_order.size(), 3u);
  EXPECT_EQ(res.best_order[0], 1u);
}

TEST(LocalSearch, NeverWorseThanItsSeeds) {
  BatchWorkloadConfig cfg;
  cfg.machines = 3;
  cfg.jobs = 12;
  cfg.seed = 9;
  const Instance inst = make_batch_instance(cfg);
  const SearchResult res = local_search_opt(inst, 800, 3);
  // The by-size seed is an SPT-style schedule; search must not be worse.
  std::vector<JobId> by_size;
  for (const Job& j : inst.jobs()) by_size.push_back(j.id);
  std::sort(by_size.begin(), by_size.end(), [&](JobId a, JobId b) {
    return inst.jobs()[a].size < inst.jobs()[b].size;
  });
  PriorityListScheduler spt(by_size);
  EXPECT_LE(res.best_flow, simulate(inst, spt).total_flow + 1e-9);
  EXPECT_GE(res.best_flow, opt_lower_bound(inst) - 1e-9);
  EXPECT_GT(res.evaluations, 0);
}

TEST(LocalSearch, TightensThePortfolioOnBatchInstances) {
  BatchWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 16;
  cfg.alpha_law = AlphaLaw::kMixed;
  cfg.seed = 21;
  const Instance inst = make_batch_instance(cfg);
  const PortfolioResult pf = run_portfolio(inst);
  const SearchResult res = local_search_opt(inst, 1500, 5);
  // The searched schedule is feasible, so at minimum it respects the LB;
  // typically it matches or beats the best fixed policy.
  EXPECT_GE(res.best_flow, opt_lower_bound(inst) - 1e-9);
  EXPECT_LE(res.best_flow, pf.best_flow * 1.05);
}

// ------------------------------------------------------------ SETF/MLF

TEST(Setf, RoundRobinsAmongEqualJobs) {
  // Two identical sequential jobs, one machine, tiny quantum: both finish
  // around 2x their size (processor-sharing behaviour).
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 0.0, 2.0, 0.0)});
  Setf sched(0.01);
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 4.0, 0.1);
  EXPECT_NEAR(r.records[1].completion, 4.0, 0.1);
}

TEST(Setf, FavorsFreshJobs) {
  // A long job has been running for a while; a newcomer has zero elapsed
  // time and must preempt it.
  Instance inst(1, {make_job(0, 0.0, 10.0, 0.0), make_job(1, 3.0, 1.0, 0.0)});
  Setf sched(0.05);
  const SimResult r = simulate(inst, sched);
  ASSERT_EQ(r.records[0].job.id, 1u);
  EXPECT_NEAR(r.records[0].completion, 4.0, 0.2);
}

TEST(Setf, RejectsBadQuantum) {
  EXPECT_THROW(Setf(0.0), std::invalid_argument);
}

TEST(Mlf, ShortJobsFinishInLowLevels) {
  // Unit job vs long job on one machine: the unit job needs only level 0
  // and 1 (quanta 1 + 2 > 1), so it finishes before the long job hogs.
  Instance inst(1, {make_job(0, 0.0, 8.0, 0.0), make_job(1, 0.1, 1.0, 0.0)});
  Mlf sched;
  const SimResult r = simulate(inst, sched);
  ASSERT_EQ(r.records[0].job.id, 1u);
  // job0 runs [0, 0.1] (processed .1, still level 0); job1 arrives at
  // level 0 with less... MLF serves the lowest level, ties by arrival:
  // job0 keeps the machine until it crosses into level 1 (processed 1)
  // at t = 1, then job1 (level 0) runs for 1 unit.
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-6);
}

TEST(Mlf, CompletesEverythingUnderOverload) {
  RandomWorkloadConfig cfg;
  cfg.machines = 3;
  cfg.jobs = 80;
  cfg.load = 1.5;
  cfg.seed = 77;
  const Instance inst = make_random_instance(cfg);
  Mlf sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_EQ(r.jobs(), inst.size());
  EXPECT_GE(r.total_flow, opt_lower_bound(inst) - 1e-6);
}

TEST(NonClairvoyant, RegistryBuildsThem) {
  EXPECT_EQ(make_scheduler("mlf")->name(), "MLF");
  EXPECT_NE(make_scheduler("setf:0.5")->name().find("0.5"),
            std::string::npos);
}

// --------------------------------------------- trace -> plan round trip

class TraceRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceRoundTripTest, ExecutePlanReproducesEngineFlows) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.load = 1.1;
  cfg.seed = 31;
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler(GetParam());
  AllocationTrace trace;
  const SimResult engine_result = simulate(inst, *sched, {}, {&trace});
  const SimResult plan_result = execute_plan(inst, trace.to_plan(), 1e-5);
  ASSERT_EQ(plan_result.jobs(), engine_result.jobs());
  EXPECT_NEAR(plan_result.total_flow, engine_result.total_flow,
              1e-5 * engine_result.total_flow)
      << "the two execution paths disagree for " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Policies, TraceRoundTripTest,
                         ::testing::Values("isrpt", "seq-srpt", "equi",
                                           "laps:0.5", "greedy", "mlf"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& c : n) {
                             if (c == '-' || c == ':' || c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace parsched
