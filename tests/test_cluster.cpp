// serve/cluster — the sharded serving plane, PBIN, and load shapes.
//
// The anchor here is the migration differential: a session live-migrated
// between shards mid-run must produce responses and snapshots that are
// BYTE-identical to an unmigrated run — under the NDJSON protocol and
// under PBIN. Everything a client can observe (query doubles, finish
// records, re-exported PSNP blobs) is compared as raw bytes, not with
// tolerances.
//
// Around it: consistent-hash ring pins and the only-remapped-keys
// property, the Zipf/burst/diurnal generators pinned with golden seeded
// vectors (they claim cross-platform bit-determinism — sqrt and
// arithmetic only, no libm pow), PBIN frame reassembly torn at every
// byte offset, hello version negotiation, cluster-wide caps, evacuation,
// and the merged metrics namespace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>  // lint: thread-ok
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sched/registry.hpp"
#include "serve/binproto.hpp"
#include "serve/cluster.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/shapes.hpp"
#include "serve/transport.hpp"
#include "simcore/engine.hpp"
#include "simcore/instance.hpp"
#include "speedup/curve.hpp"

namespace parsched {
namespace {

void tiny_sleep() {
  timespec ts{0, 1'000'000};  // 1ms
  nanosleep(&ts, nullptr);
}

// One strict request/response against the handler; blocks until the
// (possibly strand-deferred) response arrives.
std::string request(serve::ProtocolHandler& h, const std::string& line) {
  auto p = std::make_shared<std::promise<std::string>>();
  auto f = p->get_future();
  h.handle_line(line, [p](const std::string& s) { p->set_value(s); });
  return f.get();
}

// Retry through backpressure (a migration's kDraining window).
std::string request_retry(serve::ProtocolHandler& h,
                          const std::string& line) {
  for (int i = 0; i < 10000; ++i) {
    std::string r = request(h, line);
    if (r.find("\"reject\"") == std::string::npos) return r;
    tiny_sleep();
  }
  throw std::runtime_error("request never accepted: " + line);
}

std::string frame_request(serve::ProtocolHandler& h,
                          const std::string& payload) {
  auto p = std::make_shared<std::promise<std::string>>();
  auto f = p->get_future();
  h.handle_frame(payload, [p](const std::string& s) { p->set_value(s); });
  return f.get();
}

std::string frame_request_retry(serve::ProtocolHandler& h,
                                const std::string& payload) {
  for (int i = 0; i < 10000; ++i) {
    std::string r = frame_request(h, payload);
    if (serve::parse_bin_response(r).status != serve::BinStatus::kReject) {
      return r;
    }
    tiny_sleep();
  }
  throw std::runtime_error("frame never accepted");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

serve::Cluster::Config cluster_config(int shards, std::size_t sessions = 64,
                                      std::size_t queue = 128,
                                      obs::MetricsRegistry* reg = nullptr) {
  serve::Cluster::Config cfg;
  cfg.shards = shards;
  cfg.threads_per_shard = 1;
  cfg.max_sessions = sessions;
  cfg.max_queue = queue;
  cfg.metrics = reg;
  return cfg;
}

// --------------------------------------------------- consistent hashing

// The ring is wire-adjacent state: clients (loadgen's burst shape)
// compute placement offline, so the hash must never drift. Golden pins.
TEST(Ring, ConsistentShardGoldenPins) {
  const int four[16] = {1, 1, 2, 0, 1, 2, 1, 3, 1, 2, 2, 1, 3, 0, 1, 0};
  for (std::uint64_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(serve::consistent_shard(k, 4), four[k - 1]) << "key " << k;
  }
  const int eight[8] = {1, 7, 6, 5, 4, 2, 4, 3};
  for (std::uint64_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(serve::consistent_shard(k, 8), eight[k - 1]) << "key " << k;
  }
}

TEST(Ring, BuildRingIsSortedWithVirtualNodes) {
  const auto ring = serve::build_ring(4);
  EXPECT_EQ(ring.size(), 4u * serve::kVirtualNodes);
  EXPECT_TRUE(std::is_sorted(
      ring.begin(), ring.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  // ring_lookup over the full ring IS consistent_shard.
  for (std::uint64_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(serve::ring_lookup(ring, k), serve::consistent_shard(k, 4));
  }
  // Every shard owns at least one arc.
  for (int target = 0; target < 4; ++target) {
    bool owns = false;
    for (std::uint64_t k = 1; k <= 4096 && !owns; ++k) {
      owns = serve::consistent_shard(k, 4) == target;
    }
    EXPECT_TRUE(owns) << "shard " << target << " owns no keys";
  }
}

// The property that makes evacuation cheap: dropping a shard from the
// ring remaps ONLY the keys that lived on it.
TEST(Ring, RemovingAShardOnlyRemapsItsKeys) {
  const auto full = serve::build_ring(4);
  const auto without2 = serve::build_ring(4, {2});
  int remapped = 0;
  for (std::uint64_t k = 1; k <= 2048; ++k) {
    const int before = serve::ring_lookup(full, k);
    const int after = serve::ring_lookup(without2, k);
    if (before == 2) {
      EXPECT_NE(after, 2) << "key " << k << " stayed on the dead shard";
      ++remapped;
    } else {
      EXPECT_EQ(after, before) << "key " << k << " moved needlessly";
    }
  }
  EXPECT_GT(remapped, 0);
}

// ------------------------------------------------------------- shapes

TEST(Shapes, HalfStepPowIsExactOnHalfExponents) {
  EXPECT_EQ(serve::half_step_pow(2.0, 0.0), 1.0);
  EXPECT_EQ(serve::half_step_pow(2.0, 1.0), 2.0);
  EXPECT_EQ(serve::half_step_pow(2.0, 2.0), 4.0);
  EXPECT_EQ(serve::half_step_pow(4.0, 0.5), 2.0);
  EXPECT_EQ(serve::half_step_pow(9.0, 1.5), 27.0);
  EXPECT_THROW((void)serve::half_step_pow(2.0, 0.3), std::invalid_argument);
  EXPECT_THROW((void)serve::half_step_pow(2.0, -0.5),
               std::invalid_argument);
  EXPECT_THROW((void)serve::half_step_pow(-1.0, 1.0),
               std::invalid_argument);
}

// Golden seeded vector, like the splitmix pins in test_exec.cpp: the
// zipf sampler feeds the soak workload, so its draws are part of the
// reproducibility contract.
TEST(Shapes, ZipfSamplerGoldenSeededVector) {
  serve::ZipfSampler z(8, 1.0);
  EXPECT_EQ(z.weight(0), 0.36793692509855458);
  EXPECT_EQ(z.weight(7), 0.045992115637319309);
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    sum += z.weight(i);
    if (i > 0) {
      EXPECT_LT(z.weight(i), z.weight(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);

  std::uint64_t state = 42;  // splitmix64, the loadgen generator
  auto next_unit = [&state] {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<double>((x ^ (x >> 31)) >> 11) * 0x1.0p-53;
  };
  const std::size_t want[16] = {3, 0, 0, 0, 0, 5, 0, 4,
                                0, 2, 0, 1, 1, 1, 2, 0};
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(z.sample(next_unit()), want[i]) << "draw " << i;
  }
  // Inverse CDF edges.
  EXPECT_EQ(z.sample(0.0), 0u);
  EXPECT_EQ(z.sample(0.9999999), 7u);
}

TEST(Shapes, ZipfAdmissionCountsPinnedAndExact) {
  const std::vector<int> heavy =
      serve::zipf_admission_counts(8, 320, 1.0);
  EXPECT_EQ(heavy, (std::vector<int>{118, 59, 39, 29, 23, 20, 17, 15}));

  const std::vector<int> tiny = serve::zipf_admission_counts(5, 7, 0.5);
  EXPECT_EQ(tiny, (std::vector<int>{2, 2, 1, 1, 1}));

  // theta = 0 degenerates to uniform.
  EXPECT_EQ(serve::zipf_admission_counts(4, 8, 0.0),
            (std::vector<int>{2, 2, 2, 2}));

  // Exact totals and a served tail, even with a brutal skew.
  const std::vector<int> skewed =
      serve::zipf_admission_counts(32, 64, 2.0);
  int total = 0;
  for (const int c : skewed) {
    EXPECT_GE(c, 1) << "a session with zero jobs never runs its strand";
    total += c;
  }
  EXPECT_EQ(total, 64);
}

TEST(Shapes, BurstKeysCollapseOntoOneShard) {
  // key_for_shard golden pins over a 4-shard ring.
  EXPECT_EQ(serve::key_for_shard(0, 4), 4u);
  EXPECT_EQ(serve::key_for_shard(1, 4), 1u);
  EXPECT_EQ(serve::key_for_shard(2, 4), 3u);
  EXPECT_EQ(serve::key_for_shard(3, 4), 8u);
  for (int target = 0; target < 4; ++target) {
    const std::uint64_t key = serve::key_for_shard(target, 4);
    EXPECT_EQ(serve::consistent_shard(key, 4), target);
  }
  // Volley releases: per_burst jobs share an instant.
  EXPECT_EQ(serve::burst_release(0, 4, 2.0), 0.0);
  EXPECT_EQ(serve::burst_release(3, 4, 2.0), 0.0);
  EXPECT_EQ(serve::burst_release(4, 4, 2.0), 2.0);
  EXPECT_EQ(serve::burst_release(11, 4, 2.0), 4.0);
  EXPECT_THROW((void)serve::burst_release(0, 0, 1.0),
               std::invalid_argument);
}

TEST(Shapes, DiurnalReleasesPinnedMonotoneAndSymmetric) {
  // Golden vector (8 arrivals over T=8, peak ratio 4). Bit-exact: the
  // inversion uses only +,-,*,/ and sqrt.
  const double want[8] = {
      0.92744332770842275, 2.0985433803290001, 2.9613662422417089,
      3.6777654594576359,  4.3222345405423646, 5.0386337577582907,
      5.9014566196710003,  7.0725566722915776};
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(serve::diurnal_release(j, 8, 8.0, 4.0), want[j]) << j;
  }
  for (int j = 1; j < 8; ++j) {
    EXPECT_LT(want[j - 1], want[j]);
  }
  // The ramp is a mirror image around T/2.
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(want[j] + want[7 - j], 8.0, 1e-12);
  }
  // peak == 1 is exactly uniform.
  for (int j = 0; j < 10; ++j) {
    EXPECT_EQ(serve::diurnal_release(j, 10, 10.0, 1.0),
              (static_cast<double>(j) + 0.5));
  }
  EXPECT_THROW((void)serve::diurnal_release(0, 4, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW((void)serve::diurnal_release(0, 4, 1.0, 0.5),
               std::invalid_argument);
}

TEST(Shapes, ParseLoadShapeRoundTrips) {
  for (const auto shape :
       {serve::LoadShape::kUniform, serve::LoadShape::kZipf,
        serve::LoadShape::kBurst, serve::LoadShape::kDiurnal}) {
    EXPECT_EQ(serve::parse_load_shape(serve::load_shape_name(shape)),
              shape);
  }
  EXPECT_THROW((void)serve::parse_load_shape("sawtooth"),
               std::invalid_argument);
}

// ------------------------------------------------------ PBIN framing

TEST(BinProto, HelloRoundTripAndRejection) {
  const std::string hello = serve::encode_hello(serve::kBinProtoVersion);
  EXPECT_EQ(hello.size(), serve::kBinHelloSize);
  EXPECT_EQ(serve::decode_hello(hello), serve::kBinProtoVersion);
  EXPECT_EQ(serve::decode_hello(serve::encode_hello(0)), 0u);
  std::string bad = hello;
  bad[0] = 'Q';
  EXPECT_THROW((void)serve::decode_hello(bad), std::invalid_argument);
  EXPECT_THROW((void)serve::decode_hello("PBIN"), std::invalid_argument);
}

// A frame may arrive torn anywhere — header split mid-length-prefix,
// body split mid-double. Reassembly must be offset-oblivious.
TEST(BinProto, FrameBufferReassemblesTornFramesAtEveryOffset) {
  const std::vector<std::string> payloads = {
      "x", std::string(300, 'y'), "", serve::bin_ping(7)};
  std::string stream;
  for (const std::string& p : payloads) stream += serve::frame(p);

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    serve::FrameBuffer buf;
    buf.feed(std::string_view(stream).substr(0, cut));
    std::vector<std::string> got;
    std::string payload;
    while (buf.next(payload)) got.push_back(payload);
    buf.feed(std::string_view(stream).substr(cut));
    while (buf.next(payload)) got.push_back(payload);
    ASSERT_EQ(got.size(), payloads.size()) << "cut at " << cut;
    EXPECT_EQ(got, payloads) << "cut at " << cut;
  }

  // Worst case: one byte per feed.
  serve::FrameBuffer drip;
  std::vector<std::string> got;
  for (const char c : stream) {
    drip.feed(std::string_view(&c, 1));
    std::string payload;
    while (drip.next(payload)) got.push_back(payload);
  }
  EXPECT_EQ(got, payloads);
}

TEST(BinProto, FrameBufferRejectsOversizedLength) {
  serve::FrameBuffer buf;
  const std::uint32_t huge = serve::kMaxFramePayload + 1;
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  buf.feed(std::string_view(header, 4));
  std::string payload;
  EXPECT_THROW((void)buf.next(payload), std::invalid_argument);
}

// --------------------------------------------------- cluster routing

TEST(Cluster, RoutesByKeyAndCountsSessions) {
  serve::Cluster cluster(cluster_config(4));
  serve::Session::Config scfg;
  scfg.machines = 2;
  std::vector<serve::SessionId> ids;
  for (std::uint64_t key = 1; key <= 12; ++key) {
    serve::SessionId id = 0;
    int shard = -1;
    ASSERT_EQ(cluster.open(scfg, id, key, &shard),
              serve::Submit::kAccepted);
    EXPECT_EQ(shard, serve::consistent_shard(key, 4)) << "key " << key;
    EXPECT_EQ(cluster.shard_of(id), shard);
    ids.push_back(id);
  }
  EXPECT_EQ(cluster.session_count(), 12u);
  std::size_t across = 0;
  for (int s = 0; s < cluster.shards(); ++s) {
    across += cluster.session_count(s);
  }
  EXPECT_EQ(across, 12u);

  for (const serve::SessionId id : ids) {
    EXPECT_EQ(cluster.close(id), serve::Submit::kAccepted);
  }
  EXPECT_EQ(cluster.session_count(), 0u);
  EXPECT_EQ(cluster.close(ids[0]), serve::Submit::kUnknownSession);
  EXPECT_EQ(cluster.submit(ids[0], [](serve::Session&) {}),
            serve::Submit::kUnknownSession);
}

TEST(Cluster, EnforcesClusterWideSessionCap) {
  serve::Cluster cluster(cluster_config(4, /*sessions=*/2));
  serve::Session::Config scfg;
  serve::SessionId a = 0;
  serve::SessionId b = 0;
  serve::SessionId c = 0;
  EXPECT_EQ(cluster.open(scfg, a), serve::Submit::kAccepted);
  EXPECT_EQ(cluster.open(scfg, b), serve::Submit::kAccepted);
  EXPECT_EQ(cluster.open(scfg, c), serve::Submit::kSessionCap);
  EXPECT_EQ(cluster.close(a), serve::Submit::kAccepted);
  EXPECT_EQ(cluster.open(scfg, c), serve::Submit::kAccepted);
}

TEST(Cluster, MigrateValidatesTarget) {
  serve::Cluster cluster(cluster_config(2));
  serve::Session::Config scfg;
  serve::SessionId id = 0;
  ASSERT_EQ(cluster.open(scfg, id), serve::Submit::kAccepted);
  EXPECT_THROW((void)cluster.migrate(id, 7), std::invalid_argument);
  EXPECT_THROW((void)cluster.migrate(id, -1), std::invalid_argument);
  EXPECT_EQ(cluster.migrate(999, 1), serve::Submit::kUnknownSession);
  // Same-shard migration is an accepted no-op.
  EXPECT_EQ(cluster.migrate(id, cluster.shard_of(id)),
            serve::Submit::kAccepted);
}

TEST(Cluster, EvacuateMovesEverySessionOffTheShard) {
  serve::Cluster cluster(cluster_config(4, 32));
  serve::Session::Config scfg;
  scfg.machines = 2;
  std::vector<serve::SessionId> ids;
  for (std::uint64_t key = 1; key <= 16; ++key) {
    serve::SessionId id = 0;
    ASSERT_EQ(cluster.open(scfg, id, key), serve::Submit::kAccepted);
    // Give every session state worth carrying.
    ASSERT_EQ(cluster.submit(id,
                             [key](serve::Session& s) {
                               Job j;
                               j.id = 0;
                               j.release = 0.0;
                               j.size = static_cast<double>(key);
                               j.curve = SpeedupCurve::power_law(0.5);
                               s.admit(j);
                             }),
              serve::Submit::kAccepted);
    ids.push_back(id);
  }
  const std::size_t on_victim = cluster.session_count(1);
  EXPECT_GT(on_victim, 0u);

  const int moved = cluster.evacuate(1);
  EXPECT_EQ(static_cast<std::size_t>(moved), on_victim);
  EXPECT_FALSE(cluster.shard_in_ring(1));
  EXPECT_EQ(cluster.session_count(1), 0u);
  EXPECT_EQ(cluster.session_count(), 16u) << "no session may be lost";

  // Every session still serves, and each landed where the thinned ring
  // says its key now lives.
  const auto ring = serve::build_ring(4, {1});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(cluster.shard_of(ids[i]),
              serve::ring_lookup(ring, static_cast<std::uint64_t>(i + 1)));
    EXPECT_EQ(cluster.submit(ids[i], [](serve::Session&) {}),
              serve::Submit::kAccepted);
  }

  // Idempotent; the last in-ring shard is not evacuable.
  EXPECT_EQ(cluster.evacuate(1), 0);
  EXPECT_THROW((void)cluster.evacuate(9), std::invalid_argument);
  (void)cluster.evacuate(0);
  (void)cluster.evacuate(2);
  EXPECT_THROW((void)cluster.evacuate(3), std::invalid_argument);
}

TEST(Cluster, MergedSnapshotNamespacesShardsAndAggregates) {
  obs::MetricsRegistry reg;
  serve::Cluster cluster(cluster_config(2, 64, 128, &reg));
  serve::Session::Config scfg;
  for (std::uint64_t key = 1; key <= 6; ++key) {
    serve::SessionId id = 0;
    ASSERT_EQ(cluster.open(scfg, id, key), serve::Submit::kAccepted);
  }
  const obs::MetricsSnapshot snap = cluster.merged_snapshot();

  const auto* cluster_opened = snap.find("serve.cluster.sessions.opened");
  ASSERT_NE(cluster_opened, nullptr);
  EXPECT_EQ(cluster_opened->value, 6.0);

  // The aggregate keeps the plain Server names (sum over shards)...
  const auto* opened = snap.find("serve.sessions.opened");
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->value, 6.0);

  // ...and the per-shard bands carry the shard prefix.
  double per_shard = 0.0;
  for (int s = 0; s < 2; ++s) {
    const auto* shard_opened = snap.find(
        "serve.shard" + std::to_string(s) + ".sessions.opened");
    ASSERT_NE(shard_opened, nullptr) << "shard " << s;
    per_shard += shard_opened->value;
  }
  EXPECT_EQ(per_shard, 6.0);

  EXPECT_TRUE(std::is_sorted(snap.samples.begin(), snap.samples.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
}

// ------------------------------------- the migration differential

// Drive the same deterministic session twice through the NDJSON
// protocol — once flat, once live-migrated across two shards mid-run —
// and demand byte-identical query/finish responses AND a byte-identical
// re-exported snapshot. This is the tentpole guarantee: migration is
// invisible at the wire.
std::vector<std::string> drive_ndjson(bool migrate,
                                      const std::string& snap_path) {
  serve::ProtocolHandler h(
      serve::Cluster::Config{4, 1, 16, 64, nullptr, nullptr});
  std::vector<std::string> observable;

  const std::string opened = request(
      h, R"({"op":"open","id":1,"policy":"isrpt","machines":3,"key":5})");
  observable.push_back(opened);
  obs::JsonValue ov;
  std::string err;
  EXPECT_TRUE(obs::json_parse(opened, ov, &err));
  const auto sid =
      static_cast<std::uint64_t>(ov.number_or("session", 0.0));
  const int shard = static_cast<int>(ov.number_or("shard", -1.0));
  EXPECT_EQ(shard, serve::consistent_shard(5, 4));

  std::uint64_t rng = 77;
  auto next_unit = [&rng] {
    rng += 0x9E3779B97F4A7C15ULL;
    std::uint64_t x = rng;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<double>((x ^ (x >> 31)) >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < 24; ++i) {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", "admit");
    w.kv("id", 100 + i);
    w.kv("session", sid);
    w.key("job");
    w.begin_object();
    w.kv("id", i);
    w.kv("release", static_cast<double>(i) * 0.25);
    w.kv("size", 0.5 + 2.0 * next_unit());
    w.kv("curve", "pow:" + obs::json_number(0.25 + 0.5 * next_unit()));
    w.end_object();
    w.end_object();
    observable.push_back(request_retry(h, os.str()));
    if (i == 11 && migrate) {
      const int target = (shard + 2) % 4;
      const std::string resp = request(
          h, std::string(R"({"op":"migrate","id":900,"session":)") +
                 std::to_string(sid) + R"(,"shard":)" +
                 std::to_string(target) + "}");
      EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
    }
  }
  observable.push_back(request_retry(
      h, std::string(R"({"op":"advance","id":300,"session":)") +
             std::to_string(sid) + R"(,"to":4.5})"));
  observable.push_back(request_retry(
      h, std::string(R"({"op":"query","id":301,"session":)") +
             std::to_string(sid) + "}"));
  observable.push_back(request_retry(
      h, std::string(R"({"op":"snapshot","id":302,"session":)") +
             std::to_string(sid) + R"(,"path":")" + snap_path + R"("})"));
  observable.push_back(request_retry(
      h, std::string(R"({"op":"finish","id":303,"session":)") +
             std::to_string(sid) + "}"));
  observable.push_back(request_retry(
      h, std::string(R"({"op":"close","id":304,"session":)") +
             std::to_string(sid) + "}"));
  h.drain();
  return observable;
}

TEST(Migration, DifferentialNdjsonIsByteIdentical) {
  const std::string flat_snap = testing::TempDir() + "mig_flat.psnp";
  const std::string moved_snap = testing::TempDir() + "mig_moved.psnp";
  const std::vector<std::string> flat = drive_ndjson(false, flat_snap);
  const std::vector<std::string> moved = drive_ndjson(true, moved_snap);

  ASSERT_EQ(flat.size(), moved.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], moved[i]) << "response " << i << " diverged";
  }
  const std::string a = slurp(flat_snap);
  const std::string b = slurp(moved_snap);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "post-migration snapshot blob diverged";
}

// Same differential over PBIN: raw IEEE-754 doubles on the wire, so
// equality here is equality of every bit the engine produced.
std::vector<std::string> drive_pbin(bool migrate,
                                    const std::string& snap_path) {
  serve::ProtocolHandler h(
      serve::Cluster::Config{4, 1, 16, 64, nullptr, nullptr});
  std::vector<std::string> observable;

  const std::string opened =
      frame_request(h, serve::bin_open(1, "isrpt", 3, 1.0, 5));
  observable.push_back(opened);
  const serve::BinResponse ov = serve::parse_bin_response(opened);
  EXPECT_EQ(ov.status, serve::BinStatus::kOk);
  const std::uint64_t sid = ov.session;
  const int shard = ov.shard;
  EXPECT_EQ(shard, serve::consistent_shard(5, 4));

  std::uint64_t rng = 77;
  auto next_unit = [&rng] {
    rng += 0x9E3779B97F4A7C15ULL;
    std::uint64_t x = rng;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<double>((x ^ (x >> 31)) >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < 24; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = static_cast<double>(i) * 0.25;
    j.size = 0.5 + 2.0 * next_unit();
    j.curve = SpeedupCurve::power_law(0.25 + 0.5 * next_unit());
    observable.push_back(frame_request_retry(
        h, serve::bin_admit(static_cast<std::uint64_t>(100 + i), sid, j)));
    if (i == 11 && migrate) {
      const serve::BinResponse resp = serve::parse_bin_response(
          frame_request(h, serve::bin_migrate(900, sid, (shard + 2) % 4)));
      EXPECT_EQ(resp.status, serve::BinStatus::kOk);
    }
  }
  observable.push_back(
      frame_request_retry(h, serve::bin_advance(300, sid, 4.5)));
  observable.push_back(frame_request_retry(h, serve::bin_query(301, sid)));
  observable.push_back(
      frame_request_retry(h, serve::bin_snapshot(302, sid, snap_path)));
  observable.push_back(frame_request_retry(h, serve::bin_finish(303, sid)));
  observable.push_back(frame_request_retry(h, serve::bin_close(304, sid)));
  h.drain();
  return observable;
}

TEST(Migration, DifferentialPbinIsByteIdentical) {
  const std::string flat_snap = testing::TempDir() + "mig_flat_bin.psnp";
  const std::string moved_snap = testing::TempDir() + "mig_moved_bin.psnp";
  const std::vector<std::string> flat = drive_pbin(false, flat_snap);
  const std::vector<std::string> moved = drive_pbin(true, moved_snap);

  ASSERT_EQ(flat.size(), moved.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], moved[i]) << "frame " << i << " diverged";
  }
  const std::string a = slurp(flat_snap);
  const std::string b = slurp(moved_snap);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "post-migration snapshot blob diverged";

  // And the two wires agree with each other on the session's results:
  // parse the finish frames and compare the exact doubles.
  const serve::BinResponse fin =
      serve::parse_bin_response(flat[flat.size() - 2]);
  EXPECT_EQ(fin.status, serve::BinStatus::kOk);
  EXPECT_EQ(fin.jobs, 24u);
  EXPECT_EQ(fin.records.size(), 24u);
  EXPECT_GT(fin.total_flow, 0.0);
}

// Migration events must land in the flight recorder ring.
TEST(Migration, RecordsMigrateAndRerouteEvents) {
  obs::FlightRecorder recorder(1024);
  obs::MetricsRegistry reg;
  serve::Cluster::Config cfg = cluster_config(2, 16, 64, &reg);
  cfg.recorder = &recorder;
  serve::Cluster cluster(cfg);
  serve::Session::Config scfg;
  serve::SessionId id = 0;
  ASSERT_EQ(cluster.open(scfg, id, 1), serve::Submit::kAccepted);
  const int source = cluster.shard_of(id);
  const int target = 1 - source;
  ASSERT_EQ(cluster.migrate(id, target), serve::Submit::kAccepted);
  for (int i = 0; i < 5000 && cluster.shard_of(id) != target; ++i) {
    tiny_sleep();
  }
  ASSERT_EQ(cluster.shard_of(id), target);
  // Post-migration traffic on a shard that is not the key's ring
  // placement is a reroute.
  ASSERT_EQ(cluster.submit(id, [](serve::Session&) {}),
            serve::Submit::kAccepted);

  std::ostringstream dump_os;
  recorder.dump_jsonl(dump_os, "test");
  const std::string dump = dump_os.str();
  EXPECT_NE(dump.find("\"ev\": \"migrate\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"ev\": \"reroute\""), std::string::npos) << dump;

  const obs::MetricsSnapshot snap = cluster.merged_snapshot();
  const auto* migrations = snap.find("serve.cluster.migrations");
  ASSERT_NE(migrations, nullptr);
  EXPECT_EQ(migrations->value, 1.0);
  const auto* reroutes = snap.find("serve.cluster.reroutes");
  ASSERT_NE(reroutes, nullptr);
  EXPECT_GE(reroutes->value, 1.0);
}

// ------------------------------------------------- protocol verbs

TEST(ClusterProtocol, ClusterAndEvacuateVerbs) {
  serve::ProtocolHandler h(
      serve::Cluster::Config{3, 1, 32, 64, nullptr, nullptr});
  for (std::uint64_t key = 1; key <= 6; ++key) {
    (void)request(h, std::string(R"({"op":"open","id":1,"policy":"equi",)") +
                         R"("machines":2,"key":)" + std::to_string(key) +
                         "}");
  }
  const std::string info = request(h, R"({"op":"cluster","id":2})");
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(info, v, &err)) << info;
  EXPECT_EQ(v.number_or("shards", 0.0), 3.0);
  EXPECT_EQ(v.number_or("sessions", 0.0), 6.0);

  const std::string evac = request(h, R"({"op":"evacuate","id":3,"shard":0})");
  ASSERT_TRUE(obs::json_parse(evac, v, &err)) << evac;
  EXPECT_TRUE(v.bool_or("ok", false)) << evac;

  const std::string after = request(h, R"({"op":"cluster","id":4})");
  EXPECT_NE(after.find("\"in_ring\":[false,true,true]"), std::string::npos)
      << after;
  EXPECT_NE(after.find("\"sessions\":6"), std::string::npos)
      << "evacuation must not lose sessions: " << after;

  // Bad requests answer errors, not silence.
  EXPECT_NE(request(h, R"({"op":"evacuate","id":5})").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(
      request(h, R"({"op":"migrate","id":6,"session":1})").find("\"ok\":false"),
      std::string::npos);
  h.drain();
}

// --------------------------------------------------- socket plane

TEST(ClusterSocket, PbinClientRoundTrip) {
  const std::string path = testing::TempDir() + "cluster_pbin.sock";
  serve::ProtocolHandler handler(
      serve::Cluster::Config{2, 1, 16, 64, nullptr, nullptr});
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  {
    serve::BinClient client(path);
    EXPECT_EQ(client.negotiated(), serve::kBinProtoVersion);

    serve::BinResponse r = client.call(serve::bin_ping(1));
    EXPECT_EQ(r.status, serve::BinStatus::kOk);
    EXPECT_EQ(r.rid, 1u);

    r = client.call(serve::bin_open(2, "equi", 2, 1.0, 0));
    ASSERT_EQ(r.status, serve::BinStatus::kOk);
    const std::uint64_t sid = r.session;
    EXPECT_GT(sid, 0u);

    Job j;
    j.id = 0;
    j.release = 0.0;
    j.size = 2.0;
    j.curve = SpeedupCurve::power_law(0.5);
    EXPECT_EQ(client.call(serve::bin_admit(3, sid, j)).status,
              serve::BinStatus::kOk);
    EXPECT_EQ(client.call(serve::bin_advance(4, sid, 1.0)).status,
              serve::BinStatus::kOk);

    r = client.call(serve::bin_query(5, sid));
    ASSERT_EQ(r.status, serve::BinStatus::kOk);
    EXPECT_EQ(r.policy, "EQUI");

    r = client.call(serve::bin_cluster(6));
    ASSERT_EQ(r.status, serve::BinStatus::kOk);
    EXPECT_EQ(r.shards, 2);
    EXPECT_EQ(r.sessions, 1u);
    ASSERT_EQ(r.shard_sessions.size(), 2u);
    ASSERT_EQ(r.in_ring.size(), 2u);

    r = client.call(serve::bin_finish(7, sid));
    ASSERT_EQ(r.status, serve::BinStatus::kOk);
    EXPECT_EQ(r.jobs, 1u);
    ASSERT_EQ(r.records.size(), 1u);
    // Raw IEEE-754 on the wire: the completion must equal the batch
    // engine's double exactly, no decimal round trip in between.
    const SimResult batch =
        simulate(Instance(2, std::vector<Job>{j}), *make_scheduler("equi"));
    ASSERT_EQ(batch.records.size(), 1u);
    EXPECT_EQ(r.records[0].completion, batch.records[0].completion);
    EXPECT_EQ(r.total_flow, batch.total_flow);

    EXPECT_EQ(client.call(serve::bin_close(8, sid)).status,
              serve::BinStatus::kOk);

    // Unknown session: reject with a retryable verdict, not an error.
    r = client.call(serve::bin_query(9, sid));
    EXPECT_EQ(r.status, serve::BinStatus::kReject);
    EXPECT_EQ(static_cast<serve::Submit>(r.verdict),
              serve::Submit::kUnknownSession);

    EXPECT_EQ(client.call(serve::bin_shutdown(10)).status,
              serve::BinStatus::kOk);
  }
  server_thread.join();
}

TEST(ClusterSocket, VersionNegotiationRejectsUnspeakableClient) {
  const std::string path = testing::TempDir() + "cluster_nego.sock";
  serve::ProtocolHandler handler(
      serve::Cluster::Config{1, 1, 8, 32, nullptr, nullptr});
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  // Version 0 proposes nothing the server can speak: hello answers 0
  // and the connection closes.
  EXPECT_THROW(serve::BinClient(path, 10.0, 0), std::runtime_error);

  // A huge client version negotiates down to the server's.
  {
    serve::BinClient v9(path, 10.0, 9);
    EXPECT_EQ(v9.negotiated(), serve::kBinProtoVersion);
    EXPECT_EQ(v9.call(serve::bin_ping(1)).status, serve::BinStatus::kOk);
  }

  // The rejected connection must not have hurt the listener: NDJSON
  // still works on the same socket.
  serve::Client ndjson(path);
  EXPECT_NE(ndjson.request(R"({"op":"ping","id":1})").find("\"ok\":true"),
            std::string::npos);
  (void)ndjson.request(R"({"op":"shutdown","id":2})");
  server_thread.join();
}

// The loadgen determinism contract across every axis this PR added:
// same totals whatever the worker count, the wire protocol, or the
// shard count serving the fleet.
TEST(ClusterSocket, LoadgenTotalsInvariantAcrossWiresWorkersAndShards) {
  struct Variant {
    int shards;
    int workers;
    bool binary;
  };
  const Variant variants[] = {
      {1, 1, false}, {4, 2, false}, {4, 4, true}, {2, 1, true}};
  std::vector<double> flows;
  std::vector<std::uint64_t> jobs;
  for (const Variant& var : variants) {
    const std::string path = testing::TempDir() + "cluster_lg_" +
                             std::to_string(flows.size()) + ".sock";
    serve::ProtocolHandler handler(serve::Cluster::Config{
        var.shards, 1, 64, 128, nullptr, nullptr});
    std::thread server_thread(  // lint: thread-ok
        [&handler, &path] { serve::serve_unix_socket(handler, path); });
    serve::LoadgenConfig cfg;
    cfg.socket_path = path;
    cfg.sessions = 6;
    cfg.admissions = 30;
    cfg.machines = 2;
    cfg.seed = 9;
    cfg.shape = serve::LoadShape::kZipf;
    cfg.zipf_theta = 1.0;
    cfg.workers = var.workers;
    cfg.binary = var.binary;
    cfg.shutdown_after = true;
    const serve::LoadgenResult r = serve::run_loadgen(cfg);
    server_thread.join();
    ASSERT_EQ(r.errors, 0u);
    EXPECT_EQ(r.shards, var.shards);
    flows.push_back(r.total_flow());
    jobs.push_back(r.jobs_completed());
  }
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i], flows[0]) << "variant " << i;
    EXPECT_EQ(jobs[i], jobs[0]) << "variant " << i;
  }
  EXPECT_EQ(jobs[0], 6u * 30u);
}

// Burst traffic really does collapse onto one shard: every session of a
// burst fleet lands on the ring position of key 1.
TEST(ClusterSocket, BurstShapeAimsAtOneShard) {
  const std::string path = testing::TempDir() + "cluster_burst.sock";
  obs::MetricsRegistry reg;
  serve::ProtocolHandler handler(
      serve::Cluster::Config{4, 1, 64, 128, &reg, nullptr});
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  serve::LoadgenConfig cfg;
  cfg.socket_path = path;
  cfg.sessions = 5;
  cfg.admissions = 10;
  cfg.machines = 2;
  cfg.shape = serve::LoadShape::kBurst;
  cfg.workers = 2;
  cfg.shutdown_after = true;
  const serve::LoadgenResult r = serve::run_loadgen(cfg);
  server_thread.join();
  ASSERT_EQ(r.errors, 0u);

  // Only the targeted shard saw sessions.
  const int target = serve::consistent_shard(1, 4);
  const obs::MetricsSnapshot snap = handler.cluster().merged_snapshot();
  for (int s = 0; s < 4; ++s) {
    const auto* opened = snap.find(
        "serve.shard" + std::to_string(s) + ".sessions.opened");
    if (opened == nullptr) {
      EXPECT_NE(s, target);
      continue;
    }
    EXPECT_EQ(opened->value, s == target ? 5.0 : 0.0) << "shard " << s;
  }
}

}  // namespace
}  // namespace parsched
