#!/usr/bin/env python3
"""Self-test for tools/validate_report.py.

Builds fixture telemetry files under a temp dir — valid and broken
variants of each format the validator dispatches on (bench report,
metrics-snapshot JSONL, flight-record JSONL, trace JSONL) — and asserts
the validator accepts exactly the valid ones. Run via ctest:

  validate_report_selftest.py <path-to-validate_report.py>
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def histogram(quantiles=True, torn=False, monotone=True):
    h = {
        "bounds": [1.0, 2.0],
        "counts": [1, 2, 1],
        "total": 4 if not torn else 5,
        "sum": 6.0,
    }
    if quantiles:
        h["p50"] = 1.5
        h["p90"] = 2.0 if monotone else 1.0
        h["p99"] = 2.0
    return h


def bench_report(schema=2, torn=False, monotone=True):
    return {
        "schema": schema,
        "kind": "parsched-bench-report",
        "name": "fixture",
        "meta": {},
        "runs": [{
            "policy": "isrpt",
            "jobs": 2,
            "machines": 1,
            "total_flow": 3.0,
            "weighted_flow": 3.0,
            "fractional_flow": 2.5,
            "makespan": 2.0,
            "decisions": 4,
            "events": 6,
            "wall_seconds": 0.1,
            "stats": None,
        }],
        "tables": [{"name": "t", "columns": ["a", "b"], "rows": [[1, 2]]}],
        "metrics": [{
            "name": "lat",
            "kind": "histogram",
            "histogram": histogram(torn=torn, monotone=monotone),
        }],
    }


def cluster_report(drop_table=None, drop_column=None):
    doc = bench_report()
    doc["name"] = "serve_cluster"
    doc["tables"] = [
        {
            "name": "cluster_latency",
            "columns": ["metric", "count", "p50_ms", "p95_ms", "p99_ms"],
            "rows": [["latency", 100, 0.03, 0.4, 0.6]],
        },
        {
            "name": "cluster_throughput",
            "columns": ["metric", "sessions", "shards", "requests",
                        "requests_per_sec", "jobs_per_sec"],
            "rows": [["throughput", 1000, 4, 25000, 33000.0, 27000.0]],
        },
    ]
    if drop_table:
        doc["tables"] = [t for t in doc["tables"]
                         if t["name"] != drop_table]
    if drop_column:
        for t in doc["tables"]:
            if drop_column in t["columns"]:
                i = t["columns"].index(drop_column)
                t["columns"].pop(i)
                for row in t["rows"]:
                    row.pop(i)
    return doc


def e11_report(drop_table=None, drop_column=None):
    doc = bench_report()
    doc["name"] = "e11_engine_perf"
    doc["tables"] = [
        {
            "name": "dense_alive",
            "columns": ["n", "reps", "decisions_per_sec"],
            "rows": [[1000, 10, 90000.0]],
        },
        {
            "name": "incremental_orders",
            "columns": ["n", "decisions_per_sec_incremental",
                        "decide_speedup"],
            "rows": [[100000, 1600.0, 16.0]],
        },
        {
            "name": "flight_recorder_overhead",
            "columns": ["n", "overhead_pct"],
            "rows": [[1000, 1.2]],
        },
        {
            "name": "rate_kernel",
            "columns": ["case", "population", "n",
                        "scalar_melems_per_sec", "batch_melems_per_sec",
                        "fast_melems_per_sec", "batch_speedup",
                        "fast_speedup"],
            "rows": [["shared_n10000", "shared", 10000, 40.0, 42.0,
                      300.0, 1.05, 7.5]],
        },
    ]
    if drop_table:
        doc["tables"] = [t for t in doc["tables"]
                         if t["name"] != drop_table]
    if drop_column:
        for t in doc["tables"]:
            if drop_column in t["columns"]:
                i = t["columns"].index(drop_column)
                t["columns"].pop(i)
                for row in t["rows"]:
                    row.pop(i)
    return doc


def flight_with(extra_events):
    doc = flight_jsonl()
    for kind in extra_events:
        doc.append({
            "ev": kind,
            "seq": doc[-1]["seq"] + 1,
            "id": 7,
            "t": 9.0,
            "v": 1.0,
            "a": 2,
        })
        doc[0]["events"] += 1
        doc[0]["recorded"] += 1
    return doc


def snapshot_jsonl(bad_seq=False, bad_schema=False):
    lines = [{
        "ev": "header",
        "kind": "parsched-metrics-snapshot",
        "schema": 9 if bad_schema else 1,
        "interval_seconds": 0.5,
    }]
    for seq in range(3):
        lines.append({
            "ev": "snapshot",
            "seq": seq + 5 if bad_seq and seq == 1 else seq,
            "t": 0.5 * (seq + 1),
            "metrics": [{"name": "c", "kind": "counter", "value": seq}],
        })
    return lines


def flight_jsonl(bad_ev=False, bad_seq=False, truncated=False):
    lines = [{
        "ev": "header",
        "kind": "parsched-flight-record",
        "schema": 1,
        "reason": "unit",
        "capacity": 8,
        "recorded": 3,
        "dropped": 0,
        "events": 3,
    }]
    for seq, kind in enumerate(("admit", "decision", "complete")):
        lines.append({
            "ev": "warp" if bad_ev and seq == 1 else kind,
            "seq": 0 if bad_seq and seq == 2 else seq,
            "id": 7,
            "t": 0.5 * seq,
            "v": 1.0,
            "a": 2,
        })
    if truncated:
        lines.pop()
    return lines


def trace_jsonl():
    return [
        {"ev": "header", "schema": 1, "kind": "parsched-trace",
         "end_time": 1.0, "dropped": 0},
        {"ev": "arrive", "t": 0.0, "job": 0},
    ]


def run_validator(tool: Path, path: Path) -> int:
    return subprocess.run(
        [sys.executable, str(tool), str(path)],
        capture_output=True,
        text=True,
        check=False,
    ).returncode


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: validate_report_selftest.py <validate_report.py>",
              file=sys.stderr)
        return 2
    tool = Path(sys.argv[1]).resolve()
    failures: list[str] = []

    # (name, contents, jsonl?, expected exit)
    fixtures = [
        ("BENCH_ok.json", bench_report(), False, 0),
        ("BENCH_old_schema.json", bench_report(schema=1), False, 1),
        ("BENCH_torn_total.json", bench_report(torn=True), False, 1),
        ("BENCH_bad_quantiles.json", bench_report(monotone=False), False, 1),
        ("snapshot_ok.jsonl", snapshot_jsonl(), True, 0),
        ("snapshot_bad_seq.jsonl", snapshot_jsonl(bad_seq=True), True, 1),
        ("snapshot_bad_schema.jsonl", snapshot_jsonl(bad_schema=True),
         True, 1),
        ("flight_ok.jsonl", flight_jsonl(), True, 0),
        ("flight_bad_ev.jsonl", flight_jsonl(bad_ev=True), True, 1),
        ("flight_bad_seq.jsonl", flight_jsonl(bad_seq=True), True, 1),
        ("flight_truncated.jsonl", flight_jsonl(truncated=True), True, 1),
        ("trace_ok.jsonl", trace_jsonl(), True, 0),
        # serve_cluster table contract: the named report must carry both
        # gate tables with their gate columns, or the perf gate would
        # pass vacuously.
        ("BENCH_serve_cluster.json", cluster_report(), False, 0),
        ("BENCH_cluster_no_latency.json",
         cluster_report(drop_table="cluster_latency"), False, 1),
        ("BENCH_cluster_no_throughput.json",
         cluster_report(drop_table="cluster_throughput"), False, 1),
        # e11_engine_perf table contract: the perf-baseline report must
        # carry every microbenchmark table bench_compare gates on — a
        # report that silently dropped rate_kernel (e.g. stale emit
        # wiring) must fail validation here, not pass the gate vacuously.
        ("BENCH_e11_engine_perf.json", e11_report(), False, 0),
        ("BENCH_e11_no_rate_kernel.json",
         e11_report(drop_table="rate_kernel"), False, 1),
        ("BENCH_e11_no_fast_speedup.json",
         e11_report(drop_column="fast_speedup"), False, 1),
        ("BENCH_cluster_no_p99.json",
         cluster_report(drop_column="p99_ms"), False, 1),
        # Migration events are part of the flight-record vocabulary.
        ("flight_migration.jsonl",
         flight_with(["migrate", "reroute"]), True, 0),
    ]

    with tempfile.TemporaryDirectory(prefix="parsched-validate-") as tmp:
        root = Path(tmp)
        for name, contents, is_jsonl, expected in fixtures:
            path = root / name
            if is_jsonl:
                path.write_text(
                    "".join(json.dumps(l) + "\n" for l in contents),
                    encoding="utf-8",
                )
            else:
                path.write_text(json.dumps(contents), encoding="utf-8")
            got = run_validator(tool, path)
            if got != expected:
                failures.append(
                    f"{name}: expected exit {expected}, got {got}"
                )

    if failures:
        print("validate_report_selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"validate_report_selftest OK ({len(fixtures)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
