// The src/check subsystem: contract macros, the InvariantAuditor, and the
// determinism checker.
#include <gtest/gtest.h>

#include <cmath>

#include "check/contract.hpp"
#include "check/determinism.hpp"
#include "check/invariant_auditor.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "workload/adversary.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// ------------------------------------------------------- contract macros

TEST(Contract, CheckPassesSilently) {
  const std::uint64_t before = contract_failures();
  PARSCHED_CHECK(1 + 1 == 2);
  PARSCHED_CHECK(2 > 1, "with a message");
  PARSCHED_CHECK_NEAR(1.0, 1.0 + 1e-12, 1e-9);
  EXPECT_EQ(contract_failures(), before);
}

TEST(Contract, CheckThrowsAndCounts) {
  const std::uint64_t before = contract_failures();
  EXPECT_THROW(PARSCHED_CHECK(false, "deliberate"), ContractViolation);
  EXPECT_THROW(PARSCHED_CHECK_NEAR(1.0, 2.0, 1e-9), ContractViolation);
  EXPECT_EQ(contract_failures(), before + 2);
}

TEST(Contract, ViolationMessageNamesTheSite) {
  try {
    PARSCHED_CHECK(0 > 1, "impossible ordering");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 > 1"), std::string::npos);
    EXPECT_NE(what.find("impossible ordering"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Contract, LogPolicyContinuesButCounts) {
  const std::uint64_t before = contract_failures();
  {
    ScopedContractPolicy log(ContractPolicy::kLog);
    EXPECT_NO_THROW(PARSCHED_CHECK(false, "logged only"));
    EXPECT_EQ(contract_policy(), ContractPolicy::kLog);
  }
  EXPECT_EQ(contract_policy(), ContractPolicy::kThrow);
  EXPECT_EQ(contract_failures(), before + 1);
}

TEST(Contract, DcheckMatchesBuildType) {
  const std::uint64_t before = contract_failures();
#if defined(NDEBUG) && !defined(PARSCHED_FORCE_DCHECKS)
  // Compiled out: the condition must not even be evaluated.
  bool evaluated = false;
  PARSCHED_DCHECK([&] {
    evaluated = true;
    return false;
  }());
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(contract_failures(), before);
#else
  EXPECT_THROW(PARSCHED_DCHECK(false, "debug contract"), ContractViolation);
  EXPECT_EQ(contract_failures(), before + 1);
#endif
}

TEST(Contract, LibraryContractsFireInEveryBuildType) {
  // round_integral's integrality contract used to be a raw assert that
  // vanished under NDEBUG; now it must throw in RelWithDebInfo too.
  EXPECT_THROW((void)round_integral(0.5), ContractViolation);
  EXPECT_THROW((void)num_size_classes(0.25), ContractViolation);
  EXPECT_THROW((void)adversary_constants(1.5), ContractViolation);
}

// ------------------------------------------------- auditor on clean runs

TEST(InvariantAuditor, PolicyLintMapping) {
  EXPECT_EQ(policy_lint_for("Sequential-SRPT"), PolicyLint::kSequentialSrpt);
  EXPECT_EQ(policy_lint_for("EQUI"), PolicyLint::kEqui);
  EXPECT_EQ(policy_lint_for("Intermediate-SRPT"),
            PolicyLint::kIntermediateSrpt);
  EXPECT_EQ(policy_lint_for("LAPS(0.5)"), PolicyLint::kNone);
  EXPECT_EQ(policy_lint_for("Greedy-Hybrid"), PolicyLint::kNone);
}

InvariantAuditor audited_run(const Instance& inst, Scheduler& sched,
                             const EngineConfig& cfg = {}) {
  AuditConfig audit;
  audit.speed = cfg.speed;
  audit.policy = PolicyLint::kAuto;
  audit.policy_name = sched.name();
  InvariantAuditor auditor(inst.machines(), audit);
  (void)simulate(inst, sched, cfg, {&auditor});
  return auditor;
}

TEST(InvariantAuditor, AllSeedPoliciesCleanOnRandomFamilies) {
  for (const auto& spec : standard_policy_names()) {
    for (std::uint64_t seed : {11u, 29u}) {
      RandomWorkloadConfig cfg;
      cfg.machines = 4;
      cfg.jobs = 120;
      cfg.load = 1.0;
      cfg.seed = seed;
      const Instance inst = make_random_instance(cfg);
      auto sched = make_scheduler(spec);
      const InvariantAuditor auditor = audited_run(inst, *sched);
      EXPECT_TRUE(auditor.ok()) << spec << " seed " << seed << ": "
                                << auditor.report();
      EXPECT_GT(auditor.decisions_audited(), 0u);
      EXPECT_NO_THROW(auditor.require_clean());
    }
  }
}

TEST(InvariantAuditor, AllSeedPoliciesCleanOnAdversarialFamily) {
  AdversaryConfig adv;
  adv.machines = 4;
  adv.alpha = 0.5;
  adv.P = 64.0;
  adv.stream_time = 48.0;  // cap the part-2 stream for test runtime
  for (const auto& spec : standard_policy_names()) {
    auto sched = make_scheduler(spec);
    AuditConfig audit;
    audit.policy = PolicyLint::kAuto;
    audit.policy_name = sched->name();
    InvariantAuditor auditor(adv.machines, audit);
    AdversarySource source(adv);
    Engine engine(adv.machines);
    engine.add_observer(&auditor);
    const SimResult r = engine.run(*sched, source);
    EXPECT_GT(r.jobs(), 0u);
    EXPECT_TRUE(auditor.ok()) << spec << ": " << auditor.report();
  }
}

TEST(InvariantAuditor, CleanUnderSpeedAugmentation) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.seed = 5;
  const Instance inst = make_random_instance(cfg);
  EngineConfig ecfg;
  ecfg.speed = 2.0;
  auto sched = make_scheduler("equi");
  const InvariantAuditor auditor = audited_run(inst, *sched, ecfg);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(InvariantAuditor, CleanOnMultiPhaseJobs) {
  // Multi-phase jobs switch speedup curves at phase boundaries; the rate
  // model must track the per-phase curve, not the first one.
  std::vector<Job> jobs;
  jobs.push_back(make_phased_job(
      0, 0.0,
      {{4.0, SpeedupCurve::fully_parallel()},
       {2.0, SpeedupCurve::sequential()},
       {3.0, SpeedupCurve::power_law(0.5)}}));
  jobs.push_back(make_job(1, 1.0, 5.0, 0.5));
  Instance inst(3, jobs);
  auto sched = make_scheduler("equi");
  const InvariantAuditor auditor = audited_run(inst, *sched);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --------------------------------------------- injected-violation detection

// Feeding the callbacks synthetic trajectories simulates a broken engine,
// which no real Engine run can produce (it enforces its own guards).

TEST(InvariantAuditor, DetectsOvercommittedShares) {
  InvariantAuditor auditor(2);
  const Job j0 = make_job(0, 0.0, 4.0, 1.0);
  const Job j1 = make_job(1, 0.0, 4.0, 1.0);
  auditor.on_arrival(0.0, j0);
  auditor.on_arrival(0.0, j1);
  AliveJob a0;
  a0.id = 0;
  a0.size = a0.remaining = 4.0;
  a0.curve = j0.curve;
  AliveJob a1 = a0;
  a1.id = 1;
  const std::vector<AliveJob> alive = {a0, a1};
  const std::vector<double> shares = {1.5, 1.0};  // sum 2.5 > m = 2
  auditor.on_decision(0.0, alive, shares);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("overcommitted"), std::string::npos);
}

TEST(InvariantAuditor, DetectsNegativeShares) {
  InvariantAuditor auditor(2);
  const Job j0 = make_job(0, 0.0, 4.0, 1.0);
  auditor.on_arrival(0.0, j0);
  AliveJob a0;
  a0.id = 0;
  a0.size = a0.remaining = 4.0;
  a0.curve = j0.curve;
  const std::vector<AliveJob> alive = {a0};
  const std::vector<double> shares = {-0.25};
  auditor.on_decision(0.0, alive, shares);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("negative share"), std::string::npos);
}

TEST(InvariantAuditor, DetectsRateModelViolation) {
  // Work drains at rate 1 (share 1, Γ(1) = 1) but the "engine" reports
  // twice the progress: remaining 4 -> 1 over dt = 1.
  InvariantAuditor auditor(2);
  const Job j0 = make_job(0, 0.0, 4.0, 1.0);
  auditor.on_arrival(0.0, j0);
  AliveJob a0;
  a0.id = 0;
  a0.size = a0.remaining = 4.0;
  a0.curve = j0.curve;
  std::vector<AliveJob> alive = {a0};
  const std::vector<double> shares = {1.0};
  auditor.on_decision(0.0, alive, shares);
  ASSERT_TRUE(auditor.ok()) << auditor.report();
  alive[0].remaining = 1.0;
  auditor.on_decision(1.0, alive, shares);
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("rate model"), std::string::npos);
}

TEST(InvariantAuditor, DetectsIncreasingRemainingWork) {
  InvariantAuditor auditor(2);
  const Job j0 = make_job(0, 0.0, 4.0, 1.0);
  auditor.on_arrival(0.0, j0);
  AliveJob a0;
  a0.id = 0;
  a0.size = a0.remaining = 4.0;
  a0.curve = j0.curve;
  std::vector<AliveJob> alive = {a0};
  const std::vector<double> zero = {0.0};
  auditor.on_decision(0.0, alive, zero);
  alive[0].remaining = 6.0;  // grew beyond its size
  auditor.on_decision(1.0, alive, zero);
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditor, DetectsTimeTravel) {
  InvariantAuditor auditor(1);
  auditor.on_arrival(5.0, make_job(0, 5.0, 1.0, 0.5));
  auditor.on_arrival(2.0, make_job(1, 2.0, 1.0, 0.5));  // t went backwards
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("nondecreasing"), std::string::npos);
}

TEST(InvariantAuditor, DetectsCompletionBeforeRelease) {
  InvariantAuditor auditor(1);
  const Job j = make_job(0, 3.0, 1.0, 0.5);
  auditor.on_arrival(3.0, j);
  auditor.on_completion(1.0, j);
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditor, DetectsPrematureCompletion) {
  InvariantAuditor auditor(1);
  const Job j = make_job(0, 0.0, 8.0, 0.0);
  auditor.on_arrival(0.0, j);
  AliveJob a;
  a.id = 0;
  a.size = a.remaining = 8.0;
  a.curve = j.curve;
  const std::vector<AliveJob> alive = {a};
  const std::vector<double> shares = {1.0};
  auditor.on_decision(0.0, alive, shares);
  auditor.on_completion(1.0, j);  // 7 units of work vanished
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("predicted remaining"), std::string::npos);
}

TEST(InvariantAuditor, FailFastThrows) {
  AuditConfig cfg;
  cfg.fail_fast = true;
  InvariantAuditor auditor(1, cfg);
  auditor.on_arrival(5.0, make_job(0, 5.0, 1.0, 0.5));
  EXPECT_THROW(auditor.on_arrival(2.0, make_job(1, 2.0, 1.0, 0.5)),
               AuditFailure);
}

// A policy that equipartitions while claiming to be Sequential-SRPT:
// the structural lint must flag it even though it is perfectly feasible.
TEST(InvariantAuditor, PolicyLintCatchesStructuralDrift) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 4.0, 0.5),
                    make_job(2, 0.0, 6.0, 0.5)});
  auto equi = make_scheduler("equi");
  AuditConfig audit;
  audit.policy = PolicyLint::kSequentialSrpt;
  audit.policy_name = "impostor";
  InvariantAuditor auditor(inst.machines(), audit);
  (void)simulate(inst, *equi, {}, {&auditor});
  EXPECT_FALSE(auditor.ok());
  EXPECT_THROW(auditor.require_clean(), AuditFailure);
}

// An anti-SRPT policy: feasible 0/1 shares, but serves the *longest* jobs.
class AntiSrpt final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Anti-SRPT"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    const std::size_t n = ctx.alive().size();
    const auto m = static_cast<std::size_t>(ctx.machines());
    out.reset(n);
    const auto order = ctx.by_remaining();  // ascending; serve from the back
    for (std::size_t i = 0; i < std::min(n, m); ++i) {
      out.shares[order[n - 1 - i]] = 1.0;
    }
  }
};

TEST(InvariantAuditor, PolicyLintCatchesSrptOrderingViolation) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 9.0, 0.5)});
  AntiSrpt sched;
  AuditConfig audit;
  audit.policy = PolicyLint::kSequentialSrpt;
  InvariantAuditor auditor(inst.machines(), audit);
  (void)simulate(inst, sched, {}, {&auditor});
  EXPECT_FALSE(auditor.ok());
  EXPECT_NE(auditor.report().find("SRPT ordering"), std::string::npos);
}

TEST(InvariantAuditor, ResetRearmsForAnotherRun) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5)});
  auto sched = make_scheduler("isrpt");
  InvariantAuditor auditor(inst.machines());
  (void)simulate(inst, *sched, {}, {&auditor});
  EXPECT_TRUE(auditor.ok());
  auditor.reset();
  (void)simulate(inst, *sched, {}, {&auditor});
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// ------------------------------------------------------------ determinism

TEST(Determinism, SeedPoliciesReplayIdentically) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 80;
  cfg.seed = 17;
  const Instance inst = make_random_instance(cfg);
  for (const auto& spec : standard_policy_names()) {
    const DeterminismReport rep = check_determinism(
        inst, [&] { return make_scheduler(spec); });
    EXPECT_TRUE(rep.deterministic) << spec << ": " << rep.to_string();
    EXPECT_GT(rep.events_first, 0u);
  }
}

TEST(Determinism, SchedulerReuseExercisesReset) {
  RandomWorkloadConfig cfg;
  cfg.machines = 2;
  cfg.jobs = 40;
  cfg.seed = 23;
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler("greedy");
  const DeterminismReport rep = check_determinism(inst, *sched);
  EXPECT_TRUE(rep.deterministic) << rep.to_string();
}

// A scheduler whose reset() forgets state: run 2 diverges from run 1.
class LeakyStateScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "LeakyState"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    if (!out.shares.empty()) {
      // Round-robins on a counter that reset() fails to clear.
      out.shares[calls_++ % out.shares.size()] =
          static_cast<double>(ctx.machines());
    }
  }
  // reset() intentionally omitted: state leaks across runs.

 private:
  std::size_t calls_ = 0;
};

TEST(Determinism, CatchesStateLeakingAcrossReset) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 0.0, 2.0, 0.0),
                    make_job(2, 0.0, 2.0, 0.0)});
  LeakyStateScheduler sched;
  const DeterminismReport rep = check_determinism(inst, sched);
  EXPECT_FALSE(rep.deterministic) << rep.to_string();
  EXPECT_NE(rep.to_string().find("NONDETERMINISTIC"), std::string::npos);
}

}  // namespace
}  // namespace parsched
