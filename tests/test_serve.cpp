// serve/ — the online service layer.
//
// Two determinism proofs anchor this file:
//
//  * streaming == batch: a Session driven by incremental admit/advance
//    calls finishes with results identical, double for double, to a
//    batch Engine::run() over the same jobs — for every policy family
//    and every interleaving of admissions and advances tried here;
//  * snapshot continuation: freezing a mid-stream session, restoring the
//    blob (as a fresh Session), and continuing both produces bit-equal
//    results, and re-snapshotting the restored session reproduces the
//    donor blob byte for byte.
//
// Around them: JSON parser round trips (the protocol's read side),
// Server strand/backpressure semantics (explicit rejects, never
// blocking), protocol request/response behavior, and an in-process
// socket soak driving loadgen against a live server — the test the
// `thread` (TSan) CI leg leans on.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>  // lint: thread-ok
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "sched/registry.hpp"
#include "serve/binproto.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "simcore/engine.hpp"
#include "simcore/instance.hpp"
#include "speedup/curve.hpp"

namespace parsched {
namespace {

// ------------------------------------------------------------ workloads

// A deterministic mixed workload: varied sizes, weights, alphas, and a
// couple of multi-phase jobs. Releases are strictly increasing so the
// streaming tests can admit in release order without ties.
std::vector<Job> mixed_jobs(std::size_t n, std::uint64_t salt) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  std::uint64_t state = salt * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&state] {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<double>((z ^ (z >> 31)) >> 11) * 0x1.0p-53;
  };
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = static_cast<double>(i) * 0.37 + next() * 0.2;
    j.size = 1.0 + 3.0 * next();
    j.weight = (i % 3 == 0) ? 2.0 : 1.0;
    j.curve = SpeedupCurve::power_law(0.2 + 0.6 * next());
    if (i % 5 == 4) {
      j.phases.push_back({j.size * 0.5, SpeedupCurve::sequential()});
      j.phases.push_back({j.size * 0.5, SpeedupCurve::fully_parallel()});
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

SimResult batch_run(const std::string& policy, int machines,
                    const std::vector<Job>& jobs) {
  auto sched = make_scheduler(policy);
  return simulate(Instance(machines, jobs), *sched);
}

// Exact equality, field by field. Completion order and every double must
// match — tolerance would hide the lazy-integration bugs this guards.
void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_flow, b.total_flow);
  EXPECT_EQ(a.weighted_flow, b.weighted_flow);
  EXPECT_EQ(a.fractional_flow, b.fractional_flow);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.decisions, b.decisions);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id) << "record " << i;
    EXPECT_EQ(a.records[i].completion, b.records[i].completion)
        << "job " << a.records[i].job.id;
  }
}

// ----------------------------------------------------- streaming == batch

const char* kPolicies[] = {"isrpt", "equi", "par-srpt", "laps:0.5",
                           "quantized-equi:0.25"};

// Admit every job up front (all releases are >= frontier 0), then
// finish: the engine must replay the arrival sequence itself.
TEST(Session, AdmitAheadMatchesBatch) {
  const auto jobs = mixed_jobs(40, 1);
  for (const char* policy : kPolicies) {
    serve::Session s({policy, 3, 1.0, nullptr});
    for (const Job& j : jobs) s.admit(j);
    s.finish();
    expect_results_identical(s.result(), batch_run(policy, 3, jobs));
  }
}

// Just-in-time admission: advance the clock to each release first, so
// every admit lands exactly at the frontier.
TEST(Session, JustInTimeAdmissionMatchesBatch) {
  const auto jobs = mixed_jobs(30, 2);
  for (const char* policy : kPolicies) {
    serve::Session s({policy, 2, 1.0, nullptr});
    for (const Job& j : jobs) {
      s.advance(j.release);
      s.admit(j);
    }
    s.finish();
    expect_results_identical(s.result(), batch_run(policy, 2, jobs));
  }
}

// Arbitrary interleaving: admissions in small bursts, advances to
// uneven midpoints (including repeated and backwards targets, which are
// no-ops), queries sprinkled throughout.
TEST(Session, InterleavedAdvancesMatchBatch) {
  const auto jobs = mixed_jobs(50, 3);
  for (const char* policy : kPolicies) {
    serve::Session s({policy, 4, 1.0, nullptr});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      s.admit(jobs[i]);
      if (i % 3 == 2) s.advance(jobs[i].release * 0.9 + 0.05);
      if (i % 7 == 0) s.advance(s.time());  // exact no-op
      if (i % 5 == 0) (void)s.partial();    // queries don't perturb
    }
    s.advance(jobs.back().release + 1.0);
    s.finish();
    expect_results_identical(s.result(), batch_run(policy, 4, jobs));
  }
}

TEST(Session, SpeedAugmentationStreamsIdentically) {
  const auto jobs = mixed_jobs(25, 4);
  serve::Session s({"isrpt", 2, 1.5, nullptr});
  for (const Job& j : jobs) {
    s.advance(j.release * 0.5);
    s.admit(j);
  }
  s.finish();

  auto sched = make_scheduler("isrpt");
  EngineConfig ec;
  ec.speed = 1.5;
  expect_results_identical(s.result(),
                           simulate(Instance(2, jobs), *sched, ec));
}

// --------------------------------------------------- session semantics

TEST(Session, LateAdmissionThrowsAndLeavesSessionUsable) {
  serve::Session s({"equi", 2, 1.0, nullptr});
  Job early;
  early.id = 0;
  early.release = 1.0;
  early.size = 1.0;
  s.advance(5.0);
  EXPECT_THROW(s.admit(early), std::invalid_argument);

  Job ok;
  ok.id = 1;
  ok.release = 5.0;
  ok.size = 1.0;
  s.admit(ok);  // the failed admit left the session consistent
  s.finish();
  EXPECT_EQ(s.result().records.size(), 1u);
}

// advance() moves the *frontier* even past the last completion, so a
// later admit below that frontier must still be rejected.
TEST(Session, FrontierIsMonotone) {
  serve::Session s({"equi", 1, 1.0, nullptr});
  s.advance(3.0);
  s.advance(1.0);  // backwards: no-op
  EXPECT_EQ(s.frontier(), 3.0);
}

TEST(Session, FinishIsIdempotentAndSealsTheStream) {
  serve::Session s({"equi", 1, 1.0, nullptr});
  Job j;
  j.id = 0;
  j.size = 1.0;
  s.admit(j);
  s.finish();
  const double flow = s.result().total_flow;
  s.finish();  // idempotent
  EXPECT_EQ(s.result().total_flow, flow);
  EXPECT_THROW(s.admit(j), std::invalid_argument);
  EXPECT_THROW(s.advance(10.0), std::invalid_argument);
  EXPECT_THROW((void)s.snapshot(), std::invalid_argument);
}

TEST(Session, UnknownPolicyThrows) {
  EXPECT_THROW(serve::Session({"no-such-policy", 1, 1.0, nullptr}),
               std::invalid_argument);
}

// ------------------------------------------------ snapshot continuation

// The central proof: snapshot mid-stream, restore, continue donor and
// clone with the same tail — results must be bit-equal, and the clone's
// own snapshot must reproduce the donor's blob byte for byte.
TEST(Snapshot, MidStreamContinuationIsBitIdentical) {
  const auto jobs = mixed_jobs(36, 5);
  const std::size_t cut = 17;
  for (const char* policy : kPolicies) {
    serve::Session donor({policy, 3, 1.0, nullptr});
    for (std::size_t i = 0; i < cut; ++i) {
      donor.admit(jobs[i]);
      if (i % 4 == 3) donor.advance(jobs[i].release);
    }
    const std::string blob = donor.snapshot();
    auto clone = serve::Session::restore(blob);
    EXPECT_EQ(clone->snapshot(), blob)
        << policy << ": restored session re-snapshots differently";

    auto tail = [&jobs](serve::Session& s) {
      for (std::size_t i = cut; i < jobs.size(); ++i) {
        s.admit(jobs[i]);
        if (i % 3 == 0) s.advance(jobs[i].release + 0.01);
      }
      s.finish();
    };
    tail(donor);
    tail(*clone);
    expect_results_identical(donor.result(), clone->result());
    // And both equal the never-snapshotted batch run.
    expect_results_identical(donor.result(), batch_run(policy, 3, jobs));
  }
}

// The round-robin cursor of quantized-equi is mutable policy state; a
// snapshot that dropped it would still produce a *valid* run, just a
// different one. Force disagreement by restoring into a fresh policy
// and checking the continuation still matches the donor exactly.
TEST(Snapshot, QuantizedEquiCursorSurvives) {
  const auto jobs = mixed_jobs(24, 6);
  serve::Session donor({"quantized-equi:0.25", 2, 1.0, nullptr});
  for (std::size_t i = 0; i < 12; ++i) {
    donor.admit(jobs[i]);
    donor.advance(jobs[i].release);
  }
  auto clone = serve::Session::restore(donor.snapshot());
  for (std::size_t i = 12; i < jobs.size(); ++i) {
    donor.admit(jobs[i]);
    clone->admit(jobs[i]);
  }
  donor.finish();
  clone->finish();
  expect_results_identical(donor.result(), clone->result());
}

// import_state() must refuse a snapshot taken under a different decision
// arithmetic: speed, completion_tol, and time_tol all enter the computed
// trajectory, so restoring into an engine that disagrees on any of them
// would continue a *different* simulation while claiming bit-identity.
TEST(Snapshot, ImportRejectsMismatchedEngineConfig) {
  const auto jobs = mixed_jobs(12, 9);
  auto donor_sched = make_scheduler("isrpt");
  Engine donor(3);
  donor.begin(*donor_sched);
  for (std::size_t i = 0; i < 6; ++i) donor.admit(jobs[i]);
  donor.advance_to(jobs[5].release);
  const EngineState state = donor.export_state();

  auto expect_rejected = [&](EngineConfig cfg, const char* needle) {
    Engine host(3, cfg);
    auto sched = make_scheduler("isrpt");
    try {
      host.import_state(state, *sched);
      FAIL() << "import accepted a config with mismatched " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  EngineConfig cfg;
  cfg.speed = 2.0;
  expect_rejected(cfg, "speed");
  cfg = EngineConfig{};
  cfg.completion_tol = 1e-6;
  expect_rejected(cfg, "completion_tol");
  cfg = EngineConfig{};
  cfg.time_tol = 1e-6;
  expect_rejected(cfg, "time_tol");
  {
    Engine host(4);
    auto sched = make_scheduler("isrpt");
    EXPECT_THROW(host.import_state(state, *sched), std::invalid_argument);
  }

  // Config knobs outside the decision arithmetic are deliberately not
  // checked: a matching engine with the context cache disabled imports
  // fine and continues bit-identically to the donor (the cache is pure
  // mechanism).
  EngineConfig uncached;
  uncached.use_context_cache = false;
  Engine host(3, uncached);
  auto host_sched = make_scheduler("isrpt");
  host.import_state(state, *host_sched);
  auto tail = [&jobs](Engine& e) {
    for (std::size_t i = 6; i < jobs.size(); ++i) e.admit(jobs[i]);
    return e.finish();
  };
  const SimResult continued = tail(host);
  const SimResult donor_result = tail(donor);
  expect_results_identical(continued, donor_result);
}

TEST(Snapshot, CorruptBlobsAreRejected) {
  serve::Session s({"equi", 2, 1.0, nullptr});
  Job j;
  j.id = 0;
  j.size = 2.0;
  s.admit(j);
  const std::string blob = s.snapshot();

  // Truncation at every prefix length must throw, never crash or accept.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_THROW((void)serve::decode_snapshot(blob.substr(0, len)),
                 std::invalid_argument)
        << "prefix of " << len << " bytes accepted";
  }
  EXPECT_THROW((void)serve::decode_snapshot(blob + "x"),
               std::invalid_argument)
      << "trailing bytes accepted";

  std::string wrong_magic = blob;
  wrong_magic[4] = 'X';  // byte 4: first magic char (after length prefix)
  EXPECT_THROW((void)serve::decode_snapshot(wrong_magic),
               std::invalid_argument);

  // Byte 8 is the low byte of the little-endian u32 version (after the
  // length-prefixed magic); 0x7f is no version we will ever ship.
  std::string wrong_version = blob;
  wrong_version[8] = '\x7f';
  EXPECT_THROW((void)serve::decode_snapshot(wrong_version),
               std::invalid_argument);
}

static_assert(serve::kSnapshotVersion == 2,
              "update CorruptBlobsAreRejected's version-byte offset when "
              "the snapshot format changes");

TEST(Snapshot, FileRoundTrip) {
  serve::Session s({"isrpt", 2, 1.0, nullptr});
  Job j;
  j.id = 7;
  j.size = 3.0;
  s.admit(j);
  const serve::SessionSnapshot snap =
      serve::decode_snapshot(s.snapshot());
  const std::string path = testing::TempDir() + "serve_snap_test.psnp";
  serve::write_snapshot_file(path, snap);
  const serve::SessionSnapshot back = serve::read_snapshot_file(path);
  EXPECT_EQ(serve::encode_snapshot(back), serve::encode_snapshot(snap));
  EXPECT_THROW((void)serve::read_snapshot_file(path + ".missing"),
               std::runtime_error);
}

// --------------------------------------------------------- JSON parser

TEST(JsonParse, RoundTripsWriterOutput) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("a", 0.1);
    w.kv("b", std::uint64_t{18446744073709551615ULL});
    w.kv("s", "hi \"there\"\n\t\\");
    w.key("arr");
    w.begin_array();
    w.value(1.5e-300);
    w.value(false);
    w.null();
    w.end_array();
    w.end_object();
  }
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(os.str(), v, &err)) << err;
  EXPECT_EQ(v.number_or("a", 0.0), 0.1);  // bit-exact via from_chars
  EXPECT_EQ(v.string_or("s", ""), "hi \"there\"\n\t\\");
  const obs::JsonValue* arr = v.find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_EQ(arr->array[0].number, 1.5e-300);
  EXPECT_FALSE(arr->array[1].boolean);
  EXPECT_TRUE(arr->array[2].is_null());
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(R"({"s":"\u00e9\u20ac\ud83d\ude00"})", v));
  EXPECT_EQ(v.string_or("s", ""), "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string err;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1,}", "nul", "\"\\ud800\"",
        "01", "1.2.3", "{\"a\":1}x", "\"unterminated"}) {
    EXPECT_FALSE(obs::json_parse(bad, v, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(R"({"k":1,"k":2})", v));
  EXPECT_EQ(v.number_or("k", 0.0), 2.0);
}

// -------------------------------------------------------------- server

serve::Server::Config server_config(int threads, std::size_t sessions,
                                    std::size_t queue,
                                    obs::MetricsRegistry* reg = nullptr) {
  serve::Server::Config cfg;
  cfg.threads = threads;
  cfg.max_sessions = sessions;
  cfg.max_queue = queue;
  cfg.metrics = reg;
  return cfg;
}

TEST(Server, OpenSubmitCloseLifecycle) {
  obs::MetricsRegistry reg;
  serve::Server server(server_config(2, 4, 8, &reg));
  serve::SessionId id = 0;
  ASSERT_EQ(server.open({"equi", 2, 1.0, nullptr}, id),
            serve::Submit::kAccepted);
  EXPECT_EQ(server.session_count(), 1u);

  std::promise<double> flow;
  ASSERT_EQ(server.submit(id,
                          [&flow](serve::Session& s) {
                            Job j;
                            j.id = 0;
                            j.size = 1.0;
                            s.admit(j);
                            s.finish();
                            flow.set_value(s.result().total_flow);
                          }),
            serve::Submit::kAccepted);
  EXPECT_GT(flow.get_future().get(), 0.0);

  EXPECT_EQ(server.close(id), serve::Submit::kAccepted);
  // Retirement is asynchronous while the strand winds down: the reject
  // is immediate either way, first kDraining (closing) then
  // kUnknownSession (removed). Wait out the handover before pinning it.
  while (server.session_count() != 0) std::this_thread::yield();
  EXPECT_EQ(server.submit(id, [](serve::Session&) {}),
            serve::Submit::kUnknownSession);
  server.drain();

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* opened = snap.find("serve.sessions.opened");
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->value, 1.0);
}

TEST(Server, UnknownSessionAndUnknownPolicy) {
  serve::Server server(server_config(1, 2, 2));
  EXPECT_EQ(server.submit(99, [](serve::Session&) {}),
            serve::Submit::kUnknownSession);
  EXPECT_EQ(server.close(99), serve::Submit::kUnknownSession);
  serve::SessionId id = 0;
  EXPECT_THROW((void)server.open({"nope", 1, 1.0, nullptr}, id),
               std::invalid_argument);
}

TEST(Server, SessionCapRejects) {
  serve::Server server(server_config(1, 2, 2));
  serve::SessionId a = 0, b = 0, c = 0;
  EXPECT_EQ(server.open({"equi", 1, 1.0, nullptr}, a),
            serve::Submit::kAccepted);
  EXPECT_EQ(server.open({"equi", 1, 1.0, nullptr}, b),
            serve::Submit::kAccepted);
  EXPECT_EQ(server.open({"equi", 1, 1.0, nullptr}, c),
            serve::Submit::kSessionCap);
  EXPECT_EQ(server.close(a), serve::Submit::kAccepted);
  // Closing is asynchronous only when ops are queued; an idle session
  // frees its slot immediately.
  EXPECT_EQ(server.open({"equi", 1, 1.0, nullptr}, c),
            serve::Submit::kAccepted);
}

// Fill a strand whose first op is gated shut: queue bound must reject
// with kQueueFull — synchronously, without ever blocking the caller.
TEST(Server, QueueFullRejectsInsteadOfBlocking) {
  obs::MetricsRegistry reg;
  constexpr std::size_t kQueue = 4;
  serve::Server server(server_config(2, 2, kQueue, &reg));
  serve::SessionId id = 0;
  ASSERT_EQ(server.open({"equi", 1, 1.0, nullptr}, id),
            serve::Submit::kAccepted);

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> entered;
  ASSERT_EQ(server.submit(id,
                          [opened, &entered](serve::Session&) {
                            entered.set_value();
                            opened.wait();
                          }),
            serve::Submit::kAccepted);
  entered.get_future().wait();  // the gate op is running, not queued

  for (std::size_t i = 0; i < kQueue; ++i) {
    EXPECT_EQ(server.submit(id, [](serve::Session&) {}),
              serve::Submit::kAccepted)
        << "op " << i << " should fit in the queue";
  }
  EXPECT_EQ(server.submit(id, [](serve::Session&) {}),
            serve::Submit::kQueueFull);

  gate.set_value();
  server.drain();
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* rejects = snap.find("serve.reject.queue_full");
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->value, 1.0);
}

TEST(Server, DrainRunsQueuedOpsThenRejects) {
  serve::Server server(server_config(2, 4, 16));
  serve::SessionId id = 0;
  ASSERT_EQ(server.open({"equi", 1, 1.0, nullptr}, id),
            serve::Submit::kAccepted);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(server.submit(id,
                            [&ran](serve::Session&) {
                              ran.fetch_add(1, std::memory_order_relaxed);
                            }),
              serve::Submit::kAccepted);
  }
  server.drain();
  EXPECT_EQ(ran.load(), 8) << "drain dropped queued operations";
  EXPECT_EQ(server.submit(id, [](serve::Session&) {}),
            serve::Submit::kDraining);
  serve::SessionId id2 = 0;
  EXPECT_EQ(server.open({"equi", 1, 1.0, nullptr}, id2),
            serve::Submit::kDraining);
}

// Strand exclusivity under load: many producer threads hammer a few
// sessions; each strand must run its ops one at a time and in order.
// Runs under TSan in the `thread` CI leg.
TEST(Server, StrandSerializesOpsPerSession) {
  serve::Server server(server_config(4, 4, 512));
  constexpr int kSessions = 4;
  constexpr int kProducers = 3;
  constexpr int kOpsPerProducer = 50;

  std::vector<serve::SessionId> ids(kSessions);
  std::vector<std::atomic<int>> active(kSessions);
  std::vector<std::atomic<int>> done(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(server.open({"equi", 1, 1.0, nullptr},
                          ids[static_cast<std::size_t>(s)]),
              serve::Submit::kAccepted);
  }

  std::atomic<bool> overlap{false};
  std::vector<std::thread> producers;  // lint: thread-ok
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const int s = (p + i) % kSessions;
        const auto su = static_cast<std::size_t>(s);
        // Queue-full rejects are legitimate here; retry until accepted.
        while (server.submit(ids[su],
                             [&active, &done, &overlap, su](
                                 serve::Session&) {
                               if (active[su].fetch_add(1) != 0) {
                                 overlap.store(true);
                               }
                               active[su].fetch_sub(1);
                               done[su].fetch_add(1);
                             }) != serve::Submit::kAccepted) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.drain();
  EXPECT_FALSE(overlap.load()) << "two ops ran concurrently on a strand";
  int total = 0;
  for (int s = 0; s < kSessions; ++s) {
    total += done[static_cast<std::size_t>(s)].load();
  }
  EXPECT_EQ(total, kProducers * kOpsPerProducer);
}

// ------------------------------------------------------------- protocol

// Strict request/response helper over a ProtocolHandler: sends one line
// and waits for exactly one response. Works because every request —
// accepted, rejected, or failed — produces exactly one response line.
class ProtoClient {
 public:
  explicit ProtoClient(serve::Server::Config cfg) : handler_(cfg) {}

  std::string call(const std::string& line) {
    std::promise<std::string> reply;
    auto fut = reply.get_future();
    alive_ = handler_.handle_line(
        line, [&reply](const std::string& resp) { reply.set_value(resp); });
    return fut.get();
  }

  obs::JsonValue call_json(const std::string& line) {
    obs::JsonValue v;
    std::string err;
    const std::string resp = call(line);
    EXPECT_TRUE(obs::json_parse(resp, v, &err)) << resp << ": " << err;
    return v;
  }

  [[nodiscard]] bool alive() const { return alive_; }

 private:
  serve::ProtocolHandler handler_;
  bool alive_ = true;
};

TEST(Protocol, FullSessionConversation) {
  ProtoClient client(server_config(2, 4, 16));
  EXPECT_TRUE(client.call_json(R"({"op":"ping","id":1})").bool_or("ok", false));

  const obs::JsonValue opened = client.call_json(
      R"({"op":"open","id":2,"policy":"isrpt","machines":2})");
  ASSERT_TRUE(opened.bool_or("ok", false));
  const auto sid =
      static_cast<std::uint64_t>(opened.number_or("session", 0.0));
  ASSERT_GT(sid, 0u);
  const std::string s = std::to_string(sid);

  EXPECT_TRUE(client
                  .call_json(R"({"op":"admit","id":3,"session":)" + s +
                             R"(,"job":{"id":0,"size":2,"curve":"pow:0.5"}})")
                  .bool_or("ok", false));
  EXPECT_TRUE(client
                  .call_json(R"({"op":"admit","id":4,"session":)" + s +
                             R"(,"job":{"id":1,"release":0.5,"size":1}})")
                  .bool_or("ok", false));
  EXPECT_TRUE(
      client.call_json(R"({"op":"advance","id":5,"session":)" + s + ",\"to\":1}")
          .bool_or("ok", false));

  const obs::JsonValue q =
      client.call_json(R"({"op":"query","id":6,"session":)" + s + "}");
  EXPECT_TRUE(q.bool_or("ok", false));
  // The frontier is the advance target; `time` is the engine's event
  // clock, which stops at the last event at or before the frontier.
  EXPECT_EQ(q.number_or("frontier", -1.0), 1.0);
  EXPECT_LE(q.number_or("time", 2.0), 1.0);
  EXPECT_GT(q.number_or("time", -1.0), 0.0);
  EXPECT_FALSE(q.bool_or("finished", true));

  const obs::JsonValue fin =
      client.call_json(R"({"op":"finish","id":7,"session":)" + s + "}");
  ASSERT_TRUE(fin.bool_or("ok", false));
  EXPECT_EQ(fin.number_or("jobs", 0.0), 2.0);
  const obs::JsonValue* records = fin.find("records");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->array.size(), 2u);

  // The protocol result must equal the in-process session run.
  std::vector<Job> jobs(2);
  jobs[0].id = 0;
  jobs[0].size = 2.0;
  jobs[0].curve = SpeedupCurve::power_law(0.5);
  jobs[1].id = 1;
  jobs[1].release = 0.5;
  jobs[1].size = 1.0;
  const SimResult batch = batch_run("isrpt", 2, jobs);
  EXPECT_EQ(fin.number_or("total_flow", -1.0), batch.total_flow);
  EXPECT_EQ(fin.number_or("makespan", -1.0), batch.makespan);

  EXPECT_TRUE(client.call_json(R"({"op":"close","id":8,"session":)" + s + "}")
                  .bool_or("ok", false));
  EXPECT_TRUE(client.alive());
  EXPECT_TRUE(client.call_json(R"({"op":"shutdown","id":9})")
                  .bool_or("ok", false));
  EXPECT_FALSE(client.alive()) << "shutdown must end the transport loop";
}

TEST(Protocol, ErrorsAndRejectionsAnswerEveryRequest) {
  ProtoClient client(server_config(1, 1, 4));
  // Malformed JSON, wrong root, missing op, unknown op.
  EXPECT_FALSE(client.call_json("{oops").bool_or("ok", true));
  EXPECT_FALSE(client.call_json("[1,2]").bool_or("ok", true));
  EXPECT_FALSE(client.call_json(R"({"id":1})").bool_or("ok", true));
  EXPECT_FALSE(
      client.call_json(R"({"op":"warp","id":2})").bool_or("ok", true));
  // Session ops without/with a bogus session id.
  EXPECT_FALSE(
      client.call_json(R"({"op":"query","id":3})").bool_or("ok", true));
  const obs::JsonValue unknown =
      client.call_json(R"({"op":"query","id":4,"session":42})");
  EXPECT_FALSE(unknown.bool_or("ok", true));
  EXPECT_EQ(unknown.string_or("reject", ""), "unknown_session");
  // Session-cap rejection carries its reason too.
  serve::SessionId sid = 0;
  obs::JsonValue opened =
      client.call_json(R"({"op":"open","id":5,"policy":"equi"})");
  ASSERT_TRUE(opened.bool_or("ok", false));
  (void)sid;
  const obs::JsonValue capped =
      client.call_json(R"({"op":"open","id":6,"policy":"equi"})");
  EXPECT_FALSE(capped.bool_or("ok", true));
  EXPECT_EQ(capped.string_or("reject", ""), "session_cap");
  // A failing op (admit below the frontier) answers with ok:false.
  const std::string s =
      std::to_string(static_cast<std::uint64_t>(opened.number_or("session", 0.0)));
  EXPECT_TRUE(client
                  .call_json(R"({"op":"advance","id":7,"session":)" + s +
                             ",\"to\":5}")
                  .bool_or("ok", false));
  const obs::JsonValue late = client.call_json(
      R"({"op":"admit","id":8,"session":)" + s +
      R"(,"job":{"id":0,"release":1,"size":1}})");
  EXPECT_FALSE(late.bool_or("ok", true));
  // Bad curve spec is a request error, not a server failure.
  const obs::JsonValue badcurve = client.call_json(
      R"({"op":"admit","id":9,"session":)" + s +
      R"(,"job":{"id":1,"release":6,"size":1,"curve":"pow:2"}})");
  EXPECT_FALSE(badcurve.bool_or("ok", true));
}

// The live-telemetry verbs. stats/dump answer synchronously (they must
// work even when every strand is wedged), so a strict request/response
// client exercises them exactly like any other op.
TEST(Protocol, StatsVerbReturnsPrometheusExposition) {
  obs::MetricsRegistry reg;
  ProtoClient client(server_config(2, 4, 16, &reg));

  // Before any traffic: the server's eagerly-registered instruments are
  // already scrapeable.
  obs::JsonValue stats = client.call_json(R"({"op":"stats","id":1})");
  ASSERT_TRUE(stats.bool_or("ok", false));
  EXPECT_EQ(stats.string_or("format", ""), "prometheus");
  EXPECT_GT(stats.number_or("metrics", 0.0), 0.0);
  std::string text = stats.string_or("exposition", "");
  EXPECT_NE(text.find("# TYPE parsched_serve_requests counter"),
            std::string::npos);

  // Traffic, then a re-scrape: serve.* counters moved and the
  // server-side latency histogram carries quantile samples.
  const obs::JsonValue opened = client.call_json(
      R"({"op":"open","id":2,"policy":"equi","machines":2})");
  ASSERT_TRUE(opened.bool_or("ok", false));
  const std::string s = std::to_string(
      static_cast<std::uint64_t>(opened.number_or("session", 0.0)));
  ASSERT_TRUE(client
                  .call_json(R"({"op":"admit","id":3,"session":)" + s +
                             R"(,"job":{"id":0,"size":1}})")
                  .bool_or("ok", false));
  ASSERT_TRUE(
      client.call_json(R"({"op":"finish","id":4,"session":)" + s + "}")
          .bool_or("ok", false));

  stats = client.call_json(R"({"op":"stats","id":5})");
  ASSERT_TRUE(stats.bool_or("ok", false));
  text = stats.string_or("exposition", "");
  EXPECT_NE(text.find("parsched_serve_sessions_opened 1"),
            std::string::npos);
  EXPECT_NE(text.find("parsched_engine_completions 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE parsched_serve_request_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("parsched_serve_request_latency_ms{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(Protocol, StatsWithoutMetricsIsARequestError) {
  ProtoClient client(server_config(1, 2, 4));  // no registry attached
  const obs::JsonValue stats = client.call_json(R"({"op":"stats","id":1})");
  EXPECT_FALSE(stats.bool_or("ok", true));
}

TEST(Protocol, DumpVerbReturnsFlightRecordInline) {
  obs::FlightRecorder rec(64);
  serve::Server::Config cfg = server_config(2, 4, 16);
  cfg.recorder = &rec;
  ProtoClient client(cfg);

  const obs::JsonValue opened = client.call_json(
      R"({"op":"open","id":1,"policy":"equi","machines":2})");
  ASSERT_TRUE(opened.bool_or("ok", false));
  const std::string s = std::to_string(
      static_cast<std::uint64_t>(opened.number_or("session", 0.0)));
  ASSERT_TRUE(client
                  .call_json(R"({"op":"admit","id":2,"session":)" + s +
                             R"(,"job":{"id":0,"size":1}})")
                  .bool_or("ok", false));
  ASSERT_TRUE(
      client.call_json(R"({"op":"finish","id":3,"session":)" + s + "}")
          .bool_or("ok", false));

  const obs::JsonValue dump = client.call_json(R"({"op":"dump","id":4})");
  ASSERT_TRUE(dump.bool_or("ok", false));
  EXPECT_EQ(dump.string_or("kind", ""), "parsched-flight-record");
  const std::string jsonl = dump.string_or("dump", "");
  EXPECT_NE(jsonl.find("\"reason\": \"dump_verb\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\": \"submit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\": \"dispatch\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\": \"admit\""), std::string::npos);
  // Every line is one standalone JSON object.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    std::string err;
    EXPECT_TRUE(obs::json_syntax_valid(line, &err)) << line << ": " << err;
  }

  // With a path: the dump lands in the file and the reply stays small.
  const std::string path = testing::TempDir() + "proto_dump.jsonl";
  const obs::JsonValue to_file = client.call_json(
      R"({"op":"dump","id":5,"path":")" + path + R"("})");
  ASSERT_TRUE(to_file.bool_or("ok", false));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("parsched-flight-record"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Protocol, DumpWithoutRecorderIsARequestError) {
  ProtoClient client(server_config(1, 2, 4));
  EXPECT_FALSE(
      client.call_json(R"({"op":"dump","id":1})").bool_or("ok", true));
}

// ---------------------------------------------------------- flight dump

// A policy that never assigns rate: with one alive job and no pending
// arrivals the engine has no next event, which is exactly the
// SimulationStall path the flight recorder exists to explain.
class ZeroRateScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "zero-rate"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());  // all shares zero: no progress
  }
};

TEST(FlightDump, SimulationStallWritesASchemaValidDump) {
  obs::FlightRecorder rec(32);
  const std::string path = testing::TempDir() + "stall_flight.jsonl";
  std::filesystem::remove(path);
  rec.set_dump_path(path);

  EngineConfig ec;
  ec.recorder = &rec;
  Job j;
  j.id = 7;
  j.size = 1.0;
  j.curve = SpeedupCurve::power_law(0.5);
  ZeroRateScheduler sched;
  EXPECT_THROW((void)simulate(Instance(2, {j}), sched, ec),
               SimulationStall);

  // The failure path dumped the ring before the throw reached us.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::string err;
  ASSERT_TRUE(obs::json_syntax_valid(line, &err)) << line << ": " << err;
  EXPECT_NE(line.find("\"kind\": \"parsched-flight-record\""),
            std::string::npos);
  EXPECT_NE(line.find("\"reason\": \"simulation_stall\""),
            std::string::npos);
  bool saw_stall = false;
  bool saw_admit = false;
  std::uint64_t body_lines = 0;
  while (std::getline(in, line)) {
    ++body_lines;
    EXPECT_TRUE(obs::json_syntax_valid(line, &err)) << line << ": " << err;
    if (line.find("\"ev\": \"stall\"") != std::string::npos) {
      saw_stall = true;
      // The stall event carries the alive count in its aux field.
      EXPECT_NE(line.find("\"a\": 1"), std::string::npos);
    }
    if (line.find("\"ev\": \"admit\"") != std::string::npos) {
      saw_admit = true;
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_admit);
  EXPECT_GT(body_lines, 0u);
  std::filesystem::remove(path);
}

// Snapshot over the protocol: snapshot to a file, restore it as a new
// session, and the restored continuation matches the donor's.
TEST(Protocol, SnapshotRestoreRoundTrip) {
  ProtoClient client(server_config(2, 4, 16));
  const obs::JsonValue opened = client.call_json(
      R"({"op":"open","id":1,"policy":"quantized-equi:0.25","machines":2})");
  ASSERT_TRUE(opened.bool_or("ok", false));
  const std::string s =
      std::to_string(static_cast<std::uint64_t>(opened.number_or("session", 0.0)));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client
                    .call_json(R"({"op":"admit","id":10,"session":)" + s +
                               R"(,"job":{"id":)" + std::to_string(i) +
                               R"(,"release":)" + std::to_string(i * 0.3) +
                               R"(,"size":1.5,"curve":"pow:0.5"}})")
                    .bool_or("ok", false));
  }
  const std::string path = testing::TempDir() + "proto_snap.psnp";
  ASSERT_TRUE(client
                  .call_json(R"({"op":"snapshot","id":11,"session":)" + s +
                             R"(,"path":)" + obs::json_quote(path) + "}")
                  .bool_or("ok", false));
  const obs::JsonValue restored = client.call_json(
      R"({"op":"restore","id":12,"path":)" + obs::json_quote(path) + "}");
  ASSERT_TRUE(restored.bool_or("ok", false));
  const std::string s2 = std::to_string(
      static_cast<std::uint64_t>(restored.number_or("session", 0.0)));
  ASSERT_NE(s, s2);

  const obs::JsonValue fin1 =
      client.call_json(R"({"op":"finish","id":13,"session":)" + s + "}");
  const obs::JsonValue fin2 =
      client.call_json(R"({"op":"finish","id":14,"session":)" + s2 + "}");
  ASSERT_TRUE(fin1.bool_or("ok", false));
  ASSERT_TRUE(fin2.bool_or("ok", false));
  EXPECT_EQ(fin1.number_or("total_flow", -1.0),
            fin2.number_or("total_flow", -2.0));
  EXPECT_EQ(fin1.number_or("makespan", -1.0),
            fin2.number_or("makespan", -2.0));
}

// ------------------------------------------- socket transport + loadgen

// End-to-end in one process: a real Unix-socket server on a background
// thread, the real loadgen client fleet against it. With the session cap
// below the fleet size, open() rejections exercise the retry/backoff
// path; the soak invariant is rejects are fine, errors are not.
TEST(Transport, SocketSoakWithLoadgen) {
  const std::string path = testing::TempDir() + "serve_soak.sock";
  obs::MetricsRegistry server_reg;
  serve::ProtocolHandler handler(server_config(4, 6, 32, &server_reg));
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  obs::MetricsRegistry client_reg;
  serve::LoadgenConfig cfg;
  cfg.socket_path = path;
  cfg.sessions = 8;  // two above the cap: forces open rejections
  cfg.admissions = 40;
  cfg.advance_every = 8;
  cfg.machines = 2;
  cfg.seed = 11;
  cfg.stats_every = 8;  // scrape stats mid-run: the TSan leg drives the
                        // concurrent snapshot/exposition path end-to-end
  cfg.shutdown_after = true;
  cfg.metrics = &client_reg;
  const serve::LoadgenResult r = serve::run_loadgen(cfg);
  server_thread.join();

  EXPECT_EQ(r.errors, 0u) << "soak invariant: shed load, never fail";
  EXPECT_EQ(r.sessions.size(), 8u);
  EXPECT_EQ(r.jobs_completed(), 8u * 40u);
  EXPECT_GT(r.total_flow(), 0.0);
  EXPECT_GT(r.stats_scrapes, 0u) << "stats probes must have fired";

  const obs::MetricsSnapshot snap = client_reg.snapshot();
  const auto* lat = snap.find("serve.client.latency_ms");
  ASSERT_NE(lat, nullptr);
  const auto* reqs = snap.find("serve.client.requests");
  ASSERT_NE(reqs, nullptr);
  EXPECT_EQ(reqs->value, static_cast<double>(r.requests));
}

// Same workload twice: the loadgen fleet is seeded, so the simulated
// totals (not the latencies) must be identical run over run.
TEST(Transport, LoadgenTotalsAreDeterministic) {
  auto run_once = [](const std::string& path) {
    serve::ProtocolHandler handler(server_config(2, 8, 32, nullptr));
    std::thread server_thread(  // lint: thread-ok
        [&handler, &path] { serve::serve_unix_socket(handler, path); });
    serve::LoadgenConfig cfg;
    cfg.socket_path = path;
    cfg.sessions = 3;
    cfg.admissions = 25;
    cfg.machines = 2;
    cfg.seed = 5;
    cfg.shutdown_after = true;
    const serve::LoadgenResult r = serve::run_loadgen(cfg);
    server_thread.join();
    EXPECT_EQ(r.errors, 0u);
    return r.total_flow();
  };
  const double a = run_once(testing::TempDir() + "serve_det_a.sock");
  const double b = run_once(testing::TempDir() + "serve_det_b.sock");
  EXPECT_EQ(a, b);
}

// ------------------------------------------- transport hardening

// The accept-loop error taxonomy: transient conditions (EINTR, a
// connection aborted before accept, fd/buffer exhaustion) must retry;
// a broken listener (EBADF, EINVAL) must stop the loop instead of
// spinning on it forever.
TEST(Transport, AcceptShouldRetryClassifiesErrnos) {
  EXPECT_TRUE(serve::accept_should_retry(EINTR));
  EXPECT_TRUE(serve::accept_should_retry(ECONNABORTED));
  EXPECT_TRUE(serve::accept_should_retry(EPROTO));
  EXPECT_TRUE(serve::accept_should_retry(EAGAIN));
  EXPECT_TRUE(serve::accept_should_retry(EWOULDBLOCK));
  EXPECT_TRUE(serve::accept_should_retry(EMFILE));
  EXPECT_TRUE(serve::accept_should_retry(ENFILE));
  EXPECT_TRUE(serve::accept_should_retry(ENOBUFS));
  EXPECT_TRUE(serve::accept_should_retry(ENOMEM));
  EXPECT_FALSE(serve::accept_should_retry(EBADF));
  EXPECT_FALSE(serve::accept_should_retry(EINVAL));
}

// A client that connects and vanishes immediately (the kernel may hand
// the accept loop an already-aborted socket, or EOF on first read) must
// not hurt the listener: real sessions keep working afterwards.
TEST(Transport, ListenerSurvivesAbortedConnections) {
  const std::string path = testing::TempDir() + "serve_abort.sock";
  serve::ProtocolHandler handler(server_config(1, 4, 16));
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  for (int i = 0; i < 16; ++i) {
    const int fd = serve::connect_unix_client(path, 10.0);
    if (i % 3 == 1) {
      // Half a line, then gone.
      ASSERT_TRUE(serve::send_all(fd, "{\"op\":\"pi", 9));
    } else if (i % 3 == 2) {
      // A torn PBIN hello, then gone.
      const std::string hello = serve::encode_hello(serve::kBinProtoVersion);
      ASSERT_TRUE(serve::send_all(fd, hello.data(), 3));
    }
    ::close(fd);
  }

  serve::Client client(path);
  const std::string pong = client.request(R"({"op":"ping","id":1})");
  EXPECT_NE(pong.find("\"ok\":true"), std::string::npos) << pong;
  (void)client.request(R"({"op":"shutdown","id":2})");
  server_thread.join();
}

// An NDJSON request line torn across send() calls — including a split
// inside a UTF-8-less but multi-byte token like a number — must be
// reassembled by the server's line buffer.
TEST(Transport, NdjsonLineTornAcrossSends) {
  const std::string path = testing::TempDir() + "serve_torn_line.sock";
  serve::ProtocolHandler handler(server_config(1, 4, 16));
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  const int fd = serve::connect_unix_client(path, 10.0);
  const std::string line = "{\"op\":\"ping\",\"id\":12345}\n";
  auto read_line = [fd] {
    std::string out;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
      if (c == '\n') break;
      out.push_back(c);
    }
    return out;
  };
  // Tear the request at every byte offset; each split must still parse
  // to exactly one response.
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    ASSERT_TRUE(serve::send_all(fd, line.data(), cut));
    timespec ts{0, 2'000'000};  // 2ms: let the first half land alone
    nanosleep(&ts, nullptr);
    ASSERT_TRUE(serve::send_all(fd, line.data() + cut, line.size() - cut));
    const std::string resp = read_line();
    EXPECT_NE(resp.find("\"id\":12345"), std::string::npos)
        << "cut at " << cut << ": " << resp;
    EXPECT_NE(resp.find("\"ok\":true"), std::string::npos)
        << "cut at " << cut << ": " << resp;
  }
  // Two requests in one send() burst answer twice.
  const std::string two = line + line;
  ASSERT_TRUE(serve::send_all(fd, two.data(), two.size()));
  EXPECT_NE(read_line().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(read_line().find("\"ok\":true"), std::string::npos);
  ::close(fd);

  serve::Client client(path);
  (void)client.request(R"({"op":"shutdown","id":99})");
  server_thread.join();
}

// A PBIN frame torn at every byte offset — through the 4-byte length
// prefix and through the payload — over a real socket. The hello itself
// is also split.
TEST(Transport, BinaryFrameTornAtEveryOffset) {
  const std::string path = testing::TempDir() + "serve_torn_frame.sock";
  serve::ProtocolHandler handler(server_config(1, 4, 16));
  std::thread server_thread(  // lint: thread-ok
      [&handler, &path] { serve::serve_unix_socket(handler, path); });

  const int fd = serve::connect_unix_client(path, 10.0);
  const std::string hello = serve::encode_hello(serve::kBinProtoVersion);
  // Hello split 5/3 across sends.
  ASSERT_TRUE(serve::send_all(fd, hello.data(), 5));
  timespec ts{0, 2'000'000};
  nanosleep(&ts, nullptr);
  ASSERT_TRUE(serve::send_all(fd, hello.data() + 5, hello.size() - 5));
  std::string answer(serve::kBinHelloSize, '\0');
  std::size_t got = 0;
  while (got < answer.size()) {
    const auto n = ::recv(fd, answer.data() + got, answer.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  ASSERT_EQ(serve::decode_hello(answer), serve::kBinProtoVersion);

  serve::FrameBuffer responses;
  auto read_response = [fd, &responses] {
    std::string payload;
    char chunk[256];
    while (!responses.next(payload)) {
      const auto n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) throw std::runtime_error("connection died");
      responses.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
    return payload;
  };
  std::uint64_t rid = 1;
  for (std::size_t cut = 1; cut < 12; ++cut) {
    const std::string framed = serve::frame(serve::bin_ping(rid));
    ASSERT_LT(cut, framed.size());
    ASSERT_TRUE(serve::send_all(fd, framed.data(), cut));
    nanosleep(&ts, nullptr);
    ASSERT_TRUE(
        serve::send_all(fd, framed.data() + cut, framed.size() - cut));
    const serve::BinResponse r =
        serve::parse_bin_response(read_response());
    EXPECT_EQ(r.status, serve::BinStatus::kOk) << "cut at " << cut;
    EXPECT_EQ(r.rid, rid) << "cut at " << cut;
    ++rid;
  }
  // One byte per send through an entire open request.
  const std::string framed =
      serve::frame(serve::bin_open(rid, "equi", 2, 1.0, 0));
  for (const char c : framed) {
    ASSERT_TRUE(serve::send_all(fd, &c, 1));
  }
  const serve::BinResponse opened =
      serve::parse_bin_response(read_response());
  EXPECT_EQ(opened.status, serve::BinStatus::kOk);
  EXPECT_GT(opened.session, 0u);

  const std::string bye = serve::frame(serve::bin_shutdown(rid + 1));
  ASSERT_TRUE(serve::send_all(fd, bye.data(), bye.size()));
  (void)read_response();
  ::close(fd);
  server_thread.join();
}

}  // namespace
}  // namespace parsched
