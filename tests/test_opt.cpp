// OPT estimation: relaxation lower bounds, plan execution, portfolio.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/opt/plan.hpp"
#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/parallel_srpt.hpp"
#include "simcore/engine.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// --------------------------------------------------------- relaxations

TEST(Relaxations, SrptSpeedMHandComputed) {
  // m = 2 (speed-2 machine), sizes {1, 2} at t=0.
  // SRPT: job1 done at 0.5 (flow .5), job2 at 1.5 (flow 1.5): total 2.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 2.0, 0.5)});
  EXPECT_NEAR(srpt_speed_m_lower_bound(inst), 2.0, 1e-9);
}

TEST(Relaxations, SrptSpeedMWithArrivalPreemption) {
  // m = 1. Long job (4) at 0; short (1) at 1.
  // SRPT: long runs [0,1] (rem 3); short [1,2] flow 1; long done at 5.
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.5), make_job(1, 1.0, 1.0, 0.5)});
  EXPECT_NEAR(srpt_speed_m_lower_bound(inst), 5.0 + 1.0, 1e-9);
}

TEST(Relaxations, SrptSpeedMIdleGap) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 10.0, 2.0, 0.5)});
  EXPECT_NEAR(srpt_speed_m_lower_bound(inst), 2.0, 1e-9);
}

TEST(Relaxations, SpanBound) {
  // m = 4, alpha = 0.5: Γ(4) = 2. sizes 2 and 6 -> 1 + 3 = 4.
  Instance inst(4, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 6.0, 0.5)});
  EXPECT_NEAR(span_lower_bound(inst), 4.0, 1e-9);
}

TEST(Relaxations, CombinedBoundTakesMax) {
  Instance inst(4, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 6.0, 0.5)});
  EXPECT_NEAR(opt_lower_bound(inst),
              std::max(srpt_speed_m_lower_bound(inst),
                       span_lower_bound(inst)),
              1e-12);
}

// Parallel-SRPT achieves the relaxation exactly when every job is fully
// parallelizable — the cleanest possible cross-validation of both the
// engine and the bound (Parallel-SRPT has ratio 1 at alpha = 1).
class ParSrptOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParSrptOptimalityTest, MatchesSpeedMSrptExactly) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 60;
  cfg.alpha_law = AlphaLaw::kFixed;
  cfg.alpha_lo = 1.0;  // fully parallel
  cfg.alpha_hi = 1.0;
  cfg.seed = GetParam();
  const Instance inst = make_random_instance(cfg);
  ParallelSrpt sched;
  const double alg = simulate(inst, sched).total_flow;
  const double lb = srpt_speed_m_lower_bound(inst);
  EXPECT_NEAR(alg, lb, 1e-6 * lb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParSrptOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------------- plan

TEST(Plan, ExecutesSimpleSchedule) {
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5), make_job(1, 0.0, 2.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 4.0, 1.0);
  plan.add(1, 0.0, 2.0, 1.0);
  const SimResult r = execute_plan(inst, plan);
  EXPECT_NEAR(r.total_flow, 6.0, 1e-9);
  EXPECT_NEAR(r.makespan, 4.0, 1e-9);
}

TEST(Plan, AppliesSpeedupCurveToShares) {
  // 4 machines on an alpha=0.5 job: rate 2; size 4 -> completes at 2.
  Instance inst(4, {make_job(0, 0.0, 4.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 10.0, 4.0);  // over-provisioned: truncated at completion
  const SimResult r = execute_plan(inst, plan);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
}

TEST(Plan, CompletionInsideSegmentWithPriorWork) {
  Instance inst(1, {make_job(0, 0.0, 3.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 2.0, 1.0);  // 2 units done
  plan.add(0, 5.0, 9.0, 1.0);  // finishes 1 unit into this segment
  const SimResult r = execute_plan(inst, plan);
  EXPECT_NEAR(r.records[0].completion, 6.0, 1e-9);
}

TEST(Plan, RejectsOvercommit) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 2.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 2.0, 1.0);
  plan.add(1, 0.0, 2.0, 1.0);  // 2 shares on 1 machine
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(Plan, RejectsWorkBeforeRelease) {
  Instance inst(1, {make_job(0, 5.0, 1.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 1.0, 1.0);
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(Plan, RejectsUnfinishedJob) {
  Instance inst(1, {make_job(0, 0.0, 5.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 1.0, 1.0);  // only 1 of 5 units
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(Plan, RejectsMissingJob) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 1.0, 1.0);
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(Plan, RejectsOverlappingSegmentsOfOneJob) {
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 3.0, 1.0);
  plan.add(0, 2.0, 5.0, 1.0);
  EXPECT_THROW((void)execute_plan(inst, plan), InfeasiblePlan);
}

TEST(Plan, BackToBackSegmentsAtFullCapacityAreFeasible) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 1.0, 1.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 1.0, 1.0);
  plan.add(1, 1.0, 2.0, 1.0);
  const SimResult r = execute_plan(inst, plan);
  EXPECT_NEAR(r.total_flow, 2.0, 1e-9);
}

// ------------------------------------------------------------ portfolio

TEST(Portfolio, BestIsMinimumOverPolicies) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.seed = 11;
  const Instance inst = make_random_instance(cfg);
  const PortfolioResult pf = run_portfolio(inst);
  ASSERT_FALSE(pf.flows.empty());
  for (const auto& [name, flow] : pf.flows) {
    EXPECT_LE(pf.best_flow, flow + 1e-9) << name;
  }
  EXPECT_TRUE(pf.flows.count(pf.best_name));
}

TEST(Portfolio, SandwichIsConsistent) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 40;
  cfg.seed = 13;
  const Instance inst = make_random_instance(cfg);
  const OptEstimate est = estimate_opt(inst);
  EXPECT_GT(est.lower, 0.0);
  EXPECT_GE(est.upper, est.lower - 1e-9)
      << "portfolio best fell below the provable lower bound";
}

TEST(Portfolio, PlansParticipate) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5)});
  Plan plan;
  plan.add(0, 0.0, 2.0, 2.0);  // 2 machines: rate 2^0.5, done ~0.707
  const PortfolioResult pf = run_portfolio(inst, {{"hand", plan}});
  ASSERT_TRUE(pf.flows.count("hand"));
  EXPECT_NEAR(pf.flows.at("hand"), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(pf.best_flow, 1.0 / std::sqrt(2.0), 1e-9);
}

}  // namespace
}  // namespace parsched
