// Engine, instance, source, trajectory and result tests: the simulation
// substrate everything else stands on.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/equi.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/parallel_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/mathx.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

// ------------------------------------------------------------- instance

TEST(Instance, SortsAndValidates) {
  std::vector<Job> jobs{make_job(0, 5.0, 2.0, 0.5), make_job(1, 1.0, 8.0, 0.5)};
  Instance inst(4, jobs);
  EXPECT_EQ(inst.machines(), 4);
  EXPECT_DOUBLE_EQ(inst.jobs().front().release, 1.0);
  EXPECT_DOUBLE_EQ(inst.P(), 4.0);
  EXPECT_DOUBLE_EQ(inst.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(inst.max_alpha(), 0.5);
}

TEST(Instance, RejectsBadInput) {
  EXPECT_THROW(Instance(0, {make_job(0, 0, 1, 0.5)}), std::invalid_argument);
  EXPECT_THROW(Instance(2, {}), std::invalid_argument);
  EXPECT_THROW(Instance(2, {make_job(0, -1, 1, 0.5)}), std::invalid_argument);
  EXPECT_THROW(Instance(2, {make_job(0, 0, 0, 0.5)}), std::invalid_argument);
  EXPECT_THROW(
      Instance(2, {make_job(3, 0, 1, 0.5), make_job(3, 0, 1, 0.5)}),
      std::invalid_argument);
}

TEST(Instance, AssignsMissingIds) {
  std::vector<Job> jobs{make_job(kInvalidJob, 0.0, 1.0, 0.5),
                        make_job(kInvalidJob, 1.0, 2.0, 0.5)};
  Instance inst(2, jobs);
  EXPECT_NE(inst.jobs()[0].id, inst.jobs()[1].id);
}

// --------------------------------------------------------------- engine

TEST(Engine, SingleSequentialJobOnOneMachine) {
  Instance inst(1, {make_job(0, 2.0, 5.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  ASSERT_EQ(r.jobs(), 1u);
  EXPECT_NEAR(r.records[0].completion, 7.0, 1e-9);
  EXPECT_NEAR(r.total_flow, 5.0, 1e-9);
  EXPECT_NEAR(r.makespan, 7.0, 1e-9);
}

TEST(Engine, FullyParallelJobUsesWholePool) {
  // Parallel-SRPT gives all m = 8 machines: rate 8, size 16 -> 2 time units.
  Job j = make_job(0, 0.0, 16.0, 1.0);
  Instance inst(8, {j});
  ParallelSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
}

TEST(Engine, PowerLawRateAppliedToWholePool) {
  // alpha = 0.5, m = 16 -> rate 4; size 8 -> 2 time units.
  Instance inst(16, {make_job(0, 0.0, 8.0, 0.5)});
  ParallelSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
}

TEST(Engine, UnderloadEquipartitionOfIntermediateSrpt) {
  // Two jobs, m = 8, alpha = 0.5: each gets 4 machines -> rate 2.
  Instance inst(8,
                {make_job(0, 0.0, 4.0, 0.5), make_job(1, 0.0, 4.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  ASSERT_EQ(r.jobs(), 2u);
  EXPECT_NEAR(r.records[0].completion, 2.0, 1e-9);
  EXPECT_NEAR(r.records[1].completion, 2.0, 1e-9);
}

TEST(Engine, OverloadOneMachineEach) {
  // m = 2, three unit jobs, alpha irrelevant at share 1 (Γ(1) = 1).
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 2.0, 0.5),
                    make_job(2, 0.0, 3.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  // Shortest two run first; job0 done at 1, then job2 joins. After job1
  // finishes at 2, job2 (remaining 2) holds both machines: rate 2^0.5.
  EXPECT_NEAR(r.records[0].completion, 1.0, 1e-9);  // job 0
  EXPECT_NEAR(r.records[1].completion, 2.0, 1e-9);  // job 1
  EXPECT_NEAR(r.records[2].completion, 2.0 + 2.0 / std::sqrt(2.0), 1e-9);
}

TEST(Engine, ArrivalPreemptsViaSrpt) {
  // Sequential-SRPT on m = 1: long job preempted by short arrival.
  Instance inst(1, {make_job(0, 0.0, 10.0, 0.0), make_job(1, 2.0, 1.0, 0.0)});
  SequentialSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.records[0].completion, 3.0, 1e-9);   // short
  EXPECT_NEAR(r.records[1].completion, 11.0, 1e-9);  // long
  EXPECT_NEAR(r.total_flow, (3.0 - 2.0) + 11.0, 1e-9);
}

TEST(Engine, FractionalFlowAtMostTotalFlow) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i * 0.3,
                            1.0 + (i % 5), 0.5));
  }
  Instance inst(4, jobs);
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_LE(r.fractional_flow, r.total_flow + 1e-6);
  EXPECT_GT(r.fractional_flow, 0.0);
}

TEST(Engine, IdleGapBetweenJobs) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 10.0, 1.0, 0.5)});
  Equi sched;
  const SimResult r = simulate(inst, sched);
  // A lone job holds both machines: rate 2^{0.5}.
  EXPECT_NEAR(r.records[0].completion, 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.records[1].completion, 10.0 + 1.0 / std::sqrt(2.0), 1e-9);
}

// Misbehaving policies are rejected loudly.

class ZeroScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Zero"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
  }
};

class OvercommitScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Overcommit"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    for (double& s : out.shares) s = static_cast<double>(ctx.machines()) + 1.0;
  }
};

class PastReconsider final : public Scheduler {
 public:
  using Scheduler::allocate;
  std::string name() const override { return "Past"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override {
    out.reset(ctx.alive().size());
    for (double& s : out.shares) s = 1.0;
    out.reconsider_at = ctx.time() - 1.0;
  }
};

TEST(Engine, DetectsStall) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5)});
  ZeroScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), SimulationStall);
}

TEST(Engine, RejectsOvercommit) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5)});
  OvercommitScheduler sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

TEST(Engine, RejectsPastReconsideration) {
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5)});
  PastReconsider sched;
  EXPECT_THROW((void)simulate(inst, sched), std::logic_error);
}

// ------------------------------------------------------------ observers

TEST(Observers, CountTrackerMatchesArrivalsAndCompletions) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 0.5, 2.0, 0.0)});
  SequentialSrpt sched;
  CountTracker tracker;
  const SimResult r = simulate(inst, sched, {}, {&tracker});
  (void)r;
  const StepFunction& f = tracker.alive_count();
  EXPECT_DOUBLE_EQ(f.value(0.25), 1.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 2.0);
  // First job (shortest-remaining wins; both size 2, job0 leads) done at 2.
  EXPECT_DOUBLE_EQ(f.value(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(10.0), 0.0);
}

TEST(Observers, TrajectoryIsExactPiecewiseLinear) {
  // One job, one machine: remaining = size - t.
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.5)});
  IntermediateSrpt sched;
  TrajectoryRecorder rec;
  (void)simulate(inst, sched, {}, {&rec});
  EXPECT_NEAR(rec.remaining_at(0, 0.0), 4.0, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 1.0), 3.0, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 3.5), 0.5, 1e-9);
  EXPECT_NEAR(rec.remaining_at(0, 5.0), 0.0, 1e-9);
}

TEST(Observers, TrajectoryUnderEquipartition) {
  // Two identical jobs share m = 2 machines: each rate 1.
  Instance inst(2, {make_job(0, 0.0, 3.0, 0.5), make_job(1, 0.0, 3.0, 0.5)});
  Equi sched;
  TrajectoryRecorder rec;
  (void)simulate(inst, sched, {}, {&rec});
  EXPECT_NEAR(rec.remaining_at(0, 1.5), 1.5, 1e-9);
  EXPECT_NEAR(rec.remaining_at(1, 1.5), 1.5, 1e-9);
}

// ------------------------------------------------------------- results

TEST(Result, TagAggregation) {
  Job a = make_job(0, 0.0, 1.0, 0.5);
  a.tag = {0, JobTag::Class::kShort, 0};
  Job b = make_job(1, 0.0, 2.0, 0.5);
  b.tag = {0, JobTag::Class::kLong, 0};
  Instance inst(2, {a, b});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_EQ(r.count_tagged(JobTag::Class::kShort), 1u);
  EXPECT_EQ(r.count_tagged(JobTag::Class::kLong), 1u);
  EXPECT_NEAR(r.flow_tagged(JobTag::Class::kShort), 1.0, 1e-9);
  // Long job: one machine until t=1 (rem 1), then both at rate 2^{0.5}.
  EXPECT_NEAR(r.flow_tagged(JobTag::Class::kLong),
              1.0 + 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_EQ(r.realized_jobs().size(), 2u);
}

TEST(Result, MaxFlowAndAvgFlow) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5), make_job(1, 0.0, 2.0, 0.5)});
  SequentialSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.max_flow(), 3.0, 1e-9);
  EXPECT_NEAR(r.avg_flow(), (1.0 + 3.0) / 2.0, 1e-9);
}

// ------------------------------------------------------ scheduler ctx

TEST(SchedulerContext, ByRemainingOrder) {
  std::vector<AliveJob> alive(3);
  alive[0].id = 0;
  alive[0].remaining = 5.0;
  alive[1].id = 1;
  alive[1].remaining = 1.0;
  alive[2].id = 2;
  alive[2].remaining = 3.0;
  SchedulerContext ctx(0.0, 4, alive);
  const auto order = ctx.by_remaining();
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(SchedulerContext, ByLatestArrival) {
  std::vector<AliveJob> alive(2);
  alive[0].id = 0;
  alive[0].release = 1.0;
  alive[1].id = 1;
  alive[1].release = 9.0;
  SchedulerContext ctx(0.0, 4, alive);
  const auto order = ctx.by_latest_arrival();
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

}  // namespace
}  // namespace parsched
