#!/usr/bin/env bash
# CLI contract: bad invocations print usage/diagnostics to STDERR and
# exit nonzero; stdout stays clean so pipelines never ingest error text.
#
#   cli_exit_codes.sh <path-to-parsched-binary>
set -u

BIN=${1:?usage: cli_exit_codes.sh <parsched binary>}
fails=0

# expect <exit-code> <stderr-pattern> -- <args...>
expect() {
  local want_code=$1 pattern=$2
  shift 3  # code, pattern, "--"
  local out err code
  out=$("$BIN" "$@" 2>/tmp/cli_exit_stderr.$$); code=$?
  err=$(cat /tmp/cli_exit_stderr.$$; rm -f /tmp/cli_exit_stderr.$$)
  if [[ $code -ne $want_code ]]; then
    echo "FAIL: parsched $* exited $code, want $want_code" >&2
    fails=$((fails + 1))
  fi
  if [[ -n $pattern && $err != *"$pattern"* ]]; then
    echo "FAIL: parsched $* stderr missing '$pattern': $err" >&2
    fails=$((fails + 1))
  fi
  if [[ $want_code -ne 0 && -n $out ]]; then
    echo "FAIL: parsched $* wrote error output to stdout: $out" >&2
    fails=$((fails + 1))
  fi
}

# No command / unknown command: usage on stderr, exit 2.
expect 2 "usage: parsched" --
expect 2 "unknown command 'frobnicate'" -- frobnicate
expect 2 "usage: parsched" -- frobnicate

# Missing required arguments per subcommand: diagnostic + exit 2.
expect 2 "--instance=FILE is required" -- run
expect 2 "--instance=FILE is required" -- compare
expect 2 "--instance=FILE is required" -- bound
expect 2 "--instance=FILE is required" -- trace
expect 2 "--out=FILE is required" -- gen
expect 2 "exactly one of --stdio or --socket" -- serve
expect 2 "exactly one of --stdio or --socket" -- serve --stdio --socket=/tmp/x.sock
expect 2 "--socket=PATH is required" -- loadgen

# Runtime errors (good arguments, bad world): exit 1, not 2.
expect 1 "error:" -- run --instance=/nonexistent/instance.txt
expect 1 "error:" -- run --instance=/dev/null --policy=no-such-policy

# A good invocation still exits 0 (guards against an over-eager usage()).
tmp_inst=$(mktemp)
trap 'rm -f "$tmp_inst"' EXIT
if ! "$BIN" gen --kind=random --jobs=5 --machines=2 --out="$tmp_inst" \
    >/dev/null 2>&1; then
  echo "FAIL: valid gen invocation exited nonzero" >&2
  fails=$((fails + 1))
fi
if ! "$BIN" run --instance="$tmp_inst" >/dev/null 2>&1; then
  echo "FAIL: valid run invocation exited nonzero" >&2
  fails=$((fails + 1))
fi

if [[ $fails -ne 0 ]]; then
  echo "cli_exit_codes: $fails failure(s)" >&2
  exit 1
fi
echo "cli_exit_codes: OK"
