// Unit tests for the util substrate: math helpers, RNG, statistics,
// tables, options, and piecewise timelines.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "util/mathx.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timeline.hpp"

namespace parsched {
namespace {

// ---------------------------------------------------------------- mathx

TEST(Mathx, ApproxEqBasics) {
  EXPECT_TRUE(approx_eq(1.0, 1.0));
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_eq(1.0, 1.001));
  EXPECT_TRUE(approx_eq(1e12, 1e12 * (1.0 + 1e-12)));
}

TEST(Mathx, DefinitelyLess) {
  EXPECT_TRUE(definitely_less(1.0, 2.0));
  EXPECT_FALSE(definitely_less(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(definitely_less(2.0, 1.0));
}

TEST(Mathx, SizeClassMatchesPaperDefinition) {
  // Remaining in [2^k, 2^{k+1}) -> class k; < 1 -> class -1.
  EXPECT_EQ(size_class(0.5), -1);
  EXPECT_EQ(size_class(0.999), -1);
  EXPECT_EQ(size_class(1.0), 0);
  EXPECT_EQ(size_class(1.999), 0);
  EXPECT_EQ(size_class(2.0), 1);
  EXPECT_EQ(size_class(3.999), 1);
  EXPECT_EQ(size_class(4.0), 2);
  EXPECT_EQ(size_class(1024.0), 10);
}

TEST(Mathx, NumSizeClasses) {
  EXPECT_EQ(num_size_classes(1.0), 1);
  EXPECT_EQ(num_size_classes(2.0), 1);
  EXPECT_EQ(num_size_classes(8.0), 3);
  EXPECT_EQ(num_size_classes(9.0), 4);
}

TEST(Mathx, LogInv) {
  EXPECT_NEAR(log_inv(0.25, 16.0), 2.0, 1e-12);  // log_4 16
  EXPECT_NEAR(log_inv(0.5, 8.0), 3.0, 1e-12);    // log_2 8
}

TEST(Mathx, AdversaryConstantsAlphaHalf) {
  const auto c = adversary_constants(0.5);
  EXPECT_DOUBLE_EQ(c.epsilon, 0.5);
  // r = (1 - 2^{-1/2}) / 2.
  EXPECT_NEAR(c.r, 0.5 * (1.0 - 1.0 / std::sqrt(2.0)), 1e-15);
  const double two_eps = std::sqrt(2.0);
  EXPECT_NEAR(c.kappa, (two_eps - 1.0) / (two_eps + 1.0), 1e-15);
}

TEST(Mathx, AdversaryConstantsSequential) {
  const auto c = adversary_constants(0.0);
  EXPECT_DOUBLE_EQ(c.epsilon, 1.0);
  EXPECT_NEAR(c.r, 0.25, 1e-15);
  EXPECT_NEAR(c.kappa, 1.0 / 3.0, 1e-15);
}

TEST(Mathx, Theorem1EnvelopeGrowsWithAlphaAndP) {
  EXPECT_LT(theorem1_envelope(0.5, 64.0), theorem1_envelope(0.9, 64.0));
  EXPECT_LT(theorem1_envelope(0.5, 64.0), theorem1_envelope(0.5, 1024.0));
  // alpha = 0.5 -> 4^2 = 16; log2(64) = 6.
  EXPECT_NEAR(theorem1_envelope(0.5, 64.0), 16.0 * 6.0, 1e-9);
}

TEST(Mathx, RoundIntegral) {
  EXPECT_EQ(round_integral(4.0), 4);
  EXPECT_EQ(round_integral(4.0 + 1e-9), 4);
  EXPECT_EQ(round_integral(-3.0), -3);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> hits(6, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h), trials / 6.0, trials * 0.01);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, LogUniformBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(1.0, 64.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 64.0);
  }
}

TEST(Rng, BoundedParetoBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.0, 100.0, 1.1);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoAgreesWithTextbookInversion) {
  // The stable form lo·(1 − u·(1 − (lo/hi)^a))^(−1/a) must agree with
  // the textbook inversion pow(-(u·hi^a − u·lo^a − hi^a)/(hi^a·lo^a),
  // −1/a) wherever the latter does not overflow. The two expression
  // trees round differently, so agreement is pinned at a few ULPs of
  // relative error, not bit equality.
  Rng sampler(31);
  Rng mirror(31);  // same stream: reproduce each u the sampler consumed
  for (const auto& [lo, hi, a] :
       {std::tuple{1.0, 100.0, 1.1}, std::tuple{0.5, 64.0, 2.5},
        std::tuple{2.0, 1e6, 0.7}}) {
    const double la = std::pow(lo, a);
    const double ha = std::pow(hi, a);
    for (int i = 0; i < 10000; ++i) {
      const double v = sampler.bounded_pareto(lo, hi, a);
      const double u = mirror.uniform01();
      const double textbook =
          std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / a);
      ASSERT_NEAR(v, textbook, 1e-12 * textbook)
          << "lo=" << lo << " hi=" << hi << " a=" << a << " u=" << u;
    }
  }
}

TEST(Rng, BoundedParetoFiniteInOverflowRegime) {
  // hi^shape overflows a double (1e300^2.5 = inf): the textbook
  // inversion returned NaN here (inf − inf in the numerator). The
  // stable form only ever evaluates (lo/hi)^shape ∈ (0, 1].
  Rng rng(37);
  const double lo = 1.0, hi = 1e300, shape = 2.5;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.bounded_pareto(lo, hi, shape);
    ASSERT_TRUE(std::isfinite(v)) << "sample " << i << " not finite";
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w{1.0, 0.0, 3.0};
  int c0 = 0, c2 = 0;
  for (int i = 0; i < 40000; ++i) {
    const auto idx = rng.weighted_index(w);
    ASSERT_NE(idx, 1u);
    if (idx == 0) ++c0;
    if (idx == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / c0, 3.0, 0.2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(29);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

// ---------------------------------------------------------------- stats

TEST(Stats, RunningStatsMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, LinearFitExact) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, BootstrapCiContainsMean) {
  std::vector<double> v;
  Rng rng(37);
  for (int i = 0; i < 500; ++i) v.push_back(rng.uniform(0.0, 2.0));
  const auto iv = bootstrap_mean_ci(v, 0.95, 500, 1);
  EXPECT_LT(iv.lo, 1.1);
  EXPECT_GT(iv.hi, 0.9);
  EXPECT_LT(iv.lo, iv.hi);
}

// ---------------------------------------------------------------- table

TEST(Table, PrintsAllRowsAndHeaders) {
  Table t({"P", "ratio"});
  t.add_row({std::int64_t{64}, 2.5});
  t.add_row({std::int64_t{128}, 3.0});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("P"), std::string::npos);
  EXPECT_NE(s.find("ratio"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
  EXPECT_NE(s.find("3.0"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumericColumn) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, 2.5});
  t.add_row({std::int64_t{3}, 4.5});
  const auto col = t.numeric_column("b");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.5);
  EXPECT_DOUBLE_EQ(col[1], 4.5);
  EXPECT_THROW((void)t.numeric_column("zzz"), std::out_of_range);
}

TEST(Table, WriteCsvEscapesAndRoundsTrip) {
  Table t({"name", "value"});
  t.add_row({std::string("plain"), 1.5});
  t.add_row({std::string("with,comma"), 2.5});
  t.add_row({std::string("with\"quote"), std::int64_t{3}});
  const std::string path = "test_table_out.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::remove(path.c_str());
}

// -------------------------------------------------------------- options

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--m=16", "--verbose", "pos1",
                        "--alpha=0.5,0.75"};
  Options o(5, argv);
  EXPECT_EQ(o.get_int("m", 0), 16);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  const auto alphas = o.get_doubles("alpha", {});
  ASSERT_EQ(alphas.size(), 2u);
  EXPECT_DOUBLE_EQ(alphas[0], 0.5);
  EXPECT_DOUBLE_EQ(alphas[1], 0.75);
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos1");
}

TEST(Options, GetIntsParsesLists) {
  const char* argv[] = {"prog", "--P=8,16,32"};
  Options o(2, argv);
  const auto ps = o.get_ints("P", {});
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0], 8);
  EXPECT_EQ(ps[2], 32);
  const auto dflt = o.get_ints("missing", {1, 2});
  ASSERT_EQ(dflt.size(), 2u);
}

TEST(Options, UnusedKeysDetectsTypos) {
  const char* argv[] = {"prog", "--machnies=16"};
  Options o(2, argv);
  (void)o.get_int("machines", 8);
  const auto unused = o.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "machnies");
}

// ------------------------------------------------------------- timeline

TEST(StepFunction, ValueAndIntegrate) {
  StepFunction f;
  f.append(0.0, 2.0);
  f.append(1.0, 5.0);
  f.append(3.0, 0.0);
  EXPECT_DOUBLE_EQ(f.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f.value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(10.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 3.0), 2.0 + 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.5, 1.5), 0.5 * 2.0 + 0.5 * 5.0);
}

TEST(StepFunction, OverwriteAtSameTime) {
  StepFunction f;
  f.append(0.0, 1.0);
  f.append(0.0, 3.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 3.0);
  EXPECT_EQ(f.size(), 1u);
}

TEST(PiecewiseLinear, ValueInterpolation) {
  PiecewiseLinear f;
  f.append(0.0, 10.0);
  f.append(5.0, 0.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(2.5), 5.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 0.0);   // flat extrapolation
  EXPECT_DOUBLE_EQ(f.value(-1.0), 10.0);
}

TEST(PiecewiseLinear, RightDerivative) {
  PiecewiseLinear f;
  f.append(0.0, 10.0);
  f.append(5.0, 0.0);
  f.append(7.0, 4.0);
  EXPECT_DOUBLE_EQ(f.right_derivative(1.0), -2.0);
  EXPECT_DOUBLE_EQ(f.right_derivative(5.0), 2.0);  // right-sided at knot
  EXPECT_DOUBLE_EQ(f.right_derivative(7.0), 0.0);
}

TEST(PiecewiseLinear, Integrate) {
  PiecewiseLinear f;
  f.append(0.0, 10.0);
  f.append(5.0, 0.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 5.0), 25.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 10.0), 25.0);  // flat 0 after
  EXPECT_NEAR(f.integrate(1.0, 2.0), 0.5 * (8.0 + 6.0), 1e-12);
}

TEST(MergedBreakpoints, DedupAndClip) {
  std::vector<double> a{0.0, 1.0, 2.0};
  std::vector<double> b{1.0, 1.5, 9.0};
  const auto merged = merged_breakpoints({&a, &b}, 0.0, 3.0);
  ASSERT_EQ(merged.size(), 5u);  // 0, 1, 1.5, 2, 3
  EXPECT_DOUBLE_EQ(merged.front(), 0.0);
  EXPECT_DOUBLE_EQ(merged.back(), 3.0);
}

}  // namespace
}  // namespace parsched
