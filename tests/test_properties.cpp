// Property-based suites: invariants that must hold for every policy on
// randomized instances (parameterized sweeps over seeds x policies x alpha).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>

#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

RandomWorkloadConfig fuzz_config(std::uint64_t seed, double alpha) {
  RandomWorkloadConfig cfg;
  cfg.machines = 3 + static_cast<int>(seed % 6);
  cfg.jobs = 30 + static_cast<std::size_t>(seed % 40);
  cfg.P = 16.0 + static_cast<double>(seed % 48);
  cfg.load = 0.5 + 0.1 * static_cast<double>(seed % 10);
  cfg.alpha_lo = cfg.alpha_hi = alpha;
  cfg.seed = seed * 7919 + 13;
  return cfg;
}

using PolicyCase = std::tuple<std::string, std::uint64_t, double>;

class PolicyInvariantTest : public ::testing::TestWithParam<PolicyCase> {};

// Every policy finishes every job, never beats the provable OPT lower
// bound, and keeps fractional flow below total flow.
TEST_P(PolicyInvariantTest, CompletesAllAndRespectsLowerBounds) {
  const auto& [policy, seed, alpha] = GetParam();
  const RandomWorkloadConfig cfg = fuzz_config(seed, alpha);
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler(policy);
  const SimResult r = simulate(inst, *sched);

  ASSERT_EQ(r.jobs(), inst.size()) << "jobs lost by " << policy;
  EXPECT_LE(r.fractional_flow, r.total_flow + 1e-6);
  EXPECT_GT(r.total_flow, 0.0);

  const double lb = opt_lower_bound(inst);
  EXPECT_GE(r.total_flow, lb - 1e-6 * lb)
      << policy << " beat the provable OPT lower bound";

  // Flow of each job is at least its isolated span p_j / Γ_j(m).
  for (const auto& rec : r.records) {
    const double span =
        rec.job.size /
        rec.job.curve.rate(static_cast<double>(inst.machines()));
    EXPECT_GE(rec.flow(), span - 1e-6 * std::max(1.0, span))
        << policy << " finished a job faster than physically possible";
  }
}

// Work conservation: the recorded trajectory of every job decreases
// monotonically from size to zero and its total drop equals its size.
TEST_P(PolicyInvariantTest, TrajectoriesConserveWork) {
  const auto& [policy, seed, alpha] = GetParam();
  const RandomWorkloadConfig cfg = fuzz_config(seed + 101, alpha);
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler(policy);
  TrajectoryRecorder rec;
  (void)simulate(inst, *sched, {}, {&rec});
  for (const auto& [id, jt] : rec.trajectories()) {
    (void)id;
    const auto& vals = jt.remaining.values();
    ASSERT_FALSE(vals.empty());
    EXPECT_NEAR(vals.front(), jt.job.size, 1e-9);
    EXPECT_NEAR(vals.back(), 0.0, 1e-6);
    for (std::size_t i = 1; i < vals.size(); ++i) {
      EXPECT_LE(vals[i], vals[i - 1] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FuzzGrid, PolicyInvariantTest,
    ::testing::Combine(
        ::testing::Values("isrpt", "seq-srpt", "par-srpt", "greedy", "equi",
                          "laps:0.5", "isrpt-thresh:2", "isrpt-boost"),
        ::testing::Values<std::uint64_t>(1, 2, 3),
        ::testing::Values(0.25, 0.75)),
    [](const ::testing::TestParamInfo<PolicyCase>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-' || c == ':' || c == '.') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(param_info.param)) +
             "_a" +
             std::to_string(
                 static_cast<int>(std::get<2>(param_info.param) * 100));
    });

// Permutation invariance: an Instance canonicalizes its job list
// (sorted by release, ties by id), so feeding the same jobs in any
// order must yield bit-identical engine results for every policy. This
// is the serial half of the sweep determinism contract — if permuting
// inputs perturbed results, exec::SweepRunner's index-order merge could
// not guarantee stable artifact bytes either.
TEST_P(PolicyInvariantTest, ResultsInvariantToJobListPermutation) {
  const auto& [policy, seed, alpha] = GetParam();
  const RandomWorkloadConfig cfg = fuzz_config(seed + 503, alpha);
  const Instance inst = make_random_instance(cfg);

  std::vector<Job> shuffled = inst.jobs();
  std::mt19937_64 rng(seed * 2654435761ULL + 7);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const Instance permuted(inst.machines(), std::move(shuffled));

  auto sched_a = make_scheduler(policy);
  auto sched_b = make_scheduler(policy);
  const SimResult a = simulate(inst, *sched_a);
  const SimResult b = simulate(permuted, *sched_b);

  EXPECT_EQ(a.total_flow, b.total_flow) << policy;
  EXPECT_EQ(a.weighted_flow, b.weighted_flow) << policy;
  EXPECT_EQ(a.fractional_flow, b.fractional_flow) << policy;
  EXPECT_EQ(a.makespan, b.makespan) << policy;
  EXPECT_EQ(a.decisions, b.decisions) << policy;
  EXPECT_EQ(a.events, b.events) << policy;
}

// Dominance: adding parallelizability can only help ISRPT... not in
// general pointwise, but the *lower bound relaxation* must dominate:
// the speed-m SRPT bound is monotone under pointwise-larger curves.
class RelaxationDominanceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RelaxationDominanceTest, SpeedMSrptIsALowerBoundForAllPolicies) {
  const RandomWorkloadConfig cfg = fuzz_config(GetParam(), 0.5);
  const Instance inst = make_random_instance(cfg);
  const double lb = srpt_speed_m_lower_bound(inst);
  for (const auto& name : standard_policy_names()) {
    auto sched = make_scheduler(name);
    const double flow = simulate(inst, *sched).total_flow;
    EXPECT_GE(flow, lb - 1e-6 * lb) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxationDominanceTest,
                         ::testing::Values(11, 22, 33, 44));

// EQUI on batch instances: [5] proves 2-competitiveness for arbitrary
// speedup curves with common release. Verified against the provable lower
// bound (which can only make EQUI's measured ratio look *worse*, so the
// bound below is conservative and slack is expected).
class EquiBatchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquiBatchTest, AtMostTwiceOptUpperEstimate) {
  BatchWorkloadConfig cfg;
  cfg.machines = 4 + static_cast<int>(GetParam() % 5);
  cfg.jobs = 24 + static_cast<std::size_t>(GetParam() % 16);
  cfg.seed = GetParam();
  const Instance inst = make_batch_instance(cfg);
  auto equi = make_scheduler("equi");
  const double equi_flow = simulate(inst, *equi).total_flow;
  // Against the best feasible schedule in the portfolio (an upper bound on
  // OPT, so ratio computed this way can only exceed the true ratio by the
  // portfolio's own gap; allow small headroom).
  double best = equi_flow;
  for (const auto& name : standard_policy_names()) {
    auto sched = make_scheduler(name);
    best = std::min(best, simulate(inst, *sched).total_flow);
  }
  EXPECT_LE(equi_flow, 2.0 * best * 1.05)
      << "EQUI exceeded 2x the best schedule found on a batch instance";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquiBatchTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Intermediate-SRPT equals Sequential-SRPT on instances engineered to stay
// overloaded, for any alpha (allocation never exceeds one machine per job,
// so the speedup exponent is irrelevant).
class OverloadEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(OverloadEquivalenceTest, IsrptEqualsSeqSrptWhileOverloaded) {
  // 3 machines, 30 unit-ish jobs at time 0: overloaded until the tail.
  std::vector<Job> jobs;
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.0;
    j.size = 1.0 + rng.uniform(0.0, 0.5);
    j.curve = SpeedupCurve::power_law(GetParam());
    jobs.push_back(j);
  }
  Instance inst(3, jobs);
  auto isrpt = make_scheduler("isrpt");
  auto seq = make_scheduler("seq-srpt");
  const SimResult ri = simulate(inst, *isrpt);
  const SimResult rs = simulate(inst, *seq);
  // Compare all but the final two completions (where |A| < m and the
  // policies legitimately diverge).
  std::vector<double> ci, cs;
  for (const auto& rec : ri.records) ci.push_back(rec.completion);
  for (const auto& rec : rs.records) cs.push_back(rec.completion);
  for (std::size_t i = 0; i + 2 < ci.size(); ++i) {
    EXPECT_NEAR(ci[i], cs[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, OverloadEquivalenceTest,
                         ::testing::Values(0.1, 0.5, 0.9));

}  // namespace
}  // namespace parsched
