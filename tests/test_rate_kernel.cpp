// Tests for src/speedup/kernel.hpp — the batched rate kernel — and the
// engine's SoA alive-set mirror that feeds it.
//
// The contract under test, layer by layer:
//   * rate_batch (default arm) is bit-identical to the scalar
//     SpeedupCurve::rate() loop it replaced — a pure layout change.
//   * rate_batch_fast is bit-exact at x <= 1, for the closed-form kinds
//     (α ∈ {0, 1} — power_law canonicalizes those), and for
//     piecewise-linear fallback elements; power-law x > 1 stays within
//     a small ULP distance of the scalar arm.
//   * The engine's AliveSoA mirror matches alive_ field-for-field under
//     any interleaving of admit / advance / complete / snapshot-import.
//   * The opt-in fast arm perturbs a full simulation only at ULP level
//     (same decision structure, totals within tight relative tolerance),
//     and snapshots refuse to cross kernel arms.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/instance.hpp"
#include "speedup/curve.hpp"
#include "speedup/kernel.hpp"
#include "util/rng.hpp"

namespace parsched {
namespace {

using speedup::rate_batch;
using speedup::rate_batch_fast;

// ULP distance between two same-sign finite doubles.
std::uint64_t ulp_diff(double a, double b) {
  const auto ia = std::bit_cast<std::int64_t>(a);
  const auto ib = std::bit_cast<std::int64_t>(b);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

// A deterministic mixed population: all four kinds, α spread over (0, 1),
// shares spanning [0, x_max] including the x <= 1 boundary band.
struct Population {
  std::vector<SpeedupCurve> curves;
  std::vector<std::uint8_t> kinds;
  std::vector<double> alphas;
  std::vector<double> xs;
};

Population mixed_population(std::size_t n, double x_max, std::uint64_t seed) {
  Population p;
  Rng rng(seed);
  p.curves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        p.curves.push_back(SpeedupCurve::fully_parallel());
        break;
      case 1:
        p.curves.push_back(SpeedupCurve::sequential());
        break;
      case 2:
        p.curves.push_back(SpeedupCurve::power_law(rng.uniform(0.05, 0.95)));
        break;
      default:
        p.curves.push_back(
            SpeedupCurve::piecewise_linear({{2.0, 1.8}, {8.0, 3.0}}));
        break;
    }
    // Half the shares land in [0, 1.25] so the x <= 1 branch is dense.
    p.xs.push_back(rng.bernoulli(0.5) ? rng.uniform(0.0, 1.25)
                                      : rng.uniform(1.0, x_max));
  }
  for (const SpeedupCurve& c : p.curves) {
    p.kinds.push_back(static_cast<std::uint8_t>(c.kind()));
    p.alphas.push_back(c.alpha());
  }
  return p;
}

speedup::PwlRateFn pwl_from(const std::vector<SpeedupCurve>& curves) {
  return {[](const void* ctx, std::size_t i, double x) {
            const auto* cs = static_cast<const std::vector<SpeedupCurve>*>(ctx);
            return (*cs)[i].rate(x);
          },
          &curves};
}

TEST(RateKernel, DefaultArmBitIdenticalToScalarLoop) {
  const Population p = mixed_population(4096, 64.0, 0xA11CE);
  for (const double speed : {1.0, 1.5, 2.0}) {
    std::vector<double> out(p.xs.size());
    rate_batch(p.kinds, p.alphas, p.xs, speed, out, pwl_from(p.curves));
    for (std::size_t i = 0; i < p.xs.size(); ++i) {
      const double scalar = speed * p.curves[i].rate(p.xs[i]);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(scalar))
          << "kind=" << static_cast<int>(p.kinds[i]) << " x=" << p.xs[i]
          << " speed=" << speed << " at i=" << i;
    }
  }
}

TEST(RateKernel, FastArmBitExactWhereGuaranteed) {
  // x <= 1 (every kind), α ∈ {0, 1} at any x, and piecewise-linear
  // fallback elements must be bit-identical to the default arm; only
  // power-law elements with x > 1 may differ.
  const Population p = mixed_population(4096, 64.0, 0xBEEF);
  std::vector<double> slow(p.xs.size()), fast(p.xs.size());
  rate_batch(p.kinds, p.alphas, p.xs, 1.0, slow, pwl_from(p.curves));
  rate_batch_fast(p.kinds, p.alphas, p.xs, 1.0, fast, pwl_from(p.curves));
  for (std::size_t i = 0; i < p.xs.size(); ++i) {
    if (p.kinds[i] == speedup::kKindPowerLaw && p.xs[i] > 1.0) continue;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast[i]),
              std::bit_cast<std::uint64_t>(slow[i]))
        << "kind=" << static_cast<int>(p.kinds[i]) << " x=" << p.xs[i];
  }
}

TEST(RateKernel, FastArmWithinUlpBoundOnPowerLaw) {
  // exp(α·log x) vs pow(x, α): the log error is amplified by α·log x
  // before exp turns it into relative error, so the ULP distance grows
  // with log x — ~|α·log x| ULPs plus rounding. x up to 2^20 keeps the
  // bound comfortably under 32 ULPs; the fuzz pins that envelope.
  Rng rng(0xFA57);
  std::uint64_t worst = 0;
  for (int trial = 0; trial < 200'000; ++trial) {
    const double a = rng.uniform(0.01, 0.99);
    const double x = std::exp(rng.uniform(0.0, std::log(1048576.0)));
    if (x <= 1.0) continue;
    const std::uint8_t kind = speedup::kKindPowerLaw;
    double slow_out, fast_out;
    rate_batch({&kind, 1}, {&a, 1}, {&x, 1}, 1.0, {&slow_out, 1});
    rate_batch_fast({&kind, 1}, {&a, 1}, {&x, 1}, 1.0, {&fast_out, 1});
    ASSERT_TRUE(std::isfinite(fast_out));
    worst = std::max(worst, ulp_diff(slow_out, fast_out));
  }
  EXPECT_LE(worst, 32u) << "fast arm drifted beyond the ULP envelope";
}

TEST(RateKernel, FastArmMemoIsExactOnSharedAlpha) {
  // A shared-(x, α) batch — the EQUI dense-allocation shape — must give
  // every element the identical bits the first (memo-miss) element got,
  // which in turn must match a fresh single-element evaluation.
  const std::size_t n = 1024;
  std::vector<std::uint8_t> kinds(n, speedup::kKindPowerLaw);
  std::vector<double> alphas(n, 0.5);
  std::vector<double> xs(n, 7.25);
  std::vector<double> out(n);
  rate_batch_fast(kinds, alphas, xs, 2.0, out);
  double single;
  rate_batch_fast({kinds.data(), 1}, {alphas.data(), 1}, {xs.data(), 1}, 2.0,
                  {&single, 1});
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(single));
  }
  // Memo keys on the (x, α) pair: alternating α must not leak stale g.
  for (std::size_t i = 1; i < n; i += 2) alphas[i] = 0.75;
  rate_batch_fast(kinds, alphas, xs, 2.0, out);
  std::vector<double> slow(n);
  rate_batch(kinds, alphas, xs, 2.0, slow);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(ulp_diff(out[i], slow[i]), 32u) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Engine SoA mirror: property test over admit / advance / complete /
// snapshot-import interleavings.

void expect_mirror_matches(const Engine& eng) {
  const AliveSoA& soa = eng.alive_soa();
  const EngineState st = eng.export_state();
  ASSERT_EQ(soa.size(), st.alive.size());
  ASSERT_EQ(soa.alloc.size(), st.alive.size());
  ASSERT_EQ(soa.rate.size(), st.alive.size());
  for (std::size_t i = 0; i < st.alive.size(); ++i) {
    const AliveJob& a = st.alive[i];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soa.remaining[i]),
              std::bit_cast<std::uint64_t>(a.remaining))
        << "remaining mismatch at i=" << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soa.release[i]),
              std::bit_cast<std::uint64_t>(a.release))
        << "release mismatch at i=" << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soa.alpha[i]),
              std::bit_cast<std::uint64_t>(a.curve.alpha()))
        << "alpha mismatch at i=" << i;
    EXPECT_EQ(soa.kind[i], static_cast<std::uint8_t>(a.curve.kind()))
        << "kind mismatch at i=" << i;
  }
}

Job random_job(Rng& rng, JobId id, double release) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = rng.uniform(0.2, 3.0);
  switch (rng.uniform_int(0, 4)) {
    case 0:
      j.curve = SpeedupCurve::fully_parallel();
      break;
    case 1:
      j.curve = SpeedupCurve::sequential();
      break;
    case 2:
      j.curve = SpeedupCurve::power_law(rng.uniform(0.1, 0.9));
      break;
    case 3:
      j.curve = SpeedupCurve::piecewise_linear({{2.0, 1.5}, {4.0, 2.0}});
      break;
    default:
      // Multi-phase: the phase switch rewrites the live curve, which the
      // SoA mirror must track (Engine's soa_.set_curve sync site).
      return make_phased_job(
          id, release,
          {{rng.uniform(0.2, 1.0), SpeedupCurve::power_law(0.3)},
           {rng.uniform(0.2, 1.0), SpeedupCurve::sequential()},
           {rng.uniform(0.2, 1.0), SpeedupCurve::fully_parallel()}});
  }
  return j;
}

TEST(EngineSoA, MirrorTracksAliveSetUnderInterleaving) {
  for (const bool fast : {false, true}) {
    EngineConfig cfg;
    cfg.fast_rate_kernel = fast;
    auto eng = std::make_unique<Engine>(4, cfg);
    auto sched = make_scheduler("isrpt");
    eng->begin(*sched);

    Rng rng(fast ? 0x50A2 : 0x50A1);
    JobId next_id = 0;
    std::size_t admitted = 0;
    for (int step = 0; step < 160; ++step) {
      const double frontier = eng->frontier();
      const auto n_admit = rng.uniform_int(0, 2);
      for (int k = 0; k < n_admit; ++k) {
        eng->admit(random_job(rng, next_id++, frontier + rng.uniform(0.0, 1.0)));
        ++admitted;
      }
      eng->advance_to(frontier + rng.uniform(0.05, 0.9));
      expect_mirror_matches(*eng);

      if (step % 40 == 17) {
        // Snapshot round-trip into a fresh engine mid-run: import_state
        // must rebuild the mirror from the restored alive set.
        const EngineState st = eng->export_state();
        auto eng2 = std::make_unique<Engine>(4, cfg);
        auto sched2 = make_scheduler("isrpt");
        eng2->import_state(st, *sched2);
        expect_mirror_matches(*eng2);
        eng = std::move(eng2);
        sched = std::move(sched2);
      }
    }
    const SimResult r = eng->finish();
    EXPECT_EQ(r.jobs(), admitted);
  }
}

// ---------------------------------------------------------------------------
// Whole-simulation differential: the fast arm may move results by ULPs,
// never by structure.

Instance tie_free_instance(std::size_t n) {
  // Well-separated sizes and releases: no near-ties for the ULP-level
  // rate perturbation of the fast arm to flip, so both arms walk the
  // same decision sequence.
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = static_cast<double>(i) * 0.217;
    j.size = 1.0 + static_cast<double>((i * 37) % 101) * 0.103;
    j.curve = SpeedupCurve::power_law(0.2 + 0.6 * static_cast<double>(i % 7) / 7.0);
    jobs.push_back(j);
  }
  return Instance(8, jobs);
}

TEST(EngineSoA, FastArmMatchesDefaultArmToTolerance) {
  const Instance inst = tie_free_instance(300);
  SimResult res[2];
  for (const bool fast : {false, true}) {
    auto sched = make_scheduler("isrpt");
    EngineConfig cfg;
    cfg.fast_rate_kernel = fast;
    res[fast ? 1 : 0] = simulate(inst, *sched, cfg);
  }
  EXPECT_EQ(res[0].jobs(), 300u);
  EXPECT_EQ(res[1].jobs(), 300u);
  EXPECT_EQ(res[0].decisions, res[1].decisions);
  EXPECT_NEAR(res[1].total_flow, res[0].total_flow,
              1e-6 * std::max(1.0, res[0].total_flow));
  EXPECT_NEAR(res[1].fractional_flow, res[0].fractional_flow,
              1e-6 * std::max(1.0, res[0].fractional_flow));
  EXPECT_NEAR(res[1].makespan, res[0].makespan,
              1e-6 * std::max(1.0, res[0].makespan));
}

TEST(EngineSoA, ImportRejectsKernelArmMismatch) {
  EngineConfig slow_cfg;
  Engine donor(4, slow_cfg);
  auto sched = make_scheduler("isrpt");
  donor.begin(*sched);
  Job j;
  j.id = 1;
  j.size = 2.0;
  j.curve = SpeedupCurve::power_law(0.5);
  donor.admit(j);
  donor.advance_to(0.5);
  const EngineState st = donor.export_state();

  EngineConfig fast_cfg;
  fast_cfg.fast_rate_kernel = true;
  Engine receiver(4, fast_cfg);
  auto sched2 = make_scheduler("isrpt");
  EXPECT_THROW(receiver.import_state(st, *sched2), std::invalid_argument);
}

}  // namespace
}  // namespace parsched
