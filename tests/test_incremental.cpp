// Differential proof of the incremental engine arm (PR 8).
//
// The contract under test: EngineConfig::use_incremental_orders — the
// persistent IncrementalOrders heaps that replace the per-decision
// O(n log n) ordering rebuild with O(log n) event maintenance — is pure
// mechanism. Three arms must agree double for double on every decision:
//
//   incremental  (use_context_cache = true,  use_incremental_orders = true)
//   cache        (use_context_cache = true,  use_incremental_orders = false)
//   refimpl      (use_context_cache = false — the PR 5 reference arm)
//
// The spine is a property-based fuzzer: a seeded instance generator
// (mixed parallelizability, bursty arrivals, completion/time-tolerance
// edge sizes, zero-rate stretches) drives all registry policies through
// all three arms, comparing a per-decision FNV hash of (time, shares)
// plus every SimResult total and completion record. On a mismatch the
// harness shrinks to a minimal failing job-count prefix, names the first
// divergent decision, and (when PARSCHED_FUZZ_DUMP_DIR is set) dumps the
// incremental arm's flight record for the failing case. Depth scales
// with PARSCHED_FUZZ_ITERS (default 10 seeds ≈ 3×10⁵ driven events —
// the PR-gate setting; the nightly CI leg raises it).
//
// Alongside the fuzzer: ~12 pinned seed-corpus regression cases for the
// heap edge cases (duplicate keys, completion bursts emptying the heap,
// admit-during-deferral, decay epochs crossing the top-k boundary, ...)
// and tie-break pins proving the ContextCache bounded-heap and the
// incremental heaps realize the same total orders at k == n and k < n/8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/incremental.hpp"
#include "simcore/scheduler.hpp"
#include "util/env.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

// Every registry family (same list as test_context_cache.cpp), so each
// ordering helper's incremental path is exercised by a policy that
// actually calls it: smallest_remaining (SRPT family), min_remaining
// (par-srpt), latest_arrivals (LAPS / oldest-equi), by_latest_arrival
// (quantized-equi), by_remaining (mlf / wisrpt / setf), and the
// no-helper policies (equi, greedy) that still drive heap maintenance.
const char* const kAllPolicies[] = {
    "isrpt",         "seq-srpt",        "par-srpt",
    "greedy",        "equi",            "isrpt-boost",
    "mlf",           "wisrpt",          "laps:0.25",
    "laps:0.5",      "oldest-equi:0.5", "setf:0.2",
    "isrpt-thresh:2.0", "quantized-equi:0.5",
};

std::uint64_t bit_pattern(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Per-decision witness: an FNV-1a hash over the exact bit patterns of
/// the decision time and every share. Double-for-double equality of two
/// runs' decisions implies equal hash streams; a diverging decision is
/// caught at its index, not smeared into the final totals.
class DecisionHasher : public Observer {
 public:
  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(bit_pattern(t));
    mix(static_cast<std::uint64_t>(alive.size()));
    for (const double s : shares) mix(bit_pattern(s));
    hashes.push_back(h);
  }

  std::vector<std::uint64_t> hashes;
};

enum class Arm { kIncremental, kCache, kRefimpl };

EngineConfig arm_config(Arm arm) {
  EngineConfig cfg;
  cfg.use_context_cache = arm != Arm::kRefimpl;
  cfg.use_incremental_orders = arm == Arm::kIncremental;
  return cfg;
}

struct ArmRun {
  SimResult result;
  std::vector<std::uint64_t> hashes;
};

ArmRun run_arm(const Instance& inst, const std::string& policy, Arm arm,
               obs::FlightRecorder* recorder = nullptr) {
  auto sched = make_scheduler(policy);
  EngineConfig cfg = arm_config(arm);
  cfg.recorder = recorder;
  DecisionHasher hasher;
  ArmRun out;
  out.result = simulate(inst, *sched, cfg, {&hasher});
  out.hashes = std::move(hasher.hashes);
  return out;
}

struct Divergence {
  bool diverged = false;
  std::string detail;
};

Divergence compare_runs(const ArmRun& a, const ArmRun& b) {
  Divergence d;
  const auto fail = [&d](std::string detail) {
    d.diverged = true;
    d.detail = std::move(detail);
  };
  const std::size_t n = std::min(a.hashes.size(), b.hashes.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.hashes[i] != b.hashes[i]) {
      fail("first divergent decision at index " + std::to_string(i) + " of " +
           std::to_string(n));
      return d;
    }
  }
  if (a.hashes.size() != b.hashes.size()) {
    fail("decision counts differ: " + std::to_string(a.hashes.size()) +
         " vs " + std::to_string(b.hashes.size()));
    return d;
  }
  const SimResult& x = a.result;
  const SimResult& y = b.result;
  if (x.total_flow != y.total_flow) return fail("total_flow differs"), d;
  if (x.weighted_flow != y.weighted_flow) {
    return fail("weighted_flow differs"), d;
  }
  if (x.fractional_flow != y.fractional_flow) {
    return fail("fractional_flow differs"), d;
  }
  if (x.makespan != y.makespan) return fail("makespan differs"), d;
  if (x.decisions != y.decisions) return fail("decision totals differ"), d;
  if (x.events != y.events) return fail("event totals differ"), d;
  if (x.records.size() != y.records.size()) {
    return fail("completion record counts differ"), d;
  }
  for (std::size_t i = 0; i < x.records.size(); ++i) {
    if (x.records[i].job.id != y.records[i].job.id ||
        x.records[i].completion != y.records[i].completion) {
      return fail("completion record " + std::to_string(i) + " differs"), d;
    }
  }
  return d;
}

/// One three-way comparison; empty detail when all arms agree.
Divergence three_way(const Instance& inst, const std::string& policy) {
  const ArmRun ref = run_arm(inst, policy, Arm::kRefimpl);
  const ArmRun cache = run_arm(inst, policy, Arm::kCache);
  const ArmRun inc = run_arm(inst, policy, Arm::kIncremental);
  Divergence d = compare_runs(inc, ref);
  if (d.diverged) {
    d.detail = "incremental vs refimpl: " + d.detail;
    return d;
  }
  d = compare_runs(cache, ref);
  if (d.diverged) d.detail = "cache vs refimpl: " + d.detail;
  return d;
}

// ---- Fuzz harness -------------------------------------------------------

/// Seeded random instance: bursty arrivals (clusters share one release),
/// mixed parallelizability (sequential / power-law alpha sweep / fully
/// parallel), completion-tolerance-edge sizes (jobs whose whole work is
/// within completion_tol, finishing with zero processing), time-tol-edge
/// near-ties, and far more jobs than machines so SRPT-style allocations
/// leave long zero-rate stretches.
Instance fuzz_instance(std::uint64_t seed, std::size_t jobs = 0) {
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const int machines = 2 + static_cast<int>(rng() % 29);
  if (jobs == 0) jobs = 360 + rng() % 121;
  std::vector<Job> out;
  out.reserve(jobs);
  double t = 0.0;
  std::exponential_distribution<double> gap(1.5);
  for (std::size_t i = 0; i < jobs; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    if (i == 0 || u(rng) >= 0.4) t += gap(rng);  // else: burst at the same t
    j.release = t;
    if (u(rng) < 0.05) {
      // Sub-nanosecond sneak: release a hair after the burst, within
      // the engine's time_tol, so "simultaneous" handling is exercised.
      j.release = t + 1e-12;
    }
    const double v = u(rng);
    if (v < 0.05) {
      // Whole job inside completion_tol * max(1, size): completes with
      // (nearly) zero processing, often in a dt = 0 step.
      j.size = 1e-10 + 8e-10 * u(rng);
    } else if (v < 0.12) {
      // Near-identical sizes: completions land within time_tol of each
      // other, driving simultaneous-completion bursts.
      j.size = 1.0 + 1e-10 * u(rng);
    } else {
      j.size = std::exp(u(rng) * std::log(64.0));  // log-uniform [1, 64]
    }
    const double c = u(rng);
    if (c < 0.25) {
      j.curve = SpeedupCurve::sequential();
    } else if (c < 0.45) {
      j.curve = SpeedupCurve::fully_parallel();
    } else {
      j.curve = SpeedupCurve::power_law(0.05 + 0.9 * u(rng));
    }
    if (u(rng) < 0.3) j.weight = 1.0 + 3.0 * u(rng);
    out.push_back(std::move(j));
  }
  return Instance(machines, std::move(out));
}

std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& ch : out) {
    if (ch == ':' || ch == '.' || ch == '/') ch = '_';
  }
  return out;
}

/// Artifact hook for CI: when PARSCHED_FUZZ_DUMP_DIR is set, replay the
/// incremental arm of a failing case with a flight recorder armed and
/// dump its ring for upload next to the failing seed.
void dump_failing_case(const Instance& inst, const std::string& policy,
                       const std::string& label) {
  const std::string dir = env::get_string("PARSCHED_FUZZ_DUMP_DIR");
  if (dir.empty()) return;
  obs::FlightRecorder recorder(8192);
  recorder.set_dump_path(dir + "/fuzz_" + sanitize(label) + "_" +
                         sanitize(policy) + ".jsonl");
  run_arm(inst, policy, Arm::kIncremental, &recorder);
  recorder.dump_to_file("fuzz_mismatch");
}

/// Shrinking-style minimizer: bisect the failing instance to the
/// smallest job-count prefix that still diverges (the classic QuickCheck
/// shrink heuristic — not guaranteed globally minimal, but it routinely
/// turns a 400-job counterexample into a handful of jobs).
std::size_t shrink_min_prefix(const Instance& inst, const std::string& policy) {
  const std::vector<Job>& jobs = inst.jobs();
  const auto fails = [&](std::size_t count) {
    const Instance sub(
        inst.machines(),
        std::vector<Job>(jobs.begin(),
                         jobs.begin() + static_cast<std::ptrdiff_t>(count)));
    return three_way(sub, policy).diverged;
  };
  std::size_t lo = 1;
  std::size_t hi = jobs.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Run the three-way comparison; on mismatch emit the minimal-seed
/// report (seed label, policy, shrunken prefix, first divergence) and a
/// flight-record artifact. Returns the number of driven events (summed
/// over the three arms) for the depth accounting.
std::uint64_t check_instance(const Instance& inst, const std::string& policy,
                             const std::string& label) {
  const Divergence d = three_way(inst, policy);
  if (d.diverged) {
    const std::size_t min_jobs = shrink_min_prefix(inst, policy);
    dump_failing_case(inst, policy, label);
    ADD_FAILURE() << "three-way mismatch [" << label << "] policy=" << policy
                  << ": " << d.detail << "\n  minimal failing prefix: first "
                  << min_jobs << " of " << inst.jobs().size()
                  << " jobs (machines=" << inst.machines() << ")"
                  << "\n  reproduce: fuzz label " << label
                  << ", shrink with the first " << min_jobs << " jobs";
    return 0;
  }
  // All arms agree; count the events each arm actually drove.
  const ArmRun probe = run_arm(inst, policy, Arm::kIncremental);
  return 3 * probe.result.events;
}

TEST(IncrementalFuzz, ThreeWayDifferentialOverRandomEventSchedules) {
  // Short default for the PR gate (~10⁵ driven events in seconds); the
  // nightly CI leg raises PARSCHED_FUZZ_ITERS for depth.
  const long iters = env::get_int("PARSCHED_FUZZ_ITERS", 10, 1, 1000000);
  std::uint64_t total_events = 0;
  for (long it = 0; it < iters; ++it) {
    const std::uint64_t seed = 0xC0FFEEull + static_cast<std::uint64_t>(it);
    const Instance inst = fuzz_instance(seed);
    const std::string label = "seed=" + std::to_string(seed);
    for (const char* policy : kAllPolicies) {
      total_events += check_instance(inst, policy, label);
      if (HasFailure()) return;  // the shrunken report is already emitted
    }
  }
  std::printf("incremental fuzz: %llu driven events across %ld seeds\n",
              static_cast<unsigned long long>(total_events), iters);
  // Depth floor: every seed must contribute >= 10^4 driven events
  // (14 policies x 3 arms x ~2 events/job); the default 10 seeds put the
  // PR gate itself past the 10^5-event acceptance bar.
  EXPECT_GE(total_events, static_cast<std::uint64_t>(iters) * 10000ull);
}

// ---- Seed corpus: pinned heap edge cases --------------------------------
//
// Reproducible without the fuzzer: each case pins a generator seed (or a
// hand-built shape the generator reaches only occasionally) that lands
// on a specific heap edge, and runs the full three-way comparison as its
// own ctest case.

/// PARSCHED_AUDIT scope: arms the engine-side heap-vs-alive audit (and
/// the AllocGuard fences) for every engine constructed inside it.
class AuditScope {
 public:
  AuditScope() { setenv("PARSCHED_AUDIT", "1", 1); }
  ~AuditScope() { unsetenv("PARSCHED_AUDIT"); }
};

TEST(IncrementalSeedCorpus, DuplicateRemainingKeysTieStorm) {
  // Every job identical in (size, release): both orders are decided
  // purely by id tie-breaks, and the SRPT heap is all-duplicate keys.
  std::vector<Job> jobs;
  for (int i = 0; i < 96; ++i) {
    Job j;
    j.id = static_cast<JobId>(200 - i);  // ids descending vs index
    j.release = static_cast<double>(i / 24);  // four equal-release bursts
    j.size = 2.0;
    j.curve = SpeedupCurve::power_law(0.5);
    jobs.push_back(j);
  }
  const Instance inst(8, jobs);
  for (const char* policy : {"isrpt", "seq-srpt", "mlf", "laps:0.5"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, CompletionBurstEmptiesHeap) {
  // Identical fully-parallel jobs under EQUI complete simultaneously:
  // one sweep removes every heap entry (the swap-remove mirror's
  // hardest case), then a second wave refills from empty.
  AuditScope audit;
  std::vector<Job> jobs;
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 40; ++i) {
      Job j;
      j.id = static_cast<JobId>(wave * 100 + i);
      j.release = wave * 50.0;
      j.size = 4.0;
      j.curve = SpeedupCurve::fully_parallel();
      jobs.push_back(j);
    }
  }
  const Instance inst(16, jobs);
  for (const char* policy : {"equi", "isrpt", "greedy"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, AdmitDuringDeferredDecision) {
  // Streaming: advances that stop short of the next event defer the
  // decision; admissions landing while deferred must enter the heaps
  // only when released. The streamed incremental run must match the
  // batch refimpl run double for double.
  const Instance inst = fuzz_instance(0xDEFE77ull, 160);
  for (const char* policy : {"isrpt", "laps:0.25", "quantized-equi:0.5"}) {
    auto ref_sched = make_scheduler(policy);
    EngineConfig ref_cfg = arm_config(Arm::kRefimpl);
    DecisionHasher ref_hash;
    ArmRun ref;
    ref.result = simulate(inst, *ref_sched, ref_cfg, {&ref_hash});
    ref.hashes = std::move(ref_hash.hashes);

    auto sched = make_scheduler(policy);
    Engine eng(inst.machines(), arm_config(Arm::kIncremental));
    DecisionHasher stream_hash;
    eng.add_observer(&stream_hash);
    eng.begin(*sched);
    double t = 0.0;
    for (const Job& j : inst.jobs()) {
      eng.admit(j);
      if ((j.id % 3) == 0) {
        t = std::max(t, j.release * 0.75);
        eng.advance_to(t);  // often parks a deferred decision mid-flight
      }
    }
    ArmRun streamed;
    streamed.result = eng.finish();
    streamed.hashes = std::move(stream_hash.hashes);
    const Divergence d = compare_runs(streamed, ref);
    EXPECT_FALSE(d.diverged) << policy << " streamed vs batch: " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, DecayCrossingTopKBoundary) {
  // m = 16 machines, 220 equal-release jobs: ISRPT's m nonzero rates sit
  // under the n/8 mass-update threshold while n > 128 (eager per-key
  // sifts) and above it once completions shrink n below 128 (lazy decay
  // epochs + stale rebuilds). The run crosses the boundary, and the
  // policy's smallest_remaining(m) top-k straddles it.
  AuditScope audit;
  std::vector<Job> jobs;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(1.0, 9.0);
  for (int i = 0; i < 220; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.0;
    j.size = u(rng);
    j.curve = SpeedupCurve::power_law(0.6);
    jobs.push_back(j);
  }
  const Instance inst(16, jobs);
  for (const char* policy : {"isrpt", "isrpt-boost", "par-srpt"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, CompletionToleranceEdgeSizes) {
  // Jobs whose entire work sits inside completion_tol complete with zero
  // processing — heap entries that die in dt = 0 steps, interleaved with
  // normal-sized work.
  std::vector<Job> jobs;
  for (int i = 0; i < 60; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.25 * (i / 4);
    j.size = (i % 4 == 0) ? 5e-10 : 1.0 + 0.125 * i;
    j.curve = (i % 2) != 0 ? SpeedupCurve::sequential()
                           : SpeedupCurve::power_law(0.4);
    jobs.push_back(j);
  }
  const Instance inst(4, jobs);
  for (const char* policy : {"isrpt", "seq-srpt", "setf:0.2"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, TimeToleranceEdgeArrivals) {
  // Releases separated by less than time_tol are handled as simultaneous
  // — the latest-arrival heap must break those "ties" by id exactly as
  // the flat sort does.
  std::vector<Job> jobs;
  for (int i = 0; i < 48; ++i) {
    Job j;
    j.id = static_cast<JobId>(97 - 2 * i);
    j.release = 1.0 + 1e-12 * (i % 5);
    j.size = 1.0 + 0.5 * (i % 7);
    j.curve = SpeedupCurve::power_law(0.7);
    jobs.push_back(j);
  }
  const Instance inst(6, jobs);
  for (const char* policy : {"laps:0.25", "oldest-equi:0.5",
                             "quantized-equi:0.5"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, ZeroRateStretchesSequentialGlut) {
  // 240 sequential jobs on 4 machines: under SRPT-style policies all but
  // four jobs idle at rate 0 for long stretches — remaining-work keys
  // must stay bit-stable across hundreds of decisions without updates.
  std::vector<Job> jobs;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.5, 4.0);
  for (int i = 0; i < 240; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.01 * i;
    j.size = u(rng);
    j.curve = SpeedupCurve::sequential();
    jobs.push_back(j);
  }
  const Instance inst(4, jobs);
  for (const char* policy : {"seq-srpt", "isrpt"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, HeapEmptiesBetweenWaves) {
  // Two widely separated waves: the alive set (and both heaps) drain to
  // empty mid-run, then rebuild through admissions alone.
  std::vector<Job> jobs;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 20; ++i) {
      Job j;
      j.id = static_cast<JobId>(wave * 1000 + i);
      j.release = wave * 500.0;
      j.size = 1.0 + 0.1 * i;
      j.curve = SpeedupCurve::power_law(0.5);
      jobs.push_back(j);
    }
  }
  const Instance inst(8, jobs);
  for (const char* policy : {"isrpt", "equi", "wisrpt"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, SnapshotRestoreRebuildsHeaps) {
  // Export mid-run, import into a fresh engine, and the continuation
  // must equal the donor's — proving the lazily-rebuilt heaps reproduce
  // the donor's orderings bit for bit.
  const Instance inst = fuzz_instance(0x5EED5ull, 140);
  for (const char* policy : {"isrpt", "laps:0.5", "quantized-equi:0.5"}) {
    // Donor: run straight through.
    auto donor_sched = make_scheduler(policy);
    Engine donor(inst.machines(), arm_config(Arm::kIncremental));
    donor.begin(*donor_sched);
    for (const Job& j : inst.jobs()) donor.admit(j);
    const double t_cut = inst.jobs()[inst.jobs().size() / 2].release;
    donor.advance_to(t_cut);
    const EngineState snap = donor.export_state();
    const std::string sched_state = donor_sched->save_state();
    const SimResult donor_result = donor.finish();

    // Continuation: restore and finish.
    auto cont_sched = make_scheduler(policy);
    cont_sched->load_state(sched_state);
    Engine cont(inst.machines(), arm_config(Arm::kIncremental));
    cont.import_state(snap, *cont_sched);
    const SimResult cont_result = cont.finish();

    EXPECT_EQ(donor_result.total_flow, cont_result.total_flow) << policy;
    EXPECT_EQ(donor_result.fractional_flow, cont_result.fractional_flow)
        << policy;
    EXPECT_EQ(donor_result.decisions, cont_result.decisions) << policy;
    ASSERT_EQ(donor_result.records.size(), cont_result.records.size())
        << policy;
    for (std::size_t i = 0; i < donor_result.records.size(); ++i) {
      EXPECT_EQ(donor_result.records[i].completion,
                cont_result.records[i].completion)
          << policy << " record " << i;
    }
  }
}

TEST(IncrementalSeedCorpus, MassDecayUnderDenseAllocations) {
  // EQUI-family allocations run every alive job: every sweep crosses the
  // n/8 threshold and declares a decay epoch. oldest-equi also queries
  // latest_arrivals(n) (never stale); equi queries nothing, so its SRPT
  // heap stays stale forever — both must still agree with refimpl, under
  // the full engine-side heap audit.
  AuditScope audit;
  const Instance inst = fuzz_instance(0xDECA1ull, 150);
  for (const char* policy : {"equi", "oldest-equi:0.5", "greedy"}) {
    const Divergence d = three_way(inst, policy);
    EXPECT_FALSE(d.diverged) << policy << ": " << d.detail;
  }
}

TEST(IncrementalSeedCorpus, PinnedGeneratorSeedsFastPolicies) {
  // A dozen pinned generator seeds through the SRPT-family policies —
  // the cases most sensitive to remaining-work key maintenance.
  for (const std::uint64_t seed :
       {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
        31ull, 37ull}) {
    const Instance inst = fuzz_instance(seed, 120);
    for (const char* policy : {"isrpt", "seq-srpt", "par-srpt"}) {
      const Divergence d = three_way(inst, policy);
      EXPECT_FALSE(d.diverged)
          << "pinned seed " << seed << " " << policy << ": " << d.detail;
    }
  }
}

TEST(IncrementalSeedCorpus, PinnedGeneratorSeedsOrderingConsumers) {
  // Same pinned seeds through the latest-arrival / full-order consumers.
  for (const std::uint64_t seed :
       {2ull, 7ull, 13ull, 19ull, 29ull, 37ull}) {
    const Instance inst = fuzz_instance(seed, 120);
    for (const char* policy :
         {"laps:0.25", "oldest-equi:0.5", "quantized-equi:0.5", "mlf"}) {
      const Divergence d = three_way(inst, policy);
      EXPECT_FALSE(d.diverged)
          << "pinned seed " << seed << " " << policy << ": " << d.detail;
    }
  }
}

// ---- Direct IncrementalOrders unit churn --------------------------------

std::vector<AliveJob> make_alive(std::mt19937_64& rng, std::size_t n) {
  std::uniform_int_distribution<int> rem(1, 6);
  std::uniform_int_distribution<int> rel(0, 3);
  std::vector<AliveJob> alive(n);
  std::vector<JobId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<JobId>(i);
  std::shuffle(ids.begin(), ids.end(), rng);
  for (std::size_t i = 0; i < n; ++i) {
    alive[i].id = ids[i];
    alive[i].remaining = static_cast<double>(rem(rng));
    alive[i].release = static_cast<double>(rel(rng));
    alive[i].size = alive[i].remaining + 1.0;
  }
  return alive;
}

void expect_orders_match(IncrementalOrders& inc,
                         const std::vector<AliveJob>& alive,
                         const std::string& what) {
  std::vector<std::size_t> got(alive.size());
  const std::vector<std::size_t> srpt_ref = refimpl::by_remaining(alive);
  const std::vector<std::size_t> latest_ref = refimpl::by_latest_arrival(alive);
  for (const std::size_t k :
       {std::size_t{1}, alive.size() / 8, alive.size() / 2, alive.size()}) {
    if (k == 0) continue;
    inc.fill_srpt(alive, k, got.data());
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(got[i], srpt_ref[i]) << what << " srpt k=" << k << " @" << i;
    }
    inc.fill_latest(k, got.data());
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(got[i], latest_ref[i])
          << what << " latest k=" << k << " @" << i;
    }
  }
  if (!alive.empty()) {
    EXPECT_EQ(inc.min_srpt(alive), refimpl::min_remaining(alive)) << what;
  }
  inc.audit(alive);
}

TEST(IncrementalOrdersUnit, RandomChurnMatchesRefimpl) {
  std::mt19937_64 rng(20260808);
  std::vector<AliveJob> alive = make_alive(rng, 80);
  IncrementalOrders inc;
  inc.reserve(alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) inc.insert(alive[i], i);
  expect_orders_match(inc, alive, "initial");

  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int round = 0; round < 400; ++round) {
    const double op = u(rng);
    if (op < 0.35 && !alive.empty()) {
      // Advance: shrink a few remaining-work keys.
      for (int k = 0; k < 3 && !alive.empty(); ++k) {
        const std::size_t i = rng() % alive.size();
        alive[i].remaining = std::max(0.125, alive[i].remaining * 0.75);
        inc.update_remaining(i, alive[i].remaining);
      }
    } else if (op < 0.6 && alive.size() > 2) {
      // Complete: swap-remove, mirrored.
      const std::size_t i = rng() % alive.size();
      const std::size_t last = alive.size() - 1;
      inc.remove_swap(i, last);
      alive[i] = alive[last];
      alive.pop_back();
    } else if (op < 0.85) {
      // Admit.
      AliveJob j;
      j.id = static_cast<JobId>(1000 + round);
      j.remaining = 0.5 + 5.0 * u(rng);
      j.release = 4.0 + 0.01 * round;
      j.size = j.remaining;
      inc.reserve(alive.size() + 1);
      alive.push_back(j);
      inc.insert(alive.back(), alive.size() - 1);
    } else {
      // Mass update + decay epoch (the lazy-rebuild path).
      for (std::size_t i = 0; i < alive.size(); ++i) {
        alive[i].remaining = std::max(0.125, alive[i].remaining * 0.9);
      }
      inc.decay_epoch();
    }
    if (round % 25 == 0) {
      expect_orders_match(inc, alive,
                          "round " + std::to_string(round));
      if (HasFatalFailure()) return;
    }
  }
  expect_orders_match(inc, alive, "final");
  EXPECT_GT(inc.decay_epochs(), 0u);
}

// ---- Tie-break pinning: both engines of both total orders ---------------
//
// The satellite fix under proof: the ContextCache bounded-heap top-k and
// the IncrementalOrders heaps must realize the *same* strict total
// orders for equal keys, at k == n (full sort vs. heap-copy sort) and at
// k < n/8 (bounded-heap selection vs. heap traversal).

std::vector<AliveJob> tie_heavy_alive() {
  // 24 jobs; indices 17, 9, 5 share the smallest remaining. 17 and 9
  // also share the release, so the id decides; 5 releases later and
  // loses to both despite the smallest id.
  std::vector<AliveJob> alive(24);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i].id = static_cast<JobId>(100 + i);
    alive[i].remaining = 10.0 + static_cast<double>(i);
    alive[i].release = 0.0;
    alive[i].size = alive[i].remaining;
  }
  alive[17].remaining = 1.0;
  alive[17].release = 1.0;
  alive[17].id = 117;
  alive[9].remaining = 1.0;
  alive[9].release = 1.0;
  alive[9].id = 190;
  alive[5].remaining = 1.0;
  alive[5].release = 2.0;
  alive[5].id = 105;
  return alive;
}

IncrementalOrders build_inc(const std::vector<AliveJob>& alive) {
  IncrementalOrders inc;
  inc.reserve(alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) inc.insert(alive[i], i);
  return inc;
}

TEST(IncrementalTieBreaks, SrptOrderPinnedAtFullAndSmallK) {
  const std::vector<AliveJob> alive = tie_heavy_alive();
  const std::vector<std::size_t> want_prefix = {17, 9, 5};
  const std::vector<std::size_t> full_ref = refimpl::by_remaining(alive);
  IncrementalOrders inc = build_inc(alive);
  std::vector<std::size_t> got(alive.size());
  // k = 3 <= 24/8 (heap traversal) and k = n (heap-copy full sort).
  for (const std::size_t k : {std::size_t{3}, alive.size()}) {
    inc.fill_srpt(alive, k, got.data());
    for (std::size_t i = 0; i < want_prefix.size(); ++i) {
      EXPECT_EQ(got[i], want_prefix[i]) << "k=" << k << " position " << i;
    }
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i], full_ref[i]) << "refimpl k=" << k << " @" << i;
    }
    // The ContextCache bounded-heap / sort paths must agree entry for
    // entry with the incremental heap at the same k.
    ContextCache cache;
    cache.invalidate();
    SchedulerContext cached(0.0, 4, alive, &cache);
    const auto cache_span = cached.smallest_remaining(k);
    ASSERT_EQ(cache_span.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(cache_span[i], got[i]) << "cache vs inc k=" << k << " @" << i;
    }
  }
}

TEST(IncrementalTieBreaks, LatestOrderPinnedAtFullAndSmallK) {
  // Indices 11, 3, 4 share the latest release 9.0; ids 131 > 130 > 104
  // decide the order (descending).
  std::vector<AliveJob> alive(24);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i].id = static_cast<JobId>(100 + i);
    alive[i].release = static_cast<double>(i % 7);
    alive[i].remaining = 1.0 + static_cast<double>(i);
    alive[i].size = alive[i].remaining;
  }
  alive[3].release = 9.0;
  alive[3].id = 130;
  alive[11].release = 9.0;
  alive[11].id = 131;
  alive[4].release = 9.0;
  alive[4].id = 104;
  const std::vector<std::size_t> want_prefix = {11, 3, 4};
  const std::vector<std::size_t> full_ref = refimpl::by_latest_arrival(alive);
  IncrementalOrders inc = build_inc(alive);
  std::vector<std::size_t> got(alive.size());
  for (const std::size_t k : {std::size_t{3}, alive.size()}) {
    inc.fill_latest(k, got.data());
    for (std::size_t i = 0; i < want_prefix.size(); ++i) {
      EXPECT_EQ(got[i], want_prefix[i]) << "k=" << k << " position " << i;
    }
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i], full_ref[i]) << "refimpl k=" << k << " @" << i;
    }
    ContextCache cache;
    cache.invalidate();
    SchedulerContext cached(0.0, 4, alive, &cache);
    const auto cache_span = cached.latest_arrivals(k);
    ASSERT_EQ(cache_span.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(cache_span[i], got[i]) << "cache vs inc k=" << k << " @" << i;
    }
  }
}

TEST(IncrementalTieBreaks, TieOrderSurvivesChurn) {
  // After updates drive fresh ties into existence and removals shuffle
  // slots, the heap must still break ties exactly like refimpl.
  std::vector<AliveJob> alive = tie_heavy_alive();
  IncrementalOrders inc = build_inc(alive);
  // Tie three more jobs at remaining = 1.0 (equal release, id decides).
  for (const std::size_t i : {std::size_t{0}, std::size_t{12},
                              std::size_t{20}}) {
    alive[i].remaining = 1.0;
    inc.update_remaining(i, 1.0);
  }
  // Remove one of the original tied jobs via the swap-remove mirror.
  const std::size_t last = alive.size() - 1;
  inc.remove_swap(9, last);
  alive[9] = alive[last];
  alive.pop_back();
  const std::vector<std::size_t> ref = refimpl::by_remaining(alive);
  std::vector<std::size_t> got(alive.size());
  inc.fill_srpt(alive, alive.size(), got.data());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "position " << i;
  }
  inc.audit(alive);
}

}  // namespace
}  // namespace parsched
