// Differential tests for the memoized SchedulerContext ordering cache
// (PR 5's engine hot-path overhaul).
//
// The contract under test: EngineConfig::use_context_cache — and every
// optimization stacked behind it (flat-key sorts, bounded-heap top-k
// selection, prefix upgrades, the engine's reusable scratch buffers,
// the FlowQ fast advance arm, and the sparse completion sweep) — is
// pure mechanism. Every simulation a policy can observe must be
// double-for-double identical to the reference path, which routes all
// ordering helpers through refimpl:: (the original per-call iota +
// sort / nth_element code, kept verbatim for exactly this purpose).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/scheduler.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

// Every registry family, parameterized variants included, so each
// helper's cached path is exercised by a policy that actually calls it
// (smallest_remaining: the SRPT family; latest_arrivals: LAPS;
// by_latest_arrival: quantized-equi; min_remaining: par-srpt;
// by_remaining: mlf / wisrpt / setf / the opt searchers).
const char* const kAllPolicies[] = {
    "isrpt",         "seq-srpt",        "par-srpt",
    "greedy",        "equi",            "isrpt-boost",
    "mlf",           "wisrpt",          "laps:0.25",
    "laps:0.5",      "oldest-equi:0.5", "setf:0.2",
    "isrpt-thresh:2.0", "quantized-equi:0.5",
};

void expect_bit_identical(const SimResult& a, const SimResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.total_flow, b.total_flow) << what;
  EXPECT_EQ(a.weighted_flow, b.weighted_flow) << what;
  EXPECT_EQ(a.fractional_flow, b.fractional_flow) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.decisions, b.decisions) << what;
  EXPECT_EQ(a.events, b.events) << what;
  ASSERT_EQ(a.records.size(), b.records.size()) << what;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id) << what << " #" << i;
    EXPECT_EQ(a.records[i].completion, b.records[i].completion)
        << what << " #" << i;
  }
}

SimResult run_with_cache(const Instance& inst, const std::string& policy,
                         bool use_cache) {
  auto sched = make_scheduler(policy);
  EngineConfig cfg;
  cfg.use_context_cache = use_cache;
  return simulate(inst, *sched, cfg);
}

// PR 8 added a third arm: the persistent IncrementalOrders heaps behind
// use_incremental_orders (default on — the cached runs above already
// exercise them). This helper names all three arms explicitly.
SimResult run_engine_arm(const Instance& inst, const std::string& policy,
                         bool use_cache, bool use_incremental) {
  auto sched = make_scheduler(policy);
  EngineConfig cfg;
  cfg.use_context_cache = use_cache;
  cfg.use_incremental_orders = use_incremental;
  return simulate(inst, *sched, cfg);
}

// E1-style grid: fixed alpha = 0.5, critically loaded.
RandomWorkloadConfig e1_config(std::uint64_t seed) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 120;
  cfg.P = 64.0;
  cfg.load = 1.0;
  cfg.alpha_lo = cfg.alpha_hi = 0.5;
  cfg.seed = seed;
  return cfg;
}

// E5-style grid: heterogeneous parallelizability (sequential, power-law
// across the alpha range, and fully parallel jobs mixed together).
RandomWorkloadConfig e5_config(std::uint64_t seed) {
  RandomWorkloadConfig cfg;
  cfg.machines = 8;
  cfg.jobs = 100;
  cfg.P = 32.0;
  cfg.load = 0.9;
  cfg.alpha_law = AlphaLaw::kMixed;
  cfg.alpha_lo = 0.1;
  cfg.alpha_hi = 0.95;
  cfg.seed = seed;
  return cfg;
}

TEST(ContextCacheDifferential, AllPoliciesBitIdenticalOnE1Grid) {
  for (const std::uint64_t seed : {1u, 7u}) {
    const Instance inst = make_random_instance(e1_config(seed));
    for (const char* policy : kAllPolicies) {
      expect_bit_identical(
          run_with_cache(inst, policy, true),
          run_with_cache(inst, policy, false),
          std::string(policy) + " seed=" + std::to_string(seed));
    }
  }
}

TEST(ContextCacheDifferential, AllPoliciesBitIdenticalOnE5Grid) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const Instance inst = make_random_instance(e5_config(seed));
    for (const char* policy : kAllPolicies) {
      expect_bit_identical(
          run_with_cache(inst, policy, true),
          run_with_cache(inst, policy, false),
          std::string(policy) + " seed=" + std::to_string(seed));
    }
  }
}

// Explicit three-arm sweep on both experiment grids: the incremental
// heaps and the cache-only sort paths must each match the refimpl arm
// for every policy family. (The E1/E5 tests above pin incremental-on vs
// refimpl via the defaults; this one also pins incremental-off, so a
// regression in either non-reference arm is named directly.)
TEST(ContextCacheDifferential, IncrementalSweepAllArmsAgreeOnBothGrids) {
  for (const bool on_e1 : {true, false}) {
    const Instance inst = on_e1 ? make_random_instance(e1_config(21))
                                : make_random_instance(e5_config(22));
    for (const char* policy : kAllPolicies) {
      const std::string what = std::string(on_e1 ? "E1 " : "E5 ") + policy;
      const SimResult ref = run_engine_arm(inst, policy, false, false);
      expect_bit_identical(run_engine_arm(inst, policy, true, true), ref,
                           what + " incremental arm");
      expect_bit_identical(run_engine_arm(inst, policy, true, false), ref,
                           what + " cache-only arm");
    }
  }
}

// The serve/-facing streaming path runs the same decision_step; drive it
// with incremental admission + advances and compare against the batch
// reference arm. Covers the deferred-allocation resume path (advances
// that split between events) on both sides of the cache switch, with the
// incremental heaps on and off (deferral parks a decision mid-step, so
// heap maintenance must straddle the park/resume boundary correctly).
TEST(ContextCacheDifferential, StreamingMatchesUncachedBatch) {
  const Instance inst = make_random_instance(e1_config(5));
  for (const char* policy : {"isrpt", "laps:0.5", "quantized-equi:0.5"}) {
    const SimResult ref = run_with_cache(inst, policy, false);

    for (const bool use_incremental : {true, false}) {
      auto sched = make_scheduler(policy);
      EngineConfig cfg;  // cache on by default
      cfg.use_incremental_orders = use_incremental;
      Engine eng(inst.machines(), cfg);
      eng.begin(*sched);
      double t = 0.0;
      for (const Job& j : inst.jobs()) {
        eng.admit(j);
        // Ragged advances: some land between arrivals, some batch up.
        if ((j.id % 3) == 0) {
          t = std::max(t, j.release * 0.75);
          eng.advance_to(t);
        }
      }
      const SimResult streamed = eng.finish();
      expect_bit_identical(streamed, ref,
                           std::string("streaming ") + policy +
                               (use_incremental ? " inc-on" : " inc-off"));
    }
  }
}

// Multi-phase jobs change curves mid-run (and exercise the phase-advance
// path next to the completion detection); the cache must not disturb it.
TEST(ContextCacheDifferential, PhasedJobsBitIdentical) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(make_phased_job(
        i, 0.25 * i,
        {{1.0 + 0.1 * i, SpeedupCurve::power_law(0.3)},
         {0.5, SpeedupCurve::power_law(0.9)},
         {0.25, SpeedupCurve::sequential()}}));
  }
  const Instance inst(4, jobs);
  for (const char* policy : {"isrpt", "equi", "greedy"}) {
    expect_bit_identical(run_with_cache(inst, policy, true),
                         run_with_cache(inst, policy, false),
                         std::string("phased ") + policy);
  }
}

// ---- Direct helper-vs-refimpl comparisons ------------------------------

std::vector<AliveJob> random_alive(std::mt19937_64& rng, std::size_t n) {
  // Deliberately collision-heavy: remaining and release each drawn from a
  // handful of values so ties are common and id tie-breaks decide.
  std::uniform_int_distribution<int> rem(1, 5);
  std::uniform_int_distribution<int> rel(0, 3);
  std::vector<AliveJob> alive(n);
  std::vector<JobId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<JobId>(i);
  std::shuffle(ids.begin(), ids.end(), rng);
  for (std::size_t i = 0; i < n; ++i) {
    alive[i].id = ids[i];
    alive[i].remaining = static_cast<double>(rem(rng));
    alive[i].release = static_cast<double>(rel(rng));
    alive[i].size = alive[i].remaining + 1.0;
  }
  return alive;
}

void expect_span_eq(std::span<const std::size_t> got,
                    const std::vector<std::size_t>& want,
                    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " position " << i;
  }
}

TEST(ContextCacheHelpers, AllHelpersMatchRefimplAcrossKs) {
  std::mt19937_64 rng(1234);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{40},
                              std::size_t{200}}) {
    const std::vector<AliveJob> alive = random_alive(rng, n);
    const std::vector<std::size_t> ks = {0,     1,     2,         3,
                                         n / 8, n / 2, n ? n - 1 : 0, n,
                                         n + 10};
    for (const std::size_t k : ks) {
      // Fresh cache per query so each k takes its cold path (heap top-k
      // for small k, gather + nth_element for large, full sort at k >= n).
      ContextCache cache;
      cache.invalidate();
      SchedulerContext cached(0.0, 4, alive, &cache);
      SchedulerContext plain(0.0, 4, alive, nullptr);
      const std::string what =
          "n=" + std::to_string(n) + " k=" + std::to_string(k);
      expect_span_eq(cached.smallest_remaining(k),
                     refimpl::smallest_remaining(alive, k),
                     "smallest_remaining " + what);
      expect_span_eq(plain.smallest_remaining(k),
                     refimpl::smallest_remaining(alive, k),
                     "uncached smallest_remaining " + what);
      expect_span_eq(cached.latest_arrivals(k),
                     refimpl::latest_arrivals(alive, k),
                     "latest_arrivals " + what);
    }
    ContextCache cache;
    cache.invalidate();
    SchedulerContext cached(0.0, 4, alive, &cache);
    expect_span_eq(cached.by_remaining(), refimpl::by_remaining(alive),
                   "by_remaining n=" + std::to_string(n));
    expect_span_eq(cached.by_latest_arrival(),
                   refimpl::by_latest_arrival(alive),
                   "by_latest_arrival n=" + std::to_string(n));
    EXPECT_EQ(cached.min_remaining(), refimpl::min_remaining(alive));
  }
}

// Widening queries on one cache must upgrade the memo in place without
// changing previously returned prefixes (kPrefix -> wider prefix ->
// kFull), whatever mix of heap and nth_element paths served them.
TEST(ContextCacheHelpers, PrefixUpgradesPreserveEarlierAnswers) {
  std::mt19937_64 rng(99);
  const std::size_t n = 160;
  const std::vector<AliveJob> alive = random_alive(rng, n);
  const std::vector<std::size_t> ref = refimpl::by_remaining(alive);

  ContextCache cache;
  cache.invalidate();
  SchedulerContext ctx(0.0, 4, alive, &cache);
  // min first (scan path), then heap top-k, then nth_element, then full.
  EXPECT_EQ(ctx.min_remaining(), ref[0]);
  for (const std::size_t k : {std::size_t{2}, std::size_t{10},
                              std::size_t{n / 2}, n}) {
    const auto span = ctx.smallest_remaining(k);
    ASSERT_EQ(span.size(), std::min(k, n));
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], ref[i]) << "k=" << k << " position " << i;
    }
  }
  EXPECT_EQ(ctx.min_remaining(), ref[0]);  // memoized answer survives

  // Same for the latest-arrival family.
  const std::vector<std::size_t> lref = refimpl::by_latest_arrival(alive);
  for (const std::size_t k : {std::size_t{3}, std::size_t{40}, n}) {
    const auto span = ctx.latest_arrivals(k);
    ASSERT_EQ(span.size(), std::min(k, n));
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], lref[i]) << "latest k=" << k << " position " << i;
    }
  }
}

// ---- Tie-break pinning --------------------------------------------------
//
// The k-bounded selections are only interchangeable with the full sorts
// because the comparators are strict *total* orders: remaining ties break
// by release, then by id (SRPT), and release ties break by id descending
// (latest-arrival). Pin those orders on hand-built sets where every
// tie-break level is exercised, at a k small enough for the bounded-heap
// path (k <= n/8) and at larger k for the nth_element path.

std::vector<AliveJob> tie_heavy_alive() {
  // 24 jobs. Indices 17, 9, 5 share the smallest remaining; 17 and 9 also
  // share the release, so id decides between them.
  std::vector<AliveJob> alive(24);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i].id = static_cast<JobId>(100 + i);
    alive[i].remaining = 10.0 + static_cast<double>(i);
    alive[i].release = 0.0;
    alive[i].size = alive[i].remaining;
  }
  alive[17].remaining = 1.0;
  alive[17].release = 1.0;
  alive[17].id = 117;
  alive[9].remaining = 1.0;
  alive[9].release = 1.0;
  alive[9].id = 190;  // same (remaining, release) as 17: larger id loses
  alive[5].remaining = 1.0;
  alive[5].release = 2.0;  // later release: loses to both despite id 105
  alive[5].id = 105;
  return alive;
}

TEST(ContextCacheTieBreaks, SmallestRemainingPinsSrptOrder) {
  const std::vector<AliveJob> alive = tie_heavy_alive();
  const std::vector<std::size_t> want = {17, 9, 5};  // (rem, release, id) asc
  // k = 3 <= 24/8: bounded-heap path. k = 5: nth_element path. Both must
  // agree with refimpl and start with the pinned tie-broken prefix.
  for (const std::size_t k : {std::size_t{3}, std::size_t{5}}) {
    ContextCache cache;
    cache.invalidate();
    SchedulerContext ctx(0.0, 4, alive, &cache);
    const auto got = ctx.smallest_remaining(k);
    ASSERT_EQ(got.size(), k);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "k=" << k << " position " << i;
    }
    expect_span_eq(got, refimpl::smallest_remaining(alive, k),
                   "refimpl agreement k=" + std::to_string(k));
  }
}

TEST(ContextCacheTieBreaks, LatestArrivalsPinsReleaseIdDescOrder) {
  // Indices 11, 3, 4 share the latest release 9; ids 131 > 130 > 104
  // decide the order among them (descending).
  std::vector<AliveJob> alive(24);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i].id = static_cast<JobId>(100 + i);
    alive[i].release = static_cast<double>(i % 7);
    alive[i].remaining = 1.0 + static_cast<double>(i);
    alive[i].size = alive[i].remaining;
  }
  alive[3].release = 9.0;
  alive[3].id = 130;
  alive[11].release = 9.0;
  alive[11].id = 131;
  alive[4].release = 9.0;
  alive[4].id = 104;
  const std::vector<std::size_t> want = {11, 3, 4};
  for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                              std::size_t{6}}) {
    ContextCache cache;
    cache.invalidate();
    SchedulerContext ctx(0.0, 4, alive, &cache);
    const auto got = ctx.latest_arrivals(k);
    ASSERT_EQ(got.size(), k);
    for (std::size_t i = 0; i < std::min(k, want.size()); ++i) {
      EXPECT_EQ(got[i], want[i]) << "k=" << k << " position " << i;
    }
    expect_span_eq(got, refimpl::latest_arrivals(alive, k),
                   "refimpl agreement k=" + std::to_string(k));
  }
}

}  // namespace
}  // namespace parsched
