// exec/ — the work-stealing ThreadPool and the SweepRunner determinism
// contract.
//
// The differential harness is the heart of this file: the same sweep is
// run serially (jobs=1, the exact legacy path) and sharded (jobs=8),
// and every artifact — the raw results, the CSV bytes, the BENCH json,
// the merged metrics — must be bit-for-bit identical. The seed
// derivation is pinned to hardcoded splitmix64 values so a silent
// reseeding change fails loudly rather than shifting every published
// number.
//
// The ThreadPool stress suite runs under the `thread` (TSan) CI leg:
// multiple producer threads, nested submission, randomized stealing,
// exception propagation, and both draining and non-draining shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>  // lint: thread-ok
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sched/intermediate_srpt.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------- seed derivation

// Pinned splitmix64 values. task_seed(0, 0) is the canonical first
// output of splitmix64 from state 0 (0xe220a8397b1dcdaf), so the
// derivation is cross-checkable against the reference implementation.
TEST(TaskSeed, PinnedSplitmixValues) {
  EXPECT_EQ(exec::task_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(exec::task_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(exec::task_seed(0, 2), 0x06c45d188009454fULL);
  EXPECT_EQ(exec::task_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(exec::task_seed(42, 7), 0xccf635ee9e9e2fa4ULL);
  EXPECT_EQ(exec::task_seed(0xdeadbeefULL, 100), 0x15cfac28b186dda7ULL);
}

TEST(TaskSeed, FirstThousandIndicesDistinct) {
  std::vector<std::uint64_t> seen;
  seen.reserve(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.push_back(exec::task_seed(7, i));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "derived seeds collide within one sweep";
}

TEST(TaskSeed, BaseSeedChangesEveryTask) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(exec::task_seed(1, i), exec::task_seed(2, i));
  }
}

// ------------------------------------------------------- jobs resolution

struct JobsEnvGuard {
  JobsEnvGuard() { unsetenv("PARSCHED_JOBS"); }
  ~JobsEnvGuard() { unsetenv("PARSCHED_JOBS"); }
};

TEST(ResolveJobs, ExplicitBeatsEnvBeatsHardware) {
  JobsEnvGuard guard;
  EXPECT_EQ(exec::env_jobs(), 0);
  EXPECT_EQ(exec::resolve_jobs(0), exec::ThreadPool::hardware_threads());

  setenv("PARSCHED_JOBS", "3", 1);
  EXPECT_EQ(exec::env_jobs(), 3);
  EXPECT_EQ(exec::resolve_jobs(0), 3);
  EXPECT_EQ(exec::resolve_jobs(5), 5) << "--jobs must beat PARSCHED_JOBS";
}

TEST(ResolveJobs, GarbageEnvFallsBack) {
  JobsEnvGuard guard;
  for (const char* bad : {"", "abc", "0", "-4", "3x", "99999"}) {
    setenv("PARSCHED_JOBS", bad, 1);
    EXPECT_EQ(exec::env_jobs(), 0) << "PARSCHED_JOBS=" << bad;
  }
}

// ------------------------------------------------- differential harness

struct SweepArtifacts {
  std::vector<double> flows;
  std::string csv;
  std::string json;
  double decisions = 0.0;
  double runs = 0.0;
};

// One fixed 16-task sweep: every task simulates Intermediate-SRPT on a
// random instance drawn from its derived seed, with a task-private
// metrics registry. Returns every artifact a bench would emit.
SweepArtifacts run_differential_sweep(int jobs, const std::string& tag) {
  obs::MetricsRegistry merged;
  exec::SweepRunner::Config rc;
  rc.jobs = jobs;
  rc.base_seed = 123;
  rc.merge_metrics = &merged;
  exec::SweepRunner runner(rc);

  const auto flows =
      runner.map<double>(16, [](const exec::TaskContext& ctx) {
        RandomWorkloadConfig cfg;
        cfg.machines = 4;
        cfg.jobs = 60;
        cfg.P = 32.0;
        cfg.load = 1.0;
        cfg.alpha_lo = cfg.alpha_hi = 0.5;
        cfg.seed = ctx.seed;
        const Instance inst = make_random_instance(cfg);
        IntermediateSrpt sched;
        EngineConfig ec;
        ec.metrics = ctx.metrics;
        return simulate(inst, sched, ec).total_flow;
      });

  Table t({"task", "total_flow"}, 6);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    t.add_row({static_cast<std::int64_t>(i), flows[i]});
  }
  const std::string csv_path =
      testing::TempDir() + "exec_sweep_" + tag + ".csv";
  t.write_csv(csv_path);

  obs::BenchReport report("exec_sweep");
  report.add_table("flows", t);
  report.set_metrics(merged.snapshot());

  SweepArtifacts out;
  out.flows = flows;
  out.csv = slurp(csv_path);
  out.json = report.to_json();
  const obs::MetricsSnapshot snap = merged.snapshot();
  if (const auto* d = snap.find("engine.decisions")) out.decisions = d->value;
  if (const auto* r = snap.find("engine.runs")) out.runs = r->value;
  return out;
}

// The contract itself: serial and 8-way-sharded sweeps of the same base
// seed produce bit-identical results, CSV bytes, report json, and
// merged engine counters.
TEST(SweepRunner, DifferentialSerialVsParallelByteIdentical) {
  const SweepArtifacts serial = run_differential_sweep(1, "j1");
  const SweepArtifacts parallel = run_differential_sweep(8, "j8");

  ASSERT_EQ(serial.flows.size(), parallel.flows.size());
  for (std::size_t i = 0; i < serial.flows.size(); ++i) {
    EXPECT_EQ(serial.flows[i], parallel.flows[i]) << "task " << i;
  }
  EXPECT_EQ(serial.csv, parallel.csv) << "CSV bytes diverged";
  EXPECT_EQ(serial.json, parallel.json) << "BENCH json diverged";
  EXPECT_EQ(serial.runs, 16.0);
  EXPECT_EQ(serial.decisions, parallel.decisions);
  EXPECT_GT(serial.decisions, 0.0);
}

// ------------------------------------------------- sweep: edge cases

TEST(SweepRunner, MapZeroTasksReturnsEmpty) {
  for (int jobs : {1, 4}) {
    exec::SweepRunner::Config rc;
    rc.jobs = jobs;
    exec::SweepRunner runner(rc);
    const auto out = runner.map<int>(
        0, [](const exec::TaskContext&) -> int {
          ADD_FAILURE() << "task body ran for an empty sweep";
          return 0;
        });
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(runner.last_stats().tasks, 0u);
  }
}

TEST(SweepRunner, MapOneTaskMatchesInlineSeed) {
  for (int jobs : {1, 4}) {
    exec::SweepRunner::Config rc;
    rc.jobs = jobs;
    rc.base_seed = 99;
    exec::SweepRunner runner(rc);
    const auto out = runner.map<std::uint64_t>(
        1, [](const exec::TaskContext& ctx) { return ctx.seed; });
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], exec::task_seed(99, 0));
  }
}

// Many more tasks than workers: the queue depth forces every worker
// through repeated steal/drain cycles, and the artifact bytes must
// still match the one-worker run exactly.
TEST(SweepRunner, TasksFarExceedingJobsStayByteIdentical) {
  auto run = [](int jobs) {
    obs::MetricsRegistry merged;
    exec::SweepRunner::Config rc;
    rc.jobs = jobs;
    rc.base_seed = 7;
    rc.merge_metrics = &merged;
    exec::SweepRunner runner(rc);
    const auto vals = runner.map<double>(
        257, [](const exec::TaskContext& ctx) {
          // Cheap but seed-dependent: a collision or reorder shifts it.
          return static_cast<double>(ctx.seed % 1000003) +
                 static_cast<double>(ctx.index) * 1e-3;
        });
    Table t({"task", "value"}, 6);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      t.add_row({static_cast<std::int64_t>(i), vals[i]});
    }
    std::ostringstream os;
    os << t;
    return os.str();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(16));
}

// wait_idle() must return promptly once the last task finishes — a
// lost-wakeup regression turns this into a multi-second stall. Bound
// the wait loosely (CI machines are noisy) but well under a hang.
TEST(ThreadPool, WaitIdleReturnsPromptlyAfterLastTask) {
  exec::ThreadPool::Config cfg;
  cfg.threads = 4;
  exec::ThreadPool pool(cfg);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    (void)pool.submit(
        [&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  const double t0 = obs::monotonic_seconds();
  pool.wait_idle();
  const double waited = obs::monotonic_seconds() - t0;
  EXPECT_EQ(done.load(), 64);
  EXPECT_LT(waited, 5.0) << "wait_idle stalled after the pool drained";
}

TEST(SweepRunner, StatsDescribeTheRun) {
  exec::SweepRunner::Config rc;
  rc.jobs = 2;
  exec::SweepRunner runner(rc);
  const auto vals = runner.map<int>(
      8, [](const exec::TaskContext& ctx) { return static_cast<int>(ctx.index); });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);

  const exec::SweepStats& st = runner.last_stats();
  EXPECT_EQ(st.jobs, 2);
  EXPECT_EQ(st.tasks, 8u);
  EXPECT_GE(st.wall_seconds, 0.0);
  EXPECT_GE(st.merge_seconds, 0.0);
  EXPECT_GE(st.idle_fraction(), 0.0);
}

TEST(SweepRunner, LowestIndexExceptionWins) {
  exec::SweepRunner::Config rc;
  rc.jobs = 4;
  exec::SweepRunner runner(rc);
  try {
    (void)runner.map<int>(12, [](const exec::TaskContext& ctx) {
      if (ctx.index == 3 || ctx.index == 7) {
        throw std::runtime_error("boom " + std::to_string(ctx.index));
      }
      return 0;
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(SweepRunner, InlinePathPropagatesExceptions) {
  exec::SweepRunner::Config rc;
  rc.jobs = 1;
  exec::SweepRunner runner(rc);
  EXPECT_THROW((void)runner.map<int>(4,
                                     [](const exec::TaskContext& ctx) -> int {
                                       if (ctx.index == 2) {
                                         throw std::runtime_error("inline");
                                       }
                                       return 1;
                                     }),
               std::runtime_error);
}

// ------------------------------------------------- thread pool: basics

exec::ThreadPool::Config pool_config(int threads,
                                     obs::MetricsRegistry* reg = nullptr) {
  exec::ThreadPool::Config cfg;
  cfg.threads = threads;
  cfg.metrics = reg;
  return cfg;
}

TEST(ThreadPool, SubmitReturnsValues) {
  exec::ThreadPool pool(pool_config(4));
  std::vector<std::future<int>> futs;
  futs.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  exec::ThreadPool pool(pool_config(2));
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  // Join before consuming: the worker's last release of the shared
  // state goes through refcount atomics inside the precompiled
  // libstdc++, which TSan cannot see; the join gives it a visible
  // happens-before edge. (SweepRunner orders the same way.)
  pool.shutdown(true);
  try {
    (void)f.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  exec::ThreadPool pool(pool_config(2));
  pool.shutdown(true);
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
  pool.shutdown(true);  // idempotent
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  exec::ThreadPool pool(pool_config(2));
  pool.wait_idle();  // nothing submitted: must not block
  auto f = pool.submit([] { return 7; });
  pool.wait_idle();
  EXPECT_EQ(f.get(), 7);
}

// ------------------------------------------------- thread pool: stress

// N producer threads hammer the pool concurrently while every fourth
// task submits a nested child from inside the pool (exercising the
// own-deque LIFO path); the imbalanced per-producer batch sizes force
// stealing. Run under TSan in the `thread` CI leg.
TEST(ThreadPool, StressProducersNestingAndStealing) {
  obs::MetricsRegistry reg;
  exec::ThreadPool pool(pool_config(4, &reg));
  std::atomic<int> executed{0};

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;  // lint: thread-ok
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed, p] {
      for (int i = 0; i < kPerProducer + p * 37; ++i) {
        (void)pool.submit([&pool, &executed, i] {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (i % 4 == 0) {
            (void)pool.submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            });
          }
        });
      }
    });
  }
  int expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    const int outer = kPerProducer + p * 37;
    expected += outer + (outer + 3) / 4;  // outer + nested children
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), expected);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* tasks = snap.find("exec.pool.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value, static_cast<double>(expected));
}

TEST(ThreadPool, NestedSubmissionCompletesBeforeWaitIdleReturns) {
  exec::ThreadPool pool(pool_config(2));
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    (void)pool.submit([&pool, &done] {
      (void)pool.submit([&pool, &done] {
        (void)pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
        done.fetch_add(1, std::memory_order_relaxed);
      });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 96);
}

// Non-draining shutdown: once submit() starts throwing, no queued task
// may still run; their futures must unblock with broken_promise instead
// of hanging. A single worker is pinned inside a gated task so the
// pending backlog is deterministic.
TEST(ThreadPool, ShutdownWithoutDrainBreaksPendingPromises) {
  exec::ThreadPool pool(pool_config(1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> started{false};
  auto blocker = pool.submit([&started, opened] {
    started.store(true, std::memory_order_release);
    opened.wait();
  });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::vector<std::future<int>> pending;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pending.push_back(pool.submit([&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return 1;
    }));
  }

  std::thread closer([&pool] { pool.shutdown(false); });  // lint: thread-ok
  // shutdown(false) closes the front door and freezes the task scan in
  // one critical section; once a submit throws, the backlog is sealed.
  for (;;) {
    try {
      (void)pool.submit([] {});
    } catch (const std::runtime_error&) {
      break;
    }
    std::this_thread::yield();
  }
  gate.set_value();
  closer.join();

  blocker.get();  // the running task finished normally
  EXPECT_EQ(ran.load(), 0) << "a discarded task still executed";
  for (auto& f : pending) {
    EXPECT_THROW((void)f.get(), std::future_error);
  }
}

// Concurrent shutdown calls must serialize end-to-end: the loser may not
// return (letting the pool be destroyed) while the winner is still
// joining worker threads. TSan flags the use-after-free if this breaks.
TEST(ThreadPool, ConcurrentShutdownCallsAreSafe) {
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> done{0};
    exec::ThreadPool pool(pool_config(4));
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    std::thread racer([&pool] { pool.shutdown(true); });  // lint: thread-ok
    pool.shutdown(true);
    racer.join();
    EXPECT_EQ(done.load(), 32);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    exec::ThreadPool pool(pool_config(2));
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool == shutdown(true): everything must have run
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace parsched
