// Weighted flow time: objective accounting, Weighted-ISRPT behaviour,
// weighted lower bound, weight laws and IO.
#include <gtest/gtest.h>

#include <sstream>

#include "sched/intermediate_srpt.hpp"
#include "sched/registry.hpp"
#include "sched/weighted.hpp"
#include "simcore/engine.hpp"
#include "simcore/io.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha,
             double weight = 1.0) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.weight = weight;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

TEST(Weighted, ObjectiveAccountsWeights) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.0, 3.0),
                    make_job(1, 0.0, 2.0, 0.0, 1.0)});
  IntermediateSrpt sched;  // weight-blind: short job first
  const SimResult r = simulate(inst, sched);
  // job0 done at 1 (w=3), job1 done at 3 (w=1): weighted = 3*1 + 1*3 = 6.
  EXPECT_NEAR(r.weighted_flow, 6.0, 1e-9);
  EXPECT_NEAR(r.total_flow, 4.0, 1e-9);
}

TEST(Weighted, UnitWeightsMakeWeightedEqualTotal) {
  RandomWorkloadConfig cfg;
  cfg.jobs = 40;
  cfg.seed = 3;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_NEAR(r.weighted_flow, r.total_flow, 1e-9 * r.total_flow);
}

TEST(Weighted, WisrptPrefersHighDensity) {
  // Heavy long job (density 4/8 = 0.5... remaining/weight: 8/4 = 2) vs
  // light short job (2/1 = 2)... make it decisive: remaining/weight
  // 8/8 = 1 beats 2/1 = 2, so the heavy LONG job runs first under WISRPT.
  Instance inst(1, {make_job(0, 0.0, 8.0, 0.0, 8.0),
                    make_job(1, 0.0, 2.0, 0.0, 1.0)});
  WeightedIsrpt wisrpt;
  const SimResult rw = simulate(inst, wisrpt);
  ASSERT_EQ(rw.records[0].job.id, 0u);
  // Weighted flow: 8*8 + 1*10 = 74; the SRPT order would give 8*10+1*2=82.
  EXPECT_NEAR(rw.weighted_flow, 74.0, 1e-9);
  IntermediateSrpt isrpt;
  const SimResult ri = simulate(inst, isrpt);
  EXPECT_GT(ri.weighted_flow, rw.weighted_flow);
}

TEST(Weighted, WisrptMatchesIsrptUnderUnitWeights) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 80;
  cfg.load = 1.2;
  cfg.seed = 11;
  const Instance inst = make_random_instance(cfg);
  auto wisrpt = make_scheduler("wisrpt");
  auto isrpt = make_scheduler("isrpt");
  EXPECT_NEAR(simulate(inst, *wisrpt).total_flow,
              simulate(inst, *isrpt).total_flow, 1e-9);
}

TEST(Weighted, SpanLowerBound) {
  // m = 4, alpha 0.5 -> rate 2. Job: size 4 w 3 -> 3 * 2 = 6;
  // job size 2 w 1 -> 1 * 1 = 1.
  Instance inst(4, {make_job(0, 0.0, 4.0, 0.5, 3.0),
                    make_job(1, 0.0, 2.0, 0.5, 1.0)});
  EXPECT_NEAR(weighted_span_lower_bound(inst), 7.0, 1e-12);
}

TEST(Weighted, NoPolicyBeatsWeightedSpanBound) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.weight_law = WeightLaw::kUniform;
  cfg.seed = 17;
  const Instance inst = make_random_instance(cfg);
  const double lb = weighted_span_lower_bound(inst);
  for (const char* name : {"wisrpt", "isrpt", "equi"}) {
    auto sched = make_scheduler(name);
    EXPECT_GE(simulate(inst, *sched).weighted_flow, lb - 1e-6 * lb)
        << name;
  }
}

TEST(Weighted, WeightLawsProduceExpectedRanges) {
  RandomWorkloadConfig cfg;
  cfg.jobs = 100;
  cfg.P = 32.0;
  cfg.weight_law = WeightLaw::kInverseSize;
  cfg.seed = 23;
  const Instance inst = make_random_instance(cfg);
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(j.weight, 32.0 / j.size, 1e-9);
  }
  cfg.weight_law = WeightLaw::kUniform;
  const Instance inst2 = make_random_instance(cfg);
  for (const Job& j : inst2.jobs()) {
    EXPECT_GE(j.weight, 1.0);
    EXPECT_LE(j.weight, 10.0);
  }
}

TEST(Weighted, IoRoundTripsWeights) {
  Instance inst(2, {make_job(0, 0.0, 4.0, 0.5, 2.5),
                    make_job(1, 1.0, 2.0, 0.5)});
  std::stringstream ss;
  write_instance(ss, inst);
  const Instance back = read_instance(ss);
  EXPECT_DOUBLE_EQ(back.jobs()[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(back.jobs()[1].weight, 1.0);
}

}  // namespace
}  // namespace parsched
