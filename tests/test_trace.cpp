// AllocationTrace observer: segment recording, merging, utilization,
// CSV export, Gantt rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/trace.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

TEST(Trace, SingleJobSingleSegment) {
  Instance inst(1, {make_job(0, 0.0, 3.0, 0.5)});
  IntermediateSrpt sched;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  ASSERT_EQ(trace.segments().size(), 1u);
  const auto& s = trace.segments().front();
  EXPECT_EQ(s.job, 0u);
  EXPECT_NEAR(s.t0, 0.0, 1e-12);
  EXPECT_NEAR(s.t1, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.share, 1.0);
}

TEST(Trace, MergesUnchangedAllocationsAcrossDecisions) {
  // Two jobs, one machine: the running job's allocation is re-affirmed at
  // the arrival decision point but must come out as one merged segment.
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.0), make_job(1, 1.0, 4.0, 0.0)});
  SequentialSrpt sched;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  // job0 runs [0,4] (it stays shortest), job1 runs [4,8].
  ASSERT_EQ(trace.segments().size(), 2u);
  EXPECT_NEAR(trace.segments()[0].t1 - trace.segments()[0].t0, 4.0, 1e-9);
  EXPECT_NEAR(trace.segments()[1].t1 - trace.segments()[1].t0, 4.0, 1e-9);
}

TEST(Trace, UtilizationTracksAllocatedShares) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 2.0, 0.5)});
  IntermediateSrpt sched;  // one machine each until both finish at 2
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  const StepFunction u = trace.utilization();
  EXPECT_NEAR(u.value(1.0), 2.0, 1e-9);
  EXPECT_NEAR(trace.average_utilization(0.0, 2.0), 2.0, 1e-6);
}

TEST(Trace, PreemptionSplitsSegments) {
  Instance inst(1, {make_job(0, 0.0, 4.0, 0.0), make_job(1, 1.0, 1.0, 0.0)});
  SequentialSrpt sched;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  // job0: [0,1] and [2,5]; job1: [1,2].
  std::size_t job0_segments = 0;
  for (const auto& s : trace.segments()) {
    if (s.job == 0) ++job0_segments;
  }
  EXPECT_EQ(job0_segments, 2u);
}

TEST(Trace, CsvHasHeaderAndAllSegments) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.5)});
  IntermediateSrpt sched;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  const std::string path = "test_trace_out.csv";
  trace.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "job,t0,t1,share");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, trace.segments().size());
  std::filesystem::remove(path);
}

TEST(Trace, GanttRendersEveryShownJob) {
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i * 0.5, 2.0, 0.5));
  }
  Instance inst(2, jobs);
  IntermediateSrpt sched;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&trace});
  std::ostringstream os;
  trace.render_gantt(os, 40, 3);
  const std::string s = os.str();
  EXPECT_NE(s.find("time 0 .."), std::string::npos);
  EXPECT_NE(s.find("more jobs not shown"), std::string::npos);
}

TEST(Trace, EmptyTraceRendersGracefully) {
  AllocationTrace trace;
  std::ostringstream os;
  trace.render_gantt(os);
  EXPECT_NE(os.str().find("empty trace"), std::string::npos);
}

}  // namespace
}  // namespace parsched
