// Stress and robustness: determinism, simultaneous-event storms, extreme
// parameters, and cross-feature composition (weights + phases + speed).
#include <gtest/gtest.h>

#include <cmath>

#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/rng.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

TEST(Stress, EngineIsDeterministic) {
  RandomWorkloadConfig cfg;
  cfg.machines = 6;
  cfg.jobs = 150;
  cfg.load = 1.1;
  cfg.seed = 99;
  const Instance inst = make_random_instance(cfg);
  for (const auto& name : standard_policy_names()) {
    auto s1 = make_scheduler(name);
    auto s2 = make_scheduler(name);
    const SimResult a = simulate(inst, *s1);
    const SimResult b = simulate(inst, *s2);
    ASSERT_EQ(a.jobs(), b.jobs()) << name;
    EXPECT_DOUBLE_EQ(a.total_flow, b.total_flow) << name;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.records[i].completion, b.records[i].completion)
          << name << " record " << i;
    }
  }
}

TEST(Stress, MassSimultaneousArrivals) {
  // 200 jobs at exactly t = 0 plus 200 more at exactly t = 5.
  std::vector<Job> jobs;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i < 200 ? 0.0 : 5.0,
                            rng.uniform(1.0, 4.0), 0.5));
  }
  Instance inst(8, jobs);
  for (const char* name : {"isrpt", "equi", "greedy"}) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate(inst, *sched);
    EXPECT_EQ(r.jobs(), 400u) << name;
    EXPECT_GE(r.total_flow, opt_lower_bound(inst) - 1e-6) << name;
  }
}

TEST(Stress, IdenticalJobsBreakTiesDeterministically) {
  std::vector<Job> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), 0.0, 2.0, 0.5));
  }
  Instance inst(4, jobs);
  auto s1 = make_scheduler("isrpt");
  auto s2 = make_scheduler("isrpt");
  const SimResult a = simulate(inst, *s1);
  const SimResult b = simulate(inst, *s2);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id);
  }
}

TEST(Stress, HugeSizeRatio) {
  // P = 1e6: class arithmetic and tolerances must hold up.
  Instance inst(2, {make_job(0, 0.0, 1.0, 0.5),
                    make_job(1, 0.0, 1e6, 0.5),
                    make_job(2, 0.5, 1.0, 0.5)});
  auto sched = make_scheduler("isrpt");
  const SimResult r = simulate(inst, *sched);
  EXPECT_EQ(r.jobs(), 3u);
  EXPECT_NEAR(r.records[0].completion, 1.0, 1e-6);
  // The huge job eventually finishes with both machines most of the time.
  EXPECT_GT(r.makespan, 1e5);
}

TEST(Stress, ManyTinyJobsNearMinimumSize) {
  std::vector<Job> jobs;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    jobs.push_back(make_job(static_cast<JobId>(i), i * 0.01,
                            1.0 + rng.uniform01() * 1e-6, 0.5));
  }
  Instance inst(4, jobs);
  auto sched = make_scheduler("isrpt");
  const SimResult r = simulate(inst, *sched);
  EXPECT_EQ(r.jobs(), 300u);
}

TEST(Stress, CompositionWeightsPhasesSpeed) {
  // Weighted multi-phase jobs on an augmented-speed engine: everything
  // composes and the accounting stays consistent.
  std::vector<Job> jobs;
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    Job j = make_phased_job(
        static_cast<JobId>(i), rng.uniform(0.0, 10.0),
        {{rng.uniform(1.0, 4.0), SpeedupCurve::power_law(0.8)},
         {rng.uniform(0.5, 2.0), SpeedupCurve::sequential()}});
    j.weight = rng.uniform(1.0, 5.0);
    jobs.push_back(std::move(j));
  }
  Instance inst(4, jobs);
  EngineConfig ec;
  ec.speed = 1.5;
  auto sched = make_scheduler("wisrpt");
  const SimResult r = simulate(inst, *sched, ec);
  EXPECT_EQ(r.jobs(), 60u);
  EXPECT_GT(r.weighted_flow, r.total_flow);  // weights > 1 on average
  // At speed 1.5 the speed-1 span bound scaled by 1/1.5 still holds.
  double scaled_span = 0.0;
  for (const Job& j : inst.jobs()) {
    for (const JobPhase& p : j.phases) {
      scaled_span += p.work / (1.5 * p.curve.rate(4.0));
    }
  }
  EXPECT_GE(r.total_flow, scaled_span - 1e-6);
}

TEST(Stress, ZeroLengthGapsBetweenPhases) {
  // Many tiny phases: phase-transition events must not stall or lose work.
  std::vector<JobPhase> phases;
  for (int i = 0; i < 50; ++i) {
    phases.push_back({0.1, i % 2 ? SpeedupCurve::sequential()
                                 : SpeedupCurve::fully_parallel()});
  }
  Job j = make_phased_job(0, 0.0, phases);
  Instance inst(2, {j});
  auto sched = make_scheduler("equi");
  const SimResult r = simulate(inst, *sched);
  EXPECT_EQ(r.jobs(), 1u);
  // 25 parallel phases at rate 2 (0.05 each) + 25 sequential at rate 1.
  EXPECT_NEAR(r.records[0].completion, 25 * 0.05 + 25 * 0.1, 1e-6);
}

TEST(Stress, TrajectoryKnotsAreMonotoneInTime) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 120;
  cfg.load = 1.3;
  cfg.seed = 19;
  const Instance inst = make_random_instance(cfg);
  auto sched = make_scheduler("greedy");
  TrajectoryRecorder rec;
  (void)simulate(inst, *sched, {}, {&rec});
  for (const auto& [id, jt] : rec.trajectories()) {
    (void)id;
    const auto& ts = jt.remaining.times();
    for (std::size_t i = 1; i < ts.size(); ++i) {
      ASSERT_LE(ts[i - 1], ts[i]);
    }
  }
}

}  // namespace
}  // namespace parsched
