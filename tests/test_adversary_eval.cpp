// The adversary-measurement methodology (analysis/adversary_eval):
// extrapolation exactness, backlog structure, phase targeting.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/adversary_eval.hpp"
#include "util/mathx.hpp"

namespace parsched {
namespace {

TEST(AdversaryEval, PForPhasesRealizesRequestedPhaseCount) {
  for (double alpha : {0.0, 0.25, 0.5}) {
    for (int L = 1; L <= 3; ++L) {
      const double P = P_for_phases(alpha, L);
      const AdversaryConstants c = adversary_constants(alpha);
      const int realized = static_cast<int>(
          std::floor(log_inv(c.r, P) / 2.0));
      EXPECT_EQ(realized, L) << "alpha=" << alpha << " L=" << L;
    }
  }
}

TEST(AdversaryEval, ExtrapolationIsIdentityWhenStreamFits) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 16.0;
  cfg.alpha = 0.0;
  cfg.stream_time = 256.0;  // = P^2, below the default cap
  const AdversaryPoint pt = run_adversary_point("isrpt", cfg);
  EXPECT_DOUBLE_EQ(pt.X0, pt.X_full);
  EXPECT_NEAR(pt.ratio_extrapolated(), pt.alg_flow / pt.plan_flow,
              1e-12 * pt.ratio_extrapolated());
}

TEST(AdversaryEval, ExtrapolationMatchesDirectSimulation) {
  // Same instance measured with two different caps must extrapolate to
  // (almost) the same full-stream ratio — the linearity claim itself.
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 256.03;  // 2 phases at alpha = 0
  cfg.alpha = 0.0;
  const AdversaryPoint coarse = run_adversary_point("isrpt", cfg, 512.0);
  const AdversaryPoint fine = run_adversary_point("isrpt", cfg, 4096.0);
  EXPECT_NEAR(coarse.ratio_extrapolated(), fine.ratio_extrapolated(),
              0.02 * fine.ratio_extrapolated());
}

TEST(AdversaryEval, IsrptBacklogIsMPlusHalfMPerPhase) {
  // The paper's Omega(m log_{1/r} P) backlog, realized: ISRPT carries the
  // m/2 long jobs of every phase plus the m in-flight stream jobs.
  for (int L = 1; L <= 3; ++L) {
    AdversaryConfig cfg;
    cfg.machines = 8;
    cfg.P = P_for_phases(0.0, L);
    cfg.alpha = 0.0;
    const AdversaryPoint pt = run_adversary_point("isrpt", cfg, 1024.0);
    EXPECT_EQ(pt.phases, L);
    EXPECT_FALSE(pt.case1);  // ISRPT drains unit jobs -> case 2
    EXPECT_NEAR(pt.alive_tail, 8.0 + 4.0 * L, 1e-9);
  }
}

TEST(AdversaryEval, RatioGrowsWithPhases) {
  double prev = 0.0;
  for (int L = 1; L <= 3; ++L) {
    AdversaryConfig cfg;
    cfg.machines = 8;
    cfg.P = P_for_phases(0.0, L);
    cfg.alpha = 0.0;
    const AdversaryPoint pt = run_adversary_point("isrpt", cfg, 1024.0);
    EXPECT_GT(pt.ratio_extrapolated(), prev);
    prev = pt.ratio_extrapolated();
  }
  EXPECT_GT(prev, 2.0);  // 3 phases: well above the single-phase 1.33
}

TEST(AdversaryEval, SandwichOrdering) {
  AdversaryConfig cfg;
  cfg.machines = 8;
  cfg.P = 64.0;
  cfg.alpha = 0.25;
  const AdversaryPoint pt = run_adversary_point("equi", cfg, 512.0);
  EXPECT_GE(pt.opt_upper, pt.opt_lower - 1e-9);
  EXPECT_GE(pt.ratio_ub(), pt.ratio_lb() - 1e-12);
  EXPECT_GT(pt.jobs, 0u);
}

}  // namespace
}  // namespace parsched
