// The src/obs subsystem: metrics registry (incl. thread-safety under the
// TSan CI leg), JSON emission + syntax checking, engine RunStats and the
// zero-overhead default path, Chrome-trace / JSONL exporters (golden
// file), and the bench-report schema.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>  // lint: thread-ok

#include "analysis/trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------- metrics registry

TEST(Metrics, CounterGaugeTimerHistogramRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(4);
  reg.gauge("g").set(2.5);
  reg.timer("t").add(0.125);
  reg.timer("t").add(0.25);
  auto& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  const auto* c = snap.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 5.0);
  EXPECT_DOUBLE_EQ(snap.find("g")->value, 2.5);
  EXPECT_DOUBLE_EQ(snap.find("t")->value, 0.375);
  EXPECT_EQ(snap.find("t")->count, 2u);
  const obs::HistogramData& hd = snap.find("h")->histogram;
  ASSERT_EQ(hd.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(hd.counts[0], 1u);
  EXPECT_EQ(hd.counts[1], 1u);
  EXPECT_EQ(hd.counts[2], 1u);
  EXPECT_EQ(hd.total, 3u);
  EXPECT_DOUBLE_EQ(hd.sum, 105.5);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, LookupIsFindOrCreateAndKindChecked) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same");
  obs::Counter& b = reg.counter("same");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)reg.gauge("same"), std::logic_error);
  (void)reg.histogram("h", {1.0});
  EXPECT_THROW((void)reg.histogram("h", {2.0}), std::logic_error);
}

TEST(Metrics, ScopedTimerAccumulatesAndNullIsNoop) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimer t(&reg.timer("span"));
    obs::ScopedTimer noop(nullptr);
  }
  EXPECT_EQ(reg.timer("span").count(), 1u);
  EXPECT_GE(reg.timer("span").seconds(), 0.0);
}

TEST(Metrics, MonotonicClockAdvances) {
  const double a = obs::monotonic_seconds();
  const double b = obs::monotonic_seconds();
  EXPECT_GE(b, a);
}

// Exercised under -fsanitize=thread in CI: concurrent increments and
// registrations must be race-free and lose no updates.
TEST(Metrics, ThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;  // lint: thread-ok
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&reg, w] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").inc();
        reg.histogram("lat", {0.5, 1.0}).observe(0.25 * (w % 3));
        reg.gauge("last").set(static_cast<double>(i));
        reg.timer("work").add(1e-6);
      }
    });
  }
  for (std::thread& t : threads) t.join();  // lint: thread-ok
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("shared")->value, kThreads * kIters);
  EXPECT_EQ(snap.find("lat")->histogram.total,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(snap.find("work")->count,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(Metrics, HistogramDataBucketsInclusiveUpperBounds) {
  obs::HistogramData h({1.0, 2.0});
  h.add(1.0);   // first bucket (inclusive upper bound)
  h.add(1.5);   // second
  h.add(3.0);   // overflow
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5 / 3.0);
}

// ------------------------------------------------------------------ JSON

TEST(Json, WriterEmitsValidNestedDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("s", "a\"b\\c\n");
  w.kv("i", std::int64_t{-3});
  w.kv("d", 0.5);
  w.kv("b", true);
  w.key("arr").begin_array().value(1).value(2.25).null().end_array();
  w.key("nested").begin_object().end_object();
  w.end_object();
  EXPECT_TRUE(w.done());
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(os.str(), &err)) << err << "\n"
                                                      << os.str();
  EXPECT_NE(os.str().find("\\\""), std::string::npos);
  EXPECT_NE(os.str().find("\\n"), std::string::npos);
}

TEST(Json, NumbersAreShortestRoundTrip) {
  EXPECT_EQ(obs::json_number(1.0), "1");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(1.0 / 0.0), "null");  // lint: float-eq-ok
}

TEST(Json, SyntaxCheckerAcceptsAndRejects) {
  EXPECT_TRUE(obs::json_syntax_valid(R"({"a": [1, 2.5e-3, "x", null]})"));
  EXPECT_TRUE(obs::json_syntax_valid("[]"));
  EXPECT_TRUE(obs::json_syntax_valid("-0.25"));
  std::string err;
  EXPECT_FALSE(obs::json_syntax_valid("{\"a\": }", &err));
  EXPECT_FALSE(obs::json_syntax_valid("[1,]", &err));
  EXPECT_FALSE(obs::json_syntax_valid("{\"a\": 1} trailing", &err));
  EXPECT_FALSE(obs::json_syntax_valid("01", &err));
  EXPECT_FALSE(obs::json_syntax_valid("\"unterminated", &err));
  EXPECT_FALSE(obs::json_syntax_valid("", &err));
}

// ------------------------------------------------- engine instrumentation

TEST(RunStats, AbsentOnTheDefaultUninstrumentedPath) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.5, 1.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_FALSE(r.stats.has_value());
}

TEST(RunStats, CollectedWhenEnabled) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.P = 16.0;
  cfg.seed = 7;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  EngineConfig ec;
  ec.collect_stats = true;
  const SimResult r = simulate(inst, sched, ec);

  ASSERT_TRUE(r.stats.has_value());
  const obs::RunStats& s = *r.stats;
  EXPECT_EQ(s.decisions, r.decisions);
  EXPECT_EQ(s.completions, inst.size());
  EXPECT_EQ(s.arrivals, inst.size());
  // Every decision lands one observation in both histograms.
  EXPECT_EQ(s.alive_count.total, r.decisions);
  EXPECT_EQ(s.decision_interval.total, r.decisions);
  // The three buckets partition a subset of the run's wall time.
  EXPECT_GE(s.decide_seconds, 0.0);
  EXPECT_GE(s.solver_seconds, 0.0);
  EXPECT_GE(s.observer_seconds, 0.0);
  EXPECT_LE(s.decide_seconds + s.solver_seconds + s.observer_seconds,
            s.wall_seconds + 1e-6);
  EXPECT_GT(s.wall_seconds, 0.0);
}

TEST(RunStats, EngineMirrorsCountersIntoRegistry) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  IntermediateSrpt sched;
  obs::MetricsRegistry reg;
  EngineConfig ec;
  ec.collect_stats = true;
  ec.metrics = &reg;
  const SimResult r = simulate(inst, sched, ec);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("engine.runs")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("engine.decisions")->value,
                   static_cast<double>(r.decisions));
  EXPECT_DOUBLE_EQ(snap.find("engine.completions")->value, 2.0);
  EXPECT_DOUBLE_EQ(snap.find("engine.arrivals")->value, 2.0);
  EXPECT_EQ(snap.find("engine.decide")->count, 1u);
}

// ----------------------------------------------------------- trace export

TEST(TraceExport, ChromeTraceParsesAndHasJobAndCounterTracks) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 20;
  cfg.P = 16.0;
  cfg.seed = 3;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&exporter});

  const std::string path = "test_obs_chrome.trace.json";
  exporter.write_chrome_trace(path);
  const std::string text = slurp(path);
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(text, &err)) << err;
  // Per-job allocation tracks, instant events, and counter tracks.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"alive\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"utilization\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_FALSE(exporter.segments().empty());
  EXPECT_EQ(exporter.dropped(), 0u);
  std::filesystem::remove(path);
}

TEST(TraceExport, SegmentsMatchAllocationTrace) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.P = 8.0;
  cfg.seed = 11;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  obs::TraceExporter exporter;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&exporter, &trace});
  ASSERT_EQ(exporter.segments().size(), trace.segments().size());
  for (std::size_t i = 0; i < trace.segments().size(); ++i) {
    EXPECT_EQ(exporter.segments()[i].job, trace.segments()[i].job);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].t0, trace.segments()[i].t0);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].t1, trace.segments()[i].t1);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].share,
                     trace.segments()[i].share);
  }
}

TEST(TraceExport, JsonlGoldenFileOnFixedInstance) {
  // Exact-arithmetic instance: all event times are small integers, so the
  // serialized log is byte-stable across platforms.
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 1.0, 1.0, 0.0)});
  SequentialSrpt sched;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&exporter});

  const std::string path = "test_obs_golden.jsonl";
  exporter.write_jsonl(path);
  const std::string expected =
      R"({"ev":"header","schema":1,"kind":"parsched-trace","end_time":3,"dropped":0}
{"ev":"arrival","t":0,"job":0,"size":2}
{"ev":"decision","t":0}
{"ev":"arrival","t":1,"job":1,"size":1}
{"ev":"decision","t":1}
{"ev":"completion","t":2,"job":0}
{"ev":"decision","t":2}
{"ev":"completion","t":3,"job":1}
{"ev":"counters","t":0,"alive":1,"allocated":1}
{"ev":"counters","t":1,"alive":2,"allocated":1}
{"ev":"counters","t":2,"alive":1,"allocated":1}
{"ev":"segment","job":0,"t0":0,"t1":2,"share":1}
{"ev":"segment","job":1,"t0":2,"t1":3,"share":1}
)";
  EXPECT_EQ(slurp(path), expected);
  // Every line must itself be valid JSON.
  std::istringstream lines(slurp(path));
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::json_syntax_valid(line)) << line;
  }
  std::filesystem::remove(path);
}

TEST(TraceExport, EventCapCountsDrops) {
  obs::TraceExporter::Config tc;
  tc.max_events = 3;
  obs::TraceExporter exporter(tc);
  RandomWorkloadConfig cfg;
  cfg.machines = 2;
  cfg.jobs = 20;
  cfg.P = 4.0;
  cfg.seed = 1;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  (void)simulate(inst, sched, {}, {&exporter});
  EXPECT_LE(exporter.events().size() + exporter.counters().size(), 3u);
  EXPECT_GT(exporter.dropped(), 0u);
  EXPECT_FALSE(exporter.segments().empty());  // segments are never dropped
}

// ---------------------------------------------------------------- reports

TEST(Report, BenchReportSchemaRoundTrips) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.P = 8.0;
  cfg.seed = 5;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  EngineConfig ec;
  ec.collect_stats = true;
  const double t0 = obs::monotonic_seconds();
  const SimResult r = simulate(inst, sched, ec);
  const double wall = obs::monotonic_seconds() - t0;

  obs::BenchReport report("unit_test");
  report.set_meta("claim", "round-trip");
  report.set_meta("machines", 4.0);
  report.add_run(obs::RunReport::from_result("isrpt", 4, r, wall));
  Table table({"policy", "flow"});
  table.add_row({std::string("isrpt"), r.total_flow});
  report.add_table("results", table);
  obs::MetricsRegistry reg;
  reg.counter("runs").inc();
  report.set_metrics(reg.snapshot());

  const std::string text = report.to_json();
  std::string err;
  ASSERT_TRUE(obs::json_syntax_valid(text, &err)) << err << "\n" << text;
  EXPECT_NE(text.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"parsched-bench-report\""),
            std::string::npos);
  EXPECT_NE(text.find("\"decide_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"decision_interval\""), std::string::npos);
  EXPECT_NE(text.find("\"alive_count\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"columns\""), std::string::npos);

  const std::string path = "test_obs_report.json";
  report.write(path);
  EXPECT_TRUE(obs::json_syntax_valid(slurp(path), &err)) << err;
  std::filesystem::remove(path);
}

TEST(Report, UninstrumentedRunSerializesNullStats) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  obs::BenchReport report("nostats");
  report.add_run(obs::RunReport::from_result("isrpt", 1, r));
  EXPECT_NE(report.to_json().find("\"stats\": null"), std::string::npos);
  EXPECT_TRUE(obs::json_syntax_valid(report.to_json()));
}

TEST(Report, PathRespectsEnvironment) {
  ::unsetenv("PARSCHED_REPORT_DIR");
  EXPECT_EQ(obs::report_path("x"), "BENCH_x.json");
  ::setenv("PARSCHED_REPORT_DIR", "/tmp", 1);
  EXPECT_EQ(obs::report_path("x"), "/tmp/BENCH_x.json");
  ::unsetenv("PARSCHED_REPORT_DIR");

  ::unsetenv("PARSCHED_REPORT");
  EXPECT_FALSE(obs::report_enabled());
  ::setenv("PARSCHED_REPORT", "1", 1);
  EXPECT_TRUE(obs::report_enabled());
  ::setenv("PARSCHED_REPORT", "0", 1);
  EXPECT_FALSE(obs::report_enabled());
  ::unsetenv("PARSCHED_REPORT");
}

// A fresh PARSCHED_REPORT_DIR (parents included) is created on demand:
// pointing it at a nonexistent nested directory must not fail the first
// open_output, and the report must land inside it.
TEST(Report, MissingReportDirIsCreated) {
  const std::string dir = testing::TempDir() + "parsched_report_dir_test/n1/n2";
  std::filesystem::remove_all(testing::TempDir() +
                              "parsched_report_dir_test");
  ASSERT_FALSE(std::filesystem::exists(dir));

  ::setenv("PARSCHED_REPORT_DIR", dir.c_str(), 1);
  const std::string path = obs::report_path("made");
  ::unsetenv("PARSCHED_REPORT_DIR");

  EXPECT_EQ(path, dir + "/BENCH_made.json");
  EXPECT_TRUE(std::filesystem::is_directory(dir));

  obs::BenchReport report("made");
  report.write(path);  // must succeed without pre-creating anything
  EXPECT_TRUE(std::filesystem::exists(path));
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(slurp(path), &err)) << err;
  std::filesystem::remove_all(testing::TempDir() +
                              "parsched_report_dir_test");
}

// ----------------------------------------------------- checked file output

TEST(FileWriters, WriteFailuresRaiseInsteadOfTruncating) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.5)});
  IntermediateSrpt sched;
  AllocationTrace trace;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&trace, &exporter});

  // Unopenable path: directory component does not exist.
  const std::string bad = "test_obs_nonexistent_dir/out.csv";
  EXPECT_THROW(trace.write_csv(bad), std::runtime_error);
  EXPECT_THROW(exporter.write_chrome_trace(bad), std::runtime_error);
  EXPECT_THROW(exporter.write_jsonl(bad), std::runtime_error);

  // Full device: opens fine, every write is lost — the flush check in
  // finish_output must turn that into an error (the original write_csv
  // silently produced an empty file here).
  if (std::filesystem::exists("/dev/full")) {
    EXPECT_THROW(trace.write_csv("/dev/full"), std::runtime_error);
    EXPECT_THROW(exporter.write_jsonl("/dev/full"), std::runtime_error);
    obs::BenchReport report("full");
    EXPECT_THROW(report.write("/dev/full"), std::runtime_error);
  }
}

}  // namespace
}  // namespace parsched
