// The src/obs subsystem: metrics registry (incl. thread-safety under the
// TSan CI leg), JSON emission + syntax checking, engine RunStats and the
// zero-overhead default path, Chrome-trace / JSONL exporters (golden
// file), and the bench-report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>  // lint: thread-ok

#include "analysis/trace.hpp"
#include "obs/expose.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"
#include "workload/random.hpp"

namespace parsched {
namespace {

Job make_job(JobId id, double release, double size, double alpha) {
  Job j;
  j.id = id;
  j.release = release;
  j.size = size;
  j.curve = SpeedupCurve::power_law(alpha);
  return j;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------- metrics registry

TEST(Metrics, CounterGaugeTimerHistogramRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(4);
  reg.gauge("g").set(2.5);
  reg.timer("t").add(0.125);
  reg.timer("t").add(0.25);
  auto& h = reg.histogram("h", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  const auto* c = snap.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 5.0);
  EXPECT_DOUBLE_EQ(snap.find("g")->value, 2.5);
  EXPECT_DOUBLE_EQ(snap.find("t")->value, 0.375);
  EXPECT_EQ(snap.find("t")->count, 2u);
  const obs::HistogramData& hd = snap.find("h")->histogram;
  ASSERT_EQ(hd.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(hd.counts[0], 1u);
  EXPECT_EQ(hd.counts[1], 1u);
  EXPECT_EQ(hd.counts[2], 1u);
  EXPECT_EQ(hd.total, 3u);
  EXPECT_DOUBLE_EQ(hd.sum, 105.5);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Metrics, LookupIsFindOrCreateAndKindChecked) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same");
  obs::Counter& b = reg.counter("same");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)reg.gauge("same"), std::logic_error);
  (void)reg.histogram("h", {1.0});
  EXPECT_THROW((void)reg.histogram("h", {2.0}), std::logic_error);
}

TEST(Metrics, ScopedTimerAccumulatesAndNullIsNoop) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedTimer t(&reg.timer("span"));
    obs::ScopedTimer noop(nullptr);
  }
  EXPECT_EQ(reg.timer("span").count(), 1u);
  EXPECT_GE(reg.timer("span").seconds(), 0.0);
}

TEST(Metrics, MonotonicClockAdvances) {
  const double a = obs::monotonic_seconds();
  const double b = obs::monotonic_seconds();
  EXPECT_GE(b, a);
}

// Exercised under -fsanitize=thread in CI: concurrent increments and
// registrations must be race-free and lose no updates.
TEST(Metrics, ThreadSafeUnderConcurrentUse) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;  // lint: thread-ok
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&reg, w] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").inc();
        reg.histogram("lat", {0.5, 1.0}).observe(0.25 * (w % 3));
        reg.gauge("last").set(static_cast<double>(i));
        reg.timer("work").add(1e-6);
      }
    });
  }
  for (std::thread& t : threads) t.join();  // lint: thread-ok
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("shared")->value, kThreads * kIters);
  EXPECT_EQ(snap.find("lat")->histogram.total,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(snap.find("work")->count,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(Metrics, HistogramDataBucketsInclusiveUpperBounds) {
  obs::HistogramData h({1.0, 2.0});
  h.add(1.0);   // first bucket (inclusive upper bound)
  h.add(1.5);   // second
  h.add(3.0);   // overflow
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5 / 3.0);
}

// ------------------------------------------------- histogram quantiles

TEST(Quantiles, EmptyHistogramReturnsZero) {
  obs::HistogramData h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  const obs::HistogramData::Summary s = h.summary();
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Quantiles, SingleBucketInterpolatesFromLowerEdge) {
  obs::HistogramData h({10.0});
  for (int i = 0; i < 4; ++i) h.add(5.0);
  // All mass in [0, 10]: the q-th quantile is linear in q.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Quantiles, BucketEdgesAndOverflowSaturation) {
  obs::HistogramData h({1.0, 2.0, 4.0});
  h.add(0.5);  // bucket [<=1]
  h.add(1.5);  // bucket (1,2]
  h.add(3.0);  // bucket (2,4]
  h.add(9.0);  // overflow
  // Exactly at a cumulative boundary: 0.25 of the mass sits in the
  // first bucket, so q=0.25 lands on its upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
  // Mass past the last bound saturates at the last bound (the
  // Prometheus convention): no invented upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 4.0);
}

TEST(Quantiles, NegativeValuesWidenTheFirstBucketEdge) {
  obs::HistogramData h({-1.0, 1.0});
  h.add(-2.0);
  h.add(-1.5);
  // First bucket's lower edge is min(0, bound) = the observations'
  // bucket floor stays below zero instead of clamping to 0.
  EXPECT_LE(h.quantile(0.5), -1.0);
}

TEST(Quantiles, SurviveMergeAcrossRegistries) {
  obs::Histogram a({1.0, 2.0, 4.0});
  obs::Histogram b({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) a.observe(0.5);
  for (int i = 0; i < 50; ++i) b.observe(3.0);
  a.merge(b.snapshot());
  const obs::HistogramData h = a.snapshot();
  EXPECT_EQ(h.total, 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);   // half the mass at <=1
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);  // midway through (2,4]
  EXPECT_DOUBLE_EQ(a.quantile(0.75), 3.0);  // live-histogram shortcut
}

// Snapshot totals are derived from the bucket counts, so a concurrent
// scrape can never see sum(counts) != total (the torn-read window the
// old separate total_ atomic allowed). Exercised under TSan in CI.
TEST(Quantiles, ConcurrentScrapeSeesConsistentTotals) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("lat", {0.5, 1.0, 2.0});
  std::atomic<bool> stop{false};
  std::thread writer([&h, &stop] {  // lint: thread-ok
    for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
      h.observe(0.25 * (i % 12));
    }
  });
  for (int i = 0; i < 200; ++i) {
    const obs::HistogramData d = h.snapshot();
    std::uint64_t sum = 0;
    for (const std::uint64_t c : d.counts) sum += c;
    ASSERT_EQ(sum, d.total);
    (void)d.quantile(0.99);  // must not throw or read out of range
  }
  stop.store(true, std::memory_order_release);
  writer.join();  // lint: thread-ok
}

// ------------------------------------------------- Prometheus exposition

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(obs::exposition_name("serve.request.latency_ms"),
            "parsched_serve_request_latency_ms");
  EXPECT_EQ(obs::exposition_name("weird-name+x"), "parsched_weird_name_x");
}

// Golden exposition for one metric of each kind. Byte-stable: the
// snapshot is name-sorted and numbers go through obs::json_number.
TEST(Exposition, GoldenTextForAllMetricKinds) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.depth").set(1.5);
  reg.timer("c.work").add(0.25);
  auto& h = reg.histogram("d.lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string expected =
      "# TYPE parsched_a_count counter\n"
      "parsched_a_count 3\n"
      "# TYPE parsched_b_depth gauge\n"
      "parsched_b_depth 1.5\n"
      "# TYPE parsched_c_work_seconds summary\n"
      "parsched_c_work_seconds_sum 0.25\n"
      "parsched_c_work_seconds_count 1\n"
      "# TYPE parsched_d_lat histogram\n"
      "parsched_d_lat_bucket{le=\"1\"} 1\n"
      "parsched_d_lat_bucket{le=\"2\"} 2\n"
      "parsched_d_lat_bucket{le=\"+Inf\"} 3\n"
      "parsched_d_lat_sum 11\n"
      "parsched_d_lat_count 3\n"
      "parsched_d_lat{quantile=\"0.5\"} 1.5\n"
      "parsched_d_lat{quantile=\"0.9\"} 2\n"
      "parsched_d_lat{quantile=\"0.99\"} 2\n";
  EXPECT_EQ(obs::exposition_text(reg.snapshot()), expected);
}

TEST(Exposition, EmptySnapshotIsEmptyText) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(obs::exposition_text(reg.snapshot()), "");
}

// The serve stats verb scrapes while strands are mutating the registry;
// under TSan this asserts the whole snapshot->exposition path is clean.
TEST(Exposition, ConcurrentScrapeWhileWriting) {
  obs::MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread writer([&reg, &stop] {  // lint: thread-ok
    for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
      reg.counter("ops").inc();
      reg.histogram("lat", {0.5, 1.0}).observe(0.3 * (i % 5));
    }
  });
  for (int i = 0; i < 100; ++i) {
    const std::string text = obs::exposition_text(reg.snapshot());
    if (!text.empty()) {
      EXPECT_NE(text.find("# TYPE parsched_ops counter"),
                std::string::npos);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();  // lint: thread-ok
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, RecordsAndDumpsDeterministicJsonl) {
  obs::FlightRecorder rec(8);
  rec.record(obs::FlightEvent::kAdmit, 7, 1.0, 2.5, 3);
  rec.record(obs::FlightEvent::kDecision, 0, 1.5, 0.25, 4);
  rec.record(obs::FlightEvent::kComplete, 7, 2.0, 1.0, 3);
  EXPECT_EQ(rec.recorded(), 3u);

  std::ostringstream os;
  rec.dump_jsonl(os, "unit_test");
  const std::string expected =
      "{\"ev\": \"header\", \"kind\": \"parsched-flight-record\", "
      "\"schema\": 1, \"reason\": \"unit_test\", \"capacity\": 8, "
      "\"recorded\": 3, \"dropped\": 0, \"events\": 3}\n"
      "{\"ev\": \"admit\", \"seq\": 0, \"id\": 7, \"t\": 1, \"v\": 2.5, "
      "\"a\": 3}\n"
      "{\"ev\": \"decision\", \"seq\": 1, \"id\": 0, \"t\": 1.5, "
      "\"v\": 0.25, \"a\": 4}\n"
      "{\"ev\": \"complete\", \"seq\": 2, \"id\": 7, \"t\": 2, \"v\": 1, "
      "\"a\": 3}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(FlightRecorder, RingWrapKeepsOnlyTheNewestEvents) {
  obs::FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(obs::FlightEvent::kNote, i, static_cast<double>(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first; seq identifies the drop count.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
  std::ostringstream os;
  rec.dump_jsonl(os, "wrap");
  EXPECT_NE(os.str().find("\"dropped\": 6"), std::string::npos);
  EXPECT_NE(os.str().find("\"events\": 4"), std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  obs::FlightRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(obs::FlightEvent::kStall, 1, 0.0);
  EXPECT_EQ(rec.snapshot().size(), 1u);
}

TEST(FlightRecorder, DumpToFileWritesAndFailsSoftly) {
  obs::FlightRecorder rec(4);
  rec.record(obs::FlightEvent::kGuardTrip, 3, 1.0);
  const std::string path = testing::TempDir() + "flight_unit.jsonl";
  rec.set_dump_path(path);
  EXPECT_TRUE(rec.dump_to_file("unit"));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"reason\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\": \"guard_trip\""), std::string::npos);
  std::filesystem::remove(path);
  // A bad path must not throw — the dump rides failure paths where a
  // second exception would terminate.
  rec.set_dump_path("test_obs_nonexistent_dir/flight.jsonl");
  EXPECT_FALSE(rec.dump_to_file("unit"));
  rec.set_dump_path("");
  EXPECT_FALSE(rec.dump_to_file("unit"));
}

// Concurrent writers against a small ring; the reader must only ever
// see fully published events with sane fields. TSan-checked in CI.
TEST(FlightRecorder, ConcurrentRecordAndSnapshot) {
  obs::FlightRecorder rec(16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;  // lint: thread-ok
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&rec, &stop, w] {
      for (std::uint64_t i = 0; !stop.load(std::memory_order_acquire);
           ++i) {
        rec.record(obs::FlightEvent::kDecision, w, static_cast<double>(i),
                   1.0, 2);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    for (const obs::FlightRecorder::Event& e : rec.snapshot()) {
      ASSERT_EQ(e.kind, obs::FlightEvent::kDecision);
      ASSERT_LT(e.id, 2u);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();  // lint: thread-ok
}

// The engine records admissions, decisions, completions into an
// attached recorder — and the ring contents are deterministic for a
// deterministic run.
TEST(FlightRecorder, EngineWiresDecisionsAdmissionsCompletions) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.5, 1.0, 0.5)});
  IntermediateSrpt sched;
  obs::FlightRecorder rec(64);
  EngineConfig ec;
  ec.recorder = &rec;
  const SimResult r = simulate(inst, sched, ec);

  std::size_t admits = 0;
  std::size_t completes = 0;
  std::size_t decisions = 0;
  for (const obs::FlightRecorder::Event& e : rec.snapshot()) {
    if (e.kind == obs::FlightEvent::kAdmit) ++admits;
    if (e.kind == obs::FlightEvent::kComplete) ++completes;
    if (e.kind == obs::FlightEvent::kDecision) ++decisions;
  }
  EXPECT_EQ(admits, 2u);
  EXPECT_EQ(completes, 2u);
  EXPECT_EQ(decisions, r.decisions);

  // Identical rerun: identical ring (events carry sim time, not wall).
  obs::FlightRecorder rec2(64);
  EngineConfig ec2;
  ec2.recorder = &rec2;
  IntermediateSrpt sched2;
  (void)simulate(inst, sched2, ec2);
  std::ostringstream a, b;
  rec.dump_jsonl(a, "x");
  rec2.dump_jsonl(b, "x");
  EXPECT_EQ(a.str(), b.str());
}

// ------------------------------------------------- metrics snapshot JSONL

TEST(MetricsSnapshotJsonl, HeaderAndLineShapes) {
  const std::string header = obs::metrics_snapshot_header(2.5);
  EXPECT_EQ(header,
            "{\"ev\":\"header\",\"kind\":\"parsched-metrics-snapshot\","
            "\"schema\":1,\"interval_seconds\":2.5}");

  obs::MetricsRegistry reg;
  reg.counter("x").inc(2);
  const std::string line =
      obs::metrics_snapshot_line(reg.snapshot(), 4, 1.25);
  std::string err;
  ASSERT_TRUE(obs::json_syntax_valid(line, &err)) << err;
  EXPECT_EQ(line,
            "{\"ev\":\"snapshot\",\"seq\":4,\"t\":1.25,\"metrics\":"
            "[{\"name\":\"x\",\"kind\":\"counter\",\"value\":2}]}");
}

// ------------------------------------------------------------------ JSON

TEST(Json, WriterEmitsValidNestedDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.kv("s", "a\"b\\c\n");
  w.kv("i", std::int64_t{-3});
  w.kv("d", 0.5);
  w.kv("b", true);
  w.key("arr").begin_array().value(1).value(2.25).null().end_array();
  w.key("nested").begin_object().end_object();
  w.end_object();
  EXPECT_TRUE(w.done());
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(os.str(), &err)) << err << "\n"
                                                      << os.str();
  EXPECT_NE(os.str().find("\\\""), std::string::npos);
  EXPECT_NE(os.str().find("\\n"), std::string::npos);
}

TEST(Json, NumbersAreShortestRoundTrip) {
  EXPECT_EQ(obs::json_number(1.0), "1");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(1.0 / 0.0), "null");  // lint: float-eq-ok
}

TEST(Json, SyntaxCheckerAcceptsAndRejects) {
  EXPECT_TRUE(obs::json_syntax_valid(R"({"a": [1, 2.5e-3, "x", null]})"));
  EXPECT_TRUE(obs::json_syntax_valid("[]"));
  EXPECT_TRUE(obs::json_syntax_valid("-0.25"));
  std::string err;
  EXPECT_FALSE(obs::json_syntax_valid("{\"a\": }", &err));
  EXPECT_FALSE(obs::json_syntax_valid("[1,]", &err));
  EXPECT_FALSE(obs::json_syntax_valid("{\"a\": 1} trailing", &err));
  EXPECT_FALSE(obs::json_syntax_valid("01", &err));
  EXPECT_FALSE(obs::json_syntax_valid("\"unterminated", &err));
  EXPECT_FALSE(obs::json_syntax_valid("", &err));
}

// ------------------------------------------------- engine instrumentation

TEST(RunStats, AbsentOnTheDefaultUninstrumentedPath) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.5, 1.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  EXPECT_FALSE(r.stats.has_value());
}

TEST(RunStats, CollectedWhenEnabled) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 60;
  cfg.P = 16.0;
  cfg.seed = 7;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  EngineConfig ec;
  ec.collect_stats = true;
  const SimResult r = simulate(inst, sched, ec);

  ASSERT_TRUE(r.stats.has_value());
  const obs::RunStats& s = *r.stats;
  EXPECT_EQ(s.decisions, r.decisions);
  EXPECT_EQ(s.completions, inst.size());
  EXPECT_EQ(s.arrivals, inst.size());
  // Every decision lands one observation in both histograms.
  EXPECT_EQ(s.alive_count.total, r.decisions);
  EXPECT_EQ(s.decision_interval.total, r.decisions);
  // The three buckets partition a subset of the run's wall time.
  EXPECT_GE(s.decide_seconds, 0.0);
  EXPECT_GE(s.solver_seconds, 0.0);
  EXPECT_GE(s.observer_seconds, 0.0);
  EXPECT_LE(s.decide_seconds + s.solver_seconds + s.observer_seconds,
            s.wall_seconds + 1e-6);
  EXPECT_GT(s.wall_seconds, 0.0);
}

TEST(RunStats, EngineMirrorsCountersIntoRegistry) {
  Instance inst(2, {make_job(0, 0.0, 2.0, 0.5), make_job(1, 0.0, 1.0, 0.5)});
  IntermediateSrpt sched;
  obs::MetricsRegistry reg;
  EngineConfig ec;
  ec.collect_stats = true;
  ec.metrics = &reg;
  const SimResult r = simulate(inst, sched, ec);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("engine.runs")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("engine.decisions")->value,
                   static_cast<double>(r.decisions));
  EXPECT_DOUBLE_EQ(snap.find("engine.completions")->value, 2.0);
  EXPECT_DOUBLE_EQ(snap.find("engine.arrivals")->value, 2.0);
  EXPECT_EQ(snap.find("engine.decide")->count, 1u);
}

// ----------------------------------------------------------- trace export

TEST(TraceExport, ChromeTraceParsesAndHasJobAndCounterTracks) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 20;
  cfg.P = 16.0;
  cfg.seed = 3;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&exporter});

  const std::string path = "test_obs_chrome.trace.json";
  exporter.write_chrome_trace(path);
  const std::string text = slurp(path);
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(text, &err)) << err;
  // Per-job allocation tracks, instant events, and counter tracks.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"alive\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"utilization\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_FALSE(exporter.segments().empty());
  EXPECT_EQ(exporter.dropped(), 0u);
  std::filesystem::remove(path);
}

TEST(TraceExport, SegmentsMatchAllocationTrace) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.P = 8.0;
  cfg.seed = 11;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  obs::TraceExporter exporter;
  AllocationTrace trace;
  (void)simulate(inst, sched, {}, {&exporter, &trace});
  ASSERT_EQ(exporter.segments().size(), trace.segments().size());
  for (std::size_t i = 0; i < trace.segments().size(); ++i) {
    EXPECT_EQ(exporter.segments()[i].job, trace.segments()[i].job);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].t0, trace.segments()[i].t0);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].t1, trace.segments()[i].t1);
    EXPECT_DOUBLE_EQ(exporter.segments()[i].share,
                     trace.segments()[i].share);
  }
}

TEST(TraceExport, JsonlGoldenFileOnFixedInstance) {
  // Exact-arithmetic instance: all event times are small integers, so the
  // serialized log is byte-stable across platforms.
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.0), make_job(1, 1.0, 1.0, 0.0)});
  SequentialSrpt sched;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&exporter});

  const std::string path = "test_obs_golden.jsonl";
  exporter.write_jsonl(path);
  const std::string expected =
      R"({"ev":"header","schema":1,"kind":"parsched-trace","end_time":3,"dropped":0}
{"ev":"arrival","t":0,"job":0,"size":2}
{"ev":"decision","t":0}
{"ev":"arrival","t":1,"job":1,"size":1}
{"ev":"decision","t":1}
{"ev":"completion","t":2,"job":0}
{"ev":"decision","t":2}
{"ev":"completion","t":3,"job":1}
{"ev":"counters","t":0,"alive":1,"allocated":1}
{"ev":"counters","t":1,"alive":2,"allocated":1}
{"ev":"counters","t":2,"alive":1,"allocated":1}
{"ev":"segment","job":0,"t0":0,"t1":2,"share":1}
{"ev":"segment","job":1,"t0":2,"t1":3,"share":1}
)";
  EXPECT_EQ(slurp(path), expected);
  // Every line must itself be valid JSON.
  std::istringstream lines(slurp(path));
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::json_syntax_valid(line)) << line;
  }
  std::filesystem::remove(path);
}

TEST(TraceExport, EventCapCountsDrops) {
  obs::TraceExporter::Config tc;
  tc.max_events = 3;
  obs::TraceExporter exporter(tc);
  RandomWorkloadConfig cfg;
  cfg.machines = 2;
  cfg.jobs = 20;
  cfg.P = 4.0;
  cfg.seed = 1;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  (void)simulate(inst, sched, {}, {&exporter});
  EXPECT_LE(exporter.events().size() + exporter.counters().size(), 3u);
  EXPECT_GT(exporter.dropped(), 0u);
  EXPECT_FALSE(exporter.segments().empty());  // segments are never dropped
}

// ---------------------------------------------------------------- reports

TEST(Report, BenchReportSchemaRoundTrips) {
  RandomWorkloadConfig cfg;
  cfg.machines = 4;
  cfg.jobs = 30;
  cfg.P = 8.0;
  cfg.seed = 5;
  const Instance inst = make_random_instance(cfg);
  IntermediateSrpt sched;
  EngineConfig ec;
  ec.collect_stats = true;
  const double t0 = obs::monotonic_seconds();
  const SimResult r = simulate(inst, sched, ec);
  const double wall = obs::monotonic_seconds() - t0;

  obs::BenchReport report("unit_test");
  report.set_meta("claim", "round-trip");
  report.set_meta("machines", 4.0);
  report.add_run(obs::RunReport::from_result("isrpt", 4, r, wall));
  Table table({"policy", "flow"});
  table.add_row({std::string("isrpt"), r.total_flow});
  report.add_table("results", table);
  obs::MetricsRegistry reg;
  reg.counter("runs").inc();
  report.set_metrics(reg.snapshot());

  const std::string text = report.to_json();
  std::string err;
  ASSERT_TRUE(obs::json_syntax_valid(text, &err)) << err << "\n" << text;
  EXPECT_NE(text.find("\"schema\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"parsched-bench-report\""),
            std::string::npos);
  // Schema 2: every serialized histogram carries interpolated quantiles.
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"decide_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"decision_interval\""), std::string::npos);
  EXPECT_NE(text.find("\"alive_count\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"columns\""), std::string::npos);

  const std::string path = "test_obs_report.json";
  report.write(path);
  EXPECT_TRUE(obs::json_syntax_valid(slurp(path), &err)) << err;
  std::filesystem::remove(path);
}

TEST(Report, UninstrumentedRunSerializesNullStats) {
  Instance inst(1, {make_job(0, 0.0, 1.0, 0.5)});
  IntermediateSrpt sched;
  const SimResult r = simulate(inst, sched);
  obs::BenchReport report("nostats");
  report.add_run(obs::RunReport::from_result("isrpt", 1, r));
  EXPECT_NE(report.to_json().find("\"stats\": null"), std::string::npos);
  EXPECT_TRUE(obs::json_syntax_valid(report.to_json()));
}

TEST(Report, PathRespectsEnvironment) {
  ::unsetenv("PARSCHED_REPORT_DIR");
  EXPECT_EQ(obs::report_path("x"), "BENCH_x.json");
  ::setenv("PARSCHED_REPORT_DIR", "/tmp", 1);
  EXPECT_EQ(obs::report_path("x"), "/tmp/BENCH_x.json");
  ::unsetenv("PARSCHED_REPORT_DIR");

  ::unsetenv("PARSCHED_REPORT");
  EXPECT_FALSE(obs::report_enabled());
  ::setenv("PARSCHED_REPORT", "1", 1);
  EXPECT_TRUE(obs::report_enabled());
  ::setenv("PARSCHED_REPORT", "0", 1);
  EXPECT_FALSE(obs::report_enabled());
  ::unsetenv("PARSCHED_REPORT");
}

// A fresh PARSCHED_REPORT_DIR (parents included) is created on demand:
// pointing it at a nonexistent nested directory must not fail the first
// open_output, and the report must land inside it.
TEST(Report, MissingReportDirIsCreated) {
  const std::string dir = testing::TempDir() + "parsched_report_dir_test/n1/n2";
  std::filesystem::remove_all(testing::TempDir() +
                              "parsched_report_dir_test");
  ASSERT_FALSE(std::filesystem::exists(dir));

  ::setenv("PARSCHED_REPORT_DIR", dir.c_str(), 1);
  const std::string path = obs::report_path("made");
  ::unsetenv("PARSCHED_REPORT_DIR");

  EXPECT_EQ(path, dir + "/BENCH_made.json");
  EXPECT_TRUE(std::filesystem::is_directory(dir));

  obs::BenchReport report("made");
  report.write(path);  // must succeed without pre-creating anything
  EXPECT_TRUE(std::filesystem::exists(path));
  std::string err;
  EXPECT_TRUE(obs::json_syntax_valid(slurp(path), &err)) << err;
  std::filesystem::remove_all(testing::TempDir() +
                              "parsched_report_dir_test");
}

// ----------------------------------------------------- checked file output

TEST(FileWriters, WriteFailuresRaiseInsteadOfTruncating) {
  Instance inst(1, {make_job(0, 0.0, 2.0, 0.5)});
  IntermediateSrpt sched;
  AllocationTrace trace;
  obs::TraceExporter exporter;
  (void)simulate(inst, sched, {}, {&trace, &exporter});

  // Unopenable path: directory component does not exist.
  const std::string bad = "test_obs_nonexistent_dir/out.csv";
  EXPECT_THROW(trace.write_csv(bad), std::runtime_error);
  EXPECT_THROW(exporter.write_chrome_trace(bad), std::runtime_error);
  EXPECT_THROW(exporter.write_jsonl(bad), std::runtime_error);

  // Full device: opens fine, every write is lost — the flush check in
  // finish_output must turn that into an error (the original write_csv
  // silently produced an empty file here).
  if (std::filesystem::exists("/dev/full")) {
    EXPECT_THROW(trace.write_csv("/dev/full"), std::runtime_error);
    EXPECT_THROW(exporter.write_jsonl("/dev/full"), std::runtime_error);
    obs::BenchReport report("full");
    EXPECT_THROW(report.write("/dev/full"), std::runtime_error);
  }
}

}  // namespace
}  // namespace parsched
