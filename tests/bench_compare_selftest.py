#!/usr/bin/env python3
"""Self-test for tools/bench_compare.py — the perf-regression gate.

Builds baseline/candidate report pairs under a temp dir and asserts the
gate's verdicts, most importantly: an injected 20% decision-rate
regression MUST fail even under --auto-scale calibration, and a
uniformly slower machine MUST pass with it. Run via ctest:

  bench_compare_selftest.py <path-to-bench_compare.py>
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def report():
    return {
        "schema": 2,
        "kind": "parsched-bench-report",
        "name": "fixture",
        "meta": {},
        "runs": [{
            "policy": "isrpt",
            "jobs": 100,
            "machines": 4,
            "total_flow": 500.0,
            "weighted_flow": 500.0,
            "fractional_flow": 450.0,
            "makespan": 60.0,
            "decisions": 220,
            "events": 300,
            "wall_seconds": 0.4,
        }],
        "tables": [
            {
                "name": "dense_alive",
                "columns": ["n", "reps", "decisions_per_sec"],
                "rows": [
                    [100, 10, 400000.0],
                    [1000, 10, 90000.0],
                    [10000, 4, 11000.0],
                ],
            },
            {
                "name": "flight_recorder_overhead",
                "columns": ["n", "overhead_pct"],
                "rows": [[1000, 1.2]],
            },
            {
                "name": "incremental_orders",
                "columns": ["n", "decisions", "decisions_per_sec_rebuild",
                            "decisions_per_sec_incremental",
                            "decide_speedup"],
                "rows": [
                    [100000, 320, 800.0, 1600.0, 16.0],
                    [1000000, 48, 40.0, 85.0, 12.0],
                ],
            },
            {
                "name": "client_latency",
                "columns": ["metric", "mean_ms", "p50_ms", "p95_ms",
                            "p99_ms"],
                "rows": [["client_latency", 0.08, 0.06, 0.2, 0.4]],
            },
            {
                "name": "cluster_latency",
                "columns": ["metric", "count", "p50_ms", "p95_ms",
                            "p99_ms"],
                "rows": [["latency", 25000, 0.03, 0.38, 0.59]],
            },
            {
                "name": "cluster_throughput",
                "columns": ["metric", "sessions", "shards", "requests",
                            "requests_per_sec", "jobs_per_sec"],
                "rows": [["throughput", 1000, 4, 25000, 33000.0,
                          27000.0]],
            },
            {
                "name": "rate_kernel",
                "columns": ["case", "population", "n",
                            "scalar_melems_per_sec",
                            "batch_melems_per_sec", "fast_melems_per_sec",
                            "batch_speedup", "fast_speedup"],
                "rows": [
                    ["shared_n10000", "shared", 10000, 40.0, 42.0, 900.0,
                     1.05, 22.5],
                    ["mixed_n10000", "mixed", 10000, 38.0, 39.0, 41.0,
                     1.03, 1.08],
                ],
            },
        ],
        "metrics": [{
            "name": "serve.client.latency_ms",
            "kind": "histogram",
            "histogram": {
                "bounds": [1.0],
                "counts": [9, 1],
                "total": 10,
                "sum": 2.0,
                "p50": 0.06,
                "p90": 0.3,
                "p99": 0.4,
            },
        }],
    }


def scale_rates(doc, factor):
    """Uniform machine-speed change: rates and latencies move together.

    decide_speedup stays fixed — a paired same-machine ratio does not
    move with machine speed, which is exactly why it must be gated by an
    absolute floor and not a relative (auto-scaled) band.
    """
    for t in doc["tables"]:
        if t["name"] == "dense_alive":
            i = t["columns"].index("decisions_per_sec")
            for row in t["rows"]:
                row[i] *= factor
        if t["name"] == "incremental_orders":
            for col in ("decisions_per_sec_rebuild",
                        "decisions_per_sec_incremental"):
                i = t["columns"].index(col)
                for row in t["rows"]:
                    row[i] *= factor
        if t["name"] == "client_latency":
            for col in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
                i = t["columns"].index(col)
                for row in t["rows"]:
                    row[i] /= factor
        if t["name"] == "cluster_latency":
            for col in ("p50_ms", "p95_ms", "p99_ms"):
                i = t["columns"].index(col)
                for row in t["rows"]:
                    row[i] /= factor
        if t["name"] == "cluster_throughput":
            for col in ("requests_per_sec", "jobs_per_sec"):
                i = t["columns"].index(col)
                for row in t["rows"]:
                    row[i] *= factor
        if t["name"] == "rate_kernel":
            # Element rates move with the machine; the speedup columns
            # are paired ratios and stay put (absolute-floor territory).
            for col in ("scalar_melems_per_sec", "batch_melems_per_sec",
                        "fast_melems_per_sec"):
                i = t["columns"].index(col)
                for row in t["rows"]:
                    row[i] *= factor
    for m in doc["metrics"]:
        if m["kind"] == "histogram":
            for q in ("p50", "p90", "p99"):
                m["histogram"][q] /= factor
    return doc


def run_gate(tool: Path, base: Path, cand: Path, *flags) -> int:
    return subprocess.run(
        [sys.executable, str(tool), str(base), str(cand), *flags],
        capture_output=True,
        text=True,
        check=False,
    ).returncode


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: bench_compare_selftest.py <bench_compare.py>",
              file=sys.stderr)
        return 2
    tool = Path(sys.argv[1]).resolve()
    failures: list[str] = []

    baseline = report()

    # Candidate mutators, expected exit with the listed flags.
    def regressed_one_gate(doc):
        # THE acceptance case: one decision-rate gate drops 20% while
        # its siblings hold — must fail even with calibration on.
        t = doc["tables"][0]
        i = t["columns"].index("decisions_per_sec")
        t["rows"][2][i] *= 0.8
        return doc

    def uniformly_slower(doc):
        return scale_rates(doc, 0.5)

    def uniformly_faster(doc):
        return scale_rates(doc, 2.0)

    def flow_drift(doc):
        doc["runs"][0]["total_flow"] += 1.0
        return doc

    def overhead_blown(doc):
        t = doc["tables"][1]
        i = t["columns"].index("overhead_pct")
        t["rows"][0][i] = 7.5
        return doc

    def p99_spike(doc):
        t = doc["tables"][3]
        i = t["columns"].index("p99_ms")
        t["rows"][0][i] *= 1.5
        return doc

    def incremental_rate_regressed(doc):
        # The incremental arm's decision rate drops 30% while every
        # sibling gate holds — must fail even under calibration.
        t = doc["tables"][2]
        i = t["columns"].index("decisions_per_sec_incremental")
        t["rows"][0][i] *= 0.7
        return doc

    def decide_speedup_floor_broken(doc):
        # The paired decide-phase ratio falls below the 5x acceptance
        # floor: an absolute candidate-only verdict, like overhead_pct.
        t = doc["tables"][2]
        i = t["columns"].index("decide_speedup")
        t["rows"][0][i] = 3.4
        return doc

    def cluster_throughput_regressed(doc):
        # The sharded soak retires 25% fewer requests per second while
        # every sibling gate holds — a cluster-plane regression the
        # calibration must not absorb.
        t = next(t for t in doc["tables"]
                 if t["name"] == "cluster_throughput")
        i = t["columns"].index("requests_per_sec")
        t["rows"][0][i] *= 0.75
        return doc

    def cluster_p99_spike(doc):
        # The fleet p99 round-trip blows up 60% under an unchanged
        # workload: the directional latency gate must catch it.
        t = next(t for t in doc["tables"]
                 if t["name"] == "cluster_latency")
        i = t["columns"].index("p99_ms")
        t["rows"][0][i] *= 1.6
        return doc

    def kernel_rate_regressed(doc):
        # The batch arm loses 25% element throughput while every sibling
        # gate holds — must fail even under calibration.
        t = next(t for t in doc["tables"] if t["name"] == "rate_kernel")
        i = t["columns"].index("batch_melems_per_sec")
        t["rows"][0][i] *= 0.75
        return doc

    def kernel_shared_floor_broken(doc):
        # The shared-population fast-vs-scalar ratio falls below the 2x
        # acceptance floor: absolute, candidate-only, filtered to the
        # rows where the memo can fire.
        t = next(t for t in doc["tables"] if t["name"] == "rate_kernel")
        i = t["columns"].index("fast_speedup")
        t["rows"][0][i] = 1.4
        return doc

    def kernel_mixed_below_two(doc):
        # A mixed-population fast_speedup below 2 is EXPECTED (the memo
        # cannot fire) — the filtered floor must not flag it.
        t = next(t for t in doc["tables"] if t["name"] == "rate_kernel")
        i = t["columns"].index("fast_speedup")
        t["rows"][1][i] = 0.97
        return doc

    cases = [
        ("identical", lambda d: d, ["--auto-scale"], 0),
        ("kernel_rate_regressed", kernel_rate_regressed,
         ["--auto-scale"], 1),
        ("kernel_shared_floor_broken", kernel_shared_floor_broken,
         ["--auto-scale"], 1),
        ("kernel_mixed_below_two", kernel_mixed_below_two,
         ["--auto-scale"], 0),
        ("regressed_one_gate", regressed_one_gate, ["--auto-scale"], 1),
        ("regressed_no_scale", regressed_one_gate, [], 1),
        ("uniformly_slower_scaled", uniformly_slower, ["--auto-scale"], 0),
        ("uniformly_slower_raw", uniformly_slower, [], 1),
        ("uniformly_faster", uniformly_faster, ["--auto-scale"], 0),
        ("flow_drift", flow_drift, ["--auto-scale"], 1),
        ("overhead_blown", overhead_blown, ["--auto-scale"], 1),
        ("p99_spike", p99_spike, ["--auto-scale", "--tolerance=0.15"], 1),
        ("p99_spike_loose", p99_spike, ["--tolerance=0.60"], 0),
        ("incremental_rate_regressed", incremental_rate_regressed,
         ["--auto-scale"], 1),
        ("decide_speedup_floor_broken", decide_speedup_floor_broken,
         ["--auto-scale"], 1),
        # The floor is candidate-only: a *baseline* whose speedup column
        # later improves must not be read as a regression band.
        ("decide_speedup_floor_loose_tolerance",
         decide_speedup_floor_broken, ["--tolerance=0.99"], 1),
        ("cluster_throughput_regressed", cluster_throughput_regressed,
         ["--auto-scale"], 1),
        ("cluster_throughput_regressed_raw", cluster_throughput_regressed,
         [], 1),
        ("cluster_p99_spike", cluster_p99_spike, ["--auto-scale"], 1),
    ]

    with tempfile.TemporaryDirectory(prefix="parsched-gate-") as tmp:
        root = Path(tmp)
        base_path = root / "baseline.json"
        base_path.write_text(json.dumps(baseline), encoding="utf-8")
        for name, mutate, flags, expected in cases:
            cand = mutate(copy.deepcopy(baseline))
            cand_path = root / f"{name}.json"
            cand_path.write_text(json.dumps(cand), encoding="utf-8")
            got = run_gate(tool, base_path, cand_path, *flags)
            if got != expected:
                failures.append(
                    f"{name} {flags}: expected exit {expected}, got {got}"
                )

        # --auto-scale refuses to calibrate on too few gates (it would
        # be calibrating on the very gate under test).
        thin = copy.deepcopy(baseline)
        thin["tables"] = [thin["tables"][0]]
        thin["tables"][0]["rows"] = thin["tables"][0]["rows"][:2]
        thin["metrics"] = []
        thin_path = root / "thin.json"
        thin_path.write_text(json.dumps(thin), encoding="utf-8")
        if run_gate(tool, thin_path, thin_path, "--auto-scale") != 2:
            failures.append("thin --auto-scale: expected usage exit 2")

    if failures:
        print("bench_compare_selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"bench_compare_selftest OK ({len(cases) + 1} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
