#!/usr/bin/env bash
# Cross-process snapshot continuation, over the real NDJSON transport:
#
#   process A: open a session, admit a head of jobs, snapshot to a file,
#              then admit the tail and finish (the donor result);
#   process B: a FRESH server process restores the snapshot, admits the
#              same tail, and finishes.
#
# The two finish responses must be byte-identical — doubles render as
# shortest-round-trip decimals, so equal bytes means bit-equal results.
#
#   serve_snapshot_roundtrip.sh <path-to-parsched-binary>
set -eu

BIN=${1:?usage: serve_snapshot_roundtrip.sh <parsched binary>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SNAP="$WORK/session.psnp"

# Responses of inline ops and strand ops may interleave on stdout, so
# pick lines by request id, never by position.
response() {  # response <file> <id>
  grep -F "\"id\":$2," "$1" || grep -F "\"id\":$2}" "$1"
}

head_jobs() {
  cat <<EOF
{"op":"admit","id":10,"session":1,"job":{"id":0,"release":0,"size":2.5,"curve":"pow:0.5"}}
{"op":"admit","id":11,"session":1,"job":{"id":1,"release":0.4,"size":1.25,"curve":"seq"}}
{"op":"admit","id":12,"session":1,"job":{"id":2,"release":0.9,"size":3,"curve":"pow:0.75"}}
{"op":"advance","id":13,"session":1,"to":1.1}
EOF
}

tail_jobs() {
  cat <<EOF
{"op":"admit","id":30,"session":1,"job":{"id":3,"release":1.3,"size":1.5,"curve":"pow:0.3"}}
{"op":"admit","id":31,"session":1,"job":{"id":4,"release":1.7,"size":2,"curve":"par"}}
{"op":"advance","id":32,"session":1,"to":2}
{"op":"finish","id":40,"session":1}
{"op":"shutdown","id":50}
EOF
}

# Process A: head, snapshot, tail — the donor run.
{
  echo '{"op":"open","id":1,"policy":"quantized-equi:0.25","machines":3}'
  head_jobs
  echo "{\"op\":\"snapshot\",\"id\":20,\"session\":1,\"path\":\"$SNAP\"}"
  tail_jobs
} | "$BIN" serve --stdio > "$WORK/donor.out"

for id in 1 10 11 12 13 20 40 50; do
  if ! response "$WORK/donor.out" "$id" | grep -q '"ok":true'; then
    echo "FAIL: donor request $id did not succeed:" >&2
    cat "$WORK/donor.out" >&2
    exit 1
  fi
done
[ -s "$SNAP" ] || { echo "FAIL: snapshot file is empty" >&2; exit 1; }

# Process B: a fresh process restores the blob and replays the tail.
# The restored session gets id 1 again (fresh server, ids start at 1).
{
  echo "{\"op\":\"restore\",\"id\":2,\"path\":\"$SNAP\"}"
  tail_jobs
} | "$BIN" serve --stdio > "$WORK/clone.out"

for id in 2 30 31 32 40 50; do
  if ! response "$WORK/clone.out" "$id" | grep -q '"ok":true'; then
    echo "FAIL: clone request $id did not succeed:" >&2
    cat "$WORK/clone.out" >&2
    exit 1
  fi
done

response "$WORK/donor.out" 40 > "$WORK/donor.finish"
response "$WORK/clone.out" 40 > "$WORK/clone.finish"
if ! diff -u "$WORK/donor.finish" "$WORK/clone.finish"; then
  echo "FAIL: restored continuation diverged from the donor" >&2
  exit 1
fi

# The finish payload must carry real results, not an empty husk.
grep -q '"jobs":5' "$WORK/donor.finish" || {
  echo "FAIL: donor finish did not report 5 jobs:" >&2
  cat "$WORK/donor.finish" >&2
  exit 1
}

# Corrupt blob: a fresh process must reject it with ok:false, exit 0.
printf 'PSNPgarbage' > "$WORK/bad.psnp"
echo "{\"op\":\"restore\",\"id\":3,\"path\":\"$WORK/bad.psnp\"}
{\"op\":\"shutdown\",\"id\":4}" | "$BIN" serve --stdio > "$WORK/bad.out"
response "$WORK/bad.out" 3 | grep -q '"ok":false' || {
  echo "FAIL: corrupt snapshot was not rejected:" >&2
  cat "$WORK/bad.out" >&2
  exit 1
}

echo "serve_snapshot_roundtrip: OK"
