// Tests for check/alloc_guard.hpp — the dynamic hot-path allocation
// verifier — and the engine's PARSCHED_AUDIT=1 fences around its decision
// steps.
//
// The final tests are the PR's regression proof: a dense-alive
// n=10'000 instance driven to completion with the audit fences armed
// performs zero heap allocations across >= 10'000 warm decision steps —
// across every engine arm: the persistent IncrementalOrders heaps, the
// ContextCache sort paths (incremental off), and the refimpl-twin
// fallback path (use_context_cache = false). The incremental runs also
// execute the engine-side heap audit (IncrementalOrders::audit) at every
// decision, so heap-vs-alive consistency is checked 10'000 times per run.
//
// Every allocation-counting test skips itself when the counting operator
// new/delete replacement is compiled out (PARSCHED_ALLOC_HOOK=OFF, e.g.
// under ASan/TSan whose interceptors own the allocator symbols).

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "check/alloc_guard.hpp"
#include "check/contract.hpp"
#include "exec/thread_pool.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/instance.hpp"

namespace parsched {
namespace {

#define SKIP_WITHOUT_HOOK()                                            \
  do {                                                                 \
    if (!alloc_hook_active()) {                                        \
      GTEST_SKIP() << "PARSCHED_ALLOC_HOOK compiled out (sanitizer "   \
                      "build); nothing to count";                      \
    }                                                                  \
  } while (false)

TEST(AllocGuard, CountsAllocationsWhenUnguarded) {
  SKIP_WITHOUT_HOOK();
  const AllocStats before = alloc_stats();
  {
    auto p = std::make_unique<std::uint64_t>(42);
    ASSERT_EQ(*p, 42u);
  }
  const AllocStats after = alloc_stats();
  EXPECT_GE(after.allocations, before.allocations + 1);
  EXPECT_GE(after.deallocations, before.deallocations + 1);
  EXPECT_GE(after.bytes, before.bytes + sizeof(std::uint64_t));
}

// NOTE on style in the trip tests below: while a guard is armed, even
// the *test harness* must not allocate — a gtest failure message or a
// std::string built from ex.what() would itself trip the guard. So the
// armed sections record plain bools (std::strstr, no allocation) and
// the assertions run after the guard scope closes. Trip attempts call
// ::operator new directly: a `new int` whose result is unused is an
// elidable new-expression the optimizer may delete, but direct operator
// new calls may not be elided.
TEST(AllocGuard, TripsOnAllocationInGuardedScope) {
  SKIP_WITHOUT_HOOK();
  bool tripped = false;
  bool names_scope = false;
  bool names_kind = false;
  bool still_armed_after_catch = false;
  bool trips_again = false;
  {
    AllocGuard guard("trip-test scope");
    try {
      std::ignore = ::operator new(16);  // lint: alloc-ok (deliberate trip)
    } catch (const ContractViolation& ex) {
      tripped = true;
      names_scope = std::strstr(ex.what(), "trip-test scope") != nullptr;
      names_kind = std::strstr(ex.what(), "PARSCHED_ALLOC_GUARD") != nullptr;
    }
    // A trip caught inside the guard's scope leaves it armed and
    // functional for the next offense.
    still_armed_after_catch = AllocGuard::depth() == 1;
    try {
      std::ignore = ::operator new(8);  // lint: alloc-ok (deliberate trip)
    } catch (const ContractViolation&) {
      trips_again = true;
    }
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(names_scope);
  EXPECT_TRUE(names_kind);
  EXPECT_TRUE(still_armed_after_catch);
  EXPECT_TRUE(trips_again);
  EXPECT_EQ(AllocGuard::depth(), 0);
}

TEST(AllocGuard, SilentOnAllocationFreePath) {
  SKIP_WITHOUT_HOOK();
  std::vector<double> scratch(1024, 1.0);  // preallocated outside the guard
  {
    AllocGuard guard("allocation-free scope");
    double acc = 0.0;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      scratch[i] = scratch[i] * 0.5 + 1.0;
      acc += scratch[i];
    }
    ASSERT_GT(acc, 0.0);
    EXPECT_EQ(guard.observed(), 0u);
  }
  EXPECT_EQ(AllocGuard::depth(), 0);
}

TEST(AllocGuard, NestedGuardsNameTheInnermostScope) {
  SKIP_WITHOUT_HOOK();
  int depth_outer = -1;
  int depth_inner = -1;
  int depth_after_inner = -1;
  bool inner_named = false;
  bool outer_named = false;
  {
    AllocGuard outer("outer scope");
    depth_outer = AllocGuard::depth();
    {
      AllocGuard inner("inner scope");
      depth_inner = AllocGuard::depth();
      try {
        std::ignore = ::operator new(16);  // lint: alloc-ok (deliberate)
      } catch (const ContractViolation& ex) {
        inner_named = std::strstr(ex.what(), "inner scope") != nullptr;
      }
    }
    // The inner guard's exit re-exposes the outer one.
    depth_after_inner = AllocGuard::depth();
    try {
      std::ignore = ::operator new(16);  // lint: alloc-ok (deliberate)
    } catch (const ContractViolation& ex) {
      outer_named = std::strstr(ex.what(), "outer scope") != nullptr;
    }
  }
  EXPECT_EQ(depth_outer, 1);
  EXPECT_EQ(depth_inner, 2);
  EXPECT_EQ(depth_after_inner, 1);
  EXPECT_TRUE(inner_named);
  EXPECT_TRUE(outer_named);
  EXPECT_EQ(AllocGuard::depth(), 0);
}

TEST(AllocGuard, LogPolicyCountsInsteadOfThrowing) {
  SKIP_WITHOUT_HOOK();
  ScopedContractPolicy log_policy(ContractPolicy::kLog);
  AllocGuard guard("log-policy scope");
  auto p = std::make_unique<int>(7);  // counted, logged, not thrown
  ASSERT_EQ(*p, 7);
  EXPECT_GE(guard.observed(), 1u);
}

TEST(AllocGuard, ScopesEnteredCounterIsMonotone) {
  const std::uint64_t before = alloc_guard_scopes_entered();
  {
    AllocGuard a("one");
    AllocGuard b("two");
  }
  { AllocGuard c("three"); }
  EXPECT_EQ(alloc_guard_scopes_entered(), before + 3);
}

// A guard constrains only the thread that armed it: ThreadPool workers
// allocate freely under a main-thread guard, and a worker-armed guard
// trips on the worker without involving the main thread.
TEST(AllocGuard, GuardsAreThreadLocalUnderThreadPool) {
  SKIP_WITHOUT_HOOK();
  exec::ThreadPool pool(exec::ThreadPool::Config{2});
  std::atomic<bool> go{false};
  std::atomic<bool> worker_allocated{false};
  // Submitted before the guard arms: submit() itself allocates.
  auto free_worker = pool.submit([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 64; ++i) {
      auto p = std::make_unique<int>(i);
      if (*p == 63) worker_allocated.store(true, std::memory_order_release);
    }
  });
  auto guarded_worker = pool.submit([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    AllocGuard worker_guard("worker-armed scope");
    try {
      std::ignore = ::operator new(16);  // lint: alloc-ok (deliberate)
      return false;                      // did not trip
    } catch (const ContractViolation&) {
      return true;
    }
  });
  {
    AllocGuard main_guard("main-thread scope");
    go.store(true, std::memory_order_release);
    // Busy-wait allocation-free while both workers run against the
    // armed main-thread guard.
    while (!worker_allocated.load(std::memory_order_acquire)) {
    }
    EXPECT_EQ(main_guard.observed(), 0u);
  }
  free_worker.get();
  EXPECT_TRUE(guarded_worker.get());
}

// ---------------------------------------------------------------------------
// Engine regression: the audited decision loop is allocation-free.

Instance dense_alive_instance(std::size_t n) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.0;
    j.size = 1.0 + static_cast<double>((i * 7919u) % 99991u) / 99991.0;
    j.curve = SpeedupCurve::power_law(0.5);
    jobs.push_back(j);
  }
  return Instance(16, jobs);
}

/// Drives the dense-alive instance to completion with the audit fences
/// armed; any allocation in a warm decision step throws ContractViolation
/// and fails the test. Returns the number of guarded scopes entered.
std::uint64_t run_audited(bool use_cache, bool use_incremental,
                          bool fast_kernel = false) {
  setenv("PARSCHED_AUDIT", "1", 1);
  const std::uint64_t scopes_before = alloc_guard_scopes_entered();
  const Instance inst = dense_alive_instance(10'000);
  auto sched = make_scheduler("isrpt");
  EngineConfig cfg;
  cfg.use_context_cache = use_cache;
  cfg.use_incremental_orders = use_incremental;
  cfg.fast_rate_kernel = fast_kernel;
  const SimResult r = simulate(inst, *sched, cfg);
  unsetenv("PARSCHED_AUDIT");
  EXPECT_EQ(r.jobs(), 10'000u);
  // Every completion is a decision point: >= 10k decision steps, and all
  // but the first (which warms the scratch at full n) run fenced — two
  // guarded scopes each (allocate+rates, advance sweep).
  EXPECT_GE(r.decisions, 10'000u);
  return alloc_guard_scopes_entered() - scopes_before;
}

TEST(EngineAllocAudit, DenseAliveRunIsAllocationFreeWithIncrementalOrders) {
  SKIP_WITHOUT_HOOK();
  // Heap maintenance (insert / update_remaining / remove_swap / lazy
  // rebuilds) runs inside the fences: all of it must live in storage
  // pre-paid by IncrementalOrders::reserve at admission.
  const std::uint64_t scopes = run_audited(/*use_cache=*/true,
                                           /*use_incremental=*/true);
  EXPECT_GE(scopes, 10'000u);
}

TEST(EngineAllocAudit, DenseAliveRunIsAllocationFreeWithContextCache) {
  SKIP_WITHOUT_HOOK();
  const std::uint64_t scopes = run_audited(/*use_cache=*/true,
                                           /*use_incremental=*/false);
  EXPECT_GE(scopes, 10'000u);
}

TEST(EngineAllocAudit, DenseAliveRunIsAllocationFreeWithFallbackPath) {
  SKIP_WITHOUT_HOOK();
  const std::uint64_t scopes = run_audited(/*use_cache=*/false,
                                           /*use_incremental=*/false);
  EXPECT_GE(scopes, 10'000u);
}

TEST(EngineAllocAudit, DenseAliveRunIsAllocationFreeWithFastRateKernel) {
  SKIP_WITHOUT_HOOK();
  // The opt-in exp(α·log x) kernel arm runs over the same pre-reserved
  // SoA arrays as the default arm — its memo is three stack doubles, so
  // the fenced decision steps stay allocation-free. (PARSCHED_AUDIT=1
  // also cross-checks the SoA mirror against alive_ every decision.)
  const std::uint64_t scopes = run_audited(/*use_cache=*/true,
                                           /*use_incremental=*/true,
                                           /*fast_kernel=*/true);
  EXPECT_GE(scopes, 10'000u);
}

TEST(EngineAllocAudit, IncrementalFlagIsInertWithoutContextCache) {
  SKIP_WITHOUT_HOOK();
  // use_incremental_orders without use_context_cache must gate off
  // cleanly (the heaps need the cache's memo to serve queries from):
  // the run takes the refimpl fallback path and stays allocation-free.
  const std::uint64_t scopes = run_audited(/*use_cache=*/false,
                                           /*use_incremental=*/true);
  EXPECT_GE(scopes, 10'000u);
}

}  // namespace
}  // namespace parsched
