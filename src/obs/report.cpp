#include "obs/report.hpp"

#include <filesystem>
#include <sstream>

#include "obs/json.hpp"
#include "util/env.hpp"
#include "util/fsio.hpp"
#include "util/table.hpp"

namespace parsched::obs {

bool report_enabled() { return env::get_flag("PARSCHED_REPORT"); }

std::string report_path(const std::string& slug) {
  std::string dir = env::get_string("PARSCHED_REPORT_DIR");
  if (!dir.empty()) {
    // Create the directory on first use so a fresh checkout (or a CI
    // step pointing at a scratch path) does not fail its first
    // open_output with a confusing "cannot open" error.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw std::runtime_error("cannot create PARSCHED_REPORT_DIR '" +
                               dir + "': " + ec.message());
    }
    if (dir.back() != '/') dir += '/';
  }
  return dir + "BENCH_" + slug + ".json";
}

RunReport RunReport::from_result(std::string policy, int machines,
                                 const SimResult& result,
                                 double wall_seconds) {
  RunReport r;
  r.policy = std::move(policy);
  r.jobs = result.jobs();
  r.machines = machines;
  r.total_flow = result.total_flow;
  r.weighted_flow = result.weighted_flow;
  r.fractional_flow = result.fractional_flow;
  r.makespan = result.makespan;
  r.decisions = result.decisions;
  r.events = result.events;
  r.wall_seconds = wall_seconds;
  r.stats = result.stats;
  return r;
}

void BenchReport::set_meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

void BenchReport::set_meta(const std::string& key, double value) {
  meta_.emplace_back(key, value);
}

void BenchReport::add_table(const std::string& table_name,
                            const Table& table) {
  TableDump dump;
  dump.name = table_name;
  dump.columns = table.headers();
  dump.rows = table.cell_rows();
  tables_.push_back(std::move(dump));
}

namespace {

void write_histogram(JsonWriter& w, const HistogramData& h) {
  w.begin_object();
  w.key("bounds").begin_array();
  for (const double b : h.bounds) w.value(b);
  w.end_array();
  w.key("counts").begin_array();
  for (const std::uint64_t c : h.counts) w.value(c);
  w.end_array();
  w.kv("total", h.total);
  w.kv("sum", h.sum);
  // The schema-2 addition: bucket-interpolated tail quantiles, so report
  // consumers get p50/p90/p99 without re-deriving them from the buckets.
  const HistogramData::Summary s = h.summary();
  w.kv("p50", s.p50);
  w.kv("p90", s.p90);
  w.kv("p99", s.p99);
  w.end_object();
}

void write_run_stats(JsonWriter& w, const RunStats& s) {
  w.begin_object();
  w.kv("wall_seconds", s.wall_seconds);
  w.kv("decide_seconds", s.decide_seconds);
  w.kv("solver_seconds", s.solver_seconds);
  w.kv("observer_seconds", s.observer_seconds);
  w.kv("decisions", s.decisions);
  w.kv("arrivals", s.arrivals);
  w.kv("completions", s.completions);
  w.key("decision_interval");
  write_histogram(w, s.decision_interval);
  w.key("alive_count");
  write_histogram(w, s.alive_count);
  w.end_object();
}

void write_run(JsonWriter& w, const RunReport& r) {
  w.begin_object();
  w.kv("policy", r.policy);
  w.kv("jobs", static_cast<std::uint64_t>(r.jobs));
  w.kv("machines", r.machines);
  w.kv("total_flow", r.total_flow);
  w.kv("weighted_flow", r.weighted_flow);
  w.kv("fractional_flow", r.fractional_flow);
  w.kv("makespan", r.makespan);
  w.kv("decisions", r.decisions);
  w.kv("events", r.events);
  w.kv("wall_seconds", r.wall_seconds);
  w.key("stats");
  if (r.stats.has_value()) {
    write_run_stats(w, *r.stats);
  } else {
    w.null();
  }
  w.end_object();
}

void write_metric(JsonWriter& w, const MetricSample& s) {
  w.begin_object();
  w.kv("name", s.name);
  switch (s.kind) {
    case MetricSample::Kind::kCounter:
      w.kv("kind", "counter").kv("value", s.value);
      break;
    case MetricSample::Kind::kGauge:
      w.kv("kind", "gauge").kv("value", s.value);
      break;
    case MetricSample::Kind::kTimer:
      w.kv("kind", "timer").kv("seconds", s.value).kv("count", s.count);
      break;
    case MetricSample::Kind::kHistogram:
      w.kv("kind", "histogram");
      w.key("histogram");
      write_histogram(w, s.histogram);
      break;
  }
  w.end_object();
}

}  // namespace

std::string metrics_snapshot_header(double interval_seconds) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("ev", "header");
  w.kv("kind", "parsched-metrics-snapshot");
  w.kv("schema", std::int64_t{1});
  w.kv("interval_seconds", interval_seconds);
  w.end_object();
  return os.str();
}

std::string metrics_snapshot_line(const MetricsSnapshot& snap,
                                  std::uint64_t seq, double t) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("ev", "snapshot");
  w.kv("seq", seq);
  w.kv("t", t);
  w.key("metrics").begin_array();
  for (const MetricSample& s : snap.samples) write_metric(w, s);
  w.end_array();
  w.end_object();
  return os.str();
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("schema", std::int64_t{2});
  w.kv("kind", "parsched-bench-report");
  w.kv("name", name_);
  w.key("meta").begin_object();
  for (const auto& [key, value] : meta_) {
    w.key(key);
    if (const auto* s = std::get_if<std::string>(&value)) {
      w.value(*s);
    } else {
      w.value(std::get<double>(value));
    }
  }
  w.end_object();
  w.key("runs").begin_array();
  for (const RunReport& r : runs_) write_run(w, r);
  w.end_array();
  w.key("tables").begin_array();
  for (const TableDump& t : tables_) {
    w.begin_object();
    w.kv("name", t.name);
    w.key("columns").begin_array();
    for (const std::string& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const auto& cell : row) {
        if (const auto* s = std::get_if<std::string>(&cell)) {
          w.value(*s);
        } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
          w.value(*i);
        } else {
          w.value(std::get<double>(cell));
        }
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("metrics").begin_array();
  if (metrics_.has_value()) {
    for (const MetricSample& s : metrics_->samples) write_metric(w, s);
  }
  w.end_array();
  w.end_object();
  return os.str();
}

void BenchReport::write(const std::string& path) const {
  auto out = open_output(path, "bench report");
  out << to_json() << '\n';
  finish_output(out, path);
}

}  // namespace parsched::obs
