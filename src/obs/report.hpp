// parsched — machine-readable run and bench reports.
//
// Observability pillar 3. A RunReport captures one (policy, instance)
// simulation — flow metrics, decision counts, wall time, and the optional
// RunStats profiling buckets. A BenchReport aggregates RunReports, result
// tables, free-form metadata, and a MetricsRegistry snapshot, and writes
// them to a stable versioned JSON schema:
//
//   {
//     "schema": 2,
//     "kind": "parsched-bench-report",
//     "name": "<bench slug>",
//     "meta": { "<key>": "<string>" | <number>, ... },
//     "runs": [ { "policy": ..., "jobs": ..., "machines": ...,
//                 "total_flow": ..., "decisions": ..., "wall_seconds": ...,
//                 "stats": { "decide_seconds": ..., "solver_seconds": ...,
//                            "observer_seconds": ..., "wall_seconds": ...,
//                            "decision_interval": {histogram},
//                            "alive_count": {histogram} } | null, ... } ],
//     "tables": [ { "name": ..., "columns": [...], "rows": [[...]] } ],
//     "metrics": [ { "name": ..., "kind": ..., ... } ]
//   }
//
// A histogram serializes as {"bounds": [...], "counts": [...],
// "total": n, "sum": x, "p50": q, "p90": q, "p99": q}; counts has one
// trailing +inf bucket and the quantiles are the bucket-interpolated
// estimates of HistogramData::summary(). (Schema history: 1 had no
// quantile keys — the version bump to 2 is exactly their addition, so a
// schema-2 reader can still consume schema-1 payloads by treating the
// quantiles as absent.)
//
// Reporting is opt-in via the environment (PARSCHED_REPORT=1); benches
// call report_enabled() / report_path("<slug>") and write
// BENCH_<slug>.json next to their CSV — the artifacts that seed the
// perf trajectory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/run_stats.hpp"
#include "simcore/result.hpp"

namespace parsched {
class Table;  // util/table.hpp
}  // namespace parsched

namespace parsched::obs {

/// True when PARSCHED_REPORT is set to a non-empty, non-"0" value.
[[nodiscard]] bool report_enabled();

/// "BENCH_<slug>.json", under $PARSCHED_REPORT_DIR when set (created,
/// parents included, if missing), else the current directory. Throws
/// std::runtime_error when the directory cannot be created.
[[nodiscard]] std::string report_path(const std::string& slug);

/// JSONL metrics-snapshot stream (the `parsched serve --stats-interval`
/// payload; tools/validate_report.py knows the shape). The stream is one
/// header line followed by one snapshot line per scrape:
///
///   {"ev": "header", "kind": "parsched-metrics-snapshot", "schema": 1,
///    "interval_seconds": 2.5}
///   {"ev": "snapshot", "seq": 0, "t": <monotonic_seconds>,
///    "metrics": [ { "name": ..., "kind": ..., ... } ]}   (sorted by name)
///
/// Both lines are compact single-line JSON without a trailing newline.
[[nodiscard]] std::string metrics_snapshot_header(double interval_seconds);
[[nodiscard]] std::string metrics_snapshot_line(const MetricsSnapshot& snap,
                                                std::uint64_t seq, double t);

/// One simulated (policy, instance) measurement.
struct RunReport {
  std::string policy;
  std::size_t jobs = 0;
  int machines = 0;
  double total_flow = 0.0;
  double weighted_flow = 0.0;
  double fractional_flow = 0.0;
  double makespan = 0.0;
  std::uint64_t decisions = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  std::optional<RunStats> stats;  ///< copied from SimResult::stats

  /// Build from a finished simulation. `wall_seconds` is the caller's
  /// end-to-end measurement (monotonic_seconds() around the run); pass 0
  /// when untimed.
  static RunReport from_result(std::string policy, int machines,
                               const SimResult& result,
                               double wall_seconds = 0.0);
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void add_run(RunReport run) { runs_.push_back(std::move(run)); }
  void set_meta(const std::string& key, const std::string& value);
  void set_meta(const std::string& key, double value);
  /// Embed a result table (columns + typed rows).
  void add_table(const std::string& table_name, const Table& table);
  /// Attach a registry snapshot (serialized under "metrics").
  void set_metrics(MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<RunReport>& runs() const { return runs_; }

  /// Serialize to `path`; throws on open/write failure.
  void write(const std::string& path) const;

  /// Serialize to a string (tests, logging).
  [[nodiscard]] std::string to_json() const;

 private:
  struct TableDump {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::variant<std::string, std::int64_t,
                                         double>>>
        rows;
  };

  std::string name_;
  std::vector<std::pair<std::string,
                        std::variant<std::string, double>>>
      meta_;
  std::vector<RunReport> runs_;
  std::vector<TableDump> tables_;
  std::optional<MetricsSnapshot> metrics_;
};

}  // namespace parsched::obs
