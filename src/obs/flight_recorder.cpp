#include "obs/flight_recorder.hpp"

#include <charconv>
#include <cmath>
#include <ostream>

#include "util/fsio.hpp"

namespace parsched::obs {
namespace {

// obs_core cannot use obs/json.hpp (that would be a layering back-edge),
// so the dump writer carries its own minimal JSON emission: shortest
// round-trip numbers via std::to_chars and escaping for the one
// free-form string field (the dump reason).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view flight_event_name(FlightEvent ev) {
  switch (ev) {
    case FlightEvent::kDecision:
      return "decision";
    case FlightEvent::kAdmit:
      return "admit";
    case FlightEvent::kComplete:
      return "complete";
    case FlightEvent::kGuardTrip:
      return "guard_trip";
    case FlightEvent::kStall:
      return "stall";
    case FlightEvent::kSubmit:
      return "submit";
    case FlightEvent::kDispatch:
      return "dispatch";
    case FlightEvent::kNote:
      return "note";
    case FlightEvent::kMigrate:
      return "migrate";
    case FlightEvent::kReroute:
      return "reroute";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(FlightEvent kind, std::uint64_t id, double t,
                            double v, std::uint32_t a) noexcept {
  const std::uint64_t ticket =
      next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[static_cast<std::size_t>(ticket % slots_.size())];
  // Seqlock publish: odd while writing, ticket-derived even when done.
  // Field stores are relaxed atomics — two writers lapping each other on
  // the same slot interleave benignly and the reader's state re-check
  // discards the slot.
  s.state.store(2 * ticket + 1, std::memory_order_release);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.id.store(id, std::memory_order_relaxed);
  s.t.store(t, std::memory_order_relaxed);
  s.v.store(v, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.state.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t start = end > cap ? end - cap : 0;
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(end - start));
  for (std::uint64_t ticket = start; ticket < end; ++ticket) {
    const Slot& s = slots_[static_cast<std::size_t>(ticket % cap)];
    if (s.state.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;  // not yet published, or already being overwritten
    }
    Event e;
    e.seq = ticket;
    e.kind = static_cast<FlightEvent>(s.kind.load(std::memory_order_relaxed));
    e.id = s.id.load(std::memory_order_relaxed);
    e.t = s.t.load(std::memory_order_relaxed);
    e.v = s.v.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    // Re-check after the field reads: a writer may have lapped the slot
    // mid-copy, in which case the copy is torn and must be dropped.
    if (s.state.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;
    }
    events.push_back(e);
  }
  return events;
}

void FlightRecorder::dump_jsonl(std::ostream& os,
                                std::string_view reason) const {
  const std::vector<Event> events = snapshot();
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t dropped =
      total > slots_.size() ? total - slots_.size() : 0;
  std::string line;
  line.reserve(160);
  line += "{\"ev\": \"header\", \"kind\": \"parsched-flight-record\", "
          "\"schema\": 1, \"reason\": \"";
  append_escaped(line, reason);
  line += "\", \"capacity\": ";
  append_u64(line, slots_.size());
  line += ", \"recorded\": ";
  append_u64(line, total);
  line += ", \"dropped\": ";
  append_u64(line, dropped);
  line += ", \"events\": ";
  append_u64(line, events.size());
  line += "}\n";
  os << line;
  for (const Event& e : events) {
    line.clear();
    line += "{\"ev\": \"";
    line += flight_event_name(e.kind);
    line += "\", \"seq\": ";
    append_u64(line, e.seq);
    line += ", \"id\": ";
    append_u64(line, e.id);
    line += ", \"t\": ";
    append_double(line, e.t);
    line += ", \"v\": ";
    append_double(line, e.v);
    line += ", \"a\": ";
    append_u64(line, e.a);
    line += "}\n";
    os << line;
  }
}

bool FlightRecorder::dump_to_file(std::string_view reason) const noexcept {
  if (dump_path_.empty()) return false;
  // The black box must never turn the failure being recorded into a
  // different failure: any write error is swallowed (reported by the
  // false return only).
  try {
    auto out = open_output(dump_path_, "flight-recorder dump");
    dump_jsonl(out, reason);
    finish_output(out, dump_path_);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace parsched::obs
