// parsched — per-run engine profiling buckets.
//
// When EngineConfig::collect_stats is set, the engine splits each run's
// wall time into three buckets and fills two histograms, returning the
// result as SimResult::stats. With the flag off (the default) the hot
// path takes one predictable branch per decision and RunStats is never
// even constructed — the uninstrumented path stays zero-overhead.
//
// Bucket semantics:
//   decide_seconds    time inside Scheduler::allocate()
//   observer_seconds  time inside Observer::on_decision callbacks
//   solver_seconds    everything else in the event loop: exact event-time
//                     solving, state advance, completions, admissions
//                     (including on_arrival/on_completion callbacks)
//   wall_seconds      whole run; >= the sum of the three buckets
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace parsched::obs {

/// Decision-interval histogram bounds (seconds of simulated time,
/// log-spaced): adversarial instances produce dt down to the engine's
/// time tolerance, random ones cluster around the mean service time.
[[nodiscard]] inline std::vector<double> decision_interval_bounds() {
  return {1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e4};
}

/// Alive-count histogram bounds (jobs, powers of two): the paper's
/// adversary sustains Θ(m log P) backlog, random critical load Θ(m).
[[nodiscard]] inline std::vector<double> alive_count_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096};
}

struct RunStats {
  double wall_seconds = 0.0;
  double decide_seconds = 0.0;
  double solver_seconds = 0.0;
  double observer_seconds = 0.0;

  std::uint64_t decisions = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;

  /// Simulated time between consecutive decision points.
  HistogramData decision_interval{decision_interval_bounds()};
  /// Alive-job count at each decision point.
  HistogramData alive_count{alive_count_bounds()};
};

}  // namespace parsched::obs
