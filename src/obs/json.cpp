#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "check/contract.hpp"

namespace parsched::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  PARSCHED_CHECK(res.ec == std::errc(), "double render overflow");
  return std::string(buf, res.ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

JsonWriter::~JsonWriter() {
  // Do not throw from a destructor; unbalanced writers are caught by the
  // explicit done() assertion at call sites (and by the syntax checker).
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(
                                                  indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PARSCHED_CHECK(!wrote_root_, "JSON: second root value");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    PARSCHED_CHECK(expecting_value_,
                   "JSON: object member needs key() before its value");
    expecting_value_ = false;
    return;  // key() already emitted the separator and the key
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JSON: key() outside an object");
  PARSCHED_CHECK(!expecting_value_, "JSON: key() while a value is pending");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
  os_ << json_quote(name) << (indent_ > 0 ? ": " : ":");
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JSON: end_object() without begin_object()");
  PARSCHED_CHECK(!expecting_value_, "JSON: dangling key at end_object()");
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kArray,
                 "JSON: end_array() without begin_array()");
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << json_quote(s);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

// --------------------------------------------------------- syntax checker

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!parse_value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + reason_;
    }
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value() {
    if (++depth_ > 512) {
      reason_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (eof()) {
      reason_ = "unexpected end of input";
    } else {
      switch (peek()) {
        case '{': ok = parse_object(); break;
        case '[': ok = parse_array(); break;
        case '"': ok = parse_string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = parse_number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        reason_ = "expected object key string";
        return false;
      }
      if (!parse_string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        reason_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool parse_string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "raw control character in string";
        return false;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(
                             text_[pos_])) == 0) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          reason_ = "bad escape character";
          return false;
        }
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      reason_ = "invalid number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required after decimal point";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required in exponent";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_ = "invalid JSON";
};

}  // namespace

bool json_syntax_valid(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

// ----------------------------------------------------------------- parser

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) hit = &v;  // last duplicate wins, like most readers
  }
  return hit;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->boolean : fallback;
}

namespace {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Same grammar as JsonChecker, but builds a JsonValue tree. Kept as a
/// separate pass: the checker stays allocation-free for the hot
/// validate-artifacts path.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool run(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + reason_;
    }
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > 512) {
      reason_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (eof()) {
      reason_ = "unexpected end of input";
    } else {
      switch (peek()) {
        case '{': ok = parse_object(out); break;
        case '[': ok = parse_array(out); break;
        case '"':
          out.kind = JsonValue::Kind::kString;
          ok = parse_string(out.string);
          break;
        case 't':
          out.kind = JsonValue::Kind::kBool;
          out.boolean = true;
          ok = literal("true");
          break;
        case 'f':
          out.kind = JsonValue::Kind::kBool;
          out.boolean = false;
          ok = literal("false");
          break;
        case 'n':
          out.kind = JsonValue::Kind::kNull;
          ok = literal("null");
          break;
        default: ok = parse_number(out); break;
      }
    }
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        reason_ = "expected object key string";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        reason_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (eof() ||
          std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        reason_ = "bad \\u escape";
        return false;
      }
      const char c = text_[pos_];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a') + 10;
      } else {
        digit = static_cast<std::uint32_t>(c - 'A') + 10;
      }
      out = (out << 4) | digit;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    out.clear();
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "raw control character in string";
        return false;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xDC00 && cp <= 0xDFFF) {
              reason_ = "unpaired surrogate";
              return false;
            }
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // A high surrogate is only valid as half of a pair.
              if (text_.substr(pos_ + 1, 2) != "\\u") {
                reason_ = "unpaired surrogate";
                return false;
              }
              pos_ += 2;
              std::uint32_t lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                reason_ = "unpaired surrogate";
                return false;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default:
            reason_ = "bad escape character";
            return false;
        }
      } else {
        out += c;
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      reason_ = "invalid number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required after decimal point";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required in exponent";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    out.kind = JsonValue::Kind::kNumber;
    // from_chars is the inverse of json_number's to_chars: shortest
    // round-trip renderings parse back to the identical double.
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, out.number);
    if (res.ec != std::errc() || res.ptr != last) {
      reason_ = "number out of range";
      return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_ = "invalid JSON";
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return JsonParser(text).run(out, error);
}

}  // namespace parsched::obs
