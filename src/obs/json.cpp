#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "check/contract.hpp"

namespace parsched::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  PARSCHED_CHECK(res.ec == std::errc(), "double render overflow");
  return std::string(buf, res.ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

JsonWriter::~JsonWriter() {
  // Do not throw from a destructor; unbalanced writers are caught by the
  // explicit done() assertion at call sites (and by the syntax checker).
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(
                                                  indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PARSCHED_CHECK(!wrote_root_, "JSON: second root value");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    PARSCHED_CHECK(expecting_value_,
                   "JSON: object member needs key() before its value");
    expecting_value_ = false;
    return;  // key() already emitted the separator and the key
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JSON: key() outside an object");
  PARSCHED_CHECK(!expecting_value_, "JSON: key() while a value is pending");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  newline_indent();
  os_ << json_quote(name) << (indent_ > 0 ? ": " : ":");
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
                 "JSON: end_object() without begin_object()");
  PARSCHED_CHECK(!expecting_value_, "JSON: dangling key at end_object()");
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PARSCHED_CHECK(!stack_.empty() && stack_.back() == Frame::kArray,
                 "JSON: end_array() without begin_array()");
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  os_ << json_quote(s);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << json_number(v);
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

// --------------------------------------------------------- syntax checker

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!parse_value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + reason_;
    }
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value() {
    if (++depth_ > 512) {
      reason_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (eof()) {
      reason_ = "unexpected end of input";
    } else {
      switch (peek()) {
        case '{': ok = parse_object(); break;
        case '[': ok = parse_array(); break;
        case '"': ok = parse_string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = parse_number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        reason_ = "expected object key string";
        return false;
      }
      if (!parse_string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        reason_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool parse_string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "raw control character in string";
        return false;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(
                             text_[pos_])) == 0) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          reason_ = "bad escape character";
          return false;
        }
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      reason_ = "invalid number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required after decimal point";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required in exponent";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_ = "invalid JSON";
};

}  // namespace

bool json_syntax_valid(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace parsched::obs
