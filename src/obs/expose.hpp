// parsched — Prometheus-style text exposition of a metrics snapshot.
//
// Observability pillar 3 (see docs/API.md §obs/): the live telemetry
// surface. exposition_text() renders a MetricsSnapshot in the Prometheus
// text format (version 0.0.4), which is what the serve protocol's
// `stats` verb returns and what `parsched serve --stats-interval` dumps
// alongside the JSONL snapshots:
//
//   # TYPE parsched_serve_requests counter
//   parsched_serve_requests 128
//   # TYPE parsched_serve_client_latency_ms histogram
//   parsched_serve_client_latency_ms_bucket{le="0.05"} 3
//   ...
//   parsched_serve_client_latency_ms_bucket{le="+Inf"} 40
//   parsched_serve_client_latency_ms_sum 55.25
//   parsched_serve_client_latency_ms_count 40
//   parsched_serve_client_latency_ms{quantile="0.5"} 1.05
//
// Mapping rules (all deterministic — the golden test in tests/test_obs.cpp
// pins the byte order):
//   * Metric names are prefixed "parsched_" and every character outside
//     [a-zA-Z0-9_] becomes '_' ("serve.requests" ->
//     "parsched_serve_requests").
//   * MetricsSnapshot is already name-sorted, so output order is stable.
//   * Counters/gauges map 1:1. TimerStats become a summary-style
//     _sum/_count pair (accumulated seconds + call count). Histograms
//     emit cumulative _bucket{le=...} lines, _sum, _count, and
//     interpolated p50/p90/p99 as {quantile=...} lines (see
//     HistogramData::quantile).
//   * Numbers render as shortest round-trip decimals (obs::json_number);
//     NaN/Inf never occur in well-formed instruments.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace parsched::obs {

/// "serve.requests" -> "parsched_serve_requests" (prefix + sanitize).
[[nodiscard]] std::string exposition_name(const std::string& metric);

/// Stream `snap` as Prometheus text exposition. Deterministic for a
/// given snapshot.
void write_exposition(std::ostream& os, const MetricsSnapshot& snap);

/// write_exposition into a string.
[[nodiscard]] std::string exposition_text(const MetricsSnapshot& snap);

}  // namespace parsched::obs
