// parsched — minimal streaming JSON emission (and a syntax checker).
//
// The trace exporter and report writers need deterministic, correctly
// escaped JSON without any third-party dependency. JsonWriter is a
// stack-based streaming emitter: it tracks container nesting, inserts
// commas, escapes strings, and renders doubles with std::to_chars
// (shortest round-trip form — stable across runs, so golden-file tests
// are byte-exact). Misuse (a value where a key is required, unbalanced
// end_*) trips a PARSCHED_CHECK rather than emitting malformed output.
//
// json_syntax_valid() is a strict RFC-8259 syntax checker used by tests
// and the CLI to prove emitted artifacts parse cleanly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace parsched::obs {

/// Render a double the way JsonWriter does: shortest round-trip decimal;
/// NaN/Inf (not representable in JSON) become null.
[[nodiscard]] std::string json_number(double v);

/// Escape and quote a string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level;
  /// 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 0);
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned int v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the root container has been closed.
  [[nodiscard]] bool done() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;     // per frame: no element emitted yet
  bool expecting_value_ = false;  // a key() awaits its value
  bool wrote_root_ = false;
};

/// Strict JSON syntax check (full RFC-8259 grammar, no extensions).
/// On failure returns false and, when `error` is non-null, sets a
/// human-readable "offset N: reason" message.
[[nodiscard]] bool json_syntax_valid(std::string_view text,
                                     std::string* error = nullptr);

/// A parsed JSON document (the read-side mirror of JsonWriter; consumed
/// by the serve/ NDJSON protocol). Numbers are stored as doubles parsed
/// with std::from_chars, so values rendered by json_number() round-trip
/// bit-exactly. Object member order is preserved; duplicate keys keep
/// the last occurrence (find() returns it).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed member access with defaults (absent / wrong kind falls back).
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      const std::string& fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
};

/// Parse one JSON document (strict RFC-8259, the same grammar as
/// json_syntax_valid). On failure returns false and, when `error` is
/// non-null, sets an "offset N: reason" message; `out` is unspecified.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

}  // namespace parsched::obs
