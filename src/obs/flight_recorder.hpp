// parsched — the flight recorder: a fixed-capacity ring of recent events.
//
// Observability pillar 2 (see docs/API.md §obs/). A FlightRecorder is the
// black box that preserves the last moments of a run: the engine records
// decision steps, admissions, completions and guard/contract trips; the
// serve layer records submit verdicts and strand dispatches. When
// something goes wrong — a SimulationStall, a contract-policy trip, a
// wedged soak — the ring is dumped as deterministic JSONL and the tail
// of history that led to the failure is on disk instead of gone.
//
// Concurrency model: lock-free-enough. Writers claim a slot by a relaxed
// fetch_add ticket and publish it with a per-slot sequence word
// (seqlock-style: odd while the fields are being written, ticket-derived
// even once complete). Every event field is an atomic written with
// relaxed stores, so concurrent writers wrapping the ring race benignly
// (no UB, TSan-clean); the reader re-checks the sequence word after
// copying and simply skips a slot that was mid-overwrite. record() is a
// handful of relaxed atomic stores and never allocates, locks, or reads
// a clock — cheap enough to leave on in the engine hot path (the E11
// flight_recorder_overhead table holds it within 3% of the bare decision
// rate).
//
// Reading (snapshot/dump) is intended for quiescent or failure moments —
// concurrent writers cannot corrupt a dump, but they can race slots out
// of it. Dumps over a quiet ring are byte-deterministic: events appear
// in ticket order with sim-time timestamps only (no wall clock), so two
// identical runs produce identical dumps.
//
// This header sits in the obs_core unit (tools/layers.toml) next to
// metrics.hpp so simcore may record into it without a layering
// back-edge.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace parsched::obs {

/// What happened. Names must stay in sync with flight_event_name().
enum class FlightEvent : std::uint8_t {
  kDecision = 0,   ///< engine decision step: id=step#, t=now, v=dt, a=alive
  kAdmit = 1,      ///< job admitted: id=job, t=now, v=release, a=alive
  kComplete = 2,   ///< job completed: id=job, t=now, v=flow, a=alive
  kGuardTrip = 3,  ///< alloc-guard / contract trip escaping a step: t=now
  kStall = 4,      ///< SimulationStall raised: id=job (or 0), t=now
  kSubmit = 5,     ///< serve submit verdict: id=session, v=verdict code
  kDispatch = 6,   ///< serve strand dispatch: id=session, v=queue depth
  kNote = 7,       ///< free-form marker (tests, drain, operator dump)
  kMigrate = 8,    ///< cluster session migration: id=session,
                   ///< v=target shard, a=source shard
  kReroute = 9,    ///< submit routed to a migrated session's new shard:
                   ///< id=session, v=current shard, a=placement shard
};

/// Stable lower-case token for an event kind ("decision", "admit", ...).
[[nodiscard]] std::string_view flight_event_name(FlightEvent ev);

/// Fixed-capacity event ring. See file comment for the concurrency
/// contract. Capacity is fixed at construction; the ring never
/// reallocates.
class FlightRecorder {
 public:
  /// One recorded event, as read back out of the ring. Field meaning is
  /// per-kind (see FlightEvent); `seq` is the global ticket (monotone
  /// across the whole run, not just the retained window).
  struct Event {
    std::uint64_t seq = 0;
    FlightEvent kind = FlightEvent::kNote;
    std::uint64_t id = 0;  ///< job / session / step identifier
    double t = 0.0;        ///< sim-time (engine) or mono-seconds (serve)
    double v = 0.0;        ///< per-kind value (dt, flow, verdict, depth)
    std::uint32_t a = 0;   ///< per-kind auxiliary count (alive, queue)
  };

  /// `capacity` slots are allocated up front; 0 is clamped to 1.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event. Wait-free, allocation-free, safe from any thread.
  void record(FlightEvent kind, std::uint64_t id, double t, double v = 0.0,
              std::uint32_t a = 0) noexcept;

  /// Copy out the retained window in ticket order, skipping slots that
  /// were mid-overwrite. Allocates; not for hot paths.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Write the retained window as JSONL: one header line
  /// ({"ev":"header","kind":"parsched-flight-record","schema":1,...})
  /// then one line per event in ticket order. Deterministic over a quiet
  /// ring. `reason` labels why the dump happened ("simulation_stall",
  /// "drain", "dump_verb", ...).
  void dump_jsonl(std::ostream& os, std::string_view reason) const;

  /// Dump to `dump_path()` via the checked fsio writers. A no-op when no
  /// dump path is set; swallows write errors (the black box must never
  /// turn a failure into a different failure) but returns false on them.
  bool dump_to_file(std::string_view reason) const noexcept;

  /// Arm automatic dumping: engine/serve failure hooks call
  /// dump_to_file(), which writes here. Not thread-safe against
  /// concurrent record()+set_dump_path on the same recorder — configure
  /// before the run starts.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& dump_path() const { return dump_path_; }

  /// Total events ever recorded (monotone; >= retained window size).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    // Odd = write in progress, 2*ticket+2 = slot holds ticket's event.
    std::atomic<std::uint64_t> state{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint32_t> a{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<double> t{0.0};
    std::atomic<double> v{0.0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::string dump_path_;
};

}  // namespace parsched::obs
