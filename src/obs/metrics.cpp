#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "check/contract.hpp"

namespace parsched::obs {

double monotonic_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

HistogramData::HistogramData(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0) {
  PARSCHED_CHECK(std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram bounds must be sorted ascending");
}

void HistogramData::add(double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  counts[static_cast<std::size_t>(it - bounds.begin())] += 1;
  total += 1;
  sum += value;
}

double HistogramData::quantile(double q) const {
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, in [0, total]. q = 0 lands on the
  // lower edge of the first populated bucket; q = 1 on the upper edge of
  // the last.
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    if (i == bounds.size()) {
      // Overflow bucket: unbounded above, so saturate at the last finite
      // bound rather than invent an upper edge.
      return bounds.back();
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
    const double frac = (target - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * frac;
  }
  return bounds.back();  // unreachable when counts are consistent with total
}

HistogramData::Summary HistogramData::summary() const {
  return Summary{quantile(0.5), quantile(0.9), quantile(0.99)};
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1) {
  PARSCHED_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be sorted ascending");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::merge(const HistogramData& other) {
  if (other.bounds != bounds_) {
    throw std::logic_error(
        "Histogram::merge: bucket bounds differ from this histogram's");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i].fetch_add(other.counts[i], std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
}

HistogramData Histogram::snapshot() const {
  // There is deliberately no separate total counter: deriving `total`
  // from the bucket counts read in this very pass keeps a concurrent
  // snapshot internally consistent (sum(counts) == total always holds),
  // where loading an independently-updated atomic could observe a count
  // the buckets don't yet reflect (the torn-read window a live `stats`
  // scrape would hit).
  HistogramData d;
  d.bounds = bounds_;
  d.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    const std::uint64_t n = c.load(std::memory_order_relaxed);
    d.counts.push_back(n);
    d.total += n;
  }
  d.sum = sum_.load(std::memory_order_relaxed);
  return d;
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

struct MetricsRegistry::Instrument {
  std::string name;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  Counter counter;
  Gauge gauge;
  TimerStat timer;
  std::unique_ptr<Histogram> histogram;  // kHistogram only
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, MetricSample::Kind kind,
    std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    Instrument& ins = *it->second;
    if (ins.kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' already registered with a different kind");
    }
    if (kind == MetricSample::Kind::kHistogram &&
        ins.histogram->snapshot().bounds != bounds) {
      throw std::logic_error("histogram '" + name +
                             "' already registered with different buckets");
    }
    return ins;
  }
  Instrument& ins = instruments_.emplace_back();
  ins.name = name;
  ins.kind = kind;
  if (kind == MetricSample::Kind::kHistogram) {
    ins.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  by_name_.emplace(name, &ins);
  return ins;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kGauge, {}).gauge;
}

TimerStat& MetricsRegistry::timer(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kTimer, {}).timer;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  return *find_or_create(name, MetricSample::Kind::kHistogram,
                         std::move(upper_bounds))
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(instruments_.size());
    for (const Instrument& ins : instruments_) {
      MetricSample s;
      s.name = ins.name;
      s.kind = ins.kind;
      switch (ins.kind) {
        case MetricSample::Kind::kCounter:
          s.value = static_cast<double>(ins.counter.value());
          break;
        case MetricSample::Kind::kGauge:
          s.value = ins.gauge.value();
          break;
        case MetricSample::Kind::kTimer:
          s.value = ins.timer.seconds();
          s.count = ins.timer.count();
          break;
        case MetricSample::Kind::kHistogram:
          s.histogram = ins.histogram->snapshot();
          break;
      }
      snap.samples.push_back(std::move(s));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& snap) {
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        counter(s.name).inc(static_cast<std::uint64_t>(s.value));
        break;
      case MetricSample::Kind::kGauge:
        gauge(s.name).set(s.value);
        break;
      case MetricSample::Kind::kTimer:
        timer(s.name).add_bulk(s.value, s.count);
        break;
      case MetricSample::Kind::kHistogram:
        histogram(s.name, s.histogram.bounds).merge(s.histogram);
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace parsched::obs
