#include "obs/expose.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace parsched::obs {
namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void write_histogram(std::ostream& os, const std::string& name,
                     const HistogramData& h) {
  os << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += i < h.counts.size() ? h.counts[i] : 0;
    os << name << "_bucket{le=\"" << json_number(h.bounds[i]) << "\"} "
       << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.total << "\n";
  os << name << "_sum " << json_number(h.sum) << "\n";
  os << name << "_count " << h.total << "\n";
  const HistogramData::Summary s = h.summary();
  os << name << "{quantile=\"0.5\"} " << json_number(s.p50) << "\n";
  os << name << "{quantile=\"0.9\"} " << json_number(s.p90) << "\n";
  os << name << "{quantile=\"0.99\"} " << json_number(s.p99) << "\n";
}

}  // namespace

std::string exposition_name(const std::string& metric) {
  std::string out = "parsched_";
  out.reserve(out.size() + metric.size());
  for (const char c : metric) {
    out += name_char_ok(c) ? c : '_';
  }
  return out;
}

void write_exposition(std::ostream& os, const MetricsSnapshot& snap) {
  // snap.samples is sorted by name (MetricsRegistry::snapshot), so the
  // exposition is byte-stable for a given snapshot.
  for (const MetricSample& s : snap.samples) {
    const std::string name = exposition_name(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << json_number(s.value) << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << json_number(s.value) << "\n";
        break;
      case MetricSample::Kind::kTimer:
        // Accumulated seconds over N calls: the natural fit is the
        // summary _sum/_count pair (quantiles unknowable from a
        // TimerStat).
        os << "# TYPE " << name << "_seconds summary\n";
        os << name << "_seconds_sum " << json_number(s.value) << "\n";
        os << name << "_seconds_count " << s.count << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        write_histogram(os, name, s.histogram);
        break;
    }
  }
}

std::string exposition_text(const MetricsSnapshot& snap) {
  std::ostringstream os;
  write_exposition(os, snap);
  return os.str();
}

}  // namespace parsched::obs
