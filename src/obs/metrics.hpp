// parsched — the metrics registry: counters, gauges, timers, histograms.
//
// Observability pillar 1 (see docs/API.md §obs/). A MetricsRegistry is a
// named collection of four instrument kinds, all safe for concurrent use
// from multiple threads (the same lock-free atomic style as the contract
// counters in check/contract.hpp):
//
//   Counter    monotone u64 (events, decisions, bytes)
//   Gauge      last-write-wins double (alive jobs, backlog)
//   TimerStat  accumulated wall-clock seconds + call count
//   Histogram  fixed upper-bound buckets + count/sum (latencies, sizes)
//
// Instruments are created on first lookup and live as long as the
// registry; the returned references are stable (instruments are stored in
// a deque behind a mutex, so registration never invalidates them).
// `snapshot()` captures everything for serialization (obs/report.hpp).
//
// This header is also the project's only sanctioned clock:
// `monotonic_seconds()` wraps std::chrono::steady_clock, and
// parsched_lint's `raw-chrono` rule bans raw std::chrono / clock() use in
// src/ outside src/obs/ — all timing flows through here so it can be
// disabled (or audited) uniformly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace parsched::obs {

/// Monotonic wall-clock reading in seconds. The zero point is arbitrary;
/// only differences are meaningful.
[[nodiscard]] double monotonic_seconds();

/// A captured fixed-bucket histogram (also used directly as a
/// single-threaded accumulator, e.g. by the engine's RunStats).
/// `bounds` are inclusive upper bounds; an implicit +inf bucket catches
/// the overflow, so `counts.size() == bounds.size() + 1`.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;

  HistogramData() = default;
  explicit HistogramData(std::vector<double> upper_bounds);

  /// Record one observation (single-threaded accumulation path).
  void add(double value);

  [[nodiscard]] double mean() const {
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
  }

  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (the Prometheus histogram_quantile convention). `q` is clamped to
  /// [0, 1]. The first bucket's lower edge is min(0, bounds[0]) so
  /// nonnegative-valued histograms interpolate from zero; observations in
  /// the +inf overflow bucket report the last finite bound (the estimate
  /// saturates — it cannot exceed what the buckets resolve). An empty
  /// histogram reports 0.
  [[nodiscard]] double quantile(double q) const;

  /// The three tail points every latency table wants.
  struct Summary {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Summary summary() const;
};

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall-clock time. Feed it with ScopedTimer or add() raw
/// durations measured via monotonic_seconds().
class TimerStat {
 public:
  void add(double seconds) {
    seconds_.fetch_add(seconds, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Fold in an already-aggregated span set (registry merging): `seconds`
  /// of accumulated time over `count` calls.
  void add_bulk(double seconds, std::uint64_t count) {
    seconds_.fetch_add(seconds, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const {
    return seconds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> seconds_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Thread-safe fixed-bucket histogram.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  /// Fold in a captured histogram with identical bounds (registry
  /// merging); throws std::logic_error on a bucket mismatch.
  void merge(const HistogramData& other);
  /// Internally consistent capture: `total` is derived from the summed
  /// bucket counts (never read from a separate atomic), so a snapshot
  /// taken mid-observe from another thread still satisfies
  /// sum(counts) == total. `sum` may trail by in-flight observations —
  /// it is a statistic, not an invariant.
  [[nodiscard]] HistogramData snapshot() const;
  /// Convenience: quantile of a fresh snapshot (see
  /// HistogramData::quantile).
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// RAII wall-clock span feeding a TimerStat. A null timer is a no-op, so
/// call sites can keep one unconditional ScopedTimer and pay nothing when
/// metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* timer)
      : timer_(timer), start_(timer ? monotonic_seconds() : 0.0) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->add(monotonic_seconds() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* timer_;
  double start_;
};

/// One captured instrument (name + kind + values).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kTimer, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;          ///< counter/gauge value, timer seconds
  std::uint64_t count = 0;     ///< timer call count
  HistogramData histogram;     ///< kHistogram only
};

/// Point-in-time capture of a whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const MetricSample* find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();   // out of line: Instrument is incomplete here
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References remain valid for the registry's lifetime.
  /// Looking up an existing name with a different instrument kind (or, for
  /// histograms, different bounds) throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  TimerStat& timer(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Fold a captured snapshot into this registry: counters and timers
  /// accumulate, gauges last-write-wins, histograms merge bucketwise.
  /// Instruments are created on demand; a name that exists with a
  /// different kind (or different histogram bounds) throws
  /// std::logic_error. This is how exec/sweep.hpp folds per-task
  /// registries back into the caller's registry in task-index order.
  void merge(const MetricsSnapshot& snap);

  /// Process-wide default registry (benches, CLI). Library code takes a
  /// registry by pointer instead of reaching for this.
  static MetricsRegistry& global();

 private:
  struct Instrument;
  Instrument& find_or_create(const std::string& name,
                             MetricSample::Kind kind,
                             std::vector<double> bounds);

  mutable std::mutex mu_;
  std::deque<Instrument> instruments_;
  std::unordered_map<std::string, Instrument*> by_name_;
};

}  // namespace parsched::obs
