#include "obs/trace_export.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"
#include "util/fsio.hpp"

namespace parsched::obs {

void TraceExporter::close_open_segments(double t) {
  for (auto it = open_.begin(); it != open_.end();) {
    const auto [start, share] = it->second;
    if (t > start) segments_.push_back({it->first, start, t, share});
    it = open_.erase(it);
  }
}

void TraceExporter::on_decision(double t, std::span<const AliveJob> alive,
                                std::span<const double> shares) {
  close_open_segments(t);
  double allocated = 0.0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (shares[i] > 0.0) {
      open_[alive[i].id] = {t, shares[i]};
      allocated += shares[i];
    }
  }
  end_time_ = std::max(end_time_, t);
  if (cfg_.decision_instants && room()) {
    events_.push_back({Event::Kind::kDecision, t, kInvalidJob, 0.0});
  }
  if (room()) {
    counters_.push_back({t, alive.size(), allocated});
  }
}

void TraceExporter::on_arrival(double t, const Job& job) {
  end_time_ = std::max(end_time_, t);
  if (room()) {
    events_.push_back({Event::Kind::kArrival, t, job.id, job.size});
  }
}

void TraceExporter::on_completion(double t, const Job& job) {
  const auto it = open_.find(job.id);
  if (it != open_.end()) {
    const auto [start, share] = it->second;
    if (t > start) segments_.push_back({job.id, start, t, share});
    open_.erase(it);
  }
  end_time_ = std::max(end_time_, t);
  if (room()) {
    events_.push_back({Event::Kind::kCompletion, t, job.id, 0.0});
  }
}

void TraceExporter::on_done(double t) {
  close_open_segments(t);
  end_time_ = std::max(end_time_, t);
  // Merge back-to-back segments whose share did not change (decision
  // points that re-affirmed this job's allocation), mirroring
  // AllocationTrace::on_done.
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              if (a.job != b.job) return a.job < b.job;
              return a.t0 < b.t0;
            });
  std::vector<Segment> merged;
  merged.reserve(segments_.size());
  for (const Segment& s : segments_) {
    if (!merged.empty() && merged.back().job == s.job &&
        merged.back().share == s.share &&
        std::fabs(merged.back().t1 - s.t0) < 1e-12) {
      merged.back().t1 = s.t1;
    } else {
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
}

void TraceExporter::write_chrome_trace(const std::string& path) const {
  auto out = open_output(path, "Chrome trace output");
  JsonWriter w(out, 0);
  const double scale = cfg_.time_scale;
  const std::int64_t pid = 1;

  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("tool", "parsched");
  w.kv("schema", std::int64_t{1});
  w.kv("dropped_events", dropped_);
  w.end_object();
  w.key("traceEvents").begin_array();

  auto meta = [&](std::int64_t tid, std::string_view name) {
    w.begin_object();
    w.kv("name", "thread_name").kv("ph", "M").kv("pid", pid).kv("tid", tid);
    w.key("args").begin_object().kv("name", name).end_object();
    w.end_object();
  };

  w.begin_object();
  w.kv("name", "process_name").kv("ph", "M").kv("pid", pid);
  w.key("args").begin_object().kv("name", "parsched run").end_object();
  w.end_object();
  meta(0, "engine");

  // Job tracks: tid = job id + 1 (tid 0 is the engine's decision track).
  std::vector<JobId> job_ids;
  for (const Segment& s : segments_) job_ids.push_back(s.job);
  std::sort(job_ids.begin(), job_ids.end());
  job_ids.erase(std::unique(job_ids.begin(), job_ids.end()), job_ids.end());
  for (const JobId id : job_ids) {
    meta(static_cast<std::int64_t>(id) + 1, "job " + std::to_string(id));
  }

  // Allocation segments as complete ("X") events on the job's track.
  for (const Segment& s : segments_) {
    w.begin_object();
    // Built via append: GCC 12's -Werror=restrict misfires on
    // operator+(const char*, std::string&&) here.
    std::string label = "x";
    label += json_number(s.share);
    w.kv("name", label);
    w.kv("ph", "X").kv("pid", pid);
    w.kv("tid", static_cast<std::int64_t>(s.job) + 1);
    w.kv("ts", s.t0 * scale);
    w.kv("dur", (s.t1 - s.t0) * scale);
    w.key("args").begin_object().kv("share", s.share).end_object();
    w.end_object();
  }

  // Instant events: arrivals/completions on the job track, decisions on
  // the engine track.
  for (const Event& e : events_) {
    w.begin_object();
    switch (e.kind) {
      case Event::Kind::kArrival:
        w.kv("name", "arrival").kv("ph", "i").kv("s", "t");
        w.kv("pid", pid).kv("tid", static_cast<std::int64_t>(e.job) + 1);
        w.kv("ts", e.t * scale);
        w.key("args").begin_object().kv("size", e.size).end_object();
        break;
      case Event::Kind::kCompletion:
        w.kv("name", "completion").kv("ph", "i").kv("s", "t");
        w.kv("pid", pid).kv("tid", static_cast<std::int64_t>(e.job) + 1);
        w.kv("ts", e.t * scale);
        break;
      case Event::Kind::kDecision:
        w.kv("name", "decision").kv("ph", "i").kv("s", "t");
        w.kv("pid", pid).kv("tid", std::int64_t{0});
        w.kv("ts", e.t * scale);
        break;
    }
    w.end_object();
  }

  // Counter ("C") tracks: alive jobs and allocated processors.
  for (const CounterSample& c : counters_) {
    w.begin_object();
    w.kv("name", "alive").kv("ph", "C").kv("pid", pid).kv("ts", c.t * scale);
    w.key("args").begin_object().kv("jobs", c.alive).end_object();
    w.end_object();
    w.begin_object();
    w.kv("name", "utilization").kv("ph", "C").kv("pid", pid);
    w.kv("ts", c.t * scale);
    w.key("args").begin_object().kv("processors", c.allocated).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  out << '\n';
  finish_output(out, path);
}

void TraceExporter::write_jsonl(const std::string& path) const {
  auto out = open_output(path, "JSONL trace output");
  auto line = [&](auto fill) {
    JsonWriter w(out, 0);
    w.begin_object();
    fill(w);
    w.end_object();
    out << '\n';
  };

  line([&](JsonWriter& w) {
    w.kv("ev", "header").kv("schema", std::int64_t{1});
    w.kv("kind", "parsched-trace");
    w.kv("end_time", end_time_).kv("dropped", dropped_);
  });
  for (const Event& e : events_) {
    line([&](JsonWriter& w) {
      switch (e.kind) {
        case Event::Kind::kArrival:
          w.kv("ev", "arrival").kv("t", e.t).kv("job", e.job);
          w.kv("size", e.size);
          break;
        case Event::Kind::kCompletion:
          w.kv("ev", "completion").kv("t", e.t).kv("job", e.job);
          break;
        case Event::Kind::kDecision:
          w.kv("ev", "decision").kv("t", e.t);
          break;
      }
    });
  }
  for (const CounterSample& c : counters_) {
    line([&](JsonWriter& w) {
      w.kv("ev", "counters").kv("t", c.t).kv("alive", c.alive);
      w.kv("allocated", c.allocated);
    });
  }
  for (const Segment& s : segments_) {
    line([&](JsonWriter& w) {
      w.kv("ev", "segment").kv("job", s.job).kv("t0", s.t0).kv("t1", s.t1);
      w.kv("share", s.share);
    });
  }
  finish_output(out, path);
}

}  // namespace parsched::obs
