// parsched — run telemetry: Chrome trace-event JSON and JSONL logs.
//
// Observability pillar 2. TraceExporter is an Observer that records the
// full schedule — per-job allocation segments, arrival/completion/decision
// events, and per-decision counter samples (alive jobs, allocated
// processors) — and exports it in two machine-readable forms:
//
//   write_chrome_trace()  Chrome trace-event JSON ("JSON Object Format"):
//                         one track (tid) per job built from allocation
//                         segments, instant events for arrivals and
//                         completions, an engine track of decision
//                         instants, and counter tracks for alive count
//                         and utilization. Open it in Perfetto
//                         (https://ui.perfetto.dev) or chrome://tracing.
//
//   write_jsonl()         newline-delimited JSON, one event per line, in
//                         deterministic order — the stable offline-tooling
//                         format (golden-file tested on a fixed seed).
//
// Simulated time is unitless; both exporters scale it by `time_scale`
// (default 1e6, i.e. one sim time unit renders as one second of trace
// time since the trace format counts microseconds).
#pragma once

#include <cstdint>
#include <string>
#include <map>
#include <vector>

#include "simcore/observer.hpp"

namespace parsched::obs {

class TraceExporter final : public Observer {
 public:
  struct Config {
    /// Trace-time units (microseconds) per simulated time unit.
    double time_scale = 1e6;
    /// Record a decision instant per decision point (the densest stream;
    /// disable for very long runs).
    bool decision_instants = true;
    /// Hard cap on stored events + counter samples; once reached further
    /// ones are counted in dropped() instead of stored. Allocation
    /// segments are never dropped.
    std::size_t max_events = 1'000'000;
  };

  struct Segment {
    JobId job = kInvalidJob;
    double t0 = 0.0;
    double t1 = 0.0;
    double share = 0.0;
  };

  struct Event {
    enum class Kind : std::uint8_t { kArrival, kCompletion, kDecision };
    Kind kind = Kind::kDecision;
    double t = 0.0;
    JobId job = kInvalidJob;  ///< kInvalidJob for decisions
    double size = 0.0;        ///< arrivals: job size
  };

  /// One per-decision counter sample.
  struct CounterSample {
    double t = 0.0;
    std::uint64_t alive = 0;
    double allocated = 0.0;  ///< sum of shares (processors in use)
  };

  TraceExporter() = default;
  explicit TraceExporter(Config config) : cfg_(config) {}

  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override;
  void on_arrival(double t, const Job& job) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::vector<CounterSample>& counters() const {
    return counters_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] double end_time() const { return end_time_; }

  /// Write the Chrome trace-event file; throws on open/write failure.
  void write_chrome_trace(const std::string& path) const;

  /// Write the JSONL event log; throws on open/write failure.
  void write_jsonl(const std::string& path) const;

 private:
  void close_open_segments(double t);
  [[nodiscard]] bool room() {
    if (events_.size() + counters_.size() < cfg_.max_events) return true;
    ++dropped_;
    return false;
  }

  Config cfg_;
  std::vector<Segment> segments_;
  std::vector<Event> events_;
  std::vector<CounterSample> counters_;
  std::map<JobId, std::pair<double, double>> open_;  // job -> (t0, share)
  double end_time_ = 0.0;
  std::uint64_t dropped_ = 0;
};

}  // namespace parsched::obs
