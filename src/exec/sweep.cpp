#include "exec/sweep.hpp"

#include <deque>
#include <exception>
#include <string>

#include "util/env.hpp"

namespace parsched::exec {

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Advance the splitmix64 state (task_index + 1) golden-gamma steps from
  // the base seed, then apply the finalizer once. Equivalent streams for
  // distinct indices are decorrelated by the finalizer's avalanche; the
  // +1 keeps task 0 from reusing the base seed verbatim.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int env_jobs() {
  // Malformed values (PARSCHED_JOBS=abc, 0, -3, 1e9) warn on stderr via
  // env::get_int and fall back to 0 (= "unset": all hardware threads).
  return static_cast<int>(env::get_int("PARSCHED_JOBS", 0, 1, 4096));
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const int env = env_jobs(); env > 0) return env;
  return ThreadPool::hardware_threads();
}

SweepRunner::SweepRunner(Config cfg)
    : jobs_(cfg.jobs > 0 ? cfg.jobs : resolve_jobs(0)),
      base_seed_(cfg.base_seed),
      merge_metrics_(cfg.merge_metrics) {}

void SweepRunner::run_tasks(
    std::size_t tasks, const std::function<void(const TaskContext&)>& body) {
  stats_ = {};
  stats_.jobs = jobs_;
  stats_.tasks = tasks;
  const double t0 = obs::monotonic_seconds();

  // One private registry per task; deque for reference stability
  // (MetricsRegistry is non-movable).
  std::deque<obs::MetricsRegistry> task_registries(tasks);
  // Written only by the task owning the index — disjoint, race-free.
  std::vector<double> task_walls(tasks, 0.0);

  const auto run_one = [&](std::size_t i) {
    TaskContext ctx;
    ctx.index = i;
    ctx.seed = task_seed(base_seed_, i);
    ctx.metrics = &task_registries[i];
    const double start = obs::monotonic_seconds();
    body(ctx);
    task_walls[i] = obs::monotonic_seconds() - start;
  };

  if (jobs_ <= 1 || tasks <= 1) {
    // Exact legacy path: calling thread, index order, no pool.
    for (std::size_t i = 0; i < tasks; ++i) run_one(i);
  } else {
    obs::MetricsRegistry pool_metrics;
    std::vector<std::future<void>> futures;
    futures.reserve(tasks);
    {
      ThreadPool pool({jobs_, &pool_metrics});
      for (std::size_t i = 0; i < tasks; ++i) {
        futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
      }
      // Collect in index order so the *lowest* failing task's exception
      // is the one rethrown, independent of completion order. get() on
      // the rest still happens below — wait for everything first so a
      // throw cannot leave tasks running against dead stack frames.
      pool.wait_idle();
    }  // pool joined here
    const obs::MetricsSnapshot pool_snap = pool_metrics.snapshot();
    if (const auto* idle = pool_snap.find("exec.pool.idle")) {
      stats_.pool_idle_seconds = idle->value;
    }
    if (const auto* steals = pool_snap.find("exec.pool.steals")) {
      stats_.steals = static_cast<std::uint64_t>(steals->value);
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  const double merge_start = obs::monotonic_seconds();
  if (merge_metrics_ != nullptr) {
    for (std::size_t i = 0; i < tasks; ++i) {
      merge_metrics_->merge(task_registries[i].snapshot());
    }
  }
  for (const double w : task_walls) stats_.task_seconds += w;
  const double end = obs::monotonic_seconds();
  stats_.merge_seconds = end - merge_start;
  stats_.wall_seconds = end - t0;
}

}  // namespace parsched::exec
