#include "exec/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace parsched::exec {

namespace {

// Identity of the current worker thread, for nested submission: tasks
// submitted from inside a pool push onto the submitting worker's own
// deque instead of round-robining through the front door.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

// Cheap xorshift for randomized victim selection during stealing. Seeded
// per worker; steal order does not affect results (tasks are independent
// and merged by index), only contention.
std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(Config cfg) : metrics_(cfg.metrics) {
  const int n = cfg.threads > 0 ? cfg.threads : hardware_threads();
  if (metrics_ != nullptr) {
    tasks_counter_ = &metrics_->counter("exec.pool.tasks");
    steals_counter_ = &metrics_->counter("exec.pool.steals");
    idle_timer_ = &metrics_->timer("exec.pool.idle");
    metrics_->gauge("exec.pool.threads").set(static_cast<double>(n));
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads only after the worker array is complete: stealing scans
  // the whole array.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(true); }

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_index;  // nested task: stay on the submitting worker
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    // The push must become visible before the epoch bump, and both must
    // be ordered against shutdown's accepting_ flip — otherwise a worker
    // can consume the epoch increment before the task lands (lost
    // wakeup), or a racing non-draining shutdown can clear the deques
    // before this push arrives (stranded outstanding_ count). Holding
    // wake_mu_ across check + push + bump closes both windows.
    std::lock_guard<std::mutex> lk(wake_mu_);
    if (!accepting_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    {
      std::lock_guard<std::mutex> wlk(workers_[target]->mu);
      workers_[target]->deque.push_back(std::move(task));
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    ++epoch_;
  }
  if (tasks_counter_ != nullptr) tasks_counter_->inc();
  wake_cv_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self,
                              std::function<void()>& out) {
  {  // Own deque first, LIFO end: nested work runs depth-first.
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  // Steal from a random victim's FIFO end.
  thread_local std::uint64_t steal_state = 0;
  if (steal_state == 0) {
    steal_state = 0x9e3779b97f4a7c15ULL ^ (self + 1);
  }
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(xorshift(steal_state));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lk(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.front());
      w.deque.pop_front();
      if (steals_counter_ != nullptr) steals_counter_->inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::finish_task() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task out: wake wait_idle()/shutdown(). The lock pairs with
    // their check-then-wait so the notify cannot be lost.
    std::lock_guard<std::mutex> lk(wake_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_index = self;
  std::uint64_t seen_epoch = 0;
  std::function<void()> task;
  for (;;) {
    if (halt_.load(std::memory_order_acquire)) break;
    if (try_get_task(self, task)) {
      task();  // packaged_task: exceptions are captured into the future
      task = nullptr;
      finish_task();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_) break;
    if (epoch_ != seen_epoch) {
      // Work arrived between the failed scan and the lock: rescan.
      seen_epoch = epoch_;
      continue;
    }
    if (idle_timer_ != nullptr) {
      const double t0 = obs::monotonic_seconds();
      wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      idle_timer_->add(obs::monotonic_seconds() - t0);
    } else {
      wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    }
    seen_epoch = epoch_;
  }
  tl_pool = nullptr;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(wake_mu_);
  idle_cv_.wait(lk, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::shutdown(bool drain) {
  // Serialize concurrent shutdowns end-to-end: a second caller (e.g. the
  // destructor racing an explicit shutdown from another thread) must not
  // return until the first has finished joining, or it could destroy
  // workers_ while the first caller's join is still touching them.
  std::lock_guard<std::mutex> serial(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    if (joined_) return;
    accepting_ = false;
    // Non-draining shutdown: freeze the workers' task scan in the same
    // critical section that closes the front door, so once submit()
    // throws, no queued task can still be picked up.
    if (!drain) halt_.store(true, std::memory_order_release);
  }
  if (drain) wait_idle();
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    joined_ = true;
    stop_ = true;
    halt_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Without drain, pending tasks die here; destroying a never-invoked
  // packaged_task breaks its promise, so waiting futures unblock with
  // std::future_error rather than hanging.
  std::uint64_t discarded = 0;
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mu);
    discarded += w->deque.size();
    w->deque.clear();
  }
  if (discarded > 0) {
    PARSCHED_CHECK(!drain, "drained shutdown left pending tasks");
    outstanding_.fetch_sub(discarded, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lk(wake_mu_);
    idle_cv_.notify_all();
  }
}

}  // namespace parsched::exec
