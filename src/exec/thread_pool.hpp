// parsched — the work-stealing thread pool.
//
// Execution substrate for parallel parameter sweeps (exec/sweep.hpp) and
// every future sharding/batching subsystem. One pool owns N worker
// threads; each worker keeps a private deque of tasks. Submission from a
// worker thread pushes onto that worker's own deque (LIFO execution keeps
// nested work cache-hot); submission from outside distributes round-robin.
// An idle worker first drains its own deque, then steals from a random
// victim's opposite end (FIFO), the classic Blumofe–Leiserson discipline.
//
// All shared state is guarded by mutexes or atomics — the pool is
// TSan-clean by construction (the `thread` leg of CI runs the stress
// suite against it). Like obs/metrics.hpp, this header is the project's
// only sanctioned home for raw threads: parsched_lint's `raw-thread`
// rule bans `std::thread` / `std::async` in src/ outside exec/ so no
// subsystem can spin up unaccounted concurrency.
//
// Tasks are arbitrary callables; submit() returns a std::future that
// carries the task's result or its exception to the caller. Shutdown is
// explicit or via the destructor:
//
//   ThreadPool pool({.threads = 8, .metrics = &registry});
//   auto f = pool.submit([] { return heavy_work(); });
//   f.get();                  // value or rethrown exception
//   pool.shutdown(true);      // drain pending work, then join
//
// With a MetricsRegistry attached the pool maintains
// exec.pool.{tasks,steals} counters, an exec.pool.idle timer (summed
// worker wait time — the numerator of the idle fraction reported by
// E11's parallel-speedup table) and an exec.pool.threads gauge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "check/contract.hpp"
#include "obs/metrics.hpp"

namespace parsched::exec {

class ThreadPool {
 public:
  struct Config {
    /// Worker count; <= 0 means hardware_threads().
    int threads = 0;
    /// Optional registry for pool instrumentation (borrowed; must outlive
    /// the pool). Null disables all clock reads on the worker path.
    obs::MetricsRegistry* metrics = nullptr;
  };

  ThreadPool() : ThreadPool(Config()) {}
  explicit ThreadPool(Config cfg);
  ~ThreadPool();  // shutdown(true)

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Run `fn` on some worker; the future carries the result or the
  /// task's exception. Safe to call from inside a task (nested
  /// submission). Throws std::runtime_error after shutdown began.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Block until every submitted task (including nested ones) finished.
  void wait_idle();

  /// Stop the pool and join the workers. `drain` runs all pending tasks
  /// first; otherwise pending tasks are discarded and their futures
  /// report std::future_error (broken_promise). Idempotent.
  void shutdown(bool drain = true);

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static int hardware_threads();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
    std::thread thread;
  };

  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t self);
  bool try_get_task(std::size_t self, std::function<void()>& out);
  void finish_task();

  std::vector<std::unique_ptr<Worker>> workers_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::TimerStat* idle_timer_ = nullptr;

  // Held for the whole of shutdown(): concurrent shutdown callers (the
  // destructor racing an explicit call) serialize here, so the second
  // caller cannot return — and the destructor cannot free workers_ —
  // until the first has finished joining.
  std::mutex shutdown_mu_;

  // wake_mu_ guards epoch_/stop_/accepting_ and serializes the
  // check-then-wait of sleeping workers against enqueue's bump+notify.
  // Lock order: shutdown_mu_ → wake_mu_ → Worker::mu (enqueue pushes the
  // task under wake_mu_ so the push is ordered against both the epoch
  // bump and shutdown's accepting_ flip).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // wait_idle sleeps here
  std::uint64_t epoch_ = 0;          // bumped on every enqueue
  bool stop_ = false;
  bool accepting_ = true;
  bool joined_ = false;

  std::atomic<std::uint64_t> outstanding_{0};  // queued + running tasks
  std::atomic<std::uint64_t> next_worker_{0};  // round-robin cursor

  // Set the moment a non-draining shutdown begins (and always before
  // join): workers stop scanning for queued work immediately, so tasks
  // pending at that point are reliably discarded, not raced for.
  std::atomic<bool> halt_{false};
};

}  // namespace parsched::exec
