// parsched — sharded parameter sweeps with a determinism contract.
//
// A sweep is N independent simulation tasks indexed 0..N-1. SweepRunner
// runs them on a work-stealing ThreadPool (exec/thread_pool.hpp) and
// merges the results back **in task-index order**, so every table row,
// CSV byte, and BENCH_*.json report an experiment emits is identical at
// any job count. The contract, relied on by tests/test_exec.cpp and the
// CI artifact-diff step:
//
//   same base seed  =>  same artifact bytes, for any --jobs value.
//
// Three mechanisms enforce it:
//
//  * per-task seeds are derived, not shared: task_seed(base, index) is a
//    splitmix64 finalizer over the base seed advanced index+1 golden-gamma
//    steps — no task ever observes another task's RNG stream;
//  * per-task state is private: each task gets its own MetricsRegistry
//    (TaskContext::metrics) to hand to EngineConfig::metrics, folded into
//    the runner's merge registry in index order after the last task;
//  * results land in preallocated slots and are concatenated by index,
//    never by completion order.
//
// Job-count resolution (resolve_jobs): an explicit --jobs beats the
// PARSCHED_JOBS environment variable beats hardware_concurrency.
// jobs == 1 is the exact legacy path: tasks run inline on the calling
// thread in index order and no pool is created.
//
//   exec::SweepRunner runner({.jobs = exec::resolve_jobs(0)});
//   auto rows = runner.map<Row>(points.size(), [&](const auto& ctx) {
//     return measure(points[ctx.index], ctx.seed);
//   });
//   for (auto& r : rows) table.add_row(r);   // index order, stable bytes
//
// last_stats() reports wall/merge/task seconds, pool idle time and steal
// counts — the numbers behind E11's parallel-speedup table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "check/contract.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace parsched::exec {

/// Deterministic per-task seed: splitmix64 finalizer of `base_seed`
/// advanced (task_index + 1) golden-gamma steps. Pinned by
/// tests/test_exec.cpp so a reseeding bug fails loudly.
[[nodiscard]] std::uint64_t task_seed(std::uint64_t base_seed,
                                      std::uint64_t task_index);

/// PARSCHED_JOBS as an int, or 0 when unset/empty/non-positive/garbage.
[[nodiscard]] int env_jobs();

/// Job-count resolution: `requested` > 0 wins, else PARSCHED_JOBS,
/// else ThreadPool::hardware_threads().
[[nodiscard]] int resolve_jobs(int requested = 0);

/// What a sweep task sees: its index, its derived seed, and a private
/// registry (never shared with another task) for engine instrumentation.
struct TaskContext {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Instrumentation from the last map() call.
struct SweepStats {
  int jobs = 0;
  std::size_t tasks = 0;
  double wall_seconds = 0.0;       ///< end-to-end map() wall time
  double task_seconds = 0.0;       ///< summed per-task wall time
  double merge_seconds = 0.0;      ///< registry merge + result assembly
  double pool_idle_seconds = 0.0;  ///< summed worker wait time
  std::uint64_t steals = 0;        ///< tasks obtained by work stealing

  /// Fraction of worker capacity spent idle: idle / (jobs * wall).
  [[nodiscard]] double idle_fraction() const {
    const double capacity = static_cast<double>(jobs) * wall_seconds;
    return capacity <= 0.0 ? 0.0 : pool_idle_seconds / capacity;
  }
};

class SweepRunner {
 public:
  struct Config {
    /// Parallelism; <= 0 resolves via resolve_jobs(0). 1 = legacy path.
    int jobs = 0;
    /// Base seed for task_seed derivation.
    std::uint64_t base_seed = 0;
    /// Optional registry the per-task registries are merged into (index
    /// order). Borrowed; null discards the per-task instrumentation.
    obs::MetricsRegistry* merge_metrics = nullptr;
  };

  SweepRunner() : SweepRunner(Config()) {}
  explicit SweepRunner(Config cfg);

  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] const SweepStats& last_stats() const { return stats_; }

  /// Run `fn` for indices 0..tasks-1 and return the results in index
  /// order. A task's exception propagates to the caller (the lowest
  /// throwing index wins; remaining tasks still run to completion).
  template <typename R>
  std::vector<R> map(std::size_t tasks,
                     const std::function<R(const TaskContext&)>& fn) {
    std::vector<std::optional<R>> slots(tasks);
    run_tasks(tasks, [&](const TaskContext& ctx) {
      slots[ctx.index].emplace(fn(ctx));
    });
    const double t0 = obs::monotonic_seconds();
    std::vector<R> out;
    out.reserve(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
      PARSCHED_CHECK(slots[i].has_value(), "sweep task produced no result");
      out.push_back(std::move(*slots[i]));
    }
    stats_.merge_seconds += obs::monotonic_seconds() - t0;
    return out;
  }

 private:
  /// Shared driver: seeds, per-task registries, inline-vs-pool execution,
  /// index-order registry merge, stats.
  void run_tasks(std::size_t tasks,
                 const std::function<void(const TaskContext&)>& body);

  int jobs_;
  std::uint64_t base_seed_;
  obs::MetricsRegistry* merge_metrics_;
  SweepStats stats_;
};

}  // namespace parsched::exec
