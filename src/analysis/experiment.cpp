#include "analysis/experiment.hpp"

#include <cctype>
#include <cmath>
#include <iostream>

#include "obs/report.hpp"

namespace parsched {

namespace {

/// "E4: Greedy hybrid (X = m^2)" -> "e4_greedy_hybrid_x_m_2".
std::string slugify(const std::string& s) {
  std::string out;
  bool last_sep = true;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_sep = false;
    } else if (!last_sep) {
      out += '_';
      last_sep = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

}  // namespace

void emit_experiment(const std::string& name, const std::string& claim,
                     const Table& table) {
  std::cout << "\n=== " << name << " ===\n";
  if (!claim.empty()) std::cout << claim << "\n";
  table.print(std::cout);
  const std::string slug = slugify(name);
  const std::string csv = slug + ".csv";
  table.write_csv(csv);
  std::cout << "(rows mirrored to " << csv << ")\n";
  // With PARSCHED_REPORT=1, also mirror the rows to the machine-readable
  // bench-report schema (obs/report.hpp) — BENCH_<slug>.json seeds the
  // perf trajectory and feeds offline tooling.
  if (obs::report_enabled()) {
    obs::BenchReport report(slug);
    report.set_meta("claim", claim);
    report.set_meta("title", name);
    report.add_table(slug, table);
    const std::string json_path = obs::report_path(slug);
    report.write(json_path);
    std::cout << "(report mirrored to " << json_path << ")\n";
  }
}

LinearFit fit_against_log2(const Table& table, const std::string& x_col,
                           const std::string& y_col) {
  auto x = table.numeric_column(x_col);
  auto y = table.numeric_column(y_col);
  for (double& v : x) v = std::log2(v);
  const LinearFit fit = linear_fit(x, y);
  std::cout << y_col << " ~= " << fit.slope << " * log2(" << x_col << ") + "
            << fit.intercept << "   (R^2 = " << fit.r2 << ")\n";
  return fit;
}

}  // namespace parsched
