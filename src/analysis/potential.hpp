// parsched — empirical verification of the paper's potential function.
//
// Section 2.3 defines
//
//   Phi(t) = 16 * sum_{i in A(t)} z_i(t) / Γ_i(m / rank(i, t)),
//
// with z_i(t) = max(p_i^A(t) − p_i^OPT(t), 0) and rank(i,t) = min(m, number
// of alive ALG jobs that arrived no later than i). The analysis rests on
// three conditions (Boundary, Discontinuous Changes, Continuous Changes);
// this module evaluates Phi exactly on the merged breakpoint grid of the
// two schedules (Phi is piecewise linear, so two interior samples per
// interval give the exact derivative) and reports how each condition fares,
// including the empirical constants that Lemmas 2 and 3 bound.
#pragma once

#include <cstddef>

#include "analysis/trajectories.hpp"

namespace parsched {

struct PotentialReport {
  double phi_start = 0.0;  ///< Phi just after the first arrival
  double phi_end = 0.0;    ///< Phi after the last completion
  /// Largest increase of Phi across any breakpoint (arrivals/completions).
  /// The Discontinuous Changes condition says this should be <= 0.
  double max_jump_increase = 0.0;
  /// max over intervals with |OPT(t)| > 0 of (|A| + dPhi/dt) / |OPT| —
  /// the constant c of the Continuous Changes condition; Theorem 1 bounds
  /// it by O(4^{1/(1-alpha)} log P).
  double c_continuous = 0.0;
  /// Lemma 2 normalization: max over *overloaded* intervals of
  /// (dPhi/dt) / (4^{1/(1-alpha)} log2(P) * |OPT|).
  double c_lemma2 = 0.0;
  /// Lemma 3 normalization: max over *underloaded* intervals of
  /// (|A| + dPhi/dt) / (2^{1/(1-alpha)} * |OPT|).
  double c_lemma3 = 0.0;
  /// Intervals where |OPT(t)| = 0 but |A| + dPhi/dt > tol (the condition
  /// then requires the left side to be nonpositive).
  std::size_t opt_zero_violations = 0;
  std::size_t intervals = 0;

  // --- decomposition of dPhi/dt into the paper's inner lemmas ---
  /// Lemma 7: max over intervals of (OPT-side increase) / (16(|A|+|OPT|)).
  double c_lemma7 = 0.0;
  /// Lemma 8: max over intervals with |OPT| in (0, m] of
  /// (OPT-side increase) / (16 m^alpha |OPT|^{1-alpha}).
  double c_lemma8 = 0.0;
  /// Lemma 9: min over qualifying intervals (m <= |A| <= 10 m log P and
  /// |OPT| <= m/(4*4^{1/(1-alpha)})) of (ALG-side decrease) / (-4m);
  /// the lemma asserts >= 1. 0 when no interval qualified.
  double lemma9_min_ratio = 0.0;
  std::size_t lemma9_intervals = 0;
  /// max |dPhi/dt - (opt_side + alg_side)| over intervals, relative to
  /// max(1, |dPhi/dt|): internal consistency of the decomposition.
  double decomposition_residual = 0.0;
};

/// The two one-sided contributions to dPhi/dt at time t: the increase due
/// to OPT processing its jobs and the (negative) change due to the
/// algorithm processing its own. Exposed for tests.
struct PotentialFlux {
  double opt_side = 0.0;  ///< >= 0
  double alg_side = 0.0;  ///< <= 0
};

[[nodiscard]] PotentialFlux potential_flux_at(const ScheduleTrajectories& alg,
                                              const ScheduleTrajectories& ref,
                                              int m, double t);

/// Evaluate Phi for schedule `alg` against reference schedule `ref` (the
/// OPT surrogate) on a system of m machines with size ratio P and
/// parallelizability exponent alpha.
[[nodiscard]] PotentialReport analyze_potential(
    const ScheduleTrajectories& alg, const ScheduleTrajectories& ref, int m,
    double P, double alpha);

/// Direct evaluation of Phi(t) (exposed for unit tests).
[[nodiscard]] double potential_at(const ScheduleTrajectories& alg,
                                  const ScheduleTrajectories& ref, int m,
                                  double t);

}  // namespace parsched
