#include "analysis/local_comp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/mathx.hpp"

namespace parsched {

double volume_classes_at_most(const ScheduleTrajectories& s, double t,
                              int k) {
  double vol = 0.0;
  for (const auto& [id, jt] : s.jobs()) {
    if (!s.alive_at(id, t)) continue;
    const double rem = jt.remaining.value(t);
    if (rem <= 0.0) continue;
    if (size_class(rem) <= k) vol += rem;
  }
  return vol;
}

std::size_t count_classes_between(const ScheduleTrajectories& s, double t,
                                  int lo, int hi) {
  std::size_t n = 0;
  for (const auto& [id, jt] : s.jobs()) {
    if (!s.alive_at(id, t)) continue;
    const double rem = jt.remaining.value(t);
    if (rem <= 0.0) continue;
    const int k = size_class(rem);
    if (k >= lo && k <= hi) ++n;
  }
  return n;
}

LocalCompReport check_local_competitiveness(const ScheduleTrajectories& alg,
                                            const ScheduleTrajectories& ref,
                                            int m, double P) {
  LocalCompReport rep;
  const auto ga = alg.breakpoints();
  const auto gr = ref.breakpoints();
  std::vector<double> grid;
  std::merge(ga.begin(), ga.end(), gr.begin(), gr.end(),
             std::back_inserter(grid));
  const int kmax = static_cast<int>(std::floor(std::log2(std::max(P, 1.0))));
  const double md = static_cast<double>(m);
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    if (grid[i + 1] - grid[i] <= 1e-12) continue;
    const double t = 0.5 * (grid[i] + grid[i + 1]);
    ++rep.samples;
    const auto A = static_cast<double>(alg.alive_count_at(t));
    if (A < md) continue;  // lemmas apply at overloaded times only
    ++rep.overloaded_samples;
    const auto OPT = static_cast<double>(ref.alive_count_at(t));
    const double lemma1_rhs = md * (3.0 + std::log2(P)) + 2.0 * OPT;
    rep.lemma1_worst = std::max(rep.lemma1_worst, A / lemma1_rhs);
    // Lemma 5: classes 0..kmax for the algorithm, <= kmax (incl. class
    // -1) for the reference.
    const auto a_classes =
        static_cast<double>(count_classes_between(alg, t, 0, kmax));
    const auto opt_classes =
        static_cast<double>(count_classes_between(ref, t, -1, kmax));
    const double lemma5_rhs =
        md * static_cast<double>(kmax + 2) + 2.0 * opt_classes;
    rep.lemma5_worst = std::max(rep.lemma5_worst, a_classes / lemma5_rhs);
    for (int k = -1; k <= kmax; ++k) {
      const double dv = volume_classes_at_most(alg, t, k) -
                        volume_classes_at_most(ref, t, k);
      const double bound = md * std::exp2(k + 1);
      rep.lemma4_worst = std::max(rep.lemma4_worst, dv / bound);
    }
  }
  return rep;
}

}  // namespace parsched
