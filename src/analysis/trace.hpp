// parsched — allocation traces: what did the scheduler actually do?
//
// AllocationTrace is an Observer that records the full piecewise-constant
// allocation (who held how many processors when). It can export the raw
// segments as CSV for offline tooling, compute machine utilization over
// time, and render a terminal Gantt chart — the "look at the schedule"
// loop a user of the library actually needs when debugging a policy.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "simcore/observer.hpp"
#include "util/timeline.hpp"

namespace parsched {

struct Plan;  // sched/opt/plan.hpp

class AllocationTrace final : public Observer {
 public:
  /// One maximal interval during which job `job` held `share` processors.
  struct Segment {
    JobId job = kInvalidJob;
    double t0 = 0.0;
    double t1 = 0.0;
    double share = 0.0;
  };

  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }

  /// Total allocated processors as a step function of time.
  [[nodiscard]] StepFunction utilization() const;

  /// Time-average utilization over [t0, t1].
  [[nodiscard]] double average_utilization(double t0, double t1) const;

  /// Write "job,t0,t1,share" rows.
  void write_csv(const std::string& path) const;

  /// Render an ASCII Gantt chart: one row per job (at most `max_jobs`,
  /// preferring the longest-running), `width` time buckets, glyph density
  /// by share: ' ' none, '.' <1, ':' =1, '#' >1 processors.
  void render_gantt(std::ostream& os, int width = 72,
                    std::size_t max_jobs = 24) const;

  /// Convert the recorded schedule into an explicit Plan. Executing that
  /// plan (sched/opt/plan.hpp) must reproduce the engine's completion
  /// times exactly — the library's strongest cross-validation between its
  /// two independent execution paths. Only valid for single-phase jobs
  /// (plans carry one curve per job).
  [[nodiscard]] Plan to_plan() const;

 private:
  void close_open_segments(double t);

  std::vector<Segment> segments_;
  // Open segment per job: (start, share).
  std::map<JobId, std::pair<double, double>> open_;
  double end_time_ = 0.0;
};

}  // namespace parsched
