#include "analysis/competitive.hpp"

#include "sched/opt/relaxations.hpp"
#include "simcore/engine.hpp"

namespace parsched {

CompetitiveReport compare_to_opt(
    const Instance& instance, Scheduler& sched,
    const std::vector<std::pair<std::string, Plan>>& plans) {
  CompetitiveReport rep;
  rep.policy = sched.name();
  const SimResult alg = simulate(instance, sched);
  rep.alg_flow = alg.total_flow;
  rep.jobs = alg.jobs();
  const OptEstimate est = estimate_opt(instance, plans);
  rep.opt_lower = est.lower;
  rep.opt_upper = est.upper;
  rep.opt_upper_name = est.upper_name;
  return rep;
}

}  // namespace parsched
