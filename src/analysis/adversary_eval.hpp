// parsched — measuring a policy against the Theorem-2 adversary.
//
// The paper's part-2 stream has length X = P², which is astronomically
// many unit jobs for large P; moreover realizing L phases needs
// P ≈ (1/r)^{2L}. This module packages the measurement methodology used
// by benches E1/E2/E3/E10:
//
//  * run the policy against the adaptive adversary with a *capped* stream
//    X₀;
//  * estimate OPT on the realized instance from the paper's standard
//    schedule plus a policy portfolio;
//  * extrapolate both flows to the full X = P² in closed form — in the
//    stream's steady state the online algorithm carries a constant
//    backlog (its alive count near the stream end) while the standard
//    schedule carries exactly m jobs, plus the m/2 deferred decision-phase
//    long jobs in case 1, so both flows are exactly linear in the stream
//    tail. The standard schedule stays feasible at any X, making the
//    extrapolated ratio a valid lower estimate of the competitive ratio.
#pragma once

#include <string>
#include <vector>

#include "simcore/observer.hpp"
#include "workload/adversary.hpp"

namespace parsched {

/// Portfolio used for the OPT upper bound on large adversarial instances.
/// Parallel-SRPT is excluded: it is never competitive there and costs
/// O(alive) per decision on instances that starve it.
[[nodiscard]] std::vector<std::string> adversary_portfolio();

struct AdversaryPoint {
  double alg_flow = 0.0;    ///< measured at the capped stream X0
  double opt_upper = 0.0;   ///< best feasible schedule found (at X0)
  double opt_lower = 0.0;   ///< provable lower bound (at X0)
  double plan_flow = 0.0;   ///< the standard schedule's flow (at X0)
  double alive_tail = 0.0;  ///< ALG's alive-job count in stream steady state
  double X0 = 0.0;          ///< simulated stream length
  double X_full = 0.0;      ///< the paper's P^2 (or the configured X)
  bool case1 = false;
  int phases = 0;           ///< realized number of phases
  int machines = 0;
  std::size_t jobs = 0;
  std::string best_name;

  /// Measured ratio against the best feasible schedule at X0.
  [[nodiscard]] double ratio_lb() const { return alg_flow / opt_upper; }
  /// Measured ratio against the provable lower bound at X0.
  [[nodiscard]] double ratio_ub() const { return alg_flow / opt_lower; }
  /// Ratio extrapolated to the full stream X (see file comment).
  [[nodiscard]] double ratio_extrapolated() const;
};

/// Run `policy` (registry spec) against the adversary; stream capped at
/// `stream_cap` time units and extrapolated to cfg.stream_time (or P²).
/// Extra `observers` (e.g. an InvariantAuditor) are attached to the ALG
/// run only — portfolio/OPT replays are not observed.
[[nodiscard]] AdversaryPoint run_adversary_point(
    const std::string& policy, const AdversaryConfig& cfg,
    double stream_cap = 4096.0, const std::vector<Observer*>& observers = {});

/// Smallest P realizing exactly `phases` adversary phases for this alpha:
/// L = floor(log_{1/r}(P)/2) so P = (1/r)^{2L} (nudged up so the floor
/// lands on L).
[[nodiscard]] double P_for_phases(double alpha, int phases);

}  // namespace parsched
