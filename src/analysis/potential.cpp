#include "analysis/potential.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/mathx.hpp"

namespace parsched {

namespace {

/// Alive ALG jobs at time t sorted by (release, id) — rank order.
std::vector<const JobTrajectory*> alive_by_release(
    const ScheduleTrajectories& alg, double t) {
  std::vector<const JobTrajectory*> alive;
  for (const auto& [id, jt] : alg.jobs()) {
    (void)id;
    if (t >= jt.job.release && t < jt.completion) alive.push_back(&jt);
  }
  std::sort(alive.begin(), alive.end(),
            [](const JobTrajectory* a, const JobTrajectory* b) {
              if (a->job.release != b->job.release) {
                return a->job.release < b->job.release;
              }
              return a->job.id < b->job.id;
            });
  return alive;
}

}  // namespace

double potential_at(const ScheduleTrajectories& alg,
                    const ScheduleTrajectories& ref, int m, double t) {
  const auto alive = alive_by_release(alg, t);
  double phi = 0.0;
  for (std::size_t pos = 0; pos < alive.size(); ++pos) {
    const JobTrajectory& jt = *alive[pos];
    const double rank =
        std::min(static_cast<double>(m), static_cast<double>(pos + 1));
    const double z = std::max(
        jt.remaining.value(t) - ref.remaining_at(jt.job.id, t), 0.0);
    if (z <= 0.0) continue;
    phi += z / jt.job.curve.rate(static_cast<double>(m) / rank);
  }
  return 16.0 * phi;
}

PotentialFlux potential_flux_at(const ScheduleTrajectories& alg,
                                const ScheduleTrajectories& ref, int m,
                                double t) {
  PotentialFlux flux;
  const auto alive = alive_by_release(alg, t);
  for (std::size_t pos = 0; pos < alive.size(); ++pos) {
    const JobTrajectory& jt = *alive[pos];
    const double z =
        jt.remaining.value(t) - ref.remaining_at(jt.job.id, t);
    if (z <= 0.0) continue;  // z_i = 0: neither side moves the term
    const double rank =
        std::min(static_cast<double>(m), static_cast<double>(pos + 1));
    const double denom = jt.job.curve.rate(static_cast<double>(m) / rank);
    // Processing rates are the negated slopes of the remaining-work
    // trajectories (0 for OPT once it finished the job).
    const double alg_rate = -jt.remaining.right_derivative(t);
    double opt_rate = 0.0;
    const auto it = ref.jobs().find(jt.job.id);
    if (it != ref.jobs().end() && ref.alive_at(jt.job.id, t)) {
      opt_rate = -it->second.remaining.right_derivative(t);
    }
    flux.opt_side += 16.0 * std::max(opt_rate, 0.0) / denom;
    flux.alg_side -= 16.0 * std::max(alg_rate, 0.0) / denom;
  }
  return flux;
}

PotentialReport analyze_potential(const ScheduleTrajectories& alg,
                                  const ScheduleTrajectories& ref, int m,
                                  double P, double alpha) {
  PotentialReport rep;
  const auto grid_alg = alg.breakpoints();
  const auto grid_ref = ref.breakpoints();
  std::vector<double> grid;
  grid.reserve(grid_alg.size() + grid_ref.size());
  std::merge(grid_alg.begin(), grid_alg.end(), grid_ref.begin(),
             grid_ref.end(), std::back_inserter(grid));
  std::vector<double> uniq;
  for (double t : grid) {
    if (uniq.empty() || t - uniq.back() > 1e-12) uniq.push_back(t);
  }
  if (uniq.size() < 2) return rep;

  const double env2 =
      alpha < 1.0 ? std::pow(4.0, 1.0 / (1.0 - alpha)) * std::log2(P) : 1.0;
  const double env3 =
      alpha < 1.0 ? std::pow(2.0, 1.0 / (1.0 - alpha)) : 1.0;

  rep.phi_start = potential_at(alg, ref, m, uniq.front());
  rep.phi_end = potential_at(alg, ref, m, uniq.back());

  double prev_right_phi = rep.phi_start;
  bool have_prev = false;
  for (std::size_t i = 0; i + 1 < uniq.size(); ++i) {
    const double t0 = uniq[i];
    const double t1 = uniq[i + 1];
    const double len = t1 - t0;
    if (len <= 1e-12) continue;
    const double delta = std::min(len * 0.25, 1e-6 * std::max(1.0, t0));
    const double ta = t0 + delta;
    const double tb = t1 - delta;
    const double phi_a = potential_at(alg, ref, m, ta);
    const double phi_b = potential_at(alg, ref, m, tb);
    // Phi is linear inside the interval: exact derivative.
    const double dphi = tb > ta ? (phi_b - phi_a) / (tb - ta) : 0.0;
    const double mid = 0.5 * (t0 + t1);
    const auto A = static_cast<double>(alg.alive_count_at(mid));
    const auto OPT = static_cast<double>(ref.alive_count_at(mid));
    ++rep.intervals;

    // Discontinuous Changes: jump across t0.
    if (have_prev) {
      rep.max_jump_increase =
          std::max(rep.max_jump_increase, phi_a - prev_right_phi);
    }
    prev_right_phi = phi_b;
    have_prev = true;

    const double lhs = A + dphi;
    if (OPT > 0.0) {
      rep.c_continuous = std::max(rep.c_continuous, lhs / OPT);
      if (A >= static_cast<double>(m)) {
        rep.c_lemma2 = std::max(rep.c_lemma2, dphi / (env2 * OPT));
      } else {
        rep.c_lemma3 = std::max(rep.c_lemma3, lhs / (env3 * OPT));
      }
    } else if (lhs > 1e-6 * std::max(1.0, A)) {
      ++rep.opt_zero_violations;
    }

    // Decompose the derivative into the paper's inner lemmas (7, 8, 9).
    const PotentialFlux flux = potential_flux_at(alg, ref, m, mid);
    const double md = static_cast<double>(m);
    // z_i may cross zero strictly inside the interval (not a breakpoint),
    // so compare against a *local* two-point derivative at the midpoint
    // rather than the interval-average slope.
    const double dm = len * 1e-3;
    const double dphi_mid = (potential_at(alg, ref, m, mid + dm) -
                             potential_at(alg, ref, m, mid - dm)) /
                            (2.0 * dm);
    rep.decomposition_residual =
        std::max(rep.decomposition_residual,
                 std::fabs(dphi_mid - (flux.opt_side + flux.alg_side)) /
                     std::max(1.0, std::fabs(dphi_mid)));
    rep.c_lemma7 = std::max(rep.c_lemma7,
                            flux.opt_side / (16.0 * (A + OPT + 1e-12)));
    if (OPT > 0.0 && OPT <= md && alpha < 1.0) {
      rep.c_lemma8 = std::max(
          rep.c_lemma8, flux.opt_side / (16.0 * std::pow(md, alpha) *
                                         std::pow(OPT, 1.0 - alpha)));
    }
    if (alpha < 1.0) {
      const double logP = std::log2(std::max(P, 2.0));
      const double opt_cap =
          md / (4.0 * std::pow(4.0, 1.0 / (1.0 - alpha)));
      // Lemma 9 bounds the decrease *due to the algorithm processing*;
      // intervals where the ALG schedule processes nothing (possible only
      // for non-work-conserving plan inputs, never for ISRPT) are outside
      // its premise.
      if (A >= md && A <= 10.0 * md * logP && OPT <= opt_cap &&
          flux.alg_side < 0.0) {
        ++rep.lemma9_intervals;
        const double ratio = flux.alg_side / (-4.0 * md);
        rep.lemma9_min_ratio = rep.lemma9_intervals == 1
                                   ? ratio
                                   : std::min(rep.lemma9_min_ratio, ratio);
      }
    }
  }
  return rep;
}

}  // namespace parsched
