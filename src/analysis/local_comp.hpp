// parsched — empirical verification of the local-competitiveness lemmas.
//
// Section 2.2: at overloaded times t (|A(t)| >= m) Intermediate-SRPT
// behaves like Sequential-SRPT, and the paper proves
//
//   Lemma 4:  DeltaV_{<=k}(t) <= m * 2^{k+1}   for every size class k,
//   Lemma 5:  delta^A_{>=0,<=kmax}(t) <= m(kmax + 2)
//                                        + 2 delta^OPT_{<=kmax}(t),
//   Lemma 1:  |A(t)| <= m(3 + log P) + 2|OPT(t)|.
//
// This module samples the merged breakpoint grid of the two schedules and
// reports the worst observed ratio of each inequality (values <= 1 mean
// the lemma held pointwise against the OPT surrogate).
#pragma once

#include <cstddef>

#include "analysis/trajectories.hpp"

namespace parsched {

struct LocalCompReport {
  /// max over overloaded samples of |A| / (m(3 + log2 P) + 2|OPT|).
  double lemma1_worst = 0.0;
  /// max over overloaded samples and classes k of
  /// DeltaV_{<=k} / (m * 2^{k+1}).
  double lemma4_worst = 0.0;
  /// max over overloaded samples of
  /// delta^A_{>=0,<=kmax} / (m(kmax + 2) + 2 delta^OPT_{<=kmax}).
  double lemma5_worst = 0.0;
  std::size_t overloaded_samples = 0;
  std::size_t samples = 0;
};

[[nodiscard]] LocalCompReport check_local_competitiveness(
    const ScheduleTrajectories& alg, const ScheduleTrajectories& ref, int m,
    double P);

/// Volume of alive jobs of schedule `s` at time t restricted to size
/// classes <= k (class of a job = floor(log2 remaining), -1 when < 1).
/// Exposed for unit tests.
[[nodiscard]] double volume_classes_at_most(const ScheduleTrajectories& s,
                                            double t, int k);

/// Number of alive jobs of schedule `s` at time t whose size class lies
/// in [lo, hi]. Exposed for unit tests.
[[nodiscard]] std::size_t count_classes_between(const ScheduleTrajectories& s,
                                                double t, int lo, int hi);

}  // namespace parsched
