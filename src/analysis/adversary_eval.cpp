#include "analysis/adversary_eval.hpp"

#include <algorithm>
#include <cmath>

#include "sched/opt/portfolio.hpp"
#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"
#include "simcore/trajectory.hpp"
#include "util/mathx.hpp"

namespace parsched {

std::vector<std::string> adversary_portfolio() {
  return {"isrpt", "seq-srpt", "equi", "laps:0.5", "greedy"};
}

double AdversaryPoint::ratio_extrapolated() const {
  const double extra = X_full - X0;
  const double alg_x = alg_flow + extra * alive_tail;
  const double plan_x =
      plan_flow +
      extra * (static_cast<double>(machines) +
               (case1 ? static_cast<double>(machines) / 2.0 : 0.0));
  return alg_x / plan_x;
}

AdversaryPoint run_adversary_point(const std::string& policy,
                                   const AdversaryConfig& cfg,
                                   double stream_cap,
                                   const std::vector<Observer*>& observers) {
  AdversaryConfig capped = cfg;
  const double X_full =
      cfg.stream_time > 0.0 ? cfg.stream_time : cfg.P * cfg.P;
  capped.stream_time = std::min(X_full, stream_cap);

  AdversarySource source(capped);
  auto sched = make_scheduler(policy);
  Engine engine(capped.machines);
  CountTracker tracker;
  engine.add_observer(&tracker);
  for (Observer* obs : observers) engine.add_observer(obs);
  const SimResult alg = engine.run(*sched, source);
  const Instance realized(capped.machines, alg.realized_jobs());
  const Plan plan =
      adversary_standard_plan(realized, capped, source.outcome());
  const PortfolioResult pf = run_portfolio(
      realized, {{"standard-schedule", plan}}, adversary_portfolio());

  AdversaryPoint pt;
  pt.alg_flow = alg.total_flow;
  pt.opt_upper = pf.best_flow;
  pt.opt_lower = opt_lower_bound(realized);
  pt.plan_flow = pf.flows.at("standard-schedule");
  pt.case1 = source.outcome().case1;
  pt.phases = static_cast<int>(source.outcome().phase_start.size());
  pt.machines = capped.machines;
  pt.jobs = alg.jobs();
  pt.best_name = pf.best_name;
  pt.X0 = capped.stream_time;
  pt.X_full = X_full;
  // Steady-state backlog: alive count shortly before the stream ends.
  const double probe =
      source.outcome().T + std::max(0.0, capped.stream_time - 2.0);
  pt.alive_tail = tracker.alive_count().value(probe);
  return pt;
}

double P_for_phases(double alpha, int phases) {
  const AdversaryConstants c = adversary_constants(alpha);
  return std::pow(1.0 / c.r, 2.0 * phases) * 1.0001;
}

}  // namespace parsched
