#include "analysis/trajectories.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace parsched {

ScheduleTrajectories ScheduleTrajectories::from_recorder(
    const TrajectoryRecorder& rec) {
  ScheduleTrajectories out;
  out.jobs_ = rec.trajectories();
  return out;
}

ScheduleTrajectories ScheduleTrajectories::from_plan(const Instance& instance,
                                                     const Plan& plan) {
  // Group segments per job, replay them into piecewise-linear remaining.
  std::map<JobId, std::vector<PlanSegment>> per_job;
  for (const PlanSegment& s : plan.segments) per_job[s.job].push_back(s);

  ScheduleTrajectories out;
  for (const Job& job : instance.jobs()) {
    if (!job.phases.empty()) {
      throw std::invalid_argument(
          "plan trajectories do not support multi-phase jobs");
    }
    JobTrajectory jt;
    jt.job = job;
    jt.remaining.append(job.release, job.size);
    auto it = per_job.find(job.id);
    if (it == per_job.end()) {
      throw std::invalid_argument("plan misses job " + std::to_string(job.id));
    }
    auto& segs = it->second;
    std::sort(segs.begin(), segs.end(),
              [](const PlanSegment& a, const PlanSegment& b) {
                return a.t0 < b.t0;
              });
    double work = 0.0;
    for (const PlanSegment& s : segs) {
      const double rate = job.curve.rate(s.share);
      jt.remaining.append(s.t0, job.size - work);
      const double seg_work = rate * (s.t1 - s.t0);
      if (work + seg_work >= job.size - 1e-9 * std::max(1.0, job.size)) {
        const double need = std::max(0.0, job.size - work);
        const double t_done = s.t0 + (rate > 0.0 ? need / rate : 0.0);
        jt.remaining.append(t_done, 0.0);
        jt.completion = t_done;
        work = job.size;
        break;
      }
      work += seg_work;
      jt.remaining.append(s.t1, job.size - work);
    }
    if (jt.completion == 0.0 && job.size > 0.0) {  // lint: float-eq-ok
      throw std::invalid_argument("plan does not finish job " +
                                  std::to_string(job.id));
    }
    out.jobs_.emplace(job.id, std::move(jt));
  }
  return out;
}

double ScheduleTrajectories::remaining_at(JobId id, double t) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return 0.0;
  const JobTrajectory& jt = it->second;
  if (t < jt.job.release) return jt.job.size;
  if (t >= jt.completion) return 0.0;
  return jt.remaining.value(t);
}

bool ScheduleTrajectories::alive_at(JobId id, double t) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const JobTrajectory& jt = it->second;
  return t >= jt.job.release && t < jt.completion;
}

std::size_t ScheduleTrajectories::alive_count_at(double t) const {
  std::size_t n = 0;
  for (const auto& [id, jt] : jobs_) {
    (void)jt;
    if (alive_at(id, t)) ++n;
  }
  return n;
}

std::vector<double> ScheduleTrajectories::breakpoints() const {
  std::vector<double> out;
  for (const auto& [id, jt] : jobs_) {
    (void)id;
    out.insert(out.end(), jt.remaining.times().begin(),
               jt.remaining.times().end());
  }
  std::sort(out.begin(), out.end());
  std::vector<double> dedup;
  for (double t : out) {
    if (dedup.empty() || t - dedup.back() > 1e-12) dedup.push_back(t);
  }
  return dedup;
}

double ScheduleTrajectories::horizon() const {
  double h = 0.0;
  for (const auto& [id, jt] : jobs_) {
    (void)id;
    h = std::max(h, jt.completion);
  }
  return h;
}

}  // namespace parsched
