// parsched — shared plumbing for the bench binaries.
//
// Every experiment prints a paper-style table, mirrors it to CSV next to
// the binary, and (where the theory predicts logarithmic growth) reports a
// least-squares fit of the measured ratios against log2 P.
#pragma once

#include <string>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace parsched {

/// Print `table` under a banner, write `<name>.csv`, return the table.
void emit_experiment(const std::string& name, const std::string& claim,
                     const Table& table);

/// Fit y ~ a * log2(x) + b over the two named numeric columns and print
/// the result (used to quantify the Theorem-1 / Theorem-2 log P growth).
LinearFit fit_against_log2(const Table& table, const std::string& x_col,
                           const std::string& y_col);

}  // namespace parsched
