#include "analysis/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "sched/opt/plan.hpp"
#include "util/fsio.hpp"

namespace parsched {

void AllocationTrace::close_open_segments(double t) {
  for (auto it = open_.begin(); it != open_.end();) {
    const auto [start, share] = it->second;
    if (t > start) {
      segments_.push_back({it->first, start, t, share});
    }
    it = open_.erase(it);
  }
}

void AllocationTrace::on_decision(double t, std::span<const AliveJob> alive,
                                  std::span<const double> shares) {
  // A decision replaces the whole allocation: close everything, reopen
  // the positive shares. Consecutive equal shares merge lazily below.
  close_open_segments(t);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (shares[i] > 0.0) {
      open_[alive[i].id] = {t, shares[i]};
    }
  }
  end_time_ = std::max(end_time_, t);
}

void AllocationTrace::on_completion(double t, const Job& job) {
  const auto it = open_.find(job.id);
  if (it != open_.end()) {
    const auto [start, share] = it->second;
    if (t > start) segments_.push_back({job.id, start, t, share});
    open_.erase(it);
  }
  end_time_ = std::max(end_time_, t);
}

void AllocationTrace::on_done(double t) {
  close_open_segments(t);
  end_time_ = std::max(end_time_, t);
  // Merge adjacent segments of the same job and share (decision points
  // that did not change this job's allocation).
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              if (a.job != b.job) return a.job < b.job;
              return a.t0 < b.t0;
            });
  std::vector<Segment> merged;
  for (const Segment& s : segments_) {
    if (!merged.empty() && merged.back().job == s.job &&
        merged.back().share == s.share &&
        std::fabs(merged.back().t1 - s.t0) < 1e-12) {
      merged.back().t1 = s.t1;
    } else {
      merged.push_back(s);
    }
  }
  segments_ = std::move(merged);
}

StepFunction AllocationTrace::utilization() const {
  // Sweep share deltas.
  std::vector<std::pair<double, double>> deltas;
  deltas.reserve(2 * segments_.size());
  for (const Segment& s : segments_) {
    deltas.emplace_back(s.t0, s.share);
    deltas.emplace_back(s.t1, -s.share);
  }
  std::sort(deltas.begin(), deltas.end());
  StepFunction f;
  double usage = 0.0;
  std::size_t i = 0;
  while (i < deltas.size()) {
    const double t = deltas[i].first;
    while (i < deltas.size() && deltas[i].first <= t + 1e-12) {
      usage += deltas[i].second;
      ++i;
    }
    f.append(t, std::max(usage, 0.0));
  }
  return f;
}

double AllocationTrace::average_utilization(double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  return utilization().integrate(t0, t1) / (t1 - t0);
}

void AllocationTrace::write_csv(const std::string& path) const {
  auto out = open_output(path, "trace output");
  out << "job,t0,t1,share\n";
  for (const Segment& s : segments_) {
    out << s.job << ',' << std::setprecision(12) << s.t0 << ',' << s.t1
        << ',' << s.share << '\n';
  }
  // finish_output flushes and re-checks the stream, so a disk-full or
  // short write raises instead of leaving a silently truncated CSV.
  finish_output(out, path);
}

Plan AllocationTrace::to_plan() const {
  Plan plan;
  plan.segments.reserve(segments_.size());
  for (const Segment& s : segments_) {
    plan.add(s.job, s.t0, s.t1, s.share);
  }
  return plan;
}

void AllocationTrace::render_gantt(std::ostream& os, int width,
                                   std::size_t max_jobs) const {
  if (segments_.empty() || end_time_ <= 0.0 || width < 8) {
    os << "(empty trace)\n";
    return;
  }
  // Pick the jobs with the most allocated machine-time.
  std::map<JobId, double> busy;
  std::map<JobId, std::pair<double, double>> span;  // first/last activity
  for (const Segment& s : segments_) {
    busy[s.job] += (s.t1 - s.t0) * s.share;
    auto [it, inserted] = span.try_emplace(s.job, s.t0, s.t1);
    if (!inserted) {
      it->second.first = std::min(it->second.first, s.t0);
      it->second.second = std::max(it->second.second, s.t1);
    }
  }
  std::vector<JobId> ids;
  for (const auto& [id, b] : busy) {
    (void)b;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
    return busy.at(a) > busy.at(b);
  });
  if (ids.size() > max_jobs) ids.resize(max_jobs);
  std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
    return span.at(a).first < span.at(b).first;
  });

  const double bucket = end_time_ / width;
  os << "time 0 .. " << end_time_ << "  (" << width << " buckets of "
     << bucket << ")\n";
  for (JobId id : ids) {
    std::vector<double> cells(static_cast<std::size_t>(width), 0.0);
    for (const Segment& s : segments_) {
      if (s.job != id) continue;
      const int b0 = std::clamp(static_cast<int>(s.t0 / bucket), 0,
                                width - 1);
      const int b1 = std::clamp(static_cast<int>(std::ceil(s.t1 / bucket)),
                                b0 + 1, width);
      for (int b = b0; b < b1; ++b) {
        cells[static_cast<std::size_t>(b)] =
            std::max(cells[static_cast<std::size_t>(b)], s.share);
      }
    }
    std::string row_label = "j";  // built up: GCC 12 -Werror=restrict
    row_label += std::to_string(id);
    os << std::setw(6) << row_label << " |";
    for (double c : cells) {
      os << (c <= 0.0      ? ' '
             : c < 1.0  ? '.'
             : c == 1.0 ? ':'  // lint: float-eq-ok
                        : '#');
    }
    os << "|\n";
  }
  if (busy.size() > ids.size()) {
    os << "  (+" << busy.size() - ids.size() << " more jobs not shown)\n";
  }
}

}  // namespace parsched
