// parsched — competitive-ratio estimation.
//
// OPT is sandwiched between provable lower bounds and the best feasible
// schedule found (see sched/opt). For a policy ALG on an instance:
//
//   ratio_lb = flow(ALG) / flow(best feasible schedule)   <= true ratio
//   ratio_ub = flow(ALG) / max(lower bounds)              >= true ratio
//
// Benches report both; qualitative conclusions (log P growth, Greedy's
// polynomial blow-up) hold for either end of the sandwich.
#pragma once

#include <string>
#include <vector>

#include "sched/opt/plan.hpp"
#include "sched/opt/portfolio.hpp"
#include "simcore/instance.hpp"
#include "simcore/scheduler.hpp"

namespace parsched {

struct CompetitiveReport {
  std::string policy;
  double alg_flow = 0.0;
  double opt_lower = 0.0;     ///< provable LB on OPT
  double opt_upper = 0.0;     ///< best feasible schedule's flow
  std::string opt_upper_name;
  std::size_t jobs = 0;

  /// Lower estimate of the competitive ratio (vs the feasible schedule).
  [[nodiscard]] double ratio_lb() const {
    return opt_upper > 0.0 ? alg_flow / opt_upper : 0.0;
  }
  /// Upper estimate of the competitive ratio (vs the provable LB).
  [[nodiscard]] double ratio_ub() const {
    return opt_lower > 0.0 ? alg_flow / opt_lower : 0.0;
  }
};

/// Simulate `sched` on `instance`, estimate OPT (optionally helped by
/// instance-specific feasible `plans`), and report the sandwich.
[[nodiscard]] CompetitiveReport compare_to_opt(
    const Instance& instance, Scheduler& sched,
    const std::vector<std::pair<std::string, Plan>>& plans = {});

}  // namespace parsched
