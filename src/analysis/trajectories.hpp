// parsched — schedule trajectories: the common currency of the verifiers.
//
// Both the potential-function analysis (Lemmas 2/3) and the
// local-competitiveness analysis (Lemmas 1/4/5) compare the *state* of two
// schedules over time, not just their final flows. A ScheduleTrajectories
// holds every job's remaining-work curve for one schedule; it can be built
// from a live simulation (TrajectoryRecorder) or from an explicit Plan.
#pragma once

#include <unordered_map>
#include <vector>

#include "sched/opt/plan.hpp"
#include "simcore/instance.hpp"
#include "simcore/trajectory.hpp"

namespace parsched {

class ScheduleTrajectories {
 public:
  ScheduleTrajectories() = default;

  static ScheduleTrajectories from_recorder(const TrajectoryRecorder& rec);
  static ScheduleTrajectories from_plan(const Instance& instance,
                                        const Plan& plan);

  [[nodiscard]] const std::unordered_map<JobId, JobTrajectory>& jobs() const {
    return jobs_;
  }

  /// Remaining work of job `id` at time t: full size before release, 0
  /// after completion.
  [[nodiscard]] double remaining_at(JobId id, double t) const;

  /// True when the job has been released but not completed at time t
  /// (releases are inclusive, completions exclusive: a job completing at t
  /// is no longer alive at t).
  [[nodiscard]] bool alive_at(JobId id, double t) const;

  /// Number of alive jobs at time t.
  [[nodiscard]] std::size_t alive_count_at(double t) const;

  /// Sorted, deduplicated union of all knot times (arrivals, decision
  /// points, completions).
  [[nodiscard]] std::vector<double> breakpoints() const;

  /// Latest completion time.
  [[nodiscard]] double horizon() const;

 private:
  std::unordered_map<JobId, JobTrajectory> jobs_;
};

}  // namespace parsched
