// parsched — paper-style ASCII tables and CSV emission.
//
// Every bench binary prints one fixed-width table per experiment so the
// output reads like the rows of a paper table, and mirrors the same rows to
// a CSV file for offline plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace parsched {

/// A table cell: string, integer, or double (formatted with precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  /// `precision` controls how doubles are rendered.
  explicit Table(std::vector<std::string> headers, int precision = 4);

  void add_row(std::vector<Cell> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Column headers, in declaration order.
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }

  /// Raw typed cells (obs/report.hpp embeds tables in bench reports).
  [[nodiscard]] const std::vector<std::vector<Cell>>& cell_rows() const {
    return rows_;
  }

  /// Render with column rules and a header separator.
  void print(std::ostream& os) const;

  /// Write headers + rows as RFC-4180-ish CSV.
  void write_csv(const std::string& path) const;

  /// Access a numeric column (throws std::out_of_range on bad name,
  /// std::bad_variant_access if a cell is a string).
  [[nodiscard]] std::vector<double> numeric_column(
      const std::string& header) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace parsched
