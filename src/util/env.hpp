// parsched — checked environment-variable access.
//
// Every subsystem used to call std::getenv directly and invent its own
// parsing: exec/sweep.cpp silently fell back to all hardware threads on
// PARSCHED_JOBS=abc, obs/report.cpp and bench_common.hpp each had their
// own flag idiom. This header is now the only sanctioned home for
// std::getenv (parsched_lint's `raw-getenv` rule fences it here, the
// same pattern as raw-thread / raw-chrono / raw-ofstream), so env
// parsing is uniform and malformed values are *diagnosed*, never
// silently ignored:
//
//   if (parsched::env::get_flag("PARSCHED_REPORT")) ...
//   const long jobs = parsched::env::get_int("PARSCHED_JOBS", 0, 1, 4096);
//
// get_int emits a one-line stderr warning naming the variable and the
// bad value before returning the fallback; unset/empty variables fall
// back silently (absence is not an error).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace parsched::env {

/// Raw lookup; nullptr when unset. Prefer the typed helpers below.
[[nodiscard]] inline const char* raw(const char* name) {
  return std::getenv(name);
}

/// True when the variable is set to a non-empty value.
[[nodiscard]] inline bool has(const char* name) {
  const char* v = raw(name);
  return v != nullptr && v[0] != '\0';
}

/// The variable's value, or `fallback` when unset or empty.
[[nodiscard]] inline std::string get_string(const char* name,
                                            const std::string& fallback =
                                                std::string()) {
  const char* v = raw(name);
  return (v != nullptr && v[0] != '\0') ? std::string(v) : fallback;
}

/// Boolean flag idiom shared by PARSCHED_REPORT / PARSCHED_AUDIT: set,
/// non-empty, and not starting with '0'.
[[nodiscard]] inline bool get_flag(const char* name) {
  const char* v = raw(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Integer in [lo, hi]. Unset/empty returns `fallback` silently; a
/// malformed or out-of-range value emits one stderr warning naming the
/// variable and the offending text, then returns `fallback`.
[[nodiscard]] inline long get_int(const char* name, long fallback, long lo,
                                  long hi) {
  const char* v = raw(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || n < lo || n > hi) {
    std::fprintf(stderr,
                 "parsched: ignoring %s='%s' (expected an integer in "
                 "[%ld, %ld])\n",
                 name, v, lo, hi);
    return fallback;
  }
  return n;
}

}  // namespace parsched::env
