#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "check/contract.hpp"
#include "util/rng.hpp"

namespace parsched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

double percentile(std::vector<double> values, double p) {
  PARSCHED_CHECK(!values.empty(), "percentile of an empty sample");
  PARSCHED_CHECK(0.0 <= p && p <= 100.0, "percentile p outside [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  PARSCHED_CHECK(x.size() == y.size(), "linear_fit needs paired samples");
  PARSCHED_CHECK(x.size() >= 2, "linear_fit needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

Interval bootstrap_mean_ci(const std::vector<double>& values,
                           double confidence, int resamples,
                           std::uint64_t seed) {
  PARSCHED_CHECK(!values.empty(), "bootstrap of an empty sample");
  PARSCHED_CHECK(0.0 < confidence && confidence < 1.0,
                 "confidence must lie in (0, 1)");
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = values.size();
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  Interval iv;
  iv.lo = percentile(means, tail);
  iv.hi = percentile(means, 100.0 - tail);
  return iv;
}

}  // namespace parsched
