#include "util/rng.hpp"

#include <cmath>

#include "check/contract.hpp"

namespace parsched {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Avoid the all-zero state (splitmix64 never produces it for all four
  // words simultaneously, but be defensive).
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PARSCHED_DCHECK(lo <= hi, "uniform needs lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PARSCHED_DCHECK(lo <= hi, "uniform_int needs lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double rate) {
  PARSCHED_DCHECK(rate > 0.0, "exponential needs a positive rate");
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / rate;
}

double Rng::log_uniform(double lo, double hi) {
  PARSCHED_DCHECK(0.0 < lo && lo <= hi, "log_uniform needs 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Rng::bounded_pareto(double lo, double hi, double shape) {
  PARSCHED_DCHECK(0.0 < lo && lo < hi && shape > 0.0,
                  "bounded_pareto needs 0 < lo < hi and positive shape");
  // Inverse-CDF in the stable form lo·(1 − u·(1 − (lo/hi)^a))^(−1/a).
  // The textbook form pow(-(u·hi^a − u·lo^a − hi^a)/(hi^a·lo^a), −1/a)
  // overflows hi^a to inf once hi·shape is large, turning the numerator
  // into inf − inf = NaN; here (lo/hi)^a ∈ (0, 1] never overflows, and
  // the result is clamped to [lo, hi] by construction: u = 0 gives
  // lo·1 = lo and u → 1 gives lo·((lo/hi)^a)^(−1/a) = hi.
  const double u = uniform01();
  const double ratio_a = std::pow(lo / hi, shape);
  return lo * std::pow(1.0 - u * (1.0 - ratio_a), -1.0 / shape);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PARSCHED_CHECK(!weights.empty(), "weighted_index of an empty vector");
  double total = 0.0;
  for (double w : weights) {
    PARSCHED_CHECK(w >= 0.0, "weights must be nonnegative");
    total += w;
  }
  PARSCHED_CHECK(total > 0.0, "weights must not all be zero");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace parsched
