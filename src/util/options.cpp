#include "util/options.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace parsched {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Options::has(const std::string& key) const {
  touched_[key] = true;
  return kv_.count(key) > 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stoll(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> Options::get_doubles(const std::string& key,
                                         std::vector<double> fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  if (out.empty()) throw std::invalid_argument("empty list for --" + key);
  return out;
}

std::vector<std::int64_t> Options::get_ints(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  if (out.empty()) throw std::invalid_argument("empty list for --" + key);
  return out;
}

std::vector<std::string> Options::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (!touched_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace parsched
