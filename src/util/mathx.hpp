// parsched — math helpers shared across the library.
//
// Everything here is small, header-only and allocation-free: float
// comparisons with mixed absolute/relative tolerance, the size-class index
// used by the Leonardi–Raz style analysis (Section 2.2 of the paper), and
// the closed-form quantities from the paper's lower-bound constructions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "check/contract.hpp"

namespace parsched {

/// Positive infinity for time-like quantities.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Default tolerance used to group simultaneous events and compare work.
inline constexpr double kEps = 1e-9;

/// True when |a - b| <= tol * max(1, |a|, |b|): mixed absolute/relative.
[[nodiscard]] inline bool approx_eq(double a, double b, double tol = kEps) {
  return std::fabs(a - b) <= tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// True when a < b and not approx_eq(a, b).
[[nodiscard]] inline bool definitely_less(double a, double b,
                                          double tol = kEps) {
  return a < b && !approx_eq(a, b, tol);
}

/// True when a <= b up to tolerance.
[[nodiscard]] inline bool leq_tol(double a, double b, double tol = kEps) {
  return a <= b || approx_eq(a, b, tol);
}

/// Clamp tiny negatives (numerical dust) to exactly zero.
[[nodiscard]] inline double clamp_nonneg(double x, double tol = kEps) {
  if (x < 0.0) {
    PARSCHED_CHECK(x > -1e-6,
                   "value is negative beyond numerical tolerance");
    (void)tol;
    return 0.0;
  }
  return x;
}

/// Size-class index of the paper's analysis: a job with remaining work
/// w in [2^k, 2^{k+1}) is in class k; w < 1 is the special class -1.
[[nodiscard]] inline int size_class(double remaining) {
  if (remaining < 1.0) return -1;
  return static_cast<int>(std::floor(std::log2(remaining)));
}

/// Number of initial job classes for sizes in [1, P]: ceil(log2 P), min 1.
[[nodiscard]] inline int num_size_classes(double P) {
  PARSCHED_CHECK(P >= 1.0, "need P >= 1");
  return std::max(1, static_cast<int>(std::ceil(std::log2(P))));
}

/// log base (1/r); used throughout the Section-4 adversary.
[[nodiscard]] inline double log_inv(double r, double x) {
  PARSCHED_CHECK(r > 0.0 && r < 1.0 && x > 0.0,
                 "log_inv needs r in (0, 1) and x > 0");
  return std::log(x) / std::log(1.0 / r);
}

/// Closed-form quantities of the Section-4 lower-bound construction for
/// intermediate parallelizability exponent alpha (epsilon = 1 - alpha).
struct AdversaryConstants {
  double alpha = 0.0;    ///< parallelizability exponent
  double epsilon = 1.0;  ///< 1 - alpha
  double r = 0.25;       ///< phase length reduction factor, r = (1 - 2^-eps)/2
  double kappa = 1.0;    ///< (2^eps - 1)/(2^eps + 1), the "slack" constant
};

[[nodiscard]] inline AdversaryConstants adversary_constants(double alpha) {
  PARSCHED_CHECK(alpha >= 0.0 && alpha < 1.0,
                 "adversary constants need alpha in [0, 1)");
  AdversaryConstants c;
  c.alpha = alpha;
  c.epsilon = 1.0 - alpha;
  const double two_eps = std::exp2(c.epsilon);
  c.r = 0.5 * (1.0 - 1.0 / two_eps);
  c.kappa = (two_eps - 1.0) / (two_eps + 1.0);
  return c;
}

/// Theorem 1's competitive-ratio envelope (up to the O(1)): 4^{1/(1-a)} log2 P.
[[nodiscard]] inline double theorem1_envelope(double alpha, double P) {
  PARSCHED_CHECK(alpha < 1.0 && P >= 2.0,
                 "Theorem 1 envelope needs alpha < 1 and P >= 2");
  return std::pow(4.0, 1.0 / (1.0 - alpha)) * std::log2(P);
}

/// Integer power for small exponents (exact for doubles representing ints).
[[nodiscard]] inline double ipow(double base, int exp) {
  double out = 1.0;
  for (int i = 0; i < exp; ++i) out *= base;
  return out;
}

/// Round x to the nearest integer and assert it was already integral.
[[nodiscard]] inline std::int64_t round_integral(double x, double tol = 1e-6) {
  const double r = std::round(x);
  PARSCHED_CHECK(std::fabs(x - r) <= tol, "expected an integral value");
  return static_cast<std::int64_t>(r);
}

}  // namespace parsched
