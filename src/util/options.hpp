// parsched — tiny --key=value command-line parser for examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parsched {

/// Parses `--key=value` and bare `--flag` arguments. Unknown positional
/// arguments are collected separately. Lookup helpers provide typed access
/// with defaults; `used_keys()` supports strict validation.
class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of doubles, e.g. --alpha=0.25,0.5,0.75.
  [[nodiscard]] std::vector<double> get_doubles(
      const std::string& key, std::vector<double> fallback) const;

  /// Comma-separated list of integers.
  [[nodiscard]] std::vector<std::int64_t> get_ints(
      const std::string& key, std::vector<std::int64_t> fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Keys present on the command line but never looked up (typo detection).
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace parsched
