// parsched — piecewise functions of time.
//
// Two small append-only containers shared across the library:
//  * StepFunction      — right-continuous piecewise-constant values, used for
//                        alive-job counts |A(t)| and machine usage;
//  * PiecewiseLinear   — continuous piecewise-linear values, used for
//                        per-job remaining-work trajectories and for the
//                        potential function Phi(t).
// Both support exact integration and merged breakpoint grids, which is what
// the local-competitiveness and potential-function verifiers operate on.
#pragma once

#include <cstddef>
#include <vector>

namespace parsched {

/// Right-continuous step function: value(t) = v_i for t in [t_i, t_{i+1}).
/// Breakpoints must be appended in nondecreasing time order; appending a
/// point at an existing time overwrites the value at that time.
class StepFunction {
 public:
  void append(double t, double value);

  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::size_t size() const { return times_.size(); }

  /// Value at time t (value of the last breakpoint with time <= t).
  /// Before the first breakpoint the function is 0.
  [[nodiscard]] double value(double t) const;

  /// Exact integral over [a, b].
  [[nodiscard]] double integrate(double a, double b) const;

  /// Earliest/latest breakpoint time (empty -> 0).
  [[nodiscard]] double front_time() const;
  [[nodiscard]] double back_time() const;

  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// Continuous piecewise-linear function given by (t_i, v_i) knots with
/// linear interpolation; constant extrapolation outside the knot range.
class PiecewiseLinear {
 public:
  void append(double t, double value);

  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] std::size_t size() const { return times_.size(); }

  [[nodiscard]] double value(double t) const;

  /// Right derivative at t (0 outside the knot range and at the last knot).
  [[nodiscard]] double right_derivative(double t) const;

  /// Exact integral over [a, b].
  [[nodiscard]] double integrate(double a, double b) const;

  [[nodiscard]] double front_time() const;
  [[nodiscard]] double back_time() const;

  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  /// Index of the last knot with time <= t, or npos when t precedes all.
  [[nodiscard]] std::size_t locate(double t) const;

  std::vector<double> times_;
  std::vector<double> values_;
};

/// Sorted union of the breakpoint times of several functions, deduplicated
/// with tolerance `tol` and clipped to [lo, hi].
[[nodiscard]] std::vector<double> merged_breakpoints(
    const std::vector<const std::vector<double>*>& time_vectors, double lo,
    double hi, double tol = 1e-12);

}  // namespace parsched
