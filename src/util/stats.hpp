// parsched — lightweight statistics used by the benchmark harness.
//
// Welford running moments, order statistics, simple linear regression
// (benches fit competitive ratio ~ a*log2(P) + b to quantify the Theorem-1
// growth rate), and a seedable bootstrap confidence interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsched {

/// Numerically stable running mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0 <= p <= 100) with linear interpolation.
/// Copies and sorts; intended for end-of-run summaries, not hot loops.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Percentile bootstrap confidence interval for the mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

[[nodiscard]] Interval bootstrap_mean_ci(const std::vector<double>& values,
                                         double confidence = 0.95,
                                         int resamples = 1000,
                                         std::uint64_t seed = 42);

}  // namespace parsched
