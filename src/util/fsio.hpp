// parsched — checked file output.
//
// Every writer in the library used to open a std::ofstream, stream into
// it, and return — which silently produces truncated files on disk-full
// or short writes (the stream just sets failbit and the data is gone).
// These two helpers are the only sanctioned way to write a file:
//
//   auto out = open_output(path, "CSV output");   // throws if unopenable
//   ... stream into out ...
//   finish_output(out, path);                     // flush + close, throws
//                                                 // on any stream error
//
// parsched_lint's `raw-ofstream` rule bans spelling `std::ofstream`
// anywhere in src/ outside this header, so a writer cannot forget the
// final state check.
#pragma once

#include <fstream>
#include <stdexcept>
#include <string>

namespace parsched {

/// Open `path` for writing; throws std::runtime_error when the file
/// cannot be opened. `what` names the artifact in the error message.
[[nodiscard]] inline std::ofstream open_output(const std::string& path,
                                               const std::string& what =
                                                   "output") {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + what + ": " + path);
  }
  return out;
}

/// Flush and close `out`, throwing std::runtime_error if any write failed
/// (disk full, short write, I/O error). Call this before returning from
/// every file writer — a destructor cannot report the failure.
inline void finish_output(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("write failed (disk full or I/O error): " +
                             path);
  }
  out.close();
  if (out.fail()) {
    throw std::runtime_error("close failed after writing: " + path);
  }
}

}  // namespace parsched
