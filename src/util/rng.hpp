// parsched — deterministic random number generation.
//
// All stochastic workloads are driven by an explicitly seeded xoshiro256++
// generator so every experiment in the repository is bit-reproducible.
// No global RNG state exists anywhere in the library.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace parsched {

/// xoshiro256++ by Blackman & Vigna, seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Log-uniform on [lo, hi]: uniform in log-space; heavy spread of scales.
  double log_uniform(double lo, double hi);

  /// Bounded Pareto on [lo, hi] with tail index `shape` (> 0).
  double bounded_pareto(double lo, double hi, double shape);

  /// Bernoulli with success probability p.
  bool bernoulli(double p);

  /// Sample an index according to (unnormalized, nonnegative) weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-run streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace parsched
