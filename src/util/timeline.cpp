#include "util/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "check/contract.hpp"

namespace parsched {

void StepFunction::append(double t, double value) {
  if (!times_.empty()) {
    PARSCHED_CHECK(t >= times_.back(),
                   "StepFunction breakpoints must be appended in order");
    if (t == times_.back()) {
      values_.back() = value;
      return;
    }
  }
  times_.push_back(t);
  values_.push_back(value);
}

double StepFunction::value(double t) const {
  if (times_.empty() || t < times_.front()) return 0.0;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return values_[idx];
}

double StepFunction::integrate(double a, double b) const {
  PARSCHED_CHECK(a <= b, "integration bounds out of order");
  if (times_.empty() || a == b) return 0.0;
  double total = 0.0;
  // Segment [times_[i], next) carries values_[i]; before front it is 0.
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double seg_lo = times_[i];
    const double seg_hi = (i + 1 < times_.size()) ? times_[i + 1] : b;
    const double lo = std::max(a, seg_lo);
    const double hi = std::min(b, seg_hi);
    if (hi > lo) total += values_[i] * (hi - lo);
    if (seg_lo >= b) break;
  }
  return total;
}

double StepFunction::front_time() const {
  return times_.empty() ? 0.0 : times_.front();
}

double StepFunction::back_time() const {
  return times_.empty() ? 0.0 : times_.back();
}

void PiecewiseLinear::append(double t, double value) {
  if (!times_.empty()) {
    PARSCHED_CHECK(t >= times_.back(),
                   "PiecewiseLinear knots must be appended in order");
    if (t == times_.back()) {
      values_.back() = value;
      return;
    }
  }
  times_.push_back(t);
  values_.push_back(value);
}

std::size_t PiecewiseLinear::locate(double t) const {
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double PiecewiseLinear::value(double t) const {
  if (times_.empty()) return 0.0;
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const std::size_t i = locate(t);
  const double t0 = times_[i];
  const double t1 = times_[i + 1];
  const double frac = (t - t0) / (t1 - t0);
  return values_[i] + frac * (values_[i + 1] - values_[i]);
}

double PiecewiseLinear::right_derivative(double t) const {
  if (times_.size() < 2) return 0.0;
  if (t < times_.front() || t >= times_.back()) return 0.0;
  std::size_t i = locate(t);
  if (i == static_cast<std::size_t>(-1)) i = 0;
  // If t sits exactly on a knot, the right derivative is the next segment's.
  PARSCHED_DCHECK(i + 1 < times_.size());
  const double dt = times_[i + 1] - times_[i];
  return dt > 0.0 ? (values_[i + 1] - values_[i]) / dt : 0.0;
}

double PiecewiseLinear::integrate(double a, double b) const {
  PARSCHED_CHECK(a <= b, "integration bounds out of order");
  if (times_.empty() || a == b) return 0.0;
  auto val = [this](double t) { return value(t); };
  double total = 0.0;
  // Flat extrapolation before the first knot.
  if (a < times_.front()) {
    const double hi = std::min(b, times_.front());
    total += values_.front() * (hi - a);
  }
  for (std::size_t i = 0; i + 1 < times_.size(); ++i) {
    const double lo = std::max(a, times_[i]);
    const double hi = std::min(b, times_[i + 1]);
    if (hi > lo) total += 0.5 * (val(lo) + val(hi)) * (hi - lo);
    if (times_[i] >= b) break;
  }
  // Flat extrapolation after the last knot.
  if (b > times_.back()) {
    const double lo = std::max(a, times_.back());
    total += values_.back() * (b - lo);
  }
  return total;
}

double PiecewiseLinear::front_time() const {
  return times_.empty() ? 0.0 : times_.front();
}

double PiecewiseLinear::back_time() const {
  return times_.empty() ? 0.0 : times_.back();
}

std::vector<double> merged_breakpoints(
    const std::vector<const std::vector<double>*>& time_vectors, double lo,
    double hi, double tol) {
  std::vector<double> out;
  out.push_back(lo);
  for (const auto* tv : time_vectors) {
    for (double t : *tv) {
      if (t > lo && t < hi) out.push_back(t);
    }
  }
  out.push_back(hi);
  std::sort(out.begin(), out.end());
  std::vector<double> dedup;
  for (double t : out) {
    if (dedup.empty() || t - dedup.back() > tol) dedup.push_back(t);
  }
  return dedup;
}

}  // namespace parsched
