#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"
#include "util/fsio.hpp"

namespace parsched {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  PARSCHED_CHECK(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  PARSCHED_CHECK(row.size() == headers_.size(),
                 "row width must match the header");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::fixed << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& r : rendered) line(r);
  rule();
}

void Table::write_csv(const std::string& path) const {
  auto out = open_output(path, "CSV output");
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string e = "\"";
    for (char ch : s) {
      if (ch == '"') e += '"';
      e += ch;
    }
    e += '"';
    return e;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      if (const auto* s = std::get_if<std::string>(&row[c])) {
        out << escape(*s);
      } else if (const auto* i = std::get_if<std::int64_t>(&row[c])) {
        out << *i;
      } else {
        out << std::setprecision(12) << std::get<double>(row[c]);
      }
    }
    out << '\n';
  }
  finish_output(out, path);
}

std::vector<double> Table::numeric_column(const std::string& header) const {
  const auto it = std::find(headers_.begin(), headers_.end(), header);
  if (it == headers_.end()) {
    throw std::out_of_range("no such column: " + header);
  }
  const auto idx = static_cast<std::size_t>(it - headers_.begin());
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    if (const auto* i = std::get_if<std::int64_t>(&row[idx])) {
      out.push_back(static_cast<double>(*i));
    } else {
      out.push_back(std::get<double>(row[idx]));
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace parsched
