#include "simcore/job.hpp"

#include <stdexcept>

namespace parsched {

void Job::normalize_phases() {
  if (phases.empty()) return;
  double total = 0.0;
  for (const JobPhase& p : phases) {
    if (!(p.work > 0.0)) {
      throw std::invalid_argument("job phase work must be positive");
    }
    total += p.work;
  }
  size = total;
  curve = phases.front().curve;
}

Job make_phased_job(JobId id, double release, std::vector<JobPhase> phases) {
  Job j;
  j.id = id;
  j.release = release;
  j.phases = std::move(phases);
  j.normalize_phases();
  return j;
}

std::string to_string(JobTag::Class c) {
  switch (c) {
    case JobTag::Class::kNone:
      return "none";
    case JobTag::Class::kLong:
      return "long";
    case JobTag::Class::kShort:
      return "short";
    case JobTag::Class::kStream:
      return "stream";
  }
  return "?";
}

}  // namespace parsched
