#include "simcore/instance.hpp"

#include <algorithm>
#include <stdexcept>

namespace parsched {

Instance::Instance(int machines, std::vector<Job> jobs)
    : m_(machines), jobs_(std::move(jobs)) {
  if (m_ < 1) throw std::invalid_argument("need at least one machine");
  if (jobs_.empty()) throw std::invalid_argument("instance has no jobs");
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.release < b.release;
                   });
  min_size_ = max_size_ = jobs_.front().size;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Job& j = jobs_[i];
    j.normalize_phases();
    if (j.id == kInvalidJob) j.id = static_cast<JobId>(i);
    if (j.release < 0.0) throw std::invalid_argument("negative release time");
    if (j.size <= 0.0) throw std::invalid_argument("nonpositive job size");
    min_size_ = std::min(min_size_, j.size);
    max_size_ = std::max(max_size_, j.size);
    total_work_ += j.size;
    last_release_ = std::max(last_release_, j.release);
    max_alpha_ = std::max(max_alpha_, j.curve.alpha());
  }
  // Ids must be unique (they key results and trajectories).
  std::vector<JobId> ids;
  ids.reserve(jobs_.size());
  for (const Job& j : jobs_) ids.push_back(j.id);
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    throw std::invalid_argument("duplicate job ids");
  }
  p_ratio_ = max_size_ / min_size_;
}

}  // namespace parsched
