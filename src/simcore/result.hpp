// parsched — simulation results and flow-time accounting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/run_stats.hpp"
#include "simcore/job.hpp"

namespace parsched {

/// Per-job outcome.
struct JobRecord {
  Job job;
  double completion = 0.0;
  /// Flow time F_j = C_j - r_j, clamped at 0: admission treats releases
  /// within time_tol of `now` as due, so a job can complete up to
  /// time_tol *before* its nominal release — physically that is zero
  /// flow, and letting the negative epsilon through would make flow
  /// totals (batch and streaming alike) dip below the true objective.
  [[nodiscard]] double flow() const {
    return std::max(0.0, completion - job.release);
  }
};

/// Outcome of one simulation run.
struct SimResult {
  std::vector<JobRecord> records;  ///< in completion order
  double total_flow = 0.0;
  double weighted_flow = 0.0;  ///< sum of w_j * F_j (== total_flow when
                               ///< all weights are 1)
  double fractional_flow = 0.0;  ///< integral of sum_j p_j(t)/p_j dt
  double makespan = 0.0;         ///< last completion time
  std::uint64_t decisions = 0;   ///< number of decision points
  std::uint64_t events = 0;      ///< arrivals + completions + reconsiders

  /// Per-phase wall-time buckets and decision histograms; only engaged
  /// when EngineConfig::collect_stats is set (absent on the default,
  /// uninstrumented path).
  std::optional<obs::RunStats> stats;

  [[nodiscard]] std::size_t jobs() const { return records.size(); }
  [[nodiscard]] double avg_flow() const {
    return records.empty() ? 0.0
                           : total_flow / static_cast<double>(records.size());
  }
  [[nodiscard]] double max_flow() const;

  /// Total flow restricted to a tag class (phase = -1 matches any phase).
  [[nodiscard]] double flow_tagged(JobTag::Class cls, int phase = -1) const;
  [[nodiscard]] std::size_t count_tagged(JobTag::Class cls,
                                         int phase = -1) const;

  /// All released jobs (the realized instance; for adaptive sources this is
  /// only known after the run). Sorted by release time.
  [[nodiscard]] std::vector<Job> realized_jobs() const;
};

}  // namespace parsched
