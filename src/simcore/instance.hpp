// parsched — an immutable scheduling instance.
#pragma once

#include <vector>

#include "simcore/job.hpp"

namespace parsched {

/// A fixed (non-adaptive) scheduling instance: m identical unit-speed
/// processors and a set of jobs. Construction sorts jobs by release time
/// (ties broken by id), assigns missing ids, and validates the paper's
/// standing assumptions (sizes >= some minimum, nonnegative releases).
class Instance {
 public:
  Instance(int machines, std::vector<Job> jobs);

  [[nodiscard]] int machines() const { return m_; }
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// Max job size over min job size — the paper's parameter P
  /// (with the normalization min size = 1, simply the max size).
  [[nodiscard]] double P() const { return p_ratio_; }

  [[nodiscard]] double min_size() const { return min_size_; }
  [[nodiscard]] double max_size() const { return max_size_; }
  [[nodiscard]] double total_work() const { return total_work_; }
  [[nodiscard]] double last_release() const { return last_release_; }

  /// Largest alpha over the jobs' speedup curves (Theorem 1's alpha).
  [[nodiscard]] double max_alpha() const { return max_alpha_; }

 private:
  int m_;
  std::vector<Job> jobs_;
  double p_ratio_ = 1.0;
  double min_size_ = 1.0;
  double max_size_ = 1.0;
  double total_work_ = 0.0;
  double last_release_ = 0.0;
  double max_alpha_ = 0.0;
};

}  // namespace parsched
