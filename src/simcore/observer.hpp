// parsched — simulation observers.
//
// Observers get read-only callbacks at every decision point and event.
// They power the analysis layer (trajectories, alive-count tracking,
// potential-function evaluation) without the engine knowing about any of it.
#pragma once

#include <span>

#include "simcore/job.hpp"
#include "simcore/scheduler.hpp"

namespace parsched {

class Observer {
 public:
  virtual ~Observer() = default;

  /// A decision point: `alive` and the `shares` chosen for them (parallel
  /// arrays). Fired after arrivals/completions at this time were handled.
  virtual void on_decision(double t, std::span<const AliveJob> alive,
                           std::span<const double> shares) {
    (void)t;
    (void)alive;
    (void)shares;
  }

  virtual void on_arrival(double t, const Job& job) {
    (void)t;
    (void)job;
  }

  virtual void on_completion(double t, const Job& job) {
    (void)t;
    (void)job;
  }

  virtual void on_done(double t) { (void)t; }
};

}  // namespace parsched
