// parsched — persistent-across-events ordering indexes.
//
// Every decision step needs (prefixes of) two strict total orders over
// the alive set: SRPT order (remaining, release, id) and latest-arrival
// order (release, id descending). The ContextCache memoizes one sort per
// ordering per *decision*, but each decision still rebuilds from scratch:
// O(n log n) per step, which caps dense-alive runs (n = 10⁵–10⁶) well
// below the rate the serve layer generates. This class keeps both orders
// *across* decisions as a pair of intrusive binary heaps, so the
// per-event maintenance cost is O(log n):
//
//   admit       → one sift-up per heap
//   complete    → one heap-delete per heap (mirroring the engine's
//                 swap-remove of alive_, so entry indexes track alive
//                 indexes exactly)
//   advance     → one sift per job whose remaining work changed — or,
//                 when a step changes most keys at once (an EQUI-style
//                 allocation runs every job), one lazy-decay epoch: the
//                 SRPT heap is marked stale and rebuilt in O(n) at the
//                 next query, which is cheaper than n sift-downs and
//                 free for policies that never ask for SRPT order.
//
// The latest-arrival keys are immutable after admission, so that heap is
// never stale. Queries never mutate keys: a k-prefix is produced by a
// bounded traversal of the heap (a candidate min-heap over heap slots,
// O(k log k) after the O(1) root), and a full order by sorting a compact
// copy of the key array — same flat-key comparators as the ContextCache
// sort paths (SrptKeyLess / LatestKeyLess in scheduler.hpp, the single
// definition of both tie-break orders), so the produced index sequences
// are identical to refimpl:: entry for entry. tests/test_incremental.cpp
// holds the three-way differential proof.
//
// Allocation discipline (PR 6 contract): reserve(n) pre-sizes every
// internal buffer with geometric growth; the engine calls it at
// admission alongside ContextCache::reserve, after which every query and
// update — including a stale rebuild — is allocation-free and safe
// inside the engine's AllocGuard fences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simcore/scheduler.hpp"

namespace parsched {

class IncrementalOrders {
 public:
  /// Drop every entry (a new run is starting). Keeps buffer capacity.
  void clear();

  /// Pre-size every internal buffer for up to `n` alive jobs (geometric
  /// growth, amortized O(1) per admission). Must be called with the new
  /// alive count before insert() so the heap push lands in reserved
  /// storage — the engine does this outside its AllocGuard fences.
  void reserve(std::size_t n);

  /// Rebuild both heaps from scratch over `alive` (snapshot restore).
  /// The SRPT side is left stale — it is regathered lazily at the first
  /// query, exactly like a decay epoch.
  void rebuild(std::span<const AliveJob> alive);

  /// Admit: `job` was just appended to the alive set at index `idx`
  /// (== previous size). O(log n) per heap.
  void insert(const AliveJob& job, std::size_t idx);

  /// The job at alive index `idx` now has `remaining` unprocessed work.
  /// O(log n); a no-op while the SRPT heap is stale (the pending rebuild
  /// re-reads every key from the alive set anyway).
  void update_remaining(std::size_t idx, double remaining);

  /// Complete: mirror of the engine's swap-remove. The job at alive
  /// index `idx` is gone and the job previously at index `last` (the
  /// back of the alive array before the removal) now lives at `idx`;
  /// idx == last removes the back element. O(log n) per heap.
  void remove_swap(std::size_t idx, std::size_t last);

  /// Lazy-decay epoch: most remaining-work keys just changed at once, so
  /// per-key sifts would cost more than a rebuild. Marks the SRPT heap
  /// stale; the next SRPT query regathers keys from the alive set and
  /// re-heapifies in O(n). Policies that never query SRPT order (EQUI,
  /// LAPS) never pay the rebuild.
  void decay_epoch() {
    srpt_stale_ = true;
    ++decay_epochs_;
  }

  [[nodiscard]] std::size_t size() const { return latest_.size(); }
  [[nodiscard]] bool srpt_stale() const { return srpt_stale_; }
  /// Telemetry: decay epochs declared since clear() (stale-rebuild cap).
  [[nodiscard]] std::uint64_t decay_epochs() const { return decay_epochs_; }

  /// Alive index of the SRPT-least job (heap root). Requires size() > 0.
  [[nodiscard]] std::size_t min_srpt(std::span<const AliveJob> alive);

  /// Write the first min(want, size) alive indexes of the SRPT order
  /// into `out` (caller-sized to at least that many entries).
  void fill_srpt(std::span<const AliveJob> alive, std::size_t want,
                 std::size_t* out);

  /// Same for the latest-arrival order. Never triggers a rebuild: the
  /// keys are immutable after admission.
  void fill_latest(std::size_t want, std::size_t* out);

  /// Audit (PARSCHED_AUDIT): every heap entry matches the alive set, the
  /// position maps are mutually consistent, and both heap properties
  /// hold. Trips a PARSCHED_CHECK on any violation. O(n).
  void audit(std::span<const AliveJob> alive) const;

 private:
  // Heap entries are the ContextCache flat keys: compact (24/16 bytes),
  // and already carrying the alive index the queries scatter out.
  using SrptEntry = ContextCache::SrptKey;
  using LatestEntry = ContextCache::LatestKey;

  void ensure_srpt_fresh(std::span<const AliveJob> alive);

  // Min-heaps in Less order, entry idx -> slot tracked in the pos maps.
  std::vector<SrptEntry> srpt_;
  std::vector<LatestEntry> latest_;
  std::vector<std::uint32_t> srpt_pos_;
  std::vector<std::uint32_t> latest_pos_;
  std::vector<std::uint32_t> cand_;  ///< top-k traversal: heap-slot heap
  // Full-order queries sort a compact copy (the live arrays must keep
  // their heap shape — queries never mutate keys).
  std::vector<SrptEntry> srpt_scratch_;
  std::vector<LatestEntry> latest_scratch_;
  bool srpt_stale_ = true;  ///< rebuilt lazily at the next SRPT query
  std::uint64_t decay_epochs_ = 0;
};

}  // namespace parsched
