// parsched — jobs and their metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "speedup/curve.hpp"

namespace parsched {

using JobId = std::uint32_t;
inline constexpr JobId kInvalidJob = static_cast<JobId>(-1);

/// Workload metadata attached to a job by the generators and consumed by
/// the adversaries, handcrafted schedules and per-class analysis. Plays no
/// role in the engine or in any online policy (policies are tag-blind).
struct JobTag {
  enum class Class : std::uint8_t {
    kNone = 0,
    kLong,    ///< a "long" job of an adversarial phase
    kShort,   ///< a unit job of an adversarial phase
    kStream,  ///< part-2 stream job (Section 4) / final stream (Section 3)
  };

  int phase = -1;        ///< adversarial phase index, -1 when not applicable
  Class cls = Class::kNone;
  std::int64_t index = -1;  ///< ordinal within its (phase, class) group

  friend bool operator==(const JobTag&, const JobTag&) = default;
};

[[nodiscard]] std::string to_string(JobTag::Class c);

/// One phase of a multi-phase job: `work` units processed at rate
/// `curve.rate(x)` while the phase is active. This is the job model of
/// the related work ([Edmonds, Scheduling in the dark], [Edmonds–Pruhs]):
/// a job is a sequence of phases with arbitrary speedup curves, and a
/// non-clairvoyant scheduler cannot see where the phase boundaries are.
struct JobPhase {
  double work = 0.0;
  SpeedupCurve curve;
};

/// A task: released at `release`, carrying `size` units of work, processed
/// at rate `curve.rate(x)` when holding x processors.
///
/// When `phases` is non-empty the job is *multi-phase*: `size` is the sum
/// of the phase works (Instance construction enforces this) and `curve`
/// describes the first phase; the engine switches curves as phases
/// complete. Single-phase jobs leave `phases` empty.
struct Job {
  JobId id = kInvalidJob;
  double release = 0.0;
  double size = 1.0;
  /// Importance for the *weighted* flow-time objective sum w_j (C_j - r_j).
  /// 1.0 recovers the paper's unweighted objective.
  double weight = 1.0;
  SpeedupCurve curve;
  JobTag tag;
  std::vector<JobPhase> phases;

  /// Normalize: derive `size` and `curve` from `phases` (no-op when
  /// single-phase). Throws std::invalid_argument on empty/nonpositive
  /// phase work.
  void normalize_phases();
};

/// Convenience constructor for multi-phase jobs.
[[nodiscard]] Job make_phased_job(JobId id, double release,
                                  std::vector<JobPhase> phases);

}  // namespace parsched
