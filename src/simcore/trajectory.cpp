#include "simcore/trajectory.hpp"

#include "check/contract.hpp"

namespace parsched {

void TrajectoryRecorder::on_arrival(double t, const Job& job) {
  auto [it, inserted] = traj_.try_emplace(job.id);
  PARSCHED_CHECK(inserted, "duplicate arrival for job id");
  it->second.job = job;
  it->second.remaining.append(t, job.size);
}

void TrajectoryRecorder::on_decision(double t, std::span<const AliveJob> alive,
                                     std::span<const double> shares) {
  (void)shares;
  for (const AliveJob& a : alive) {
    auto it = traj_.find(a.id);
    PARSCHED_CHECK(it != traj_.end(), "decision for an unknown job");
    it->second.remaining.append(t, a.remaining);
  }
}

void TrajectoryRecorder::on_completion(double t, const Job& job) {
  auto it = traj_.find(job.id);
  PARSCHED_CHECK(it != traj_.end(), "completion of an unknown job");
  it->second.remaining.append(t, 0.0);
  it->second.completion = t;
}

void TrajectoryRecorder::on_done(double t) { (void)t; }

double TrajectoryRecorder::remaining_at(JobId id, double t) const {
  const auto it = traj_.find(id);
  if (it == traj_.end()) return 0.0;
  const JobTrajectory& jt = it->second;
  if (t < jt.job.release) return jt.job.size;
  if (jt.completion > 0.0 && t >= jt.completion) return 0.0;
  return jt.remaining.value(t);
}

std::vector<double> TrajectoryRecorder::all_times() const {
  std::vector<double> out;
  for (const auto& [id, jt] : traj_) {
    (void)id;
    out.insert(out.end(), jt.remaining.times().begin(),
               jt.remaining.times().end());
  }
  return out;
}

void CountTracker::record(double t) {
  count_.append(t, static_cast<double>(alive_));
}

void CountTracker::on_arrival(double t, const Job& job) {
  (void)job;
  ++alive_;
  record(t);
}

void CountTracker::on_completion(double t, const Job& job) {
  (void)job;
  --alive_;
  PARSCHED_CHECK(alive_ >= 0, "more completions than arrivals");
  record(t);
}

void CountTracker::on_done(double t) { record(t); }

}  // namespace parsched
