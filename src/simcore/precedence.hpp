// parsched — precedence-constrained scheduling ([17] in the paper's
// related work: Robert & Schabanel, non-clairvoyant scheduling with
// precedence constraints).
//
// A DagInstance is a set of tasks plus dependency edges; a task becomes
// available (is released to the scheduler) at
//   max(its own release time, completion of all its predecessors).
// The release rule is realized by a PrecedenceSource: an adaptive
// ArrivalSource that watches the engine's completions — successors of
// slow-running tasks arrive later under a bad policy, exactly as in the
// precedence-constrained model.
#pragma once

#include <unordered_map>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/instance.hpp"
#include "simcore/result.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/source.hpp"

namespace parsched {

struct DagNode {
  Job job;
  std::vector<JobId> deps;  ///< must complete before `job` is released
};

/// Validated precedence instance: unique ids, existing deps, acyclic.
class DagInstance {
 public:
  DagInstance(int machines, std::vector<DagNode> nodes);

  [[nodiscard]] int machines() const { return m_; }
  [[nodiscard]] const std::vector<DagNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Earliest possible completion time per task, ignoring machine limits
  /// but honoring precedence and the saturated per-task rate Γ_j(m):
  /// a valid per-task lower bound for ANY schedule on m machines.
  [[nodiscard]] std::unordered_map<JobId, double> earliest_completions()
      const;

  /// Sum over tasks of (earliest completion − release): a provable lower
  /// bound on the total flow time of any schedule.
  [[nodiscard]] double flow_lower_bound() const;

  /// Critical-path length (max earliest completion): a lower bound on the
  /// makespan of any schedule.
  [[nodiscard]] double critical_path() const;

 private:
  int m_;
  std::vector<DagNode> nodes_;        // in topological order
  std::unordered_map<JobId, std::size_t> index_;
};

/// Releases each task once its release time has passed and all its
/// dependencies have completed in the observed schedule.
class PrecedenceSource final : public ArrivalSource {
 public:
  explicit PrecedenceSource(const DagInstance& dag);

  [[nodiscard]] double next_time(const EngineView& view) override;
  std::vector<Job> take(double t, const EngineView& view) override;
  void reset() override;

 private:
  [[nodiscard]] bool ready(const DagNode& node,
                           const EngineView& view) const;

  const DagInstance* dag_;
  std::vector<bool> released_;
};

/// Convenience: run a policy on a precedence instance.
SimResult simulate_dag(const DagInstance& dag, Scheduler& sched,
                       const EngineConfig& config = {},
                       const std::vector<Observer*>& observers = {});

}  // namespace parsched
