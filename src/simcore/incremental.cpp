#include "simcore/incremental.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace parsched {

namespace {

// Intrusive sift helpers: every entry move mirrors into the position map
// (alive index -> heap slot), which is what lets remove_swap() find an
// arbitrary job's slot in O(1). Min-heaps in Less order: the root is the
// Less-least entry, parents precede children.

template <class E, class Less>
std::size_t sift_up(std::vector<E>& heap, std::vector<std::uint32_t>& pos,
                    std::size_t s, Less less) {
  const E e = heap[s];
  while (s > 0) {
    const std::size_t p = (s - 1) / 2;
    if (!less(e, heap[p])) break;
    heap[s] = heap[p];
    pos[heap[s].idx] = static_cast<std::uint32_t>(s);
    s = p;
  }
  heap[s] = e;
  pos[e.idx] = static_cast<std::uint32_t>(s);
  return s;
}

template <class E, class Less>
void sift_down(std::vector<E>& heap, std::vector<std::uint32_t>& pos,
               std::size_t s, Less less) {
  const std::size_t n = heap.size();
  const E e = heap[s];
  for (;;) {
    std::size_t c = 2 * s + 1;
    if (c >= n) break;
    if (c + 1 < n && less(heap[c + 1], heap[c])) ++c;
    if (!less(heap[c], e)) break;
    heap[s] = heap[c];
    pos[heap[s].idx] = static_cast<std::uint32_t>(s);
    s = c;
  }
  heap[s] = e;
  pos[e.idx] = static_cast<std::uint32_t>(s);
}

/// Restore the heap property around a slot whose key changed either way.
template <class E, class Less>
void reheap(std::vector<E>& heap, std::vector<std::uint32_t>& pos,
            std::size_t s, Less less) {
  sift_down(heap, pos, sift_up(heap, pos, s, less), less);
}

/// Heap-delete by slot: move the back entry into the hole and re-sift.
template <class E, class Less>
void erase_slot(std::vector<E>& heap, std::vector<std::uint32_t>& pos,
                std::size_t s, Less less) {
  const E back = heap.back();
  heap.pop_back();
  if (s < heap.size()) {
    heap[s] = back;
    pos[back.idx] = static_cast<std::uint32_t>(s);
    reheap(heap, pos, s, less);
  }
}

/// Fill the initial position map and heapify in O(n). Entries must
/// already sit at slot i with pos[entry.idx] == i.
template <class E, class Less>
void heapify(std::vector<E>& heap, std::vector<std::uint32_t>& pos,
             Less less) {
  for (std::size_t i = heap.size() / 2; i-- > 0;) {
    sift_down(heap, pos, i, less);
  }
}

/// k-prefix of the total order without mutating the heap: a candidate
/// heap over *slots*, seeded with the root; popping the best candidate
/// admits its two children. At most want+1 candidates are live, so the
/// whole query is O(k log k) and touches only the top of the big heap.
/// std::push_heap/pop_heap build a max-heap in the given order, so the
/// slot order inverts Less: the "max" candidate is the Less-least entry.
template <class E, class Less>
void fill_topk(const std::vector<E>& heap, std::vector<std::uint32_t>& cand,
               std::size_t want, std::size_t* out, Less less) {
  const std::size_t n = heap.size();
  cand.clear();
  if (want == 0 || n == 0) return;
  cand.push_back(0);
  const auto slot_order = [&heap, less](std::uint32_t a, std::uint32_t b) {
    return less(heap[b], heap[a]);
  };
  for (std::size_t j = 0; j < want; ++j) {
    std::pop_heap(cand.begin(), cand.end(), slot_order);
    const std::uint32_t s = cand.back();
    cand.pop_back();
    out[j] = heap[s].idx;
    const std::size_t l = 2 * static_cast<std::size_t>(s) + 1;
    if (l < n) {
      cand.push_back(static_cast<std::uint32_t>(l));
      std::push_heap(cand.begin(), cand.end(), slot_order);
    }
    if (l + 1 < n) {
      cand.push_back(static_cast<std::uint32_t>(l + 1));
      std::push_heap(cand.begin(), cand.end(), slot_order);
    }
  }
}

template <typename V>
void grow(V& v, std::size_t n) {
  if (v.capacity() < n) v.reserve(std::max(n, v.capacity() * 2));
}

}  // namespace

void IncrementalOrders::clear() {
  srpt_.clear();
  latest_.clear();
  srpt_pos_.clear();
  latest_pos_.clear();
  cand_.clear();
  srpt_stale_ = true;
  decay_epochs_ = 0;
}

void IncrementalOrders::reserve(std::size_t n) {
  grow(srpt_, n);
  grow(latest_, n);
  grow(srpt_pos_, n);
  grow(latest_pos_, n);
  grow(cand_, n + 1);  // traversal holds at most want+1 live candidates
  grow(srpt_scratch_, n);
  grow(latest_scratch_, n);
}

void IncrementalOrders::rebuild(std::span<const AliveJob> alive) {
  const std::size_t n = alive.size();
  reserve(n);
  latest_.resize(n);
  latest_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    latest_[i] =
        LatestEntry{alive[i].release, alive[i].id, static_cast<std::uint32_t>(i)};
    latest_pos_[i] = static_cast<std::uint32_t>(i);
  }
  heapify(latest_, latest_pos_, LatestKeyLess{});
  srpt_.clear();
  srpt_pos_.clear();
  srpt_stale_ = true;  // regathered from the alive set at the next query
}

PARSCHED_HOT void IncrementalOrders::insert(const AliveJob& job,
                                            std::size_t idx) {
  PARSCHED_CHECK(idx == latest_.size(),
                 "IncrementalOrders::insert out of step with the alive set");
  latest_pos_.push_back(static_cast<std::uint32_t>(latest_.size()));
  latest_.push_back(
      LatestEntry{job.release, job.id, static_cast<std::uint32_t>(idx)});
  sift_up(latest_, latest_pos_, latest_.size() - 1, LatestKeyLess{});
  if (!srpt_stale_) {
    srpt_pos_.push_back(static_cast<std::uint32_t>(srpt_.size()));
    srpt_.push_back(SrptEntry{job.remaining, job.release, job.id,
                              static_cast<std::uint32_t>(idx)});
    sift_up(srpt_, srpt_pos_, srpt_.size() - 1, SrptKeyLess{});
  }
}

PARSCHED_HOT void IncrementalOrders::update_remaining(std::size_t idx,
                                                      double remaining) {
  if (srpt_stale_) return;  // the pending rebuild re-reads every key
  const std::size_t s = srpt_pos_[idx];
  srpt_[s].remaining = remaining;
  reheap(srpt_, srpt_pos_, s, SrptKeyLess{});
}

PARSCHED_HOT void IncrementalOrders::remove_swap(std::size_t idx,
                                                 std::size_t last) {
  erase_slot(latest_, latest_pos_, latest_pos_[idx], LatestKeyLess{});
  if (idx != last) {
    const std::uint32_t s = latest_pos_[last];
    latest_[s].idx = static_cast<std::uint32_t>(idx);
    latest_pos_[idx] = s;
  }
  latest_pos_.pop_back();
  if (!srpt_stale_) {
    erase_slot(srpt_, srpt_pos_, srpt_pos_[idx], SrptKeyLess{});
    if (idx != last) {
      const std::uint32_t s = srpt_pos_[last];
      srpt_[s].idx = static_cast<std::uint32_t>(idx);
      srpt_pos_[idx] = s;
    }
    srpt_pos_.pop_back();
  }
}

PARSCHED_HOT void IncrementalOrders::ensure_srpt_fresh(
    std::span<const AliveJob> alive) {
  if (!srpt_stale_) return;
  const std::size_t n = alive.size();
  PARSCHED_CHECK(n == latest_.size(),
                 "IncrementalOrders out of step with the alive set");
  srpt_.resize(n);
  srpt_pos_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AliveJob& j = alive[i];
    srpt_[i] = SrptEntry{j.remaining, j.release, j.id,
                         static_cast<std::uint32_t>(i)};
    srpt_pos_[i] = static_cast<std::uint32_t>(i);
  }
  heapify(srpt_, srpt_pos_, SrptKeyLess{});
  srpt_stale_ = false;
}

PARSCHED_HOT std::size_t IncrementalOrders::min_srpt(
    std::span<const AliveJob> alive) {
  ensure_srpt_fresh(alive);
  PARSCHED_CHECK(!srpt_.empty(), "min_srpt over an empty alive set");
  return srpt_[0].idx;
}

PARSCHED_HOT void IncrementalOrders::fill_srpt(std::span<const AliveJob> alive,
                                               std::size_t want,
                                               std::size_t* out) {
  ensure_srpt_fresh(alive);
  const std::size_t n = srpt_.size();
  if (want > n) want = n;
  if (want < n) {
    fill_topk(srpt_, cand_, want, out, SrptKeyLess{});
    return;
  }
  // Full order: sort a compact copy of the keys (the heap itself must
  // keep its shape). Cheaper than the cache arm's path by the gather —
  // the keys are already collected.
  srpt_scratch_.assign(srpt_.begin(), srpt_.end());
  std::sort(srpt_scratch_.begin(), srpt_scratch_.end(), SrptKeyLess{});
  for (std::size_t i = 0; i < n; ++i) out[i] = srpt_scratch_[i].idx;
}

PARSCHED_HOT void IncrementalOrders::fill_latest(std::size_t want,
                                                 std::size_t* out) {
  const std::size_t n = latest_.size();
  if (want > n) want = n;
  if (want < n) {
    fill_topk(latest_, cand_, want, out, LatestKeyLess{});
    return;
  }
  latest_scratch_.assign(latest_.begin(), latest_.end());
  std::sort(latest_scratch_.begin(), latest_scratch_.end(), LatestKeyLess{});
  for (std::size_t i = 0; i < n; ++i) out[i] = latest_scratch_[i].idx;
}

void IncrementalOrders::audit(std::span<const AliveJob> alive) const {
  const std::size_t n = alive.size();
  PARSCHED_CHECK(latest_.size() == n && latest_pos_.size() == n,
                 "incremental audit: latest heap size mismatch");
  const LatestKeyLess lless{};
  for (std::size_t s = 0; s < n; ++s) {
    const LatestEntry& e = latest_[s];
    PARSCHED_CHECK(e.idx < n, "incremental audit: latest idx out of range");
    const AliveJob& j = alive[e.idx];
    PARSCHED_CHECK(e.release == j.release && e.id == j.id,
                   "incremental audit: latest key diverged from alive job");
    PARSCHED_CHECK(latest_pos_[e.idx] == s,
                   "incremental audit: latest position map inconsistent");
    if (s > 0) {
      PARSCHED_CHECK(!lless(e, latest_[(s - 1) / 2]),
                     "incremental audit: latest heap property violated");
    }
  }
  if (srpt_stale_) return;  // keys pending a lazy regather carry no claim
  PARSCHED_CHECK(srpt_.size() == n && srpt_pos_.size() == n,
                 "incremental audit: srpt heap size mismatch");
  const SrptKeyLess sless{};
  for (std::size_t s = 0; s < n; ++s) {
    const SrptEntry& e = srpt_[s];
    PARSCHED_CHECK(e.idx < n, "incremental audit: srpt idx out of range");
    const AliveJob& j = alive[e.idx];
    PARSCHED_CHECK(e.remaining == j.remaining && e.release == j.release &&
                       e.id == j.id,
                   "incremental audit: srpt key diverged from alive job");
    PARSCHED_CHECK(srpt_pos_[e.idx] == s,
                   "incremental audit: srpt position map inconsistent");
    if (s > 0) {
      PARSCHED_CHECK(!sless(e, srpt_[(s - 1) / 2]),
                     "incremental audit: srpt heap property violated");
    }
  }
}

}  // namespace parsched
