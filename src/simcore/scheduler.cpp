#include "simcore/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "check/contract.hpp"
#include "simcore/incremental.hpp"

namespace parsched {

namespace {

/// (remaining, release, id) lexicographic SRPT order.
struct SrptLess {
  std::span<const AliveJob> alive;
  bool operator()(std::size_t a, std::size_t b) const {
    const AliveJob& ja = alive[a];
    const AliveJob& jb = alive[b];
    if (ja.remaining != jb.remaining) return ja.remaining < jb.remaining;
    if (ja.release != jb.release) return ja.release < jb.release;
    return ja.id < jb.id;
  }
};

/// (release, id) descending: latest arrival first.
struct LatestLess {
  std::span<const AliveJob> alive;
  bool operator()(std::size_t a, std::size_t b) const {
    const AliveJob& ja = alive[a];
    const AliveJob& jb = alive[b];
    if (ja.release != jb.release) return ja.release > jb.release;
    return ja.id > jb.id;
  }
};

// The flat-key counterparts SrptKeyLess/LatestKeyLess live in
// scheduler.hpp: they are the canonical definition of both tie-break
// orders, shared with the IncrementalOrders heaps, and induce exactly
// the same strict total orders as SrptLess/LatestLess above — the
// differential tests in tests/test_context_cache.cpp and
// tests/test_incremental.cpp pin this equivalence.

/// In-place twins of the refimpl:: functions, backing the cache-less
/// fallback path. Same iota + sort / nth_element arithmetic over the
/// same strict total orders — the index sequences are identical entry
/// for entry — but filling a reusable buffer, so the cache-off engine
/// mode (EngineConfig::use_context_cache = false) is also allocation-
/// free once the fallback buffers are warm. refimpl:: itself keeps
/// returning fresh vectors by design: it is the per-call differential
/// reference, not a hot path.
void fill_by_remaining(std::span<const AliveJob> alive,
                       std::vector<std::size_t>& out) {
  out.resize(alive.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  std::sort(out.begin(), out.end(), SrptLess{alive});
}

void fill_smallest_remaining(std::span<const AliveJob> alive, std::size_t k,
                             std::vector<std::size_t>& out) {
  out.resize(alive.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  if (k >= out.size()) {
    std::sort(out.begin(), out.end(), SrptLess{alive});
    return;
  }
  std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                   out.end(), SrptLess{alive});
  out.resize(k);
  std::sort(out.begin(), out.end(), SrptLess{alive});
}

void fill_by_latest_arrival(std::span<const AliveJob> alive,
                            std::vector<std::size_t>& out) {
  out.resize(alive.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  std::sort(out.begin(), out.end(), LatestLess{alive});
}

void fill_latest_arrivals(std::span<const AliveJob> alive, std::size_t k,
                          std::vector<std::size_t>& out) {
  out.resize(alive.size());
  std::iota(out.begin(), out.end(), std::size_t{0});
  if (k >= out.size()) {
    std::sort(out.begin(), out.end(), LatestLess{alive});
    return;
  }
  std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                   out.end(), LatestLess{alive});
  out.resize(k);
  std::sort(out.begin(), out.end(), LatestLess{alive});
}

}  // namespace

namespace refimpl {

std::vector<std::size_t> by_remaining(std::span<const AliveJob> alive) {
  std::vector<std::size_t> idx(alive.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), SrptLess{alive});
  return idx;
}

std::vector<std::size_t> smallest_remaining(std::span<const AliveJob> alive,
                                            std::size_t k) {
  std::vector<std::size_t> idx(alive.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), SrptLess{alive});
    return idx;
  }
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), SrptLess{alive});
  idx.resize(k);
  std::sort(idx.begin(), idx.end(), SrptLess{alive});
  return idx;
}

std::size_t min_remaining(std::span<const AliveJob> alive) {
  PARSCHED_CHECK(!alive.empty(), "min_remaining over an empty context");
  std::size_t best = 0;
  const SrptLess less{alive};
  for (std::size_t i = 1; i < alive.size(); ++i) {
    if (less(i, best)) best = i;
  }
  return best;
}

std::vector<std::size_t> by_latest_arrival(std::span<const AliveJob> alive) {
  std::vector<std::size_t> idx(alive.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), LatestLess{alive});
  return idx;
}

std::vector<std::size_t> latest_arrivals(std::span<const AliveJob> alive,
                                         std::size_t k) {
  std::vector<std::size_t> idx(alive.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), LatestLess{alive});
    return idx;
  }
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), LatestLess{alive});
  idx.resize(k);
  std::sort(idx.begin(), idx.end(), LatestLess{alive});
  return idx;
}

}  // namespace refimpl

// --- Cached paths -----------------------------------------------------
//
// Layout: keys are gathered once per ordering per decision (one
// sequential sweep over alive_), then sorted/selected in the flat key
// buffer; the index order is scattered out of the keys afterwards. A
// k-bounded query leaves the cache in kPrefix state with the first k
// entries valid; a later wider query upgrades in place — because the
// comparators are strict total orders, the sorted k-prefix produced by
// selection is exactly the first k entries of the full sorted order, so
// previously returned spans keep their contents across the upgrade.

/// Ensure the first min(k, n) entries of the SRPT order are valid;
/// k >= n means the full order.
PARSCHED_HOT std::span<const std::size_t> SchedulerContext::srpt_span(
    std::size_t k) const {
  ContextCache& c = *cache_;
  const std::size_t n = alive_.size();
  const bool want_full = k >= n;
  const std::size_t want = want_full ? n : k;
  const bool have_enough =
      c.srpt_ == ContextCache::Memo::kFull ||
      (c.srpt_ == ContextCache::Memo::kPrefix && c.srpt_prefix_ >= want);
  if (have_enough) return {c.srpt_order_.data(), want};

  // Incremental arm: read the prefix straight out of the engine's
  // persistent SRPT heap — O(k log k) after the across-decisions O(log n)
  // maintenance, no re-sort of the alive set. The heap's comparator is
  // the same SrptKeyLess, so the produced prefix is identical entry for
  // entry to the sort/selection paths below (strict total order ⇒ unique
  // k-prefix), and the memo upgrade protocol is unchanged.
  if (inc_ != nullptr) {
    c.srpt_order_.resize(n);
    inc_->fill_srpt(alive_, want, c.srpt_order_.data());
    c.srpt_ =
        want_full ? ContextCache::Memo::kFull : ContextCache::Memo::kPrefix;
    c.srpt_prefix_ = want;
    return {c.srpt_order_.data(), want};
  }

  // Small-k fast path: one sweep over alive_ with a bounded max-heap of
  // the k best keys so far. The k smallest elements of a strict total
  // order form a unique set, so (after the final sort) this yields
  // exactly the nth_element prefix below, without gathering n keys.
  // Past k ~ n/8 the gather + nth_element path wins; stay there.
  if (!want_full && want > 0 && want <= n / 8) {
    auto& heap = c.srpt_topk_;
    heap.clear();
    const SrptKeyLess less{};
    for (std::size_t i = 0; i < n; ++i) {
      const AliveJob& j = alive_[i];
      const ContextCache::SrptKey key{j.remaining, j.release, j.id,
                                      static_cast<std::uint32_t>(i)};
      if (heap.size() < want) {
        heap.push_back(key);
        if (heap.size() == want) std::make_heap(heap.begin(), heap.end(), less);
      } else if (less(key, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), less);
        heap.back() = key;
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
    std::sort(heap.begin(), heap.end(), less);
    c.srpt_order_.resize(n);
    for (std::size_t i = 0; i < want; ++i) c.srpt_order_[i] = heap[i].idx;
    c.srpt_ = ContextCache::Memo::kPrefix;
    c.srpt_prefix_ = want;
    return {c.srpt_order_.data(), want};
  }

  if (!c.srpt_keys_full_) {
    c.srpt_keys_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const AliveJob& j = alive_[i];
      c.srpt_keys_[i] = {j.remaining, j.release, j.id,
                         static_cast<std::uint32_t>(i)};
    }
    c.srpt_keys_full_ = true;
  }
  // A prior shorter prefix is a sorted prefix of the full order, so
  // re-running selection over the whole key buffer is still correct
  // (nth_element permutes freely; the scatter below rewrites the
  // order buffer from scratch).
  if (want_full) {
    std::sort(c.srpt_keys_.begin(), c.srpt_keys_.end(), SrptKeyLess{});
  } else {
    std::nth_element(c.srpt_keys_.begin(),
                     c.srpt_keys_.begin() + static_cast<std::ptrdiff_t>(k),
                     c.srpt_keys_.end(), SrptKeyLess{});
    std::sort(c.srpt_keys_.begin(),
              c.srpt_keys_.begin() + static_cast<std::ptrdiff_t>(k),
              SrptKeyLess{});
  }
  c.srpt_order_.resize(n);
  for (std::size_t i = 0; i < want; ++i) {
    c.srpt_order_[i] = c.srpt_keys_[i].idx;
  }
  c.srpt_ = want_full ? ContextCache::Memo::kFull : ContextCache::Memo::kPrefix;
  c.srpt_prefix_ = want;
  return {c.srpt_order_.data(), want};
}

PARSCHED_HOT std::span<const std::size_t> SchedulerContext::latest_span(
    std::size_t k) const {
  ContextCache& c = *cache_;
  const std::size_t n = alive_.size();
  const bool want_full = k >= n;
  const std::size_t want = want_full ? n : k;
  // Incremental arm: latest-arrival keys are immutable after admission,
  // so the heap is never stale — serve any not-yet-memoized width from
  // it directly (same LatestKeyLess order, identical index sequences).
  if (inc_ != nullptr) {
    const bool have_enough =
        c.latest_ == ContextCache::Memo::kFull ||
        (c.latest_ == ContextCache::Memo::kPrefix && c.latest_prefix_ >= want);
    if (!have_enough) {
      c.latest_order_.resize(n);
      inc_->fill_latest(want, c.latest_order_.data());
      c.latest_ =
          want_full ? ContextCache::Memo::kFull : ContextCache::Memo::kPrefix;
      c.latest_prefix_ = want;
    }
    return {c.latest_order_.data(), want};
  }
  if (c.latest_ == ContextCache::Memo::kNone) {
    c.latest_keys_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const AliveJob& j = alive_[i];
      c.latest_keys_[i] = {j.release, j.id, static_cast<std::uint32_t>(i)};
    }
  }
  const bool have_full = c.latest_ == ContextCache::Memo::kFull;
  const bool have_enough =
      have_full ||
      (c.latest_ == ContextCache::Memo::kPrefix && c.latest_prefix_ >= want);
  if (!have_enough) {
    if (want_full) {
      std::sort(c.latest_keys_.begin(), c.latest_keys_.end(), LatestKeyLess{});
    } else {
      std::nth_element(c.latest_keys_.begin(),
                       c.latest_keys_.begin() + static_cast<std::ptrdiff_t>(k),
                       c.latest_keys_.end(), LatestKeyLess{});
      std::sort(c.latest_keys_.begin(),
                c.latest_keys_.begin() + static_cast<std::ptrdiff_t>(k),
                LatestKeyLess{});
    }
    c.latest_order_.resize(n);
    for (std::size_t i = 0; i < want; ++i) {
      c.latest_order_[i] = c.latest_keys_[i].idx;
    }
    c.latest_ =
        want_full ? ContextCache::Memo::kFull : ContextCache::Memo::kPrefix;
    c.latest_prefix_ = want;
  }
  return {c.latest_order_.data(), want};
}

PARSCHED_HOT std::span<const std::size_t> SchedulerContext::by_remaining()
    const {
  if (cache_ != nullptr && memoize_) return srpt_span(alive_.size());
  auto& out = cache_ != nullptr ? cache_->fb_by_remaining_ : fb_by_remaining_;
  fill_by_remaining(alive_, out);
  return out;
}

PARSCHED_HOT std::span<const std::size_t> SchedulerContext::smallest_remaining(
    std::size_t k) const {
  if (cache_ != nullptr && memoize_) return srpt_span(k);
  auto& out = cache_ != nullptr ? cache_->fb_smallest_ : fb_smallest_;
  fill_smallest_remaining(alive_, k, out);
  return out;
}

PARSCHED_HOT std::size_t SchedulerContext::min_remaining() const {
  // refimpl::min_remaining is a plain scan — allocation-free, so the
  // memoization-off mode may call it directly.
  if (cache_ == nullptr || !memoize_) return refimpl::min_remaining(alive_);
  PARSCHED_CHECK(!alive_.empty(), "min_remaining over an empty context");
  ContextCache& c = *cache_;
  if (!c.min_valid_) {
    // An SRPT prefix of any length already starts with the minimum.
    if (c.srpt_ != ContextCache::Memo::kNone && c.srpt_prefix_ > 0) {
      c.min_idx_ = c.srpt_order_[0];
    } else if (inc_ != nullptr) {
      // Heap root: O(1) on a fresh heap, one O(n) heapify after a decay
      // epoch — either way the same index the refimpl scan returns,
      // because SrptKeyLess and SrptLess agree everywhere.
      c.min_idx_ = inc_->min_srpt(alive_);
    } else {
      c.min_idx_ = refimpl::min_remaining(alive_);
    }
    c.min_valid_ = true;
  }
  return c.min_idx_;
}

PARSCHED_HOT std::span<const std::size_t> SchedulerContext::by_latest_arrival()
    const {
  if (cache_ != nullptr && memoize_) return latest_span(alive_.size());
  auto& out = cache_ != nullptr ? cache_->fb_by_latest_ : fb_by_latest_;
  fill_by_latest_arrival(alive_, out);
  return out;
}

PARSCHED_HOT std::span<const std::size_t> SchedulerContext::latest_arrivals(
    std::size_t k) const {
  if (cache_ != nullptr && memoize_) return latest_span(k);
  auto& out = cache_ != nullptr ? cache_->fb_latest_k_ : fb_latest_k_;
  fill_latest_arrivals(alive_, k, out);
  return out;
}

}  // namespace parsched
