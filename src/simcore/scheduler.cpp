#include "simcore/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "check/contract.hpp"

namespace parsched {

namespace {

/// (remaining, release, id) lexicographic SRPT order.
struct SrptLess {
  std::span<const AliveJob> alive;
  bool operator()(std::size_t a, std::size_t b) const {
    const AliveJob& ja = alive[a];
    const AliveJob& jb = alive[b];
    if (ja.remaining != jb.remaining) return ja.remaining < jb.remaining;
    if (ja.release != jb.release) return ja.release < jb.release;
    return ja.id < jb.id;
  }
};

/// (release, id) descending: latest arrival first.
struct LatestLess {
  std::span<const AliveJob> alive;
  bool operator()(std::size_t a, std::size_t b) const {
    const AliveJob& ja = alive[a];
    const AliveJob& jb = alive[b];
    if (ja.release != jb.release) return ja.release > jb.release;
    return ja.id > jb.id;
  }
};

}  // namespace

std::vector<std::size_t> SchedulerContext::by_remaining() const {
  std::vector<std::size_t> idx(alive_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), SrptLess{alive_});
  return idx;
}

std::vector<std::size_t> SchedulerContext::smallest_remaining(
    std::size_t k) const {
  std::vector<std::size_t> idx(alive_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), SrptLess{alive_});
    return idx;
  }
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), SrptLess{alive_});
  idx.resize(k);
  std::sort(idx.begin(), idx.end(), SrptLess{alive_});
  return idx;
}

std::size_t SchedulerContext::min_remaining() const {
  PARSCHED_CHECK(!alive_.empty(), "min_remaining over an empty context");
  std::size_t best = 0;
  const SrptLess less{alive_};
  for (std::size_t i = 1; i < alive_.size(); ++i) {
    if (less(i, best)) best = i;
  }
  return best;
}

std::vector<std::size_t> SchedulerContext::by_latest_arrival() const {
  std::vector<std::size_t> idx(alive_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), LatestLess{alive_});
  return idx;
}

std::vector<std::size_t> SchedulerContext::latest_arrivals(
    std::size_t k) const {
  std::vector<std::size_t> idx(alive_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), LatestLess{alive_});
    return idx;
  }
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), LatestLess{alive_});
  idx.resize(k);
  std::sort(idx.begin(), idx.end(), LatestLess{alive_});
  return idx;
}

}  // namespace parsched
