// parsched — arrival sources.
//
// The engine pulls arrivals from an ArrivalSource. A VectorSource replays a
// fixed Instance; an adaptive source (e.g. the Section-4 adversary in
// src/workload/adversary.*) may decide what to release next as a function
// of the observed engine state, which is exactly the power the paper's
// lower-bound adversary has.
#pragma once

#include <vector>

#include "simcore/job.hpp"

namespace parsched {

/// Read-only view of the running engine, offered to adaptive sources.
/// (Defined by the engine; sources only see the interface.)
class EngineView {
 public:
  virtual ~EngineView() = default;

  [[nodiscard]] virtual double time() const = 0;
  [[nodiscard]] virtual int machines() const = 0;
  [[nodiscard]] virtual std::size_t alive_count() const = 0;

  /// Total remaining work of alive jobs with the given tag class and phase
  /// (phase = -1 matches any phase).
  [[nodiscard]] virtual double remaining_tagged(JobTag::Class cls,
                                                int phase) const = 0;

  /// Number of alive jobs with the given tag class and phase.
  [[nodiscard]] virtual std::size_t alive_tagged(JobTag::Class cls,
                                                 int phase) const = 0;

  /// True once the job has been completed by the running schedule. Used
  /// by precedence-constrained sources to release successors.
  [[nodiscard]] virtual bool is_completed(JobId id) const = 0;
};

/// Stream of job arrivals, possibly adaptive.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Time of the next arrival or decision point, or kInf when exhausted.
  /// Must be >= the engine's current time.
  [[nodiscard]] virtual double next_time(const EngineView& view) = 0;

  /// Release the jobs arriving at exactly time t (which equals the last
  /// next_time()). May return an empty vector (pure decision point), but
  /// then the subsequent next_time() must be strictly greater than t.
  virtual std::vector<Job> take(double t, const EngineView& view) = 0;

  /// Restart from the beginning (for reuse across runs).
  virtual void reset() = 0;
};

/// Replays a fixed, release-sorted list of jobs.
class VectorSource final : public ArrivalSource {
 public:
  explicit VectorSource(std::vector<Job> jobs);

  [[nodiscard]] double next_time(const EngineView& view) override;
  std::vector<Job> take(double t, const EngineView& view) override;
  void reset() override { next_ = 0; }

 private:
  std::vector<Job> jobs_;  // sorted by release
  std::size_t next_ = 0;
};

}  // namespace parsched
