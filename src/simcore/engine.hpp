// parsched — the continuous-time malleable-scheduling engine.
//
// The model of the paper taken literally: m identical unit-speed divisible
// processors; at any instant a policy assigns each alive job a fractional
// share x_j (sum <= m) and job j's remaining work decreases at rate
// Γ_j(x_j). Because shares are piecewise-constant between decision points,
// the engine advances with *exact* event times — the next event is the
// minimum of the next arrival, the earliest completion under current rates,
// and the policy's requested reconsideration time. There is no fixed
// timestep and therefore no discretization error.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>
#include <unordered_set>

#include "simcore/instance.hpp"
#include "simcore/observer.hpp"
#include "simcore/result.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/source.hpp"

namespace parsched {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct EngineConfig {
  /// Processor speed multiplier for resource-augmentation analysis
  /// ([Kalyanasundaram–Pruhs]): an s-speed processor processes work at
  /// rate s * Γ_j(x). The paper's results are pure competitiveness
  /// (speed = 1); the augmented mode reproduces the related-work bounds
  /// (EQUI is (2+eps)-speed O(1)-competitive, LAPS is scalable).
  double speed = 1.0;
  /// A job completes when remaining work <= completion_tol * max(1, size).
  double completion_tol = 1e-9;
  /// Events within time_tol of each other are treated as simultaneous.
  double time_tol = 1e-9;
  /// Hard guard against runaway simulations (policy bugs).
  std::uint64_t max_decisions = 500'000'000;
  /// Check share feasibility at every decision point.
  bool validate_allocations = true;
  /// Collect per-run profiling (SimResult::stats): wall time split into
  /// policy-decide / event-solver / observer buckets plus decision-
  /// interval and alive-count histograms. Off by default — the
  /// uninstrumented hot path takes no clock readings at all.
  bool collect_stats = false;
  /// Optional registry the engine mirrors run totals into (counters
  /// engine.runs/decisions/arrivals/completions always; timers
  /// engine.decide/solver/observer when collect_stats is also set).
  /// Borrowed; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Thrown when alive jobs exist but no progress is possible (all rates zero
/// and no future arrival or reconsideration point).
class SimulationStall : public std::runtime_error {
 public:
  explicit SimulationStall(double t);
};

class Engine final : public EngineView {
 public:
  explicit Engine(int machines, EngineConfig config = {});

  /// Observers are borrowed; they must outlive run().
  void add_observer(Observer* obs);

  /// Run the policy against the arrival source to completion.
  SimResult run(Scheduler& sched, ArrivalSource& source);

  // EngineView (available to adaptive sources during run()):
  [[nodiscard]] double time() const override { return now_; }
  [[nodiscard]] int machines() const override { return m_; }
  [[nodiscard]] std::size_t alive_count() const override {
    return alive_.size();
  }
  [[nodiscard]] double remaining_tagged(JobTag::Class cls,
                                        int phase) const override;
  [[nodiscard]] std::size_t alive_tagged(JobTag::Class cls,
                                         int phase) const override;
  [[nodiscard]] bool is_completed(JobId id) const override {
    return completed_.count(id) > 0;
  }

 private:
  void admit_pending(ArrivalSource& source, SimResult& result);

  int m_;
  EngineConfig cfg_;
  std::vector<Observer*> observers_;

  double now_ = 0.0;
  std::int64_t arrival_seq_ = 0;
  std::vector<AliveJob> alive_;
  std::unordered_set<JobId> completed_;
};

/// Convenience: simulate a fixed instance with the given policy.
SimResult simulate(const Instance& instance, Scheduler& sched,
                   const EngineConfig& config = {},
                   const std::vector<Observer*>& observers = {});

}  // namespace parsched
