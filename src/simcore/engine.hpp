// parsched — the continuous-time malleable-scheduling engine.
//
// The model of the paper taken literally: m identical unit-speed divisible
// processors; at any instant a policy assigns each alive job a fractional
// share x_j (sum <= m) and job j's remaining work decreases at rate
// Γ_j(x_j). Because shares are piecewise-constant between decision points,
// the engine advances with *exact* event times — the next event is the
// minimum of the next arrival, the earliest completion under current rates,
// and the policy's requested reconsideration time. There is no fixed
// timestep and therefore no discretization error.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>
#include <unordered_set>

#include "simcore/incremental.hpp"
#include "simcore/instance.hpp"
#include "simcore/observer.hpp"
#include "simcore/result.hpp"
#include "simcore/scheduler.hpp"
#include "simcore/source.hpp"

namespace parsched {

namespace obs {
class MetricsRegistry;
class FlightRecorder;
}  // namespace obs

struct EngineConfig {
  /// Processor speed multiplier for resource-augmentation analysis
  /// ([Kalyanasundaram–Pruhs]): an s-speed processor processes work at
  /// rate s * Γ_j(x). The paper's results are pure competitiveness
  /// (speed = 1); the augmented mode reproduces the related-work bounds
  /// (EQUI is (2+eps)-speed O(1)-competitive, LAPS is scalable).
  double speed = 1.0;
  /// A job completes when remaining work <= completion_tol * max(1, size).
  double completion_tol = 1e-9;
  /// Events within time_tol of each other are treated as simultaneous.
  double time_tol = 1e-9;
  /// Hard guard against runaway simulations (policy bugs).
  std::uint64_t max_decisions = 500'000'000;
  /// Check share feasibility at every decision point.
  bool validate_allocations = true;
  /// Lend the engine-owned ContextCache to the SchedulerContext built at
  /// each decision point, so the ordering helpers share one sort per
  /// ordering per decision. Off, every helper call recomputes from
  /// scratch with refimpl::'s arithmetic (in-place, buffer-reusing
  /// twins) — bit-identical by construction and kept as
  /// the reference arm of the differential tests. Not part of the
  /// simulation semantics: not serialized in snapshots, not checked by
  /// import_state().
  bool use_context_cache = true;
  /// Maintain the persistent IncrementalOrders heaps
  /// (simcore/incremental.hpp) across events and serve the cache's
  /// ordering helpers from them: O(log n) maintenance per
  /// admit/advance/complete plus O(k log k) per query instead of an
  /// O(n log n) rebuild every decision. Only meaningful with
  /// use_context_cache on (the cache still owns the per-decision memo);
  /// off, the cache falls back to its own sort/selection paths. A third
  /// differentially-tested arm beside ContextCache and refimpl:: —
  /// bit-identical results by construction (the tie-break comparators
  /// are shared; tests/test_incremental.cpp is the proof). Like
  /// use_context_cache, not part of the simulation semantics: not
  /// serialized in snapshots, not checked by import_state().
  bool use_incremental_orders = true;
  /// Collect per-run profiling (SimResult::stats): wall time split into
  /// policy-decide / event-solver / observer buckets plus decision-
  /// interval and alive-count histograms. Off by default — the
  /// uninstrumented hot path takes no clock readings at all.
  bool collect_stats = false;
  /// Optional registry the engine mirrors run totals into (counters
  /// engine.runs/decisions/arrivals/completions always; timers
  /// engine.decide/solver/observer when collect_stats is also set).
  /// Borrowed; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
  /// Evaluate the per-decision rates Γ_j(x_j) with the batched
  /// exp(α·log x) kernel (speedup/kernel.hpp rate_batch_fast) instead of
  /// the scalar-identical rate_batch arm. Power-law rates at x > 1 then
  /// differ from the scalar arm by a bounded ULP distance (bit-exact at
  /// x <= 1 and for sequential / fully-parallel / piecewise-linear
  /// curves), so this IS simulation semantics: it is serialized in
  /// session snapshots and checked by import_state() — a continuation
  /// must replay the donor's kernel arm or it silently diverges.
  bool fast_rate_kernel = false;
  /// Optional flight recorder (obs/flight_recorder.hpp): the engine
  /// records decision steps, admissions, completions and stalls into it,
  /// and — when the recorder has a dump path armed — dumps the ring
  /// before throwing SimulationStall or letting a contract trip escape a
  /// decision step. record() is a handful of relaxed atomic stores, so
  /// leaving this on costs <3% of the dense-alive decision rate (the E11
  /// flight_recorder_overhead table is the regression proof). Borrowed;
  /// must outlive the run. Not simulation state: not serialized, not
  /// checked by import_state().
  obs::FlightRecorder* recorder = nullptr;
};

/// Thrown when alive jobs exist but no progress is possible: either all
/// rates are zero with no future arrival or reconsideration point, or the
/// engine detects a run of zero-length decision intervals that change no
/// state (the `detail` form names the stuck job).
class SimulationStall : public std::runtime_error {
 public:
  explicit SimulationStall(double t);
  SimulationStall(double t, const std::string& detail);
};

/// Full dynamic state of a streaming run, exposed for serve/ session
/// snapshots. Everything that determines future arithmetic is here:
/// `alive` is serialized in engine order (the swap-remove order feeds
/// SchedulerContext and is therefore semantic), `completed` is canonical
/// (sorted), `pending` keeps admission order among equal releases, and
/// `cached_alloc` carries a decision that was made but deferred past the
/// advance frontier. `result.stats` is always absent (wall-time profiling
/// is measurement, not state).
struct EngineState {
  int machines = 1;
  EngineConfig config;
  double now = 0.0;
  double frontier = 0.0;
  std::int64_t arrival_seq = 0;
  std::vector<AliveJob> alive;
  std::vector<JobId> completed;
  std::vector<Job> pending;
  bool has_cached_alloc = false;
  Allocation cached_alloc;
  SimResult result;
};

/// Structure-of-arrays mirror of the alive set's hot fields, owned by
/// the engine beside `alive_` and kept in sync at every mutation point
/// (admit, the advance sweep's remaining/phase updates, the completion
/// swap-remove, snapshot import). The decision hot path reads these
/// dense arrays — the fused rates pass runs speedup/kernel.hpp's batch
/// kernels over (kind, alpha, alloc) and writes `rate`; the dt-to-
/// completion scan and the advance sweep read `rate` — instead of
/// striding through the ~150-byte AliveJob records, which is the stated
/// unblocker for dense-alive runs at n = 10⁶.
///
/// Derived state, not simulation state: every entry is recomputable
/// from `alive_` (alloc/rate from the current decision's shares), so —
/// like the ContextCache and the IncrementalOrders heaps — none of it
/// appears in EngineState; import_state() rebuilds it. All vectors are
/// pre-reserved at admission (geometric growth, outside the AllocGuard
/// fences), so warm decision steps stay allocation-free with the SoA
/// arrays exactly as they were without them. PARSCHED_AUDIT=1 re-checks
/// the mirror field-for-field against `alive_` after every advanced
/// step (Engine::audit_soa).
struct AliveSoA {
  std::vector<double> remaining;      ///< == alive_[i].remaining
  std::vector<double> release;        ///< == alive_[i].release
  std::vector<double> alpha;          ///< == alive_[i].curve.alpha()
  std::vector<std::uint8_t> kind;     ///< == uint8(alive_[i].curve.kind())
  std::vector<double> alloc;          ///< this decision's shares
  std::vector<double> rate;           ///< this decision's rates Γ(share)
  [[nodiscard]] std::size_t size() const { return remaining.size(); }
  void clear();
  /// Geometric pre-reservation for up to n jobs (amortized O(1)/admit).
  void reserve(std::size_t n);
  /// Mirror of alive_.push_back(a); alloc/rate slots start at 0.
  void push_back(const AliveJob& a);
  /// Mirror of the job at `i` advancing to the given phase curve.
  void set_curve(std::size_t i, const SpeedupCurve& curve);
  /// Mirror of the engine's completion swap-remove: entry `last` moves
  /// into slot `i` (i == last removes the back); caller resizes after
  /// the sweep via resize().
  void swap_remove(std::size_t i, std::size_t last);
  void resize(std::size_t n);
  /// Rebuild every array from an alive set (snapshot import).
  void rebuild(std::span<const AliveJob> alive);
};

class Engine final : public EngineView {
 public:
  explicit Engine(int machines, EngineConfig config = {});

  /// Observers are borrowed; they must outlive run().
  void add_observer(Observer* obs);

  /// Run the policy against the arrival source to completion.
  SimResult run(Scheduler& sched, ArrivalSource& source);

  // ---- Streaming (incremental-arrival) API -------------------------------
  //
  // The serve/ layer drives the engine online: jobs are admitted as they
  // become known and time is advanced in increments. The streaming path
  // runs the *same* decision-step arithmetic as run() — a session that
  // admits the jobs of an instance (in release order) and advances
  // arbitrarily produces a SimResult identical to the batch run, double
  // for double. The one obligation advance_to(t) imposes is that every
  // job with release < t has already been admitted; admit() enforces it.
  //
  // advance_to() never splits a decision interval: if the next event lies
  // beyond the frontier the step is deferred and the policy's allocation
  // is cached, so on resume allocate() is *not* re-invoked (the engine
  // state it saw is unchanged) and decision counts match the batch run.

  /// Start a streaming run for `sched` (borrowed; must outlive the run).
  /// Abandons any run in progress.
  void begin(Scheduler& sched);

  /// Hand the engine a future arrival. Requires an active streaming run
  /// and job.release >= frontier(); throws std::invalid_argument
  /// otherwise. Jobs may be admitted arbitrarily far ahead of time.
  void admit(Job job);

  /// Simulate every event up to and including time t (given the admit()
  /// contract above). Monotone: t below the current frontier is a no-op.
  void advance_to(double t);

  /// Declare the arrival stream closed, run to completion, and return the
  /// final result (identical to the batch run() over the same jobs). Ends
  /// the streaming run.
  SimResult finish();

  [[nodiscard]] bool streaming() const { return streaming_; }
  /// Highest time advance_to() has been asked for (admission low bound).
  [[nodiscard]] double frontier() const { return frontier_; }
  /// True when no alive or pending jobs remain.
  [[nodiscard]] bool drained() const {
    return alive_.empty() && pending_.empty();
  }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  /// Results accumulated so far (live view; totals of completed jobs only).
  [[nodiscard]] const SimResult& partial() const { return result_; }

  /// Snapshot / restore of a streaming run. import_state() requires an
  /// engine constructed with the snapshot's machine count and config; the
  /// scheduler must already carry its restored state (Scheduler::
  /// load_state). Continuation after import is bit-identical to the
  /// donor run.
  [[nodiscard]] EngineState export_state() const;
  void import_state(const EngineState& state, Scheduler& sched);

  // EngineView (available to adaptive sources during run()):
  [[nodiscard]] double time() const override { return now_; }
  [[nodiscard]] int machines() const override { return m_; }
  [[nodiscard]] std::size_t alive_count() const override {
    return alive_.size();
  }
  [[nodiscard]] double remaining_tagged(JobTag::Class cls,
                                        int phase) const override;
  [[nodiscard]] std::size_t alive_tagged(JobTag::Class cls,
                                         int phase) const override;
  [[nodiscard]] bool is_completed(JobId id) const override {
    return completed_.count(id) > 0;
  }

  /// Test/audit surface: the SoA mirror of the alive set. Read-only;
  /// index-aligned with the engine's alive order (the order EngineState
  /// serializes). tests/test_rate_kernel.cpp's sync property test and
  /// the PARSCHED_AUDIT mirror check consume this.
  [[nodiscard]] const AliveSoA& alive_soa() const { return soa_; }

 private:
  enum class Step : std::uint8_t {
    kAdvanced,  ///< one decision interval executed
    kDeferred,  ///< next event past the horizon; allocation cached
  };

  void begin_run(Scheduler& sched);
  void finalize_run();
  SimResult take_result();
  void admit_job_now(Job j);
  void admit_pending(ArrivalSource& source);
  void release_due();
  void drain_to(double horizon);
  Step decision_step(double t_arrive, double horizon, double& t_section);
  void compute_rates(bool validate);
  /// PARSCHED_AUDIT: cross-check the SoA mirror against alive_
  /// field-for-field (bit equality). O(n), audit runs only.
  void audit_soa() const;
  /// Flight-recorder failure hook: record a stall/trip event and dump the
  /// ring (no-op without a recorder). Cold path only.
  void record_failure(bool contract_trip, std::uint64_t id,
                      const char* reason) noexcept;

  int m_;
  EngineConfig cfg_;
  std::vector<Observer*> observers_;

  double now_ = 0.0;
  std::int64_t arrival_seq_ = 0;
  std::vector<AliveJob> alive_;
  std::unordered_set<JobId> completed_;

  // Streaming-run state (also carries batch runs: result_/stats_ are the
  // accumulator for both paths).
  Scheduler* sched_ = nullptr;
  bool streaming_ = false;
  double frontier_ = 0.0;
  std::deque<Job> pending_;  // sorted by release, stable among equals
  bool has_cached_alloc_ = false;
  Allocation cached_alloc_;
  SimResult result_;
  obs::RunStats* stats_ = nullptr;
  double run_start_ = 0.0;

  // Decision-step scratch, reused (cleared, never freed) across steps so
  // the steady-state hot path performs no heap allocation. None of this
  // is simulation state: everything here is either overwritten before use
  // each step or a self-validating memo of values derivable from alive_,
  // and all of it is deliberately absent from EngineState.
  /// SoA mirror of the alive set (see AliveSoA above). `alloc`/`rate`
  /// double as the decision scratch the old flat `rates_` vector was:
  /// compute_rates() overwrites both, and their values for a *deferred*
  /// decision stay frozen with it (the rates_valid_ protocol below).
  AliveSoA soa_;
  ContextCache ctx_cache_;
  /// Persistent ordering heaps (the incremental arm). Unlike the rest of
  /// this scratch block the heaps carry state *across* decision steps —
  /// but still derived state: every key is recomputable from alive_, and
  /// import_state()/begin_run() rebuild them, so they stay out of
  /// EngineState like the cache. Maintained and queried only when
  /// inc_on_ (use_context_cache && use_incremental_orders, fixed at
  /// construction).
  IncrementalOrders inc_orders_;
  bool inc_on_ = false;
  /// Jobs with a nonzero rate in the current decision (set by
  /// compute_rates): the advance sweep uses it to pick between per-job
  /// O(log n) heap updates and one lazy-decay epoch when most keys move
  /// at once (> n/8, where n sifts start losing to one O(n) rebuild).
  std::size_t rates_nonzero_ = 0;
  std::vector<std::size_t> completion_order_;  // new-record indices, id-sorted
  std::vector<std::size_t> comp_idx_;  // this step's completed positions, asc
  /// Per-job fast-path memo for the advance loop, index-aligned with
  /// alive_ (appended on admission, swapped on removal, reset on
  /// import_state). `q` memoizes the flow-integral quotient 0.5*(r+r)/size
  /// for the job's current remaining work r — the rate-0 advance arm's
  /// division result, reusable verbatim because r only changes in the
  /// full arm, which refreshes q eagerly. A job with `needs_full` set
  /// (fresh admission or snapshot restore) takes the full advance arm
  /// once — replaying the general path's clamps and phase/completion
  /// checks bit for bit, then clearing the flag — so the fast arm may
  /// assume the invariants the full arm establishes on survivors:
  /// nonnegative remaining/phase_remaining, no pending phase advance,
  /// remaining strictly above the completion tolerance. All of those are
  /// constant while the job's rate stays 0, so the fast arm touches only
  /// this dense memo, never the (much wider) AliveJob record — that is
  /// what makes a dense mostly-idle decision step cheap.
  struct FlowQ {
    double q = 0.0;
    std::uint8_t needs_full = 1;
  };
  std::vector<FlowQ> flow_q_;
  /// rates_ / dt_complete_ for the decision in cached_alloc_, valid while
  /// the decision is deferred (its inputs are frozen by the deferral
  /// contract). Only a snapshot restore — which does not carry scratch —
  /// leaves a cached decision without them.
  double dt_complete_ = kInf;
  bool rates_valid_ = false;
  // Consecutive decision steps that advanced neither time nor any job /
  // phase / completion state (satellite guard for zero-dt livelock).
  std::uint64_t zero_dt_streak_ = 0;
  /// PARSCHED_AUDIT=1 (read once at construction): arm a check::AllocGuard
  /// around each *warm* decision step's allocate+rates section and fused
  /// advance sweep, so any heap allocation there is a hard contract
  /// failure. A step is warm when the alive count is at most the largest
  /// previously-guarded-or-completed step's (alloc_warm_n_): every
  /// scratch buffer — engine- and policy-owned — is sized by the alive
  /// count and never shrinks, so the first step at a new maximum pays
  /// the growth once, unguarded, and everything after it must be
  /// allocation-free. Observer callbacks and completion record-keeping
  /// (result accumulation, not per-decision scratch) stay outside the
  /// guarded scopes.
  bool audit_allocs_ = false;
  std::size_t alloc_warm_n_ = 0;
};

/// Convenience: simulate a fixed instance with the given policy.
SimResult simulate(const Instance& instance, Scheduler& sched,
                   const EngineConfig& config = {},
                   const std::vector<Observer*>& observers = {});

}  // namespace parsched
