#include "simcore/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fsio.hpp"

namespace parsched {

namespace {

void write_curve(std::ostream& os, const SpeedupCurve& c) {
  switch (c.kind()) {
    case SpeedupCurve::Kind::kFullyParallel:
      os << "par";
      break;
    case SpeedupCurve::Kind::kSequential:
      os << "seq";
      break;
    case SpeedupCurve::Kind::kPowerLaw:
      os << "pow " << std::setprecision(17) << c.alpha();
      break;
    case SpeedupCurve::Kind::kPiecewiseLinear: {
      const auto& knots = c.knots();
      os << "pwl " << knots.size();
      for (const auto& [x, y] : knots) {
        os << ' ' << std::setprecision(17) << x << ' ' << y;
      }
      break;
    }
  }
}

class TokenReader {
 public:
  explicit TokenReader(std::istream& is) : is_(is) {}

  /// Next meaningful line split into tokens; false at EOF.
  bool next_line(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ss(line);
      tokens.clear();
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("instance parse error at line " +
                             std::to_string(line_no_) + ": " + what);
  }

 private:
  std::istream& is_;
  int line_no_ = 0;
};

double parse_double(TokenReader& r, const std::vector<std::string>& toks,
                    std::size_t i, const char* what) {
  if (i >= toks.size()) r.fail(std::string("missing ") + what);
  try {
    return std::stod(toks[i]);
  } catch (const std::exception&) {
    r.fail(std::string("bad ") + what + ": " + toks[i]);
  }
}

/// Parse a curve starting at toks[i]; advances i past it.
SpeedupCurve parse_curve(TokenReader& r, const std::vector<std::string>& toks,
                         std::size_t& i) {
  if (i >= toks.size()) r.fail("missing curve");
  const std::string kind = toks[i++];
  if (kind == "par") return SpeedupCurve::fully_parallel();
  if (kind == "seq") return SpeedupCurve::sequential();
  if (kind == "pow") {
    const double a = parse_double(r, toks, i++, "alpha");
    return SpeedupCurve::power_law(a);
  }
  if (kind == "pwl") {
    const auto n = static_cast<std::size_t>(
        parse_double(r, toks, i++, "pwl knot count"));
    std::vector<std::pair<double, double>> knots;
    for (std::size_t k = 0; k < n; ++k) {
      const double x = parse_double(r, toks, i++, "pwl knot x");
      const double y = parse_double(r, toks, i++, "pwl knot y");
      knots.emplace_back(x, y);
    }
    return SpeedupCurve::piecewise_linear(std::move(knots));
  }
  r.fail("unknown curve kind: " + kind);
}

JobTag::Class parse_class(TokenReader& r, const std::string& s) {
  if (s == "none") return JobTag::Class::kNone;
  if (s == "long") return JobTag::Class::kLong;
  if (s == "short") return JobTag::Class::kShort;
  if (s == "stream") return JobTag::Class::kStream;
  r.fail("unknown tag class: " + s);
}

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << "parsched-instance 1\n";
  os << "machines " << instance.machines() << "\n";
  os << std::setprecision(17);
  for (const Job& j : instance.jobs()) {
    os << "job " << j.id << ' ' << j.release << ' ';
    if (j.phases.empty()) {
      os << "size " << j.size << ' ';
      write_curve(os, j.curve);
    } else {
      os << "phases " << j.phases.size();
      for (const JobPhase& p : j.phases) {
        os << ' ' << p.work << ' ';
        write_curve(os, p.curve);
      }
    }
    if (j.weight != 1.0) os << " w " << j.weight;  // lint: float-eq-ok
    if (j.tag.cls != JobTag::Class::kNone || j.tag.phase >= 0) {
      os << " tag " << j.tag.phase << ' ' << to_string(j.tag.cls) << ' '
         << j.tag.index;
    }
    os << '\n';
  }
}

void write_instance_file(const std::string& path, const Instance& instance) {
  auto out = open_output(path, "instance file");
  write_instance(out, instance);
  finish_output(out, path);
}

Instance read_instance(std::istream& is) {
  TokenReader reader(is);
  std::vector<std::string> toks;

  if (!reader.next_line(toks) || toks.size() != 2 ||
      toks[0] != "parsched-instance" || toks[1] != "1") {
    reader.fail("expected header 'parsched-instance 1'");
  }
  if (!reader.next_line(toks) || toks.size() != 2 || toks[0] != "machines") {
    reader.fail("expected 'machines <m>'");
  }
  const int machines = static_cast<int>(
      parse_double(reader, toks, 1, "machine count"));

  std::vector<Job> jobs;
  while (reader.next_line(toks)) {
    if (toks[0] != "job") reader.fail("expected 'job ...': " + toks[0]);
    Job j;
    std::size_t i = 1;
    j.id = static_cast<JobId>(parse_double(reader, toks, i++, "job id"));
    j.release = parse_double(reader, toks, i++, "release");
    if (i >= toks.size()) reader.fail("truncated job line");
    const std::string mode = toks[i++];
    if (mode == "size") {
      j.size = parse_double(reader, toks, i++, "size");
      j.curve = parse_curve(reader, toks, i);
    } else if (mode == "phases") {
      const auto k = static_cast<std::size_t>(
          parse_double(reader, toks, i++, "phase count"));
      for (std::size_t p = 0; p < k; ++p) {
        JobPhase phase;
        phase.work = parse_double(reader, toks, i++, "phase work");
        phase.curve = parse_curve(reader, toks, i);
        j.phases.push_back(std::move(phase));
      }
      j.normalize_phases();
    } else {
      reader.fail("expected 'size' or 'phases', got " + mode);
    }
    if (i < toks.size() && toks[i] == "w") {
      ++i;
      j.weight = parse_double(reader, toks, i++, "weight");
    }
    if (i < toks.size()) {
      if (toks[i] != "tag") reader.fail("unexpected trailing: " + toks[i]);
      ++i;
      j.tag.phase = static_cast<int>(
          parse_double(reader, toks, i++, "tag phase"));
      if (i >= toks.size()) reader.fail("truncated tag");
      j.tag.cls = parse_class(reader, toks[i++]);
      j.tag.index = static_cast<std::int64_t>(
          parse_double(reader, toks, i++, "tag index"));
    }
    if (i != toks.size()) reader.fail("unexpected trailing tokens");
    jobs.push_back(std::move(j));
  }
  if (jobs.empty()) reader.fail("instance has no jobs");
  return Instance(machines, std::move(jobs));
}

Instance read_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_instance(in);
}

}  // namespace parsched
