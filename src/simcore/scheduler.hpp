// parsched — the online scheduling policy interface.
//
// A policy is invoked at every decision point (arrival, completion, or a
// time the policy itself requested) and returns a fractional processor
// allocation over the currently alive jobs. Between decision points all
// rates are constant, which is what lets the engine advance with exact
// event times instead of a fixed timestep.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/job.hpp"
#include "util/mathx.hpp"

namespace parsched {

/// One alive job as seen by a policy. Policies are non-clairvoyant about
/// the future but clairvoyant about remaining work, matching the paper's
/// SRPT-style algorithms (`original size` is also visible; the natural
/// greedy of Section 3 uses remaining work only).
struct AliveJob {
  JobId id = kInvalidJob;
  double release = 0.0;
  double size = 0.0;       ///< original work p_j
  double remaining = 0.0;  ///< unprocessed work p_j(t), across all phases
  double weight = 1.0;     ///< weight w_j of the weighted-flow objective
  /// Speedup curve of the *current* phase (the whole curve for
  /// single-phase jobs). This is what the job responds to right now.
  SpeedupCurve curve;
  std::int64_t arrival_seq = 0;  ///< global arrival ordinal (0-based)
  JobTag tag;  ///< workload metadata; online policies must not read this

  // Multi-phase bookkeeping (engine-internal; non-clairvoyant policies
  // must not read these — they reveal the future phase structure).
  std::vector<JobPhase> phases;
  std::size_t phase = 0;
  double phase_remaining = 0.0;
};

/// What a policy sees at a decision point.
class SchedulerContext {
 public:
  SchedulerContext(double time, int machines,
                   std::span<const AliveJob> alive)
      : time_(time), machines_(machines), alive_(alive) {}

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] int machines() const { return machines_; }
  [[nodiscard]] std::span<const AliveJob> alive() const { return alive_; }

  /// Indices into alive() sorted by (remaining, release, id): SRPT order.
  [[nodiscard]] std::vector<std::size_t> by_remaining() const;

  /// Indices of the k jobs with least remaining work (SRPT order among
  /// them). O(n + k log k) via selection — policies that only need the
  /// head of the SRPT order (all of them, in practice) should use this
  /// instead of by_remaining().
  [[nodiscard]] std::vector<std::size_t> smallest_remaining(
      std::size_t k) const;

  /// Index of the single job with least remaining work. O(n).
  [[nodiscard]] std::size_t min_remaining() const;

  /// Indices into alive() sorted by (release, id) descending: latest first
  /// (used by LAPS).
  [[nodiscard]] std::vector<std::size_t> by_latest_arrival() const;

  /// Indices of the k latest-arriving jobs. O(n + k log k).
  [[nodiscard]] std::vector<std::size_t> latest_arrivals(std::size_t k) const;

 private:
  double time_;
  int machines_;
  std::span<const AliveJob> alive_;
};

/// A policy's answer: `shares[i]` processors for `ctx.alive()[i]`
/// (fractional, nonnegative, summing to at most m), plus an optional
/// absolute time by which the policy wants to be re-invoked even if no
/// arrival/completion happens (e.g. Greedy's priority-crossing times).
struct Allocation {
  std::vector<double> shares;
  double reconsider_at = kInf;
};

/// Online scheduling policy. Implementations must be deterministic
/// functions of the context (plus internal state updated at decision
/// points) so simulations are reproducible.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Allocation allocate(const SchedulerContext& ctx) = 0;

  /// Called once before a simulation run; default resets nothing.
  virtual void reset() {}

  /// Serialize the policy's mutable decision state for serve/ session
  /// snapshots. Stateless policies (everything except quantized-equi)
  /// return "". load_state() must accept exactly what save_state()
  /// produced and restore bit-identical future decisions; it throws
  /// std::invalid_argument on a blob it does not recognize.
  [[nodiscard]] virtual std::string save_state() const { return {}; }
  virtual void load_state(const std::string& state) {
    if (!state.empty()) {
      throw std::invalid_argument("policy " + name() +
                                  " carries no state to restore");
    }
  }
};

}  // namespace parsched
