// parsched — the online scheduling policy interface.
//
// A policy is invoked at every decision point (arrival, completion, or a
// time the policy itself requested) and returns a fractional processor
// allocation over the currently alive jobs. Between decision points all
// rates are constant, which is what lets the engine advance with exact
// event times instead of a fixed timestep.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/job.hpp"
#include "util/mathx.hpp"

namespace parsched {

/// One alive job as seen by a policy. Policies are non-clairvoyant about
/// the future but clairvoyant about remaining work, matching the paper's
/// SRPT-style algorithms (`original size` is also visible; the natural
/// greedy of Section 3 uses remaining work only).
struct AliveJob {
  JobId id = kInvalidJob;
  double release = 0.0;
  double size = 0.0;       ///< original work p_j
  double remaining = 0.0;  ///< unprocessed work p_j(t), across all phases
  double weight = 1.0;     ///< weight w_j of the weighted-flow objective
  /// Speedup curve of the *current* phase (the whole curve for
  /// single-phase jobs). This is what the job responds to right now.
  SpeedupCurve curve;
  std::int64_t arrival_seq = 0;  ///< global arrival ordinal (0-based)
  JobTag tag;  ///< workload metadata; online policies must not read this

  // Multi-phase bookkeeping (engine-internal; non-clairvoyant policies
  // must not read these — they reveal the future phase structure).
  std::vector<JobPhase> phases;
  std::size_t phase = 0;
  double phase_remaining = 0.0;
};

/// Reference implementations of the SchedulerContext ordering helpers:
/// the original per-call iota + sort / nth_element code, kept verbatim so
/// the memoized ContextCache path can be differentially tested against it
/// (tests/test_context_cache.cpp). A SchedulerContext constructed without
/// a cache recomputes every helper call from scratch with the same
/// arithmetic — via in-place twins of these functions that reuse the
/// context's fallback buffers, so the engine's
/// EngineConfig::use_context_cache = false mode is allocation-free too
/// (check/alloc_guard.hpp audits both modes).
namespace refimpl {

[[nodiscard]] std::vector<std::size_t> by_remaining(
    std::span<const AliveJob> alive);
[[nodiscard]] std::vector<std::size_t> smallest_remaining(
    std::span<const AliveJob> alive, std::size_t k);
[[nodiscard]] std::size_t min_remaining(std::span<const AliveJob> alive);
[[nodiscard]] std::vector<std::size_t> by_latest_arrival(
    std::span<const AliveJob> alive);
[[nodiscard]] std::vector<std::size_t> latest_arrivals(
    std::span<const AliveJob> alive, std::size_t k);

}  // namespace refimpl

/// Per-decision memo for the SchedulerContext ordering helpers. The engine
/// owns one and lends it to the context it builds at each decision point,
/// calling invalidate() first; the buffers themselves are never freed, so
/// after warm-up a decision step performs no allocations no matter how
/// many ordering queries the policy issues.
///
/// Within one decision the cache holds at most one SRPT ordering and one
/// latest-arrival ordering. A k-bounded query (smallest_remaining /
/// latest_arrivals) is served by selection into the shared buffer and
/// recorded as a prefix; a later wider or full query upgrades the prefix
/// to the full sorted order in place. Both paths produce index sequences
/// identical to refimpl:: — the comparators are strict total orders
/// (ties broken by job id), so any sorted prefix equals the same prefix
/// of the full sorted order.
class ContextCache {
 public:
  /// Forget all memoized orderings (the alive set changed). Keeps the
  /// buffer capacity.
  void invalidate() {
    srpt_ = Memo::kNone;
    latest_ = Memo::kNone;
    srpt_keys_full_ = false;
    min_valid_ = false;
  }

  /// Pre-size every buffer for decisions over up to `n` alive jobs
  /// (geometric growth, so a per-admission call stays O(n) amortized).
  /// The engine calls this as the alive set grows: which helper code
  /// path runs depends on n (small-k selection vs. full gather), so a
  /// shrinking run can reach a buffer the larger steps never touched —
  /// without this, the first gather at small n would be the lone heap
  /// allocation in an otherwise warm decision loop (and a
  /// check/alloc_guard.hpp audit failure).
  void reserve(std::size_t n) {
    grow(srpt_keys_, n);
    grow(srpt_topk_, n);
    grow(latest_keys_, n);
    grow(srpt_order_, n);
    grow(latest_order_, n);
    grow(fb_by_remaining_, n);
    grow(fb_smallest_, n);
    grow(fb_by_latest_, n);
    grow(fb_latest_k_, n);
  }

  // Flat sort keys: sorting 24/16-byte key records beats sorting indices
  // through 150-byte AliveJob records (the gather pass is a single
  // sequential sweep; the sort then stays cache-resident). Public only so
  // scheduler.cpp's file-local comparators can name them.
  struct SrptKey {
    double remaining;
    double release;
    JobId id;
    std::uint32_t idx;
  };
  struct LatestKey {
    double release;
    JobId id;
    std::uint32_t idx;
  };

 private:
  friend class SchedulerContext;

  enum class Memo : std::uint8_t { kNone, kPrefix, kFull };

  template <typename V>
  static void grow(V& v, std::size_t n) {
    if (v.capacity() < n) v.reserve(std::max(n, v.capacity() * 2));
  }

  std::vector<SrptKey> srpt_keys_;
  std::vector<SrptKey> srpt_topk_;  ///< bounded-heap scratch for small k
  std::vector<LatestKey> latest_keys_;
  std::vector<std::size_t> srpt_order_;
  std::vector<std::size_t> latest_order_;
  // Storage for the memoization-off fill_* twins (see SchedulerContext:
  // a context carrying a cache with memoize = false recomputes every
  // helper call into these, so the cache-off engine mode reuses
  // engine-owned capacity instead of allocating per decision).
  std::vector<std::size_t> fb_by_remaining_;
  std::vector<std::size_t> fb_smallest_;
  std::vector<std::size_t> fb_by_latest_;
  std::vector<std::size_t> fb_latest_k_;
  std::size_t srpt_prefix_ = 0;    ///< valid length when srpt_ == kPrefix
  std::size_t latest_prefix_ = 0;  ///< valid length when latest_ == kPrefix
  Memo srpt_ = Memo::kNone;
  Memo latest_ = Memo::kNone;
  bool srpt_keys_full_ = false;  ///< srpt_keys_ holds a gather of all n jobs
  std::size_t min_idx_ = 0;
  bool min_valid_ = false;
};

/// Canonical strict-total-order comparators over the flat keys — the
/// single definition of both tie-break orders. Shared by the ContextCache
/// sort/selection paths (scheduler.cpp), the IncrementalOrders heaps
/// (simcore/incremental.hpp) and the differential tests, so every arm of
/// the engine breaks ties identically; the key structs carry the job id,
/// making both orders strict total orders with unique k-prefixes.
struct SrptKeyLess {
  bool operator()(const ContextCache::SrptKey& a,
                  const ContextCache::SrptKey& b) const {
    if (a.remaining != b.remaining) return a.remaining < b.remaining;
    if (a.release != b.release) return a.release < b.release;
    return a.id < b.id;
  }
};

struct LatestKeyLess {
  bool operator()(const ContextCache::LatestKey& a,
                  const ContextCache::LatestKey& b) const {
    if (a.release != b.release) return a.release > b.release;
    return a.id > b.id;
  }
};

class IncrementalOrders;

/// What a policy sees at a decision point.
///
/// The ordering helpers return spans into storage owned by the attached
/// ContextCache (or, without a cache, by this context). A returned span
/// stays valid until the next helper call *of the same ordering family*
/// on this context; with a cache attached it stays valid for the whole
/// decision, since repeated queries are served from the same memo.
class SchedulerContext {
 public:
  /// `cache` may be null: every helper call then recomputes its ordering
  /// from scratch via refimpl:: (the pre-memoization behaviour, kept as
  /// the differential-test reference). With a cache but `memoize` off,
  /// helpers still recompute per call — same arithmetic, same results —
  /// but fill the cache's reusable fallback buffers instead of
  /// allocating: that is the engine's use_context_cache = false mode,
  /// which must stay allocation-free under PARSCHED_AUDIT.
  ///
  /// `inc` optionally attaches the engine's persistent IncrementalOrders
  /// heaps (simcore/incremental.hpp): the memoized helpers then read
  /// their orderings from the heaps in O(k log k) instead of re-sorting
  /// the alive set, producing the same index sequences entry for entry
  /// (the comparators are shared). Requires an attached cache with
  /// memoization on — the memo still owns the result buffers.
  SchedulerContext(double time, int machines, std::span<const AliveJob> alive,
                   ContextCache* cache = nullptr, bool memoize = true,
                   IncrementalOrders* inc = nullptr)
      : time_(time),
        machines_(machines),
        alive_(alive),
        cache_(cache),
        memoize_(memoize),
        inc_(inc) {
    if (inc_ != nullptr && (cache_ == nullptr || !memoize_)) {
      throw std::logic_error(
          "SchedulerContext: incremental orders require a memoizing cache");
    }
  }

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] int machines() const { return machines_; }
  [[nodiscard]] std::span<const AliveJob> alive() const { return alive_; }

  /// Indices into alive() sorted by (remaining, release, id): SRPT order.
  [[nodiscard]] std::span<const std::size_t> by_remaining() const;

  /// Indices of the k jobs with least remaining work (SRPT order among
  /// them) — the first k entries of by_remaining() without paying for the
  /// full sort. O(n + k log k) via selection on a cold cache; O(1) when
  /// the decision's SRPT order is already memoized.
  [[nodiscard]] std::span<const std::size_t> smallest_remaining(
      std::size_t k) const;

  /// Index of the single job with least remaining work. O(n).
  [[nodiscard]] std::size_t min_remaining() const;

  /// Indices into alive() sorted by (release, id) descending: latest first
  /// (used by LAPS).
  [[nodiscard]] std::span<const std::size_t> by_latest_arrival() const;

  /// Indices of the k latest-arriving jobs. O(n + k log k).
  [[nodiscard]] std::span<const std::size_t> latest_arrivals(
      std::size_t k) const;

 private:
  [[nodiscard]] std::span<const std::size_t> srpt_span(std::size_t k) const;
  [[nodiscard]] std::span<const std::size_t> latest_span(std::size_t k) const;

  double time_;
  int machines_;
  std::span<const AliveJob> alive_;
  ContextCache* cache_;
  bool memoize_ = true;
  IncrementalOrders* inc_ = nullptr;
  // Fallback storage backing the returned spans when cache_ == nullptr
  // (contexts built by hand, e.g. differential tests; with a cache the
  // fill path writes the cache's fb_* buffers instead). One buffer per
  // helper, so (like the old per-call vectors) the result of one helper
  // is not clobbered by a call to a different one.
  mutable std::vector<std::size_t> fb_by_remaining_;
  mutable std::vector<std::size_t> fb_smallest_;
  mutable std::vector<std::size_t> fb_by_latest_;
  mutable std::vector<std::size_t> fb_latest_k_;
};

/// A policy's answer: `shares[i]` processors for `ctx.alive()[i]`
/// (fractional, nonnegative, summing to at most m), plus an optional
/// absolute time by which the policy wants to be re-invoked even if no
/// arrival/completion happens (e.g. Greedy's priority-crossing times).
struct Allocation {
  std::vector<double> shares;
  double reconsider_at = kInf;

  /// Start a fresh decision over n jobs: zero shares, no reconsideration.
  /// Reuses the vector's capacity — every policy calls this first on the
  /// engine-owned output buffer, so steady-state decisions allocate
  /// nothing.
  void reset(std::size_t n) {
    shares.assign(n, 0.0);
    reconsider_at = kInf;
  }
};

/// Online scheduling policy. Implementations must be deterministic
/// functions of the context (plus internal state updated at decision
/// points) so simulations are reproducible.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fill `out` with this decision's allocation. `out` is an engine-owned
  /// buffer reused across decisions; implementations MUST begin with
  /// out.reset(ctx.alive().size()) (or assign every field) — its previous
  /// contents are the last decision's answer, not zeros.
  virtual void allocate(const SchedulerContext& ctx, Allocation& out) = 0;

  /// Convenience for callers without a reusable buffer (tests, one-shot
  /// probes): returns a fresh Allocation.
  [[nodiscard]] Allocation allocate(const SchedulerContext& ctx) {
    Allocation out;
    allocate(ctx, out);
    return out;
  }

  /// Called once before a simulation run; default resets nothing.
  virtual void reset() {}

  /// Serialize the policy's mutable decision state for serve/ session
  /// snapshots. Stateless policies (everything except quantized-equi)
  /// return "". load_state() must accept exactly what save_state()
  /// produced and restore bit-identical future decisions; it throws
  /// std::invalid_argument on a blob it does not recognize.
  [[nodiscard]] virtual std::string save_state() const { return {}; }
  virtual void load_state(const std::string& state) {
    if (!state.empty()) {
      throw std::invalid_argument("policy " + name() +
                                  " carries no state to restore");
    }
  }
};

}  // namespace parsched
