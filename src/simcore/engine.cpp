#include "simcore/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "check/alloc_guard.hpp"
#include "check/contract.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "speedup/kernel.hpp"
#include "util/env.hpp"
#include "util/mathx.hpp"

namespace parsched {

namespace {

/// speedup::PwlRateFn trampoline for piecewise-linear curves: the flat
/// (kind, alpha) arrays cannot encode a knot vector, so those elements
/// delegate to the AliveJob's own curve — the exact code path the
/// pre-SoA scalar loop took, hence bit-identical.
double pwl_rate_from_alive(const void* ctx, std::size_t i, double x) {
  const auto* alive = static_cast<const AliveJob*>(ctx);
  return alive[i].curve.rate(x);
}

}  // namespace

void AliveSoA::clear() {
  remaining.clear();
  release.clear();
  alpha.clear();
  kind.clear();
  alloc.clear();
  rate.clear();
}

void AliveSoA::reserve(std::size_t n) {
  const auto grow = [n](auto& v) {
    if (v.capacity() < n) v.reserve(std::max(n, v.capacity() * 2));
  };
  grow(remaining);
  grow(release);
  grow(alpha);
  grow(kind);
  grow(alloc);
  grow(rate);
}

void AliveSoA::push_back(const AliveJob& a) {
  remaining.push_back(a.remaining);
  release.push_back(a.release);
  alpha.push_back(a.curve.alpha());
  kind.push_back(static_cast<std::uint8_t>(a.curve.kind()));
  alloc.push_back(0.0);
  rate.push_back(0.0);
}

void AliveSoA::set_curve(std::size_t i, const SpeedupCurve& curve) {
  alpha[i] = curve.alpha();
  kind[i] = static_cast<std::uint8_t>(curve.kind());
}

void AliveSoA::swap_remove(std::size_t i, std::size_t last) {
  if (i == last) return;
  remaining[i] = remaining[last];
  release[i] = release[last];
  alpha[i] = alpha[last];
  kind[i] = kind[last];
  alloc[i] = alloc[last];
  rate[i] = rate[last];
}

void AliveSoA::resize(std::size_t n) {
  remaining.resize(n);
  release.resize(n);
  alpha.resize(n);
  kind.resize(n);
  alloc.resize(n);
  rate.resize(n);
}

void AliveSoA::rebuild(std::span<const AliveJob> alive) {
  clear();
  reserve(alive.size());
  for (const AliveJob& a : alive) push_back(a);
}

// PARSCHED_AUDIT cross-check: every flat array must mirror the
// authoritative AliveJob records bit-for-bit. A divergence means a sync
// site (admit / advance / phase change / completion swap / restore) was
// missed, and trips here at the step that caused it rather than
// surfacing later as a wrong rate.
void Engine::audit_soa() const {
  const std::size_t n = alive_.size();
  PARSCHED_CHECK(soa_.size() == n, "SoA mirror size diverged from alive set");
  PARSCHED_CHECK(soa_.alloc.size() == n && soa_.rate.size() == n,
                 "SoA scratch arrays diverged from alive set");
  for (std::size_t i = 0; i < n; ++i) {
    const AliveJob& a = alive_[i];
    PARSCHED_CHECK(std::bit_cast<std::uint64_t>(soa_.remaining[i]) ==
                       std::bit_cast<std::uint64_t>(a.remaining),
                   "SoA remaining diverged from alive job");
    PARSCHED_CHECK(std::bit_cast<std::uint64_t>(soa_.release[i]) ==
                       std::bit_cast<std::uint64_t>(a.release),
                   "SoA release diverged from alive job");
    PARSCHED_CHECK(std::bit_cast<std::uint64_t>(soa_.alpha[i]) ==
                       std::bit_cast<std::uint64_t>(a.curve.alpha()),
                   "SoA alpha diverged from alive job");
    PARSCHED_CHECK(soa_.kind[i] == static_cast<std::uint8_t>(a.curve.kind()),
                   "SoA curve kind diverged from alive job");
  }
}

namespace {

std::string stall_message(double t) {
  std::ostringstream os;
  os << "simulation stalled at t=" << t
     << ": alive jobs but zero rates and no future arrival or "
        "reconsideration point";
  return os.str();
}

std::string stall_message(double t, const std::string& detail) {
  std::ostringstream os;
  os << "simulation stalled at t=" << t << ": " << detail;
  return os.str();
}

}  // namespace

SimulationStall::SimulationStall(double t)
    : std::runtime_error(stall_message(t)) {}

SimulationStall::SimulationStall(double t, const std::string& detail)
    : std::runtime_error(stall_message(t, detail)) {}

Engine::Engine(int machines, EngineConfig config)
    : m_(machines), cfg_(config) {
  if (machines < 1) throw std::invalid_argument("need at least one machine");
  if (!(cfg_.speed > 0.0)) {
    throw std::invalid_argument("engine speed must be positive");
  }
  audit_allocs_ = env::get_flag("PARSCHED_AUDIT");
  // The incremental arm rides on the cache's memo protocol (the heaps
  // fill the cache-owned order buffers), so it is only armed when both
  // knobs are on. cfg_ is immutable after construction.
  inc_on_ = cfg_.use_context_cache && cfg_.use_incremental_orders;
}

void Engine::add_observer(Observer* obs) {
  PARSCHED_CHECK(obs != nullptr, "null observer");
  observers_.push_back(obs);
}

double Engine::remaining_tagged(JobTag::Class cls, int phase) const {
  double total = 0.0;
  for (const AliveJob& a : alive_) {
    if (a.tag.cls == cls && (phase < 0 || a.tag.phase == phase)) {
      total += a.remaining;
    }
  }
  return total;
}

std::size_t Engine::alive_tagged(JobTag::Class cls, int phase) const {
  std::size_t n = 0;
  for (const AliveJob& a : alive_) {
    if (a.tag.cls == cls && (phase < 0 || a.tag.phase == phase)) ++n;
  }
  return n;
}

void Engine::begin_run(Scheduler& sched) {
  sched_ = &sched;
  sched.reset();
  alive_.clear();
  completed_.clear();
  pending_.clear();
  now_ = 0.0;
  frontier_ = 0.0;
  arrival_seq_ = 0;
  streaming_ = false;
  has_cached_alloc_ = false;
  cached_alloc_ = Allocation{};
  result_ = SimResult{};
  zero_dt_streak_ = 0;
  alloc_warm_n_ = 0;
  flow_q_.clear();
  soa_.clear();
  inc_orders_.clear();
  rates_valid_ = false;
  stats_ = nullptr;
  // Profiling is opt-in: with collect_stats off (the default) `stats_` is
  // null, every instrumentation site is one predictable branch, and no
  // clock is ever read — the hot path stays uninstrumented.
  if (cfg_.collect_stats) {
    result_.stats.emplace();
    stats_ = &*result_.stats;
  }
  run_start_ = cfg_.collect_stats ? obs::monotonic_seconds() : 0.0;
}

void Engine::finalize_run() {
  if (stats_ != nullptr) {
    stats_->wall_seconds = obs::monotonic_seconds() - run_start_;
    stats_->completions = result_.records.size();
    stats_->arrivals = result_.events - stats_->completions;
    stats_->decisions = result_.decisions;
  }
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg_.metrics;
    reg.counter("engine.runs").inc();
    reg.counter("engine.decisions").inc(result_.decisions);
    reg.counter("engine.completions").inc(result_.records.size());
    reg.counter("engine.arrivals")
        .inc(result_.events - result_.records.size());
    if (stats_ != nullptr) {
      reg.timer("engine.run").add(stats_->wall_seconds);
      reg.timer("engine.decide").add(stats_->decide_seconds);
      reg.timer("engine.solver").add(stats_->solver_seconds);
      reg.timer("engine.observer").add(stats_->observer_seconds);
    }
  }
}

SimResult Engine::take_result() {
  SimResult out = std::move(result_);
  result_ = SimResult{};
  stats_ = nullptr;
  sched_ = nullptr;
  return out;
}

void Engine::record_failure(bool contract_trip, std::uint64_t id,
                            const char* reason) noexcept {
  // The last event the black box sees before the exception escapes: the
  // failure itself, followed by an automatic dump when a path is armed.
  // Cold path by construction — this runs once, right before a throw.
  if (cfg_.recorder == nullptr) return;
  cfg_.recorder->record(contract_trip ? obs::FlightEvent::kGuardTrip
                                      : obs::FlightEvent::kStall,
                        id, now_, 0.0,
                        static_cast<std::uint32_t>(alive_.size()));
  cfg_.recorder->dump_to_file(reason);
}

void Engine::admit_job_now(Job j) {
  j.normalize_phases();
  if (j.size <= 0.0) throw std::invalid_argument("nonpositive job size");
  AliveJob a;
  a.id = j.id;
  a.release = j.release;
  a.size = j.size;
  a.remaining = j.size;
  a.weight = j.weight;
  a.curve = j.curve;
  a.arrival_seq = arrival_seq_++;
  a.tag = j.tag;
  a.phases = j.phases;
  a.phase = 0;
  a.phase_remaining = j.phases.empty() ? j.size : j.phases[0].work;
  alive_.push_back(std::move(a));
  flow_q_.push_back(FlowQ{});  // memo slot starts invalid
  // SoA mirror: pre-pay growth (geometric, outside the guarded scopes),
  // then append the new job's hot fields. alloc/rate slots start 0 and
  // are overwritten by the next compute_rates().
  soa_.reserve(alive_.size());
  soa_.push_back(alive_.back());
  // Keep the completion-scan scratch's capacity at least the alive count
  // (geometric growth, amortized O(1) per admission): the fused advance
  // sweep may push up to |alive| completed positions, and pre-paying the
  // growth here — outside the guarded scopes — is what makes the sweep
  // allocation-free even on mass-completion steps.
  if (comp_idx_.capacity() < alive_.size()) {
    comp_idx_.reserve(std::max(alive_.size(), comp_idx_.capacity() * 2));
  }
  // Same pre-payment for the ordering-helper buffers: which helper code
  // path runs depends on the alive count (small-k selection vs. full
  // gather), so a *shrinking* run can reach a buffer that the larger
  // steps never touched. Reserving to the high-water mark here makes
  // every path allocation-free regardless of where the switch lands.
  ctx_cache_.reserve(alive_.size());
  // Incremental arm: pre-pay heap growth here too (outside the guarded
  // scopes), then push the new job — one O(log n) sift per heap.
  if (inc_on_) {
    inc_orders_.reserve(alive_.size());
    inc_orders_.insert(alive_.back(), alive_.size() - 1);
  }
  ++result_.events;
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->record(obs::FlightEvent::kAdmit,
                          static_cast<std::uint64_t>(j.id), now_, j.release,
                          static_cast<std::uint32_t>(alive_.size()));
  }
  for (Observer* obs : observers_) obs->on_arrival(now_, j);
}

void Engine::admit_pending(ArrivalSource& source) {
  for (;;) {
    const double nt = source.next_time(*this);
    if (!(nt <= now_ + cfg_.time_tol)) break;
    std::vector<Job> jobs = source.take(nt, *this);
    if (jobs.empty()) {
      // Pure decision point: the source must make progress.
      PARSCHED_CHECK(source.next_time(*this) > nt,
                     "arrival source failed to advance past a pure "
                     "decision point");
      continue;
    }
    for (Job& j : jobs) admit_job_now(std::move(j));
  }
}

void Engine::release_due() {
  // The streaming twin of admit_pending(): pending_ is kept sorted by
  // release (stable among equals), so admission order — and therefore
  // arrival_seq — matches what a VectorSource over the same jobs yields.
  while (!pending_.empty() &&
         pending_.front().release <= now_ + cfg_.time_tol) {
    Job j = std::move(pending_.front());
    pending_.pop_front();
    admit_job_now(std::move(j));
  }
}

PARSCHED_HOT void Engine::compute_rates(bool validate) {
  // The decision's shares → rates pass, restructured over the SoA
  // mirror: (1) a validation+copy sweep moves the shares into the dense
  // soa_.alloc array, (2) one batched kernel call evaluates every
  // Γ_i(x_i) into soa_.rate, (3) a dense scan derives the earliest
  // phase end and the nonzero-rate count. The split is bit-neutral
  // against the old fused scalar loop: the default kernel arm computes
  // `speed * Γ(s)` with the exact per-element arithmetic rate() used
  // (a zero share yields speed * 0.0 == +0.0, the same bits the old
  // skip wrote), validation still sees every share before any throw
  // escapes, and dt_complete minimizes over the same values in the
  // same index order. soa_.alloc/rate are engine scratch sized at
  // admission, so nothing here resizes — the AllocGuard fence around
  // this call stays armed.
  const Allocation& alloc = cached_alloc_;
  const std::size_t n = alive_.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = alloc.shares[i];
    if (validate && !(s >= 0.0)) {
      throw std::logic_error("negative share from policy " +  // lint: alloc-ok
                             sched_->name());
    }
    sum += s;
    soa_.alloc[i] = s;
  }
  if (validate && sum > static_cast<double>(m_) * (1.0 + 1e-9) + 1e-9) {
    throw std::logic_error("overcommitted shares from " +  // lint: alloc-ok
                           sched_->name());
  }
  const speedup::PwlRateFn pwl{&pwl_rate_from_alive, alive_.data()};
  if (cfg_.fast_rate_kernel) {
    speedup::rate_batch_fast(soa_.kind, soa_.alpha, soa_.alloc, cfg_.speed,
                             soa_.rate, pwl);
  } else {
    speedup::rate_batch(soa_.kind, soa_.alpha, soa_.alloc, cfg_.speed,
                        soa_.rate, pwl);
  }
  double dt_complete = kInf;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = soa_.rate[i];
    if (r > 0.0) {
      ++nonzero;
      // The end of the current *phase* is the next per-job event (for a
      // single-phase job that is its completion).
      dt_complete = std::min(dt_complete, alive_[i].phase_remaining / r);
    }
  }
  dt_complete_ = dt_complete;
  rates_nonzero_ = nonzero;
  rates_valid_ = true;
}

PARSCHED_HOT Engine::Step Engine::decision_step(double t_arrive,
                                                double horizon,
                                                double& t_section) {
  // One decision interval of the simulation, shared verbatim between the
  // batch loop (horizon = kInf, never defers) and the streaming loop. The
  // allocation is computed at most once per decision point: a step
  // deferred past the horizon caches it — the context the policy saw
  // (now_, machines, alive_) cannot change while deferred, because
  // admissions land in pending_ and time only moves inside this function.
  if (!has_cached_alloc_) {
    if (++result_.decisions > cfg_.max_decisions) {
      throw std::runtime_error("engine exceeded max_decisions guard");
    }
    ctx_cache_.invalidate();
    SchedulerContext ctx(now_, m_, alive_, &ctx_cache_,
                         cfg_.use_context_cache,
                         inc_on_ ? &inc_orders_ : nullptr);
    // PARSCHED_AUDIT: warm allocate+rates sections must not touch the
    // heap — every scratch buffer is capacity-stable once a step at this
    // alive count has completed. (A policy-error throw inside the scope
    // surfaces as the guard's ContractViolation under audit, since
    // building the error message allocates; the diagnostic still names
    // the offending region.)
    std::optional<AllocGuard> fence;
    if (audit_allocs_ && alive_.size() <= alloc_warm_n_) {
      fence.emplace("Engine decision step: allocate+rates");
    }
    const double t_decide0 = stats_ != nullptr ? obs::monotonic_seconds()
                                               : 0.0;
    sched_->allocate(ctx, cached_alloc_);
    if (stats_ != nullptr) {
      t_section = obs::monotonic_seconds();
      stats_->decide_seconds += t_section - t_decide0;
      stats_->alive_count.add(static_cast<double>(alive_.size()));
    }
    if (cached_alloc_.shares.size() != alive_.size()) {
      fence.reset();
      throw std::logic_error("allocation size mismatch from policy " +
                             sched_->name());
    }
    compute_rates(cfg_.validate_allocations);
    fence.reset();
    alloc_warm_n_ = std::max(alloc_warm_n_, alive_.size());
    if (stats_ != nullptr) {
      const double t = obs::monotonic_seconds();
      stats_->solver_seconds += t - t_section;  // validation + rates
      t_section = t;
    }
    for (Observer* obs : observers_) {
      obs->on_decision(now_, alive_, cached_alloc_.shares);
    }
    if (stats_ != nullptr) {
      const double t = obs::monotonic_seconds();
      stats_->observer_seconds += t - t_section;
      t_section = t;
    }
    has_cached_alloc_ = true;
  } else {
    if (stats_ != nullptr) t_section = obs::monotonic_seconds();
    // Resuming a deferred decision: the context the policy saw is frozen
    // (that is the deferral contract), so the rates computed at decision
    // time are still exact. Only a snapshot restore — which does not
    // serialize scratch — needs them rebuilt, from the same frozen
    // inputs, hence bit-identically.
    if (!rates_valid_) compute_rates(false);
  }
  const Allocation& alloc = cached_alloc_;
  if (alloc.reconsider_at != kInf && alloc.reconsider_at <= now_) {
    throw std::logic_error("policy " + sched_->name() +
                           " requested reconsideration in the past");
  }
  double dt = dt_complete_;
  dt = std::min(dt, t_arrive - now_);
  dt = std::min(dt, alloc.reconsider_at - now_);
  if (dt == kInf) {
    if (horizon == kInf) {
      record_failure(false, 0, "simulation_stall");
      throw SimulationStall(now_);
    }
    return Step::kDeferred;
  }
  dt = std::max(dt, 0.0);
  if (now_ + dt > horizon) return Step::kDeferred;
  has_cached_alloc_ = false;
  if (stats_ != nullptr) stats_->decision_interval.add(dt);

  // Advance remaining work and the fractional-flow integral, move
  // multi-phase jobs whose current phase drained to the next phase (which
  // exposes its speedup curve to the policy from now on), and detect
  // completions. One fused pass: every operation is per-job, so the
  // fractional_flow accumulation order — index order, which is
  // FP-semantic — is unchanged from the old separate advance, phase and
  // completion-scan loops.
  //
  // The fast arm below is a bit-exact replay of the full arm for a
  // settled rate-0 job, not an approximation of it: with r == 0 every
  // update in the full arm is the identity (see the FlowQ invariants in
  // engine.hpp — the phase-advance condition and the completion compare
  // are constant-false on a survivor while its rate stays 0), and the
  // flow increment 0.5*(r+r)/size*dt reuses the memoized division result
  // for the job's exact current remaining.
  bool phase_advanced = false;
  comp_idx_.clear();
  // PARSCHED_AUDIT: the fused sweep is pure per-job arithmetic over
  // capacity-stable buffers (comp_idx_ is pre-reserved at admission), so
  // on a warm step it must not allocate. Completion record-keeping below
  // is result accumulation, not scratch, and stays outside the fence.
  std::optional<AllocGuard> sweep_fence;
  if (audit_allocs_ && alive_.size() <= alloc_warm_n_) {
    sweep_fence.emplace("Engine decision step: advance sweep");
  }
  const double ctol = cfg_.completion_tol;
  // Incremental arm: pick the key-maintenance mode for this sweep. With
  // a sparse allocation (SRPT-style: at most m of n jobs run) each
  // changed key costs one O(log n) sift; when most keys move at once
  // (EQUI-style dense allocations, > n/8 nonzero rates) n sifts lose to
  // one O(n) rebuild, so declare a lazy-decay epoch instead — the SRPT
  // heap goes stale and is regathered at the next query (never, for
  // policies that only consume latest-arrival order, whose keys are
  // immutable). dt == 0 moves no key, and a heap already stale stays
  // stale for free.
  bool inc_eager = false;
  // Exact-zero test on purpose: dt == 0 steps (simultaneous events)
  // change no remaining-work key bit, so the heaps need no maintenance.
  if (inc_on_ && dt != 0.0 && !inc_orders_.srpt_stale()) {  // lint: float-eq-ok
    if (rates_nonzero_ * 8 > alive_.size()) {
      inc_orders_.decay_epoch();
    } else {
      inc_eager = true;
    }
  }
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    const double r = soa_.rate[i];
    FlowQ& fq = flow_q_[i];
    if (r == 0.0 && fq.needs_full == 0) {  // lint: float-eq-ok
      result_.fractional_flow += fq.q * dt;
      continue;
    }
    AliveJob& a = alive_[i];
    double after;
    if (r != 0.0) {  // lint: float-eq-ok
      const double before = a.remaining;
      after = std::max(0.0, before - r * dt);
      result_.fractional_flow += 0.5 * (before + after) / a.size * dt;
      a.remaining = after;
      soa_.remaining[i] = after;
      a.phase_remaining = std::max(0.0, a.phase_remaining - r * dt);
      if (inc_eager) inc_orders_.update_remaining(i, after);
    } else {
      // First visit at rate 0 (admission / restore): same arithmetic as
      // the r != 0 arm with the r*dt terms — exactly 0.0 here — elided.
      const double before = a.remaining;
      after = std::max(0.0, before);
      result_.fractional_flow += 0.5 * (before + after) / a.size * dt;
      a.remaining = after;
      soa_.remaining[i] = after;
      a.phase_remaining = std::max(0.0, a.phase_remaining);
    }
    fq.q = 0.5 * (after + after) / a.size;
    fq.needs_full = 0;
    const double tol = ctol * std::max(1.0, a.size);
    while (!a.phases.empty() && a.phase + 1 < a.phases.size() &&
           a.phase_remaining <= tol) {
      ++a.phase;
      a.phase_remaining = a.phases[a.phase].work;
      a.curve = a.phases[a.phase].curve;
      // The new phase's curve is what the job responds to from now on:
      // refresh the SoA (kind, alpha) mirror with it.
      soa_.set_curve(i, a.curve);
      phase_advanced = true;
    }
    if (after <= tol) comp_idx_.push_back(i);
  }
  sweep_fence.reset();
  now_ += dt;

  // Handle completions (anything within tolerance of zero). The removal
  // order, the flow-total accumulation order, and the final alive_ order
  // (which feeds the next decision's SchedulerContext) are all
  // bit-semantic, so the sparse sweep below replays the original
  // full-scan swap-remove loop move for move, visiting only the
  // positions collected above: removing comp_idx_[lo] pulls the current
  // back element into its slot, and if that element is itself complete —
  // it is then necessarily comp_idx_[hi-1], the largest pending position
  // — it is removed in place before the scan conceptually moves on,
  // exactly as the original loop's stationary `i` did. Observer
  // callbacks are lifted out of the sweep: they fire after it, in job-id
  // order, so the notification order for simultaneous completions does
  // not depend on swap-remove internals.
  const std::size_t first_new_record = result_.records.size();
  if (!comp_idx_.empty()) {
    std::size_t end = alive_.size();
    std::size_t lo = 0;
    std::size_t hi = comp_idx_.size();
    while (lo < hi) {
      std::size_t i = comp_idx_[lo++];
      for (;;) {
        AliveJob& a = alive_[i];
        JobRecord rec;
        rec.job.id = a.id;
        rec.job.release = a.release;
        rec.job.size = a.size;
        rec.job.weight = a.weight;
        rec.job.curve = a.phases.empty() ? a.curve : a.phases.front().curve;
        rec.job.tag = a.tag;
        rec.job.phases = std::move(a.phases);
        rec.completion = now_;
        result_.total_flow += rec.flow();
        result_.weighted_flow += a.weight * rec.flow();
        result_.makespan = std::max(result_.makespan, now_);
        completed_.insert(a.id);
        ++result_.events;
        if (cfg_.recorder != nullptr) {
          cfg_.recorder->record(obs::FlightEvent::kComplete,
                                static_cast<std::uint64_t>(rec.job.id), now_,
                                rec.flow(),
                                static_cast<std::uint32_t>(end - 1));
        }
        result_.records.push_back(std::move(rec));
        --end;
        // Mirror the swap-remove into the heaps: delete index i, remap
        // the back entry (alive index `end`) to i — the same move the
        // alive_/flow_q_ lines below perform. O(log n) per heap.
        if (inc_on_) inc_orders_.remove_swap(i, end);
        soa_.swap_remove(i, end);
        if (i == end) break;
        alive_[i] = std::move(alive_[end]);
        flow_q_[i] = flow_q_[end];
        if (hi > lo && comp_idx_[hi - 1] == end) {
          --hi;  // the element swapped in is itself complete: remove in place
          continue;
        }
        break;
      }
    }
    alive_.resize(end);
    flow_q_.resize(end);
    soa_.resize(end);
  }
  const std::size_t n_completed = result_.records.size() - first_new_record;
  if (n_completed > 0 && !observers_.empty()) {
    completion_order_.resize(n_completed);
    for (std::size_t i = 0; i < n_completed; ++i) {
      completion_order_[i] = first_new_record + i;
    }
    std::sort(completion_order_.begin(), completion_order_.end(),
              [this](std::size_t a, std::size_t b) {
                return result_.records[a].job.id < result_.records[b].job.id;
              });
    for (const std::size_t r : completion_order_) {
      for (Observer* obs : observers_) {
        obs->on_completion(now_, result_.records[r].job);
      }
    }
  }

  // Zero-dt livelock guard: a step with dt == 0 that advanced no phase
  // and completed no job left the engine exactly where it was, and with a
  // stateless policy it will do so forever (e.g. FP drift leaving a
  // multi-phase job's last phase at exactly 0 while `remaining` sits just
  // above tolerance). Stateful policies may legitimately need a few
  // zero-dt decisions to rotate out of the corner, so only a streak
  // longer than any one policy's state cycle — alive_.size() + 2 covers
  // every in-tree policy — is declared a stall, with a diagnostic naming
  // the stuck job instead of silently burning the max_decisions budget.
  if (dt > 0.0 || phase_advanced || n_completed > 0) {
    zero_dt_streak_ = 0;
  } else if (++zero_dt_streak_ > alive_.size() + 2) {
    std::ostringstream os;  // lint: alloc-ok (stall diagnostic, cold path)
    os << "zero-length decision intervals are making no progress";
    std::uint64_t stuck = 0;
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      if (soa_.rate[i] > 0.0 && alive_[i].phase_remaining <= 0.0) {
        const AliveJob& a = alive_[i];
        stuck = static_cast<std::uint64_t>(a.id);
        os << "; stuck job id=" << a.id << " (phase "
           << (a.phase + 1) << "/"
           << (a.phases.empty() ? std::size_t{1} : a.phases.size())
           << " drained, remaining=" << a.remaining
           << " still above completion tolerance)";
        break;
      }
    }
    record_failure(false, stuck, "simulation_stall");
    throw SimulationStall(now_, os.str());
  }
  // PARSCHED_AUDIT: after every advanced step, cross-check the
  // persistent heaps against the alive set — key payloads, position
  // maps and both heap properties (O(n), audit runs only). A divergence
  // here trips a contract failure at the step that caused it instead of
  // surfacing decisions later as a wrong ordering.
  if (audit_allocs_ && inc_on_) inc_orders_.audit(alive_);
  if (audit_allocs_) audit_soa();
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->record(obs::FlightEvent::kDecision, result_.decisions,
                          now_, dt,
                          static_cast<std::uint32_t>(alive_.size()));
  }
  return Step::kAdvanced;
}

SimResult Engine::run(Scheduler& sched, ArrivalSource& source) {
  begin_run(sched);
  source.reset();

  // Start the clock at the first arrival.
  {
    const double first = source.next_time(*this);
    if (first == kInf) {
      finalize_run();
      return take_result();
    }
    now_ = std::max(0.0, first);
  }
  admit_pending(source);

  for (;;) {
    if (alive_.empty()) {
      const double nt = source.next_time(*this);
      if (nt == kInf) break;  // all done
      PARSCHED_CHECK(nt >= now_ - cfg_.time_tol,
                     "arrival source moved backwards in time");
      now_ = std::max(now_, nt);
      admit_pending(source);
      continue;
    }

    // The engine state the source sees here is exactly the state at the
    // top of the iteration (allocate() does not touch it), so querying
    // the next arrival before the decision step keeps adaptive sources'
    // answers unchanged.
    const double t_arrive = source.next_time(*this);
    double t_section = 0.0;
    try {
      decision_step(t_arrive, kInf, t_section);  // horizon kInf: never defers
    } catch (const ContractViolation&) {
      // An alloc-guard / contract trip escaping a decision step is a
      // flight-recorder moment: dump the ring before the exception
      // unwinds past the engine.
      record_failure(true, 0, "contract_trip");
      throw;
    }
    admit_pending(source);
    if (stats_ != nullptr) {
      stats_->solver_seconds += obs::monotonic_seconds() - t_section;
    }
  }

  for (Observer* obs : observers_) obs->on_done(now_);
  finalize_run();
  return take_result();
}

// ---- Streaming API --------------------------------------------------------

void Engine::begin(Scheduler& sched) {
  begin_run(sched);
  streaming_ = true;
}

void Engine::admit(Job job) {
  PARSCHED_CHECK(streaming_, "Engine::admit() outside a streaming run");
  if (job.release < frontier_) {
    std::ostringstream os;
    os << "admission in the past: release " << job.release
       << " < frontier " << frontier_;
    throw std::invalid_argument(os.str());
  }
  if (job.size <= 0.0) throw std::invalid_argument("nonpositive job size");
  const auto it = std::upper_bound(
      pending_.begin(), pending_.end(), job.release,
      [](double r, const Job& j) { return r < j.release; });
  pending_.insert(it, std::move(job));
}

void Engine::advance_to(double t) {
  PARSCHED_CHECK(streaming_, "Engine::advance_to() outside a streaming run");
  frontier_ = std::max(frontier_, t);
  drain_to(frontier_);
}

void Engine::drain_to(double horizon) {
  for (;;) {
    if (alive_.empty()) {
      if (pending_.empty()) return;
      const double nt = pending_.front().release;
      if (nt > horizon) return;
      // Identical arithmetic to the batch idle jump (and to the batch
      // clock start, where now_ is still 0).
      now_ = std::max(now_, nt);
      release_due();
      continue;
    }
    const double t_arrive =
        pending_.empty() ? kInf : pending_.front().release;
    double t_section = 0.0;
    Step step;
    try {
      step = decision_step(t_arrive, horizon, t_section);
    } catch (const ContractViolation&) {
      record_failure(true, 0, "contract_trip");  // see run(): black-box dump
      throw;
    }
    if (step == Step::kDeferred) {
      if (stats_ != nullptr) {
        stats_->solver_seconds += obs::monotonic_seconds() - t_section;
      }
      return;
    }
    release_due();
    if (stats_ != nullptr) {
      stats_->solver_seconds += obs::monotonic_seconds() - t_section;
    }
  }
}

SimResult Engine::finish() {
  PARSCHED_CHECK(streaming_, "Engine::finish() outside a streaming run");
  frontier_ = kInf;
  drain_to(kInf);
  streaming_ = false;
  for (Observer* obs : observers_) obs->on_done(now_);
  finalize_run();
  return take_result();
}

EngineState Engine::export_state() const {
  PARSCHED_CHECK(streaming_, "Engine::export_state() outside a streaming run");
  EngineState s;
  s.machines = m_;
  s.config = cfg_;
  s.now = now_;
  s.frontier = frontier_;
  s.arrival_seq = arrival_seq_;
  s.alive = alive_;
  s.completed.assign(completed_.begin(), completed_.end());
  std::sort(s.completed.begin(), s.completed.end());
  s.pending.assign(pending_.begin(), pending_.end());
  s.has_cached_alloc = has_cached_alloc_;
  s.cached_alloc = cached_alloc_;
  s.result = result_;
  s.result.stats.reset();  // wall-time profiling is measurement, not state
  return s;
}

void Engine::import_state(const EngineState& s, Scheduler& sched) {
  if (s.machines != m_) {
    throw std::invalid_argument("snapshot machine count mismatch");
  }
  // The config fields that enter the decision arithmetic must match the
  // donor exactly, or the continuation silently diverges bit-by-bit from
  // the run that produced the snapshot. (use_context_cache and the
  // profiling/guard knobs are deliberately not checked: they do not
  // affect the computed trajectory.)
  if (s.config.speed != cfg_.speed) {
    throw std::invalid_argument("snapshot engine speed mismatch");
  }
  if (s.config.completion_tol != cfg_.completion_tol) {
    throw std::invalid_argument("snapshot completion_tol mismatch");
  }
  if (s.config.time_tol != cfg_.time_tol) {
    throw std::invalid_argument("snapshot time_tol mismatch");
  }
  // Unlike use_context_cache, the kernel arm changes the decision
  // arithmetic (exp(α·log x) vs pow), so a continuation under a
  // different arm would drift from the donor trajectory ULP-by-ULP.
  if (s.config.fast_rate_kernel != cfg_.fast_rate_kernel) {
    throw std::invalid_argument("snapshot rate-kernel arm mismatch");
  }
  sched_ = &sched;  // no reset(): the caller restored the policy's state
  streaming_ = true;
  now_ = s.now;
  frontier_ = s.frontier;
  arrival_seq_ = s.arrival_seq;
  alive_ = s.alive;
  completed_ =
      std::unordered_set<JobId>(s.completed.begin(), s.completed.end());
  pending_.assign(s.pending.begin(), s.pending.end());
  has_cached_alloc_ = s.has_cached_alloc;
  cached_alloc_ = s.cached_alloc;
  result_ = s.result;
  result_.stats.reset();
  zero_dt_streak_ = 0;  // scratch, not state: restart the livelock guard
  alloc_warm_n_ = 0;  // scratch is cold after a restore; re-warm unguarded
  flow_q_.assign(alive_.size(), FlowQ{});  // memos rebuild lazily
  soa_.rebuild(alive_);
  comp_idx_.reserve(alive_.size());
  ctx_cache_.reserve(alive_.size());
  // The heaps are derived state: rebuild the latest-arrival heap from
  // the restored alive set now and leave the SRPT side lazily stale —
  // the first SRPT query regathers it, bit-identically to the donor.
  inc_orders_.clear();
  if (inc_on_) inc_orders_.rebuild(alive_);
  rates_valid_ = false;  // a deferred decision recomputes its rates once
  stats_ = nullptr;  // profiling does not continue across a restore
  run_start_ = 0.0;
}

SimResult simulate(const Instance& instance, Scheduler& sched,
                   const EngineConfig& config,
                   const std::vector<Observer*>& observers) {
  Engine engine(instance.machines(), config);
  for (Observer* obs : observers) engine.add_observer(obs);
  VectorSource source(instance.jobs());
  return engine.run(sched, source);
}

}  // namespace parsched
