#include "simcore/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"
#include "obs/metrics.hpp"
#include "util/mathx.hpp"

namespace parsched {

namespace {

std::string stall_message(double t) {
  std::ostringstream os;
  os << "simulation stalled at t=" << t
     << ": alive jobs but zero rates and no future arrival or "
        "reconsideration point";
  return os.str();
}

}  // namespace

SimulationStall::SimulationStall(double t)
    : std::runtime_error(stall_message(t)) {}

Engine::Engine(int machines, EngineConfig config)
    : m_(machines), cfg_(config) {
  if (machines < 1) throw std::invalid_argument("need at least one machine");
  if (!(cfg_.speed > 0.0)) {
    throw std::invalid_argument("engine speed must be positive");
  }
}

void Engine::add_observer(Observer* obs) {
  PARSCHED_CHECK(obs != nullptr, "null observer");
  observers_.push_back(obs);
}

double Engine::remaining_tagged(JobTag::Class cls, int phase) const {
  double total = 0.0;
  for (const AliveJob& a : alive_) {
    if (a.tag.cls == cls && (phase < 0 || a.tag.phase == phase)) {
      total += a.remaining;
    }
  }
  return total;
}

std::size_t Engine::alive_tagged(JobTag::Class cls, int phase) const {
  std::size_t n = 0;
  for (const AliveJob& a : alive_) {
    if (a.tag.cls == cls && (phase < 0 || a.tag.phase == phase)) ++n;
  }
  return n;
}

void Engine::admit_pending(ArrivalSource& source, SimResult& result) {
  for (;;) {
    const double nt = source.next_time(*this);
    if (!(nt <= now_ + cfg_.time_tol)) break;
    std::vector<Job> jobs = source.take(nt, *this);
    if (jobs.empty()) {
      // Pure decision point: the source must make progress.
      PARSCHED_CHECK(source.next_time(*this) > nt,
                     "arrival source failed to advance past a pure "
                     "decision point");
      continue;
    }
    for (Job& j : jobs) {
      j.normalize_phases();
      if (j.size <= 0.0) throw std::invalid_argument("nonpositive job size");
      AliveJob a;
      a.id = j.id;
      a.release = j.release;
      a.size = j.size;
      a.remaining = j.size;
      a.weight = j.weight;
      a.curve = j.curve;
      a.arrival_seq = arrival_seq_++;
      a.tag = j.tag;
      a.phases = j.phases;
      a.phase = 0;
      a.phase_remaining = j.phases.empty() ? j.size : j.phases[0].work;
      alive_.push_back(std::move(a));
      ++result.events;
      for (Observer* obs : observers_) obs->on_arrival(now_, j);
    }
  }
}

SimResult Engine::run(Scheduler& sched, ArrivalSource& source) {
  SimResult result;
  sched.reset();
  source.reset();
  alive_.clear();
  completed_.clear();
  now_ = 0.0;
  arrival_seq_ = 0;

  // Profiling is opt-in: with collect_stats off (the default) `stats` is
  // empty, every instrumentation site is one predictable branch, and no
  // clock is ever read — the hot path stays uninstrumented.
  const bool collect = cfg_.collect_stats;
  if (collect) result.stats.emplace();
  obs::RunStats* stats = collect ? &*result.stats : nullptr;
  const double run_start = collect ? obs::monotonic_seconds() : 0.0;
  const auto finish = [&] {
    if (stats != nullptr) {
      stats->wall_seconds = obs::monotonic_seconds() - run_start;
      stats->completions = result.records.size();
      stats->arrivals = result.events - stats->completions;
      stats->decisions = result.decisions;
    }
    if (cfg_.metrics != nullptr) {
      obs::MetricsRegistry& reg = *cfg_.metrics;
      reg.counter("engine.runs").inc();
      reg.counter("engine.decisions").inc(result.decisions);
      reg.counter("engine.completions").inc(result.records.size());
      reg.counter("engine.arrivals")
          .inc(result.events - result.records.size());
      if (stats != nullptr) {
        reg.timer("engine.run").add(stats->wall_seconds);
        reg.timer("engine.decide").add(stats->decide_seconds);
        reg.timer("engine.solver").add(stats->solver_seconds);
        reg.timer("engine.observer").add(stats->observer_seconds);
      }
    }
  };

  // Start the clock at the first arrival.
  {
    const double first = source.next_time(*this);
    if (first == kInf) {
      finish();
      return result;
    }
    now_ = std::max(0.0, first);
  }
  admit_pending(source, result);

  std::uint64_t decisions = 0;
  for (;;) {
    if (alive_.empty()) {
      const double nt = source.next_time(*this);
      if (nt == kInf) break;  // all done
      PARSCHED_CHECK(nt >= now_ - cfg_.time_tol,
                     "arrival source moved backwards in time");
      now_ = std::max(now_, nt);
      admit_pending(source, result);
      continue;
    }

    if (++decisions > cfg_.max_decisions) {
      throw std::runtime_error("engine exceeded max_decisions guard");
    }

    SchedulerContext ctx(now_, m_, alive_);
    const double t_decide0 = collect ? obs::monotonic_seconds() : 0.0;
    Allocation alloc = sched.allocate(ctx);
    double t_section = 0.0;  // start of the span being attributed next
    if (stats != nullptr) {
      t_section = obs::monotonic_seconds();
      stats->decide_seconds += t_section - t_decide0;
      stats->alive_count.add(static_cast<double>(alive_.size()));
    }
    if (alloc.shares.size() != alive_.size()) {
      throw std::logic_error("allocation size mismatch from policy " +
                             sched.name());
    }
    if (cfg_.validate_allocations) {
      double sum = 0.0;
      for (double s : alloc.shares) {
        if (!(s >= 0.0)) {
          throw std::logic_error("negative share from policy " + sched.name());
        }
        sum += s;
      }
      if (sum > static_cast<double>(m_) * (1.0 + 1e-9) + 1e-9) {
        throw std::logic_error("overcommitted shares from policy " +
                               sched.name());
      }
    }
    if (stats != nullptr) {
      const double t = obs::monotonic_seconds();
      stats->solver_seconds += t - t_section;  // allocation validation
      t_section = t;
    }
    for (Observer* obs : observers_) {
      obs->on_decision(now_, alive_, alloc.shares);
    }
    if (stats != nullptr) {
      const double t = obs::monotonic_seconds();
      stats->observer_seconds += t - t_section;
      t_section = t;
    }

    // Rates are constant until the next event.
    double dt_complete = kInf;
    std::vector<double> rates(alive_.size());
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      rates[i] = cfg_.speed * alive_[i].curve.rate(alloc.shares[i]);
      if (rates[i] > 0.0) {
        // The end of the current *phase* is the next per-job event (for a
        // single-phase job that is its completion).
        dt_complete =
            std::min(dt_complete, alive_[i].phase_remaining / rates[i]);
      }
    }
    const double t_arrive = source.next_time(*this);
    if (alloc.reconsider_at != kInf && alloc.reconsider_at <= now_) {
      throw std::logic_error("policy " + sched.name() +
                             " requested reconsideration in the past");
    }
    double dt = dt_complete;
    dt = std::min(dt, t_arrive - now_);
    dt = std::min(dt, alloc.reconsider_at - now_);
    if (dt == kInf) throw SimulationStall(now_);
    dt = std::max(dt, 0.0);
    if (stats != nullptr) stats->decision_interval.add(dt);

    // Advance remaining work and the fractional-flow integral.
    for (std::size_t i = 0; i < alive_.size(); ++i) {
      const double before = alive_[i].remaining;
      const double after =
          std::max(0.0, before - rates[i] * dt);
      result.fractional_flow +=
          0.5 * (before + after) / alive_[i].size * dt;
      alive_[i].remaining = after;
      alive_[i].phase_remaining =
          std::max(0.0, alive_[i].phase_remaining - rates[i] * dt);
    }
    now_ += dt;

    // Multi-phase jobs whose current phase drained move to the next phase
    // (and expose its speedup curve to the policy from now on).
    for (AliveJob& a : alive_) {
      while (!a.phases.empty() && a.phase + 1 < a.phases.size() &&
             a.phase_remaining <=
                 cfg_.completion_tol * std::max(1.0, a.size)) {
        ++a.phase;
        a.phase_remaining = a.phases[a.phase].work;
        a.curve = a.phases[a.phase].curve;
      }
    }

    // Handle completions (anything within tolerance of zero).
    for (std::size_t i = 0; i < alive_.size();) {
      AliveJob& a = alive_[i];
      if (a.remaining <= cfg_.completion_tol * std::max(1.0, a.size)) {
        JobRecord rec;
        rec.job.id = a.id;
        rec.job.release = a.release;
        rec.job.size = a.size;
        rec.job.weight = a.weight;
        rec.job.curve = a.phases.empty() ? a.curve : a.phases.front().curve;
        rec.job.tag = a.tag;
        rec.job.phases = std::move(a.phases);
        rec.completion = now_;
        result.total_flow += rec.flow();
        result.weighted_flow += a.weight * rec.flow();
        result.makespan = std::max(result.makespan, now_);
        completed_.insert(a.id);
        ++result.events;
        for (Observer* obs : observers_) obs->on_completion(now_, rec.job);
        result.records.push_back(std::move(rec));
        alive_[i] = alive_.back();
        alive_.pop_back();
      } else {
        ++i;
      }
    }

    admit_pending(source, result);
    if (stats != nullptr) {
      stats->solver_seconds += obs::monotonic_seconds() - t_section;
    }
  }

  result.decisions = decisions;
  for (Observer* obs : observers_) obs->on_done(now_);
  finish();
  return result;
}

SimResult simulate(const Instance& instance, Scheduler& sched,
                   const EngineConfig& config,
                   const std::vector<Observer*>& observers) {
  Engine engine(instance.machines(), config);
  for (Observer* obs : observers) engine.add_observer(obs);
  VectorSource source(instance.jobs());
  return engine.run(sched, source);
}

}  // namespace parsched
