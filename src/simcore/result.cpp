#include "simcore/result.hpp"

#include <algorithm>

namespace parsched {

double SimResult::max_flow() const {
  double mx = 0.0;
  for (const auto& r : records) mx = std::max(mx, r.flow());
  return mx;
}

double SimResult::flow_tagged(JobTag::Class cls, int phase) const {
  double total = 0.0;
  for (const auto& r : records) {
    if (r.job.tag.cls == cls && (phase < 0 || r.job.tag.phase == phase)) {
      total += r.flow();
    }
  }
  return total;
}

std::size_t SimResult::count_tagged(JobTag::Class cls, int phase) const {
  std::size_t n = 0;
  for (const auto& r : records) {
    if (r.job.tag.cls == cls && (phase < 0 || r.job.tag.phase == phase)) ++n;
  }
  return n;
}

std::vector<Job> SimResult::realized_jobs() const {
  std::vector<Job> jobs;
  jobs.reserve(records.size());
  for (const auto& r : records) jobs.push_back(r.job);
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  return jobs;
}

}  // namespace parsched
