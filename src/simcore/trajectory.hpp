// parsched — trajectory recording observers.
//
// TrajectoryRecorder captures every job's remaining-work curve as a
// piecewise-linear function of time (exact: rates are constant between
// decision points). CountTracker captures |A(t)| as a step function.
// Both feed the potential-function and local-competitiveness verifiers.
#pragma once

#include <unordered_map>
#include <vector>

#include "simcore/observer.hpp"
#include "util/timeline.hpp"

namespace parsched {

/// Per-job remaining work over time, plus the job itself.
struct JobTrajectory {
  Job job;
  PiecewiseLinear remaining;  ///< knots at decision points; last knot = 0
  double completion = 0.0;
};

class TrajectoryRecorder final : public Observer {
 public:
  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override;
  void on_arrival(double t, const Job& job) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  [[nodiscard]] const std::unordered_map<JobId, JobTrajectory>& trajectories()
      const {
    return traj_;
  }

  /// Remaining work of job `id` at time t (size before release, 0 after
  /// completion).
  [[nodiscard]] double remaining_at(JobId id, double t) const;

  /// All knot times across all trajectories (unsorted, with duplicates).
  [[nodiscard]] std::vector<double> all_times() const;

 private:
  std::unordered_map<JobId, JobTrajectory> traj_;
};

/// |A(t)| as a right-continuous step function.
class CountTracker final : public Observer {
 public:
  void on_arrival(double t, const Job& job) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  [[nodiscard]] const StepFunction& alive_count() const { return count_; }

 private:
  void record(double t);
  StepFunction count_;
  std::int64_t alive_ = 0;
};

}  // namespace parsched
