#include "simcore/source.hpp"

#include <algorithm>

#include "util/mathx.hpp"

namespace parsched {

VectorSource::VectorSource(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.release < b.release;
                   });
}

double VectorSource::next_time(const EngineView& view) {
  (void)view;
  return next_ < jobs_.size() ? jobs_[next_].release : kInf;
}

std::vector<Job> VectorSource::take(double t, const EngineView& view) {
  (void)view;
  std::vector<Job> out;
  while (next_ < jobs_.size() && jobs_[next_].release <= t) {
    out.push_back(jobs_[next_]);
    ++next_;
  }
  return out;
}

}  // namespace parsched
