#include "simcore/precedence.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/mathx.hpp"

namespace parsched {

DagInstance::DagInstance(int machines, std::vector<DagNode> nodes)
    : m_(machines) {
  if (machines < 1) throw std::invalid_argument("need at least one machine");
  if (nodes.empty()) throw std::invalid_argument("dag has no tasks");

  // Index by id, validate uniqueness and dependency existence.
  std::unordered_map<JobId, std::size_t> raw_index;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].job.id == kInvalidJob) {
      throw std::invalid_argument("dag tasks need explicit ids");
    }
    if (!raw_index.emplace(nodes[i].job.id, i).second) {
      throw std::invalid_argument("duplicate task id in dag");
    }
    nodes[i].job.normalize_phases();
    if (nodes[i].job.size <= 0.0) {
      throw std::invalid_argument("nonpositive task size");
    }
  }
  for (const DagNode& n : nodes) {
    for (JobId d : n.deps) {
      if (!raw_index.count(d)) {
        throw std::invalid_argument("dependency on unknown task " +
                                    std::to_string(d));
      }
      if (d == n.job.id) {
        throw std::invalid_argument("task depends on itself");
      }
    }
  }

  // Kahn topological sort (also detects cycles).
  std::vector<int> indeg(nodes.size(), 0);
  std::vector<std::vector<std::size_t>> succ(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (JobId d : nodes[i].deps) {
      succ[raw_index.at(d)].push_back(i);
      ++indeg[i];
    }
  }
  std::queue<std::size_t> q;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  std::vector<std::size_t> topo;
  while (!q.empty()) {
    const std::size_t i = q.front();
    q.pop();
    topo.push_back(i);
    for (std::size_t s : succ[i]) {
      if (--indeg[s] == 0) q.push(s);
    }
  }
  if (topo.size() != nodes.size()) {
    throw std::invalid_argument("precedence graph has a cycle");
  }
  nodes_.reserve(nodes.size());
  for (std::size_t i : topo) nodes_.push_back(std::move(nodes[i]));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    index_[nodes_[i].job.id] = i;
  }
}

std::unordered_map<JobId, double> DagInstance::earliest_completions() const {
  std::unordered_map<JobId, double> ec;
  const double md = static_cast<double>(m_);
  for (const DagNode& n : nodes_) {  // topological order
    double start = n.job.release;
    for (JobId d : n.deps) start = std::max(start, ec.at(d));
    double span = 0.0;
    if (n.job.phases.empty()) {
      span = n.job.size / n.job.curve.rate(md);
    } else {
      for (const JobPhase& p : n.job.phases) {
        span += p.work / p.curve.rate(md);
      }
    }
    ec[n.job.id] = start + span;
  }
  return ec;
}

double DagInstance::flow_lower_bound() const {
  const auto ec = earliest_completions();
  double total = 0.0;
  for (const DagNode& n : nodes_) {
    total += ec.at(n.job.id) - n.job.release;
  }
  return total;
}

double DagInstance::critical_path() const {
  const auto ec = earliest_completions();
  double cp = 0.0;
  for (const auto& [id, c] : ec) {
    (void)id;
    cp = std::max(cp, c);
  }
  return cp;
}

PrecedenceSource::PrecedenceSource(const DagInstance& dag) : dag_(&dag) {
  reset();
}

void PrecedenceSource::reset() {
  released_.assign(dag_->size(), false);
}

bool PrecedenceSource::ready(const DagNode& node,
                             const EngineView& view) const {
  for (JobId d : node.deps) {
    if (!view.is_completed(d)) return false;
  }
  return true;
}

double PrecedenceSource::next_time(const EngineView& view) {
  double t = kInf;
  const auto& nodes = dag_->nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (released_[i]) continue;
    if (!ready(nodes[i], view)) continue;  // re-polled after completions
    t = std::min(t, std::max(nodes[i].job.release, view.time()));
  }
  return t;
}

std::vector<Job> PrecedenceSource::take(double t, const EngineView& view) {
  std::vector<Job> out;
  const auto& nodes = dag_->nodes();
  const double tol = 1e-9 * std::max(1.0, t);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (released_[i]) continue;
    if (nodes[i].job.release > t + tol) continue;
    if (!ready(nodes[i], view)) continue;
    // Flow is measured from the task's *nominal* release (when it entered
    // the system), so waiting on slow predecessors counts against the
    // schedule — this keeps flow(ALG) >= flow_lower_bound() valid.
    out.push_back(nodes[i].job);
    released_[i] = true;
  }
  return out;
}

SimResult simulate_dag(const DagInstance& dag, Scheduler& sched,
                       const EngineConfig& config,
                       const std::vector<Observer*>& observers) {
  Engine engine(dag.machines(), config);
  for (Observer* obs : observers) engine.add_observer(obs);
  PrecedenceSource source(dag);
  return engine.run(sched, source);
}

}  // namespace parsched
