// parsched — instance (de)serialization.
//
// A line-oriented text format so instances — including the *realized*
// instances produced by the adaptive adversary — can be saved, diffed,
// shipped in bug reports and replayed bit-exactly:
//
//   parsched-instance 1
//   machines 8
//   job 0 0.0 size 64 pow 0.25 tag 0 long 0
//   job 1 0.0 size 1 pow 0.25 tag 0 short 0
//   job 2 3.5 phases 2 4 par 2 seq
//
// Grammar per job line:
//   job <id> <release> size <work> <curve> [w <weight>]
//                                          [tag <phase> <class> <index>]
//   job <id> <release> phases <k> (<work> <curve>){k} [w ...] [tag ...]
// with <curve> one of: par | seq | pow <alpha> | pwl <n> (<x> <y>){n}.
// '#' starts a comment; blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "simcore/instance.hpp"

namespace parsched {

void write_instance(std::ostream& os, const Instance& instance);
void write_instance_file(const std::string& path, const Instance& instance);

/// Throws std::runtime_error with a line number on malformed input.
[[nodiscard]] Instance read_instance(std::istream& is);
[[nodiscard]] Instance read_instance_file(const std::string& path);

}  // namespace parsched
