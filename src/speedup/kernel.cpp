#include "speedup/kernel.hpp"

#include <cmath>
#include <limits>

#include "check/contract.hpp"
#include "speedup/curve.hpp"

namespace parsched::speedup {

// The flat kind bytes are the numeric values of SpeedupCurve::Kind —
// the engine's SoA sync writes static_cast<uint8_t>(curve.kind()), and
// the dispatch below depends on the correspondence never drifting.
static_assert(kKindFullyParallel ==
              static_cast<std::uint8_t>(SpeedupCurve::Kind::kFullyParallel));
static_assert(kKindSequential ==
              static_cast<std::uint8_t>(SpeedupCurve::Kind::kSequential));
static_assert(kKindPowerLaw ==
              static_cast<std::uint8_t>(SpeedupCurve::Kind::kPowerLaw));
static_assert(kKindPiecewiseLinear ==
              static_cast<std::uint8_t>(SpeedupCurve::Kind::kPiecewiseLinear));

PARSCHED_HOT void rate_batch(std::span<const std::uint8_t> kinds,
                             std::span<const double> alphas,
                             std::span<const double> xs, double speed,
                             std::span<double> out, PwlRateFn pwl) {
  const std::size_t n = xs.size();
  PARSCHED_DCHECK(kinds.size() == n && alphas.size() == n && out.size() == n,
                  "rate_batch span length mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    PARSCHED_DCHECK(x >= 0.0, "negative processor share");
    double g;
    if (x <= 1.0) {
      g = x;  // all curves agree with Γ(x) = x on [0, 1]
    } else {
      switch (kinds[i]) {
        case kKindFullyParallel:
          g = x;
          break;
        case kKindSequential:
          g = 1.0;
          break;
        case kKindPowerLaw:
          g = std::pow(x, alphas[i]);
          break;
        default:
          PARSCHED_DCHECK(pwl.fn != nullptr,
                          "piecewise-linear element without a fallback");
          g = pwl.fn(pwl.ctx, i, x);
          break;
      }
    }
    out[i] = speed * g;
  }
}

PARSCHED_HOT void rate_batch_fast(std::span<const std::uint8_t> kinds,
                                  std::span<const double> alphas,
                                  std::span<const double> xs, double speed,
                                  std::span<double> out, PwlRateFn pwl) {
  const std::size_t n = xs.size();
  PARSCHED_DCHECK(kinds.size() == n && alphas.size() == n && out.size() == n,
                  "rate_batch_fast span length mismatch");
  // Last-value memo for the power-law branch: dense shared-α allocations
  // (EQUI gives every alive job the same share) evaluate one log+exp for
  // the whole batch; mixed populations degrade gracefully to one
  // exp(α·log x) per element. Seeded with a NaN x so the first power-law
  // element never matches (NaN compares unequal to everything).
  double memo_x = std::numeric_limits<double>::quiet_NaN();
  double memo_a = 0.0;
  double memo_g = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    PARSCHED_DCHECK(x >= 0.0, "negative processor share");
    double g;
    if (x <= 1.0) {
      g = x;
    } else {
      switch (kinds[i]) {
        case kKindFullyParallel:
          g = x;
          break;
        case kKindSequential:
          g = 1.0;
          break;
        case kKindPowerLaw: {
          const double a = alphas[i];
          if (x == memo_x && a == memo_a) {  // lint: float-eq-ok
            g = memo_g;
          } else {
            g = std::exp(a * std::log(x));
            memo_x = x;
            memo_a = a;
            memo_g = g;
          }
          break;
        }
        default:
          PARSCHED_DCHECK(pwl.fn != nullptr,
                          "piecewise-linear element without a fallback");
          g = pwl.fn(pwl.ctx, i, x);
          break;
      }
    }
    out[i] = speed * g;
  }
}

}  // namespace parsched::speedup
