// parsched — batched speedup-rate evaluation over flat (kind, α) arrays.
//
// The engine's fused validation+rates pass historically evaluated
// Γ_j(x_j) through a SpeedupCurve value stored inside each AliveJob: one
// out-of-line SpeedupCurve::rate() call — and for the paper's power-law
// family one scalar std::pow — per alive job per decision. With the
// alive set restructured as structure-of-arrays (simcore/engine.hpp's
// AliveSoA), the per-decision rate evaluation becomes one call over four
// dense arrays, which this header provides in two arms:
//
//   rate_batch       the DEFAULT arm: per element, exactly the scalar
//                    arithmetic of SpeedupCurve::rate() (same branch
//                    structure, same std::pow call), so its output is
//                    bit-identical to the historic per-job loop. A pure
//                    layout change — E1/E2/E5 artifacts are byte-stable
//                    under it (the PR 5/PR 8 proof obligation).
//
//   rate_batch_fast  the OPT-IN arm (EngineConfig::fast_rate_kernel):
//                    power-law elements with x > 1 evaluate
//                    exp(α·log x) instead of pow(x, α), with a
//                    last-value memo so a run of elements sharing one
//                    (x, α) pair — the shared-α case EQUI-style dense
//                    allocations hit constantly, where every alive job
//                    receives the same share — pays ONE log+exp for the
//                    whole run and a copy per element. Bit-exact
//                    guarantees: x <= 1 (every curve is Γ(x) = x there),
//                    sequential and fully-parallel kinds (α ∈ {0, 1} —
//                    SpeedupCurve::power_law canonicalizes those to the
//                    closed-form kinds), and piecewise-linear curves
//                    (delegated to the same fallback as the default
//                    arm). Power-law x > 1 results differ from the
//                    scalar arm by a bounded ULP distance only
//                    (tests/test_rate_kernel.cpp pins the bound).
//
// Both arms are allocation-free over caller-owned spans — safe inside
// the engine's PR-6 AllocGuard fences — and multiply by the engine
// speed in the same `speed * Γ(x)` expression the scalar path used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace parsched::speedup {

/// Fallback evaluator for elements whose curve the flat (kind, α)
/// arrays cannot encode (Kind::kPiecewiseLinear needs its knot vector).
/// `fn(ctx, i, x)` must return exactly `speed_less_rate`, i.e. the
/// curve's Γ_i(x) — the kernel applies the speed factor itself, keeping
/// the arithmetic identical across kinds. A null `fn` with a
/// piecewise-linear element present is a contract violation.
struct PwlRateFn {
  double (*fn)(const void* ctx, std::size_t i, double x) = nullptr;
  const void* ctx = nullptr;
};

/// Curve kinds as stored in the flat arrays: the numeric values of
/// SpeedupCurve::Kind, narrowed to one byte so the kind array stays
/// dense. kernel.cpp static_asserts the correspondence.
inline constexpr std::uint8_t kKindFullyParallel = 0;
inline constexpr std::uint8_t kKindSequential = 1;
inline constexpr std::uint8_t kKindPowerLaw = 2;
inline constexpr std::uint8_t kKindPiecewiseLinear = 3;

/// Default arm: out[i] = speed * Γ_i(xs[i]) with the exact scalar
/// arithmetic of SpeedupCurve::rate() — bit-identical to the historic
/// per-job loop. All spans must have equal length; out may not alias
/// xs/alphas. Requires xs[i] >= 0 (DCHECK, matching rate()).
void rate_batch(std::span<const std::uint8_t> kinds,
                std::span<const double> alphas, std::span<const double> xs,
                double speed, std::span<double> out, PwlRateFn pwl = {});

/// Opt-in fast arm: power-law x > 1 via exp(α·log x) with a last-value
/// memo (one log+exp per distinct consecutive (x, α) pair). See the
/// header comment for the bit-exactness guarantees and the bounded-ULP
/// contract on power-law elements.
void rate_batch_fast(std::span<const std::uint8_t> kinds,
                     std::span<const double> alphas,
                     std::span<const double> xs, double speed,
                     std::span<double> out, PwlRateFn pwl = {});

}  // namespace parsched::speedup
