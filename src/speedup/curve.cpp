#include "speedup/curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"

namespace parsched {

SpeedupCurve SpeedupCurve::fully_parallel() {
  SpeedupCurve c;
  c.kind_ = Kind::kFullyParallel;
  c.alpha_ = 1.0;
  return c;
}

SpeedupCurve SpeedupCurve::sequential() {
  SpeedupCurve c;
  c.kind_ = Kind::kSequential;
  c.alpha_ = 0.0;
  return c;
}

SpeedupCurve SpeedupCurve::power_law(double alpha) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("power_law alpha must be in [0, 1]");
  }
  if (alpha == 0.0) return sequential();      // lint: float-eq-ok
  if (alpha == 1.0) return fully_parallel();  // lint: float-eq-ok
  SpeedupCurve c;
  c.kind_ = Kind::kPowerLaw;
  c.alpha_ = alpha;
  return c;
}

SpeedupCurve SpeedupCurve::piecewise_linear(
    std::vector<std::pair<double, double>> knots) {
  // Normalize: ensure a leading (1, 1) knot and validate shape.
  if (knots.empty() || knots.front().first > 1.0) {
    knots.insert(knots.begin(), {1.0, 1.0});
  }
  if (knots.front().first != 1.0 ||   // lint: float-eq-ok
      knots.front().second != 1.0) {  // lint: float-eq-ok
    throw std::invalid_argument("piecewise curve must start at (1, 1)");
  }
  double prev_slope = 1.0;  // slope of the [0,1] segment
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const auto [x0, y0] = knots[i - 1];
    const auto [x1, y1] = knots[i];
    if (x1 <= x0) throw std::invalid_argument("knot x must strictly increase");
    if (y1 < y0) throw std::invalid_argument("curve must be nondecreasing");
    const double slope = (y1 - y0) / (x1 - x0);
    if (slope > prev_slope + 1e-12) {
      throw std::invalid_argument("curve must be concave");
    }
    prev_slope = slope;
  }
  SpeedupCurve c;
  c.kind_ = Kind::kPiecewiseLinear;
  c.knots_ = std::make_shared<const std::vector<std::pair<double, double>>>(
      std::move(knots));
  // Conservative alpha estimate at the last knot.
  const auto& ks = *c.knots_;
  const auto [xl, yl] = ks.back();
  c.alpha_ = (xl > 1.0 && yl > 0.0) ? std::log(yl) / std::log(xl) : 0.0;
  c.alpha_ = std::clamp(c.alpha_, 0.0, 1.0);
  return c;
}

double SpeedupCurve::rate(double x) const {
  PARSCHED_DCHECK(x >= 0.0, "negative processor share");
  if (x <= 1.0) return x;  // all curves agree with Γ(x) = x on [0, 1]
  switch (kind_) {
    case Kind::kFullyParallel:
      return x;
    case Kind::kSequential:
      return 1.0;
    case Kind::kPowerLaw:
      return std::pow(x, alpha_);
    case Kind::kPiecewiseLinear: {
      const auto& ks = *knots_;
      // Find the segment containing x; extrapolate with last slope beyond.
      for (std::size_t i = 1; i < ks.size(); ++i) {
        if (x <= ks[i].first) {
          const auto [x0, y0] = ks[i - 1];
          const auto [x1, y1] = ks[i];
          return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
      }
      if (ks.size() == 1) return 1.0;  // single knot (1,1): flat beyond
      const auto [x0, y0] = ks[ks.size() - 2];
      const auto [x1, y1] = ks.back();
      const double slope = (y1 - y0) / (x1 - x0);
      return y1 + slope * (x - x1);
    }
  }
  return 0.0;  // unreachable
}

double SpeedupCurve::marginal(double k) const {
  PARSCHED_DCHECK(k >= 0.0, "negative processor count");
  return rate(k + 1.0) - rate(k);
}

double SpeedupCurve::inverse(double g) const {
  PARSCHED_DCHECK(g >= 0.0, "negative target rate");
  if (g <= 1.0) return g;  // Γ(x) = x on [0, 1]
  switch (kind_) {
    case Kind::kFullyParallel:
      return g;
    case Kind::kSequential:
      throw std::domain_error("sequential curve never exceeds rate 1");
    case Kind::kPowerLaw:
      return std::pow(g, 1.0 / alpha_);
    case Kind::kPiecewiseLinear: {
      // Monotone piecewise-linear inversion via bisection over segments.
      const auto& ks = *knots_;
      for (std::size_t i = 1; i < ks.size(); ++i) {
        if (g <= ks[i].second) {
          const auto [x0, y0] = ks[i - 1];
          const auto [x1, y1] = ks[i];
          if (y1 == y0) return x0;
          return x0 + (x1 - x0) * (g - y0) / (y1 - y0);
        }
      }
      if (ks.size() < 2) {
        throw std::domain_error("flat curve never exceeds rate 1");
      }
      const auto [x0, y0] = ks[ks.size() - 2];
      const auto [x1, y1] = ks.back();
      const double slope = (y1 - y0) / (x1 - x0);
      if (slope <= 0.0) {
        throw std::domain_error("flat tail never reaches requested rate");
      }
      return x1 + (g - y1) / slope;
    }
  }
  return 0.0;  // unreachable
}

double SpeedupCurve::alpha() const { return alpha_; }

const std::vector<std::pair<double, double>>& SpeedupCurve::knots() const {
  static const std::vector<std::pair<double, double>> kEmpty;
  return knots_ ? *knots_ : kEmpty;
}

std::string SpeedupCurve::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kFullyParallel:
      os << "parallel";
      break;
    case Kind::kSequential:
      os << "sequential";
      break;
    case Kind::kPowerLaw:
      os << "pow(" << alpha_ << ")";
      break;
    case Kind::kPiecewiseLinear:
      os << "pwl[" << knots_->size() << " knots]";
      break;
  }
  return os.str();
}

bool operator==(const SpeedupCurve& a, const SpeedupCurve& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case SpeedupCurve::Kind::kFullyParallel:
    case SpeedupCurve::Kind::kSequential:
      return true;
    case SpeedupCurve::Kind::kPowerLaw:
      return a.alpha_ == b.alpha_;
    case SpeedupCurve::Kind::kPiecewiseLinear:
      return *a.knots_ == *b.knots_;
  }
  return false;
}

bool is_valid_speedup_curve(const SpeedupCurve& c, double x_max, int samples,
                            double tol) {
  if (c.rate(0.0) != 0.0) return false;  // lint: float-eq-ok
  // Γ(x) = x on [0, 1].
  for (int i = 0; i <= 16; ++i) {
    const double x = static_cast<double>(i) / 16.0;
    if (std::fabs(c.rate(x) - x) > tol) return false;
  }
  // Nondecreasing and concave by sampling on [0, x_max]. Non-finite
  // samples must be rejected explicitly first: NaN fails *every*
  // comparison, so a NaN y would sail through both the monotonicity and
  // concavity checks below and validate a garbage curve.
  double prev_x = 0.0, prev_y = 0.0;
  double prev_slope = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= samples; ++i) {
    const double x = x_max * static_cast<double>(i) / samples;
    const double y = c.rate(x);
    if (!std::isfinite(y)) return false;
    if (y + tol < prev_y) return false;
    const double slope = (y - prev_y) / (x - prev_x);
    if (slope > prev_slope + 1e-6) return false;
    prev_x = x;
    prev_y = y;
    prev_slope = slope;
  }
  return true;
}

bool proposition1_holds(const SpeedupCurve& c, double B, double C,
                        double tol) {
  PARSCHED_CHECK(B >= C && C > 0.0, "Proposition 1 needs B >= C > 0");
  return c.rate(B) / c.rate(C) <= B / C + tol;
}

}  // namespace parsched
