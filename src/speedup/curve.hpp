// parsched — speedup curves Γ(x).
//
// The paper's model: a job allocated x (possibly fractional) processors
// processes work at rate Γ(x), where Γ is nondecreasing, concave, Γ(0) = 0
// and Γ(x) = x on [0, 1]. The paper's family of *intermediate*
// parallelizability is Γ(x) = x for x <= 1 and Γ(x) = x^α for x >= 1 with
// α in (0, 1); α = 1 is fully parallelizable, α = 0 sequential.
//
// SpeedupCurve is a cheap value type (enum + α + optional shared knot
// vector), so jobs can be copied freely during simulation.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace parsched {

/// A nondecreasing concave speedup curve with Γ(0)=0 and Γ(x)=x on [0,1].
class SpeedupCurve {
 public:
  enum class Kind {
    kFullyParallel,    ///< Γ(x) = x                       (α = 1)
    kSequential,       ///< Γ(x) = min(x, 1)               (α = 0)
    kPowerLaw,         ///< Γ(x) = x for x<=1, x^α for x>=1 (the paper)
    kPiecewiseLinear,  ///< general concave curve, linear on [0,1]
  };

  /// Default: fully parallelizable.
  SpeedupCurve() = default;

  static SpeedupCurve fully_parallel();
  static SpeedupCurve sequential();

  /// The paper's family. Requires alpha in [0, 1]; the boundary values
  /// degrade gracefully to sequential / fully parallel.
  static SpeedupCurve power_law(double alpha);

  /// General concave piecewise-linear curve for x >= 1. `knots` are
  /// (x, Γ(x)) pairs with x >= 1, strictly increasing in x; the curve is
  /// Γ(x) = x on [0,1], interpolates the knots, and is constant-slope beyond
  /// the last knot (slope of last segment). The knot at x = 1 with value 1
  /// is implicit. Throws std::invalid_argument if the result would not be
  /// concave or nondecreasing.
  static SpeedupCurve piecewise_linear(std::vector<std::pair<double, double>> knots);

  /// Processing rate with x processors. x must be >= 0.
  [[nodiscard]] double rate(double x) const;

  /// Marginal gain of the (k+1)-th whole processor: Γ(k+1) − Γ(k).
  /// Used by the Section-3 Greedy algorithm.
  [[nodiscard]] double marginal(double k) const;

  /// Inverse: the number of processors needed for rate g (smallest x with
  /// Γ(x) >= g). Requires g >= 0 and achievable for power-law/parallel;
  /// for sequential curves g must be <= 1.
  [[nodiscard]] double inverse(double g) const;

  [[nodiscard]] Kind kind() const { return kind_; }

  /// The parallelizability exponent. 1 for fully parallel, 0 for
  /// sequential, α for power-law; for piecewise-linear curves this is a
  /// conservative upper bound log(Γ(x))/log(x) evaluated at the last knot.
  [[nodiscard]] double alpha() const;

  [[nodiscard]] std::string to_string() const;

  /// Knots of a piecewise-linear curve (including the implicit (1, 1)
  /// lead); empty for the closed-form kinds.
  [[nodiscard]] const std::vector<std::pair<double, double>>& knots() const;

  friend bool operator==(const SpeedupCurve& a, const SpeedupCurve& b);

 private:
  Kind kind_ = Kind::kFullyParallel;
  double alpha_ = 1.0;
  // (x, Γ(x)) knots for kPiecewiseLinear, x >= 1, leading knot (1, 1).
  std::shared_ptr<const std::vector<std::pair<double, double>>> knots_;
};

/// Validation used by tests and by Instance construction: samples the curve
/// and checks nondecreasing + concave + Γ(x)=x on [0,1] up to tolerance.
[[nodiscard]] bool is_valid_speedup_curve(const SpeedupCurve& c,
                                          double x_max = 1024.0,
                                          int samples = 2048,
                                          double tol = 1e-9);

/// Proposition 1 of the paper: for B >= C > 0, Γ(B)/Γ(C) <= B/C.
/// Exposed for the property-test suite.
[[nodiscard]] bool proposition1_holds(const SpeedupCurve& c, double B,
                                      double C, double tol = 1e-9);

}  // namespace parsched
