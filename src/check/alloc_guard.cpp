#include "check/alloc_guard.hpp"

#include <cstdlib>
#include <new>
#include <string>
#ifdef PARSCHED_ALLOC_TRACE
#include <execinfo.h>
#endif

#include "check/contract.hpp"

namespace parsched {
namespace {

/// All per-thread state in one trivially-destructible aggregate so the
/// hook stays safe during thread-local construction/teardown (operator
/// new can run arbitrarily early and late in a thread's life).
struct ThreadAllocState {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;
  std::uint64_t scopes_entered = 0;
  const char* top_scope = nullptr;  ///< innermost armed guard's name
  int depth = 0;
  bool reporting = false;  ///< suppress recursion while building the message
};

ThreadAllocState& tstate() noexcept {
  static thread_local ThreadAllocState s;
  return s;
}

#if defined(PARSCHED_ALLOC_HOOK)

/// Restore `reporting` even when the contract policy throws.
struct ReportingScope {
  ThreadAllocState& s;
  explicit ReportingScope(ThreadAllocState& st) : s(st) { s.reporting = true; }
  ~ReportingScope() { s.reporting = false; }
  ReportingScope(const ReportingScope&) = delete;
  ReportingScope& operator=(const ReportingScope&) = delete;
};

void count_allocation(std::size_t bytes) {
  ThreadAllocState& s = tstate();
  ++s.allocations;
  s.bytes += bytes;
  if (s.depth > 0 && !s.reporting) {
    // Building the diagnostic itself allocates; `reporting` keeps those
    // allocations counted but un-tripped, and is restored even when the
    // policy throws — a caught ContractViolation leaves the guard armed
    // and functional for the next offense.
    ReportingScope rs(s);
#ifdef PARSCHED_ALLOC_TRACE
    // Opt-in diagnosis aid (compile with -DPARSCHED_ALLOC_TRACE): dump
    // the offending allocation's stack to stderr, since the exception
    // only names the guarded scope, not the call path that allocated.
    void* frames[32];
    const int nf = backtrace(frames, 32);
    backtrace_symbols_fd(frames, nf, 2);
#endif
    std::string detail = "heap allocation of ";
    detail += std::to_string(bytes);
    detail += " byte(s) inside AllocGuard(\"";
    detail += s.top_scope != nullptr ? s.top_scope : "<unnamed>";
    detail += "\")";
    check_detail::fail("PARSCHED_ALLOC_GUARD",
                       "allocation-free guarded scope", __FILE__, __LINE__,
                       detail, false);
  }
}

void count_deallocation() noexcept {
  ++tstate().deallocations;
}

[[nodiscard]] void* checked_malloc(std::size_t size) {
  // malloc(0) may return null without being an error; keep new's
  // contract of returning a unique pointer.
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

[[nodiscard]] void* checked_aligned(std::size_t size, std::size_t align) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

#endif  // PARSCHED_ALLOC_HOOK

}  // namespace

bool alloc_hook_active() noexcept {
#if defined(PARSCHED_ALLOC_HOOK)
  return true;
#else
  return false;
#endif
}

AllocStats alloc_stats() noexcept {
  const ThreadAllocState& s = tstate();
  return AllocStats{s.allocations, s.deallocations, s.bytes};
}

std::uint64_t alloc_guard_scopes_entered() noexcept {
  return tstate().scopes_entered;
}

AllocGuard::AllocGuard(const char* scope) noexcept
    : scope_(scope), prev_scope_(nullptr), start_allocs_(0) {
  ThreadAllocState& s = tstate();
  prev_scope_ = s.top_scope;
  s.top_scope = scope_;
  ++s.depth;
  ++s.scopes_entered;
  start_allocs_ = s.allocations;
}

AllocGuard::~AllocGuard() {
  ThreadAllocState& s = tstate();
  s.top_scope = prev_scope_;
  --s.depth;
}

std::uint64_t AllocGuard::observed() const noexcept {
  return tstate().allocations - start_allocs_;
}

int AllocGuard::depth() noexcept { return tstate().depth; }

}  // namespace parsched

#if defined(PARSCHED_ALLOC_HOOK)

// ---- Global operator new/delete replacement -------------------------------
//
// Every standard signature is replaced so no allocation path escapes the
// count ([new.delete] requires replacing the aligned and nothrow forms
// alongside the plain ones once any is replaced). All forms funnel into
// count_allocation/count_deallocation above. The hook is compiled out
// under ASan/TSan (see the top-level CMakeLists), whose interceptors
// own these symbols.

void* operator new(std::size_t size) {
  parsched::count_allocation(size);
  return parsched::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  parsched::count_allocation(size);
  return parsched::checked_malloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    parsched::count_allocation(size);
    return std::malloc(size != 0 ? size : 1);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    parsched::count_allocation(size);
    return std::malloc(size != 0 ? size : 1);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  parsched::count_allocation(size);
  return parsched::checked_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  parsched::count_allocation(size);
  return parsched::checked_aligned(size, static_cast<std::size_t>(align));
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    parsched::count_allocation(size);
    return parsched::checked_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    parsched::count_allocation(size);
    return parsched::checked_aligned(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  parsched::count_deallocation();
  std::free(p);
}

#endif  // PARSCHED_ALLOC_HOOK
